"""Setup shim for environments without the `wheel` package.

Enables legacy `pip install -e . --no-build-isolation` editable installs;
all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
