"""Figure 13: QPS of UpANNS vs #tasklets per DPU (1..24).

Paper shape: QPS rises ~linearly with tasklet count up to 11 (the
14-stage pipeline's reissue interval), then saturates; 11 tasklets give
~11x the single-tasklet QPS.
"""

import numpy as np

from benchmarks.harness import (
    SIM_NPROBES,
    build_pim_engine,
    get_bundle,
    pim_qps,
    save_result,
)
from repro.analysis.report import render_series
from repro.config import UpANNSConfig

TASKLETS = (1, 2, 4, 8, 11, 16, 24)


def run_thread_sweep():
    bundle = get_bundle("SIFT1B", 512)
    qps = []
    for t in TASKLETS:
        engine = build_pim_engine(
            bundle,
            nprobe=SIM_NPROBES[0],
            upanns=UpANNSConfig(n_tasklets=t),
        )
        q, _ = pim_qps(engine, bundle.queries)
        qps.append(q)
    normalized = [q / qps[0] for q in qps]
    return list(TASKLETS), qps, normalized


def test_fig13_tasklet_scaling(run_once):
    tasklets, qps, normalized = run_once(run_thread_sweep)
    text = render_series(
        "tasklets",
        tasklets,
        {"qps": qps, "speedup_vs_1": normalized},
        title="Figure 13: UpANNS QPS vs #tasklets per DPU (SIFT1B-like)",
        float_fmt="{:.2f}",
    )
    save_result("fig13_threads", text)

    speedup = dict(zip(tasklets, normalized))
    # Near-linear up to 11 tasklets...
    assert speedup[8] > 5.0
    assert speedup[11] > 7.0
    # ...then saturation: 24 tasklets buy almost nothing over 11.
    assert speedup[24] < speedup[11] * 1.15
    # Monotone non-decreasing throughout.
    assert all(b >= a * 0.98 for a, b in zip(normalized, normalized[1:]))
