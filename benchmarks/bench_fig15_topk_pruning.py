"""Figure 15: top-k selection time with and without the pruning
strategy, for k = 10..100.

Paper shape: selection time grows ~linearly with k; the min-heap
early-termination merge cuts it substantially (the paper reports 68 %
of comparisons skipped and a 3.1x stage speedup at the system level).
"""

import numpy as np

from benchmarks.harness import save_result
from repro.analysis.report import render_series
from repro.core.kernel import (
    INSTR_PER_HEAP_COMPARISON,
    INSTR_PER_HEAP_INSERTION,
)
from repro.core.topk import scan_topk_fast

KS = (10, 20, 40, 60, 80, 100)
N_POINTS = 200_000
TASKLETS = 11


def modeled_cycles(stats):
    return (
        stats.comparisons * INSTR_PER_HEAP_COMPARISON
        + stats.insertions * INSTR_PER_HEAP_INSERTION
    )


def run_pruning_sweep():
    rng = np.random.default_rng(0)
    distances = rng.random(N_POINTS).astype(np.float32)
    ids = np.arange(N_POINTS)
    rows = []
    for k in KS:
        _, _, s_pruned = scan_topk_fast(distances, ids, k, TASKLETS, prune=True)
        _, _, s_naive = scan_topk_fast(distances, ids, k, TASKLETS, prune=False)
        rows.append(
            {
                "k": k,
                "pruned_total": modeled_cycles(s_pruned),
                "naive_total": modeled_cycles(s_naive),
                "pruned_merge": s_pruned.merge_comparisons * INSTR_PER_HEAP_COMPARISON,
                "naive_merge": s_naive.merge_comparisons * INSTR_PER_HEAP_COMPARISON,
                "skipped": s_pruned.pruned / (TASKLETS * k),
            }
        )
    return rows


def test_fig15_topk_pruning(run_once):
    rows = run_once(run_pruning_sweep)
    ks = [r["k"] for r in rows]
    merge_reduction = [1 - r["pruned_merge"] / r["naive_merge"] for r in rows]
    text = render_series(
        "k",
        ks,
        {
            "pruned_merge_cycles": [float(r["pruned_merge"]) for r in rows],
            "naive_merge_cycles": [float(r["naive_merge"]) for r in rows],
            "merge_time_reduction": merge_reduction,
            "candidates_skipped": [r["skipped"] for r in rows],
        },
        title="Figure 15: top-k aggregation with vs without pruning",
        float_fmt="{:.3g}",
    )
    save_result("fig15_topk_pruning", text)

    naive_merge = [r["naive_merge"] for r in rows]
    pruned_merge = [r["pruned_merge"] for r in rows]
    naive_total = [r["naive_total"] for r in rows]
    skipped = [r["skipped"] for r in rows]
    # Selection work grows with k (paper: 'increases linearly').
    assert naive_merge[-1] > naive_merge[0]
    assert naive_total[-1] > naive_total[0]
    # Pruning cuts the merge substantially at every k, and the absolute
    # saving grows with k (paper: 'especially when top-k is large').
    assert all(p < n for p, n in zip(pruned_merge, naive_merge))
    savings = [n - p for p, n in zip(pruned_merge, naive_merge)]
    assert savings[-1] > savings[0]
    assert np.mean(merge_reduction) > 0.5  # paper reports 68 % skipped
    # A large share of merge candidates never touches the global heap.
    assert np.mean(skipped) > 0.6
