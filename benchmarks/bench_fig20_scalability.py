"""Figure 20: UpANNS scalability in the number of DPUs.

Paper methodology, reproduced literally: measure QPS at several DPU
counts (they use 500-900 on a 500M-scale corpus), fit a linear
regression, extrapolate to the 2560-DPU maximum, and read off (a) the
GPU-crossover and (b) the iso-power comparison at 300 W = 1654 DPUs.

In simulation we sweep 32..96 DPUs (same clusters-per-DPU fidelity
band) and extrapolate with the same affine fit; the QPS axis is
reported in simulator units.
"""

import numpy as np

from benchmarks.harness import (
    build_pim_engine,
    get_bundle,
    gpu_engine,
    save_result,
)
from repro.analysis.regression import fit_scaling
from repro.analysis.report import render_series
from repro.hardware.power import dpus_for_power_budget
from repro.hardware.specs import UPMEM_7_DIMMS

# Simulated sweep band and the paper-equivalent points they map onto.
SIM_DPUS_SWEEP = (32, 48, 64, 80, 96)
DPU_RATIO = 896 / 64  # sim -> paper DPU-count mapping used elsewhere
NPROBE = 8


def run_scaling():
    bundle = get_bundle("SIFT1B", 512)
    measured = []
    for n in SIM_DPUS_SWEEP:
        engine = build_pim_engine(bundle, nprobe=NPROBE, n_dpus=n)
        res = engine.search_batch(bundle.queries)
        # Same per-DPU throughput mapping as Figures 10/12: one
        # simulated DPU stands for DPU_RATIO paper DPUs.
        measured.append(res.qps * DPU_RATIO)
    paper_dpus = np.array(SIM_DPUS_SWEEP) * DPU_RATIO
    fit = fit_scaling(paper_dpus, np.array(measured))
    gpu_qps = gpu_engine(bundle).search_batch(
        bundle.queries, 10, NPROBE, compute_results=False
    ).qps
    return paper_dpus, measured, fit, gpu_qps


def test_fig20_scalability(run_once):
    paper_dpus, measured, fit, gpu_qps = run_once(run_scaling)
    predict_at = np.array([896, 1654, 2048, 2560])
    predicted = fit.predict(predict_at)
    text = render_series(
        "DPUs",
        [int(d) for d in paper_dpus] + [int(d) for d in predict_at],
        {
            "qps": list(measured) + [float("nan")] * 4,
            "regression": list(fit.predict(paper_dpus)) + list(predicted),
        },
        title="Figure 20: UpANNS QPS vs #DPUs (measured + regression)",
        float_fmt="{:.1f}",
    )
    text += f"\nfit: qps = {fit.slope:.4f} * dpus + {fit.intercept:.1f} (R^2={fit.r_squared:.3f})"
    text += f"\nFaiss-GPU reference qps: {gpu_qps:.1f}"
    iso_power_dpus = dpus_for_power_budget(UPMEM_7_DIMMS, 300.0)
    text += f"\niso-power point (300 W): {iso_power_dpus} DPUs -> predicted qps {fit.predict(iso_power_dpus):.1f}"
    if fit.slope > 0 and gpu_qps > fit.intercept:
        text += f"\nGPU crossover at ~{fit.crossover(gpu_qps):.0f} DPUs"
    save_result("fig20_scalability", text)

    # Near-linear scaling: the affine fit explains the measurements.
    assert fit.r_squared > 0.95
    assert fit.slope > 0
    # QPS increases monotonically with DPUs (up to small noise).
    assert measured[-1] > measured[0] * 1.5
    # At 2560 DPUs UpANNS clearly exceeds the GPU (paper: up to 2.6x).
    assert 1.5 < fit.predict(2560) / gpu_qps < 6.0
    # The crossover falls well before the 2560-DPU maximum.
    assert fit.crossover(gpu_qps) < 2560
    # At the 300 W iso-power point UpANNS beats the GPU (paper claim).
    assert fit.predict(iso_power_dpus) > gpu_qps
