"""Figure 7: MRAM read latency vs DMA transfer size.

Paper observation: latency grows slowly from 8 B to ~256 B (setup cost
dominated) and almost linearly beyond — therefore reads under ~256 B
"yield greater benefits" per WRAM byte.
"""

import numpy as np

from benchmarks.harness import save_result
from repro.analysis.report import render_series
from repro.hardware.mram import MramModel


def run_curve():
    model = MramModel()
    sizes = [8, 16, 32, 64, 128, 256, 512, 1024, 2048]
    latency = [model.latency_cycles(s) for s in sizes]
    bandwidth = [model.effective_bandwidth_bytes_per_cycle(s) for s in sizes]
    return sizes, latency, bandwidth


def test_fig07_mram_latency_curve(run_once):
    sizes, latency, bandwidth = run_once(run_curve)
    text = render_series(
        "bytes",
        sizes,
        {"latency_cycles": latency, "bytes_per_cycle": bandwidth},
        title="Figure 7: MRAM DMA latency vs transfer size",
        float_fmt="{:.2f}",
    )
    save_result("fig07_mram_latency", text)

    lat = dict(zip(sizes, latency))
    # Slow growth below the knee: 32x more data < 1.6x more latency.
    assert lat[256] / lat[8] < 1.6
    # Near-linear growth beyond the knee: constant marginal cost/byte.
    marginal_lo = (lat[512] - lat[256]) / 256
    marginal_hi = (lat[2048] - lat[1024]) / 1024
    np.testing.assert_allclose(marginal_hi, marginal_lo, rtol=0.05)
    # Latency is monotone.
    assert latency == sorted(latency)
