"""The shared (dataset x IVF x nprobe) sweep behind Figures 10, 11, 12.

One simulation pass per (dataset, IVF, nprobe) measures UpANNS and
PIM-naive on the simulated PIM plus the CPU/GPU analytic models, and
records QPS, balance ratios and efficiency.  Figures 10-12 render
different projections of the same results, so the sweep runs once per
pytest session and is cached here.
"""

from __future__ import annotations

from repro.errors import DeviceOutOfMemoryError

from benchmarks.harness import (
    DATASETS,
    SIM_IVFS,
    SIM_NPROBES,
    SCALE_FACTOR,
    PAPER_DPUS,
    build_pim_engine,
    cpu_engine,
    get_bundle,
    gpu_engine,
    pim_qps,
)
from repro.hardware.specs import A100_PCIE_80GB, UPMEM_7_DIMMS

_RESULTS: list[dict] | None = None


def run_sweep() -> list[dict]:
    global _RESULTS
    if _RESULTS is not None:
        return _RESULTS
    results: list[dict] = []
    for name in DATASETS:
        for ivf in SIM_IVFS:
            bundle = get_bundle(name, ivf)
            cpu = cpu_engine(bundle)
            gpu = gpu_engine(bundle)
            for nprobe in SIM_NPROBES:
                row: dict = {
                    "dataset": name,
                    "ivf": ivf * SCALE_FACTOR,  # report at paper scale
                    "nprobe": nprobe * SCALE_FACTOR,
                }
                row["cpu_qps"] = cpu.search_batch(
                    bundle.queries, 10, nprobe, compute_results=False
                ).qps
                try:
                    row["gpu_qps"] = gpu.search_batch(
                        bundle.queries, 10, nprobe, compute_results=False
                    ).qps
                    row["gpu_oom"] = False
                except DeviceOutOfMemoryError:
                    row["gpu_qps"] = float("nan")
                    row["gpu_oom"] = True

                up = build_pim_engine(bundle, nprobe=nprobe)
                qps, res = pim_qps(up, bundle.queries)
                row["upanns_qps"] = qps
                row["upanns_ratio"] = res.cycle_load_ratio
                row["upanns_qps_per_w"] = qps / UPMEM_7_DIMMS.peak_power_w
                row["gpu_qps_per_w"] = (
                    row["gpu_qps"] / A100_PCIE_80GB.peak_power_w
                    if not row["gpu_oom"]
                    else float("nan")
                )

                naive = build_pim_engine(bundle, nprobe=nprobe, naive=True)
                qps_n, res_n = pim_qps(naive, bundle.queries)
                row["naive_qps"] = qps_n
                row["naive_ratio"] = res_n.cycle_load_ratio
                results.append(row)
    _RESULTS = results
    return results
