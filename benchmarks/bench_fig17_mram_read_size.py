"""Figure 17: QPS vs MRAM read size (vectors fetched per DMA).

Paper shape: QPS rises quickly as the read grows from 2 to ~16 vectors,
then flattens — consistent with the Figure 7 latency knee.  The default
is 16 vectors: good QPS at reasonable WRAM cost.
"""

from benchmarks.harness import (
    SIM_NPROBES,
    build_pim_engine,
    get_bundle,
    pim_qps,
    save_result,
)
from repro.analysis.report import render_series
from repro.config import UpANNSConfig

READ_VECTORS = (2, 4, 8, 16, 32, 64)


def run_read_size_sweep():
    bundle = get_bundle("SIFT1B", 512)
    qps = []
    wram_per_tasklet = []
    for rv in READ_VECTORS:
        engine = build_pim_engine(
            bundle,
            nprobe=SIM_NPROBES[0],
            upanns=UpANNSConfig(mram_read_vectors=rv),
        )
        q, _ = pim_qps(engine, bundle.queries)
        qps.append(q)
        wram_per_tasklet.append(engine.wram_plan.read_buffer_bytes)
    return list(READ_VECTORS), qps, wram_per_tasklet


def test_fig17_mram_read_size(run_once):
    rvs, qps, wram = run_once(run_read_size_sweep)
    normalized = [q / qps[0] for q in qps]
    text = render_series(
        "vectors/read",
        rvs,
        {"qps": qps, "vs_2_vectors": normalized, "buffer_bytes": [float(w) for w in wram]},
        title="Figure 17: QPS vs MRAM read size (SIFT1B-like)",
        float_fmt="{:.3g}",
    )
    save_result("fig17_mram_read_size", text)

    gain = dict(zip(rvs, normalized))
    # Fast rise from 2 -> 16 vectors...
    assert gain[16] > 1.10
    # ...then stability: 64 vectors gain < 5 % over 16 while costing 4x
    # the WRAM per tasklet.
    assert gain[64] < gain[16] * 1.05
    assert wram[-1] >= 4 * wram[3]
    # Monotone non-decreasing up to the knee (within 2 % noise).
    head = normalized[:4]
    assert all(b >= a * 0.98 for a, b in zip(head, head[1:]))
