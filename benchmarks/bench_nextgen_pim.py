"""Projection: next-generation PIM hardware (paper conclusion).

"Future work will ... exploit next-generation PIM hardware with higher
frequency and bandwidth to further improve competitiveness against
high-end accelerators."  The simulator makes this a parameter sweep:
scale DPU frequency and MRAM bandwidth and compare the projected QPS
against the A100 model and the paper-cited H100 figures (3.5 TB/s at
700 W — bandwidth and power scale together, which is why the paper
argues PIM stays the more energy-efficient option).
"""

from dataclasses import replace

from benchmarks.harness import (
    PAPER_DPUS,
    SIM_DPUS,
    build_pim_engine,
    get_bundle,
    gpu_engine,
    save_result,
)
from repro.analysis.report import render_table
from repro.hardware.mram import MramModel
from repro.hardware.specs import UPMEM_7_DIMMS

NPROBE = 8

# (label, frequency multiplier, MRAM bandwidth multiplier, power multiplier)
GENERATIONS = (
    ("UPMEM v1 (350 MHz)", 1.0, 1.0, 1.0),
    ("2x freq", 2.0, 1.0, 1.3),
    ("2x freq + 2x BW", 2.0, 2.0, 1.5),
    ("4x freq + 4x BW", 4.0, 4.0, 2.2),
)


def run_projection():
    bundle = get_bundle("SIFT1B", 512)
    gpu = gpu_engine(bundle)
    gpu_qps = gpu.search_batch(bundle.queries, 10, NPROBE, compute_results=False).qps
    gpu_qps_per_w = gpu_qps / 300.0

    rows = []
    base = UPMEM_7_DIMMS.with_n_dpus(SIM_DPUS)
    for label, f_mult, bw_mult, p_mult in GENERATIONS:
        dpu = replace(base.dpu, frequency_hz=base.dpu.frequency_hz * f_mult)
        pim = replace(base, dpu=dpu, dimm_peak_power_w=base.dimm_peak_power_w * p_mult)
        # MRAM latency is a *wall-clock* property: at f_mult x the core
        # frequency the same transfer costs f_mult x the cycles unless
        # the DRAM bandwidth itself scales by bw_mult.
        default = MramModel()
        cycle_mult = f_mult / bw_mult
        mram = MramModel(
            setup_cycles=default.setup_cycles,  # dominated by core-side logic
            slow_rate_cycles_per_byte=default.slow_rate_cycles_per_byte * cycle_mult,
            fast_rate_cycles_per_byte=default.fast_rate_cycles_per_byte * cycle_mult,
        )
        engine = build_pim_engine(bundle, nprobe=NPROBE, n_dpus=SIM_DPUS)
        engine.config = replace(engine.config, pim=pim)
        for d in engine.pim.dpus:
            d.spec = dpu
            d.mram_model = mram
            d.__post_init__()  # rebind pipeline/barrier models
            d.n_tasklets = engine.config.upanns.n_tasklets
        result = engine.search_batch(bundle.queries)
        qps = result.qps * (PAPER_DPUS / SIM_DPUS)
        power = UPMEM_7_DIMMS.peak_power_w * p_mult
        rows.append(
            [
                label,
                qps,
                qps / gpu_qps,
                (qps / power) / gpu_qps_per_w,
            ]
        )
    return rows, gpu_qps


def test_nextgen_pim_projection(run_once):
    rows, gpu_qps = run_once(run_projection)
    text = render_table(
        ["generation", "projected QPS", "vs A100 QPS", "vs A100 QPS/W"],
        rows,
        title="Next-generation PIM projection (conclusion's future work)",
        float_fmt="{:.2f}",
    )
    text += f"\nA100 reference: {gpu_qps:.1f} QPS"
    save_result("nextgen_pim", text)

    qps = [r[1] for r in rows]
    # Each generation improves throughput.
    assert all(b > a for a, b in zip(qps, qps[1:]))
    # Frequency alone helps less than frequency + bandwidth: the DPU is
    # partially DMA-bound, so next-gen designs must scale both.
    gain_freq = qps[1] / qps[0]
    gain_both = qps[2] / qps[0]
    assert gain_both > gain_freq
    # Energy-efficiency lead over the A100 persists (and grows) because
    # PIM power scales sub-linearly with its bandwidth in this model.
    eff = [r[3] for r in rows]
    assert eff[-1] > eff[0]
