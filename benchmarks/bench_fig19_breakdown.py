"""Figure 19: query-time breakdown per solution and dataset.

Paper shape: Faiss-CPU spends ~99.5 % in distance calculation; the GPU
spends >85 % in top-k (CUDA sync); UpANNS cuts the distance share to
75-80 % with top-k at 9-17 %, growing with k.
"""

from benchmarks.harness import (
    DATASETS,
    build_pim_engine,
    cpu_engine,
    get_bundle,
    gpu_engine,
    save_result,
)
from repro.analysis.report import render_table
from repro.metrics import breakdown_percentages

NPROBE = 4
IVF = 256


def run_breakdowns():
    rows = []
    shares = {}
    for name in DATASETS:
        bundle = get_bundle(name, IVF)
        engines = {
            "Faiss-CPU": lambda b=bundle: cpu_engine(b).search_batch(
                b.queries, 10, NPROBE, compute_results=False
            ).stage_seconds,
            "Faiss-GPU": lambda b=bundle: gpu_engine(b).search_batch(
                b.queries, 10, NPROBE, compute_results=False
            ).stage_seconds,
            "UpANNS": lambda b=bundle: build_pim_engine(b, nprobe=NPROBE)
            .search_batch(b.queries)
            .stage_seconds,
        }
        for eng_name, fn in engines.items():
            try:
                stage = fn()
            except Exception:
                rows.append([name, eng_name, "-", "-", "-", "-"])
                continue
            pct = breakdown_percentages(stage)
            rows.append(
                [
                    name,
                    eng_name,
                    pct["cluster_filter"],
                    pct["lut_construction"],
                    pct["distance_calc"],
                    pct["topk_selection"],
                ]
            )
            shares[(name, eng_name)] = pct
    return rows, shares


def run_k_growth():
    bundle = get_bundle("SIFT1B", IVF)
    up = build_pim_engine(bundle, nprobe=NPROBE, k=100)
    shares = {}
    for k in (10, 100):
        stage = up.search_batch(bundle.queries, k=k).stage_seconds
        shares[k] = breakdown_percentages(stage)["topk_selection"]
    return shares


def test_fig19_stage_breakdown(run_once):
    (rows, shares), k_growth = run_once(lambda: (run_breakdowns(), run_k_growth()))
    text = render_table(
        ["dataset", "engine", "filter%", "LUT%", "distance%", "topk%"],
        rows,
        title="Figure 19: query-time breakdown per solution",
        float_fmt="{:.1f}",
    )
    text += (
        f"\nUpANNS top-k share: {k_growth[10]:.1f}% at k=10 -> "
        f"{k_growth[100]:.1f}% at k=100"
    )
    save_result("fig19_breakdown", text)

    for name in DATASETS:
        if (name, "Faiss-CPU") in shares:
            assert shares[(name, "Faiss-CPU")]["distance_calc"] > 95.0
        if (name, "Faiss-GPU") in shares:
            assert shares[(name, "Faiss-GPU")]["topk_selection"] > 70.0
        if (name, "UpANNS") in shares:
            up = shares[(name, "UpANNS")]
            assert 60.0 < up["distance_calc"] < 95.0
            assert up["topk_selection"] < 25.0
    # UpANNS top-k share grows with k (paper: 9 % -> 17 %).
    assert k_growth[100] > k_growth[10]
