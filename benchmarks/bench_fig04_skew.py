"""Figure 4: SPACEV1B skew — access frequency, cluster size, workload.

The paper motivates Opt1 with three distributions over clusters:
(a) access frequencies spanning ~500x, (b) sizes spanning many decades,
(c) their product (per-cluster workload) also heavily skewed.
"""

import numpy as np

from benchmarks.harness import SIM_NPROBES, get_bundle, save_result
from repro.analysis.report import render_table
from repro.data.skew import gini, skew_ratio


def run_skew():
    bundle = get_bundle("SPACEV1B", 512)
    sizes = bundle.index.ivf.cluster_sizes()
    probes = bundle.index.ivf.search_clusters(bundle.history, SIM_NPROBES[1])
    freq = np.bincount(probes.ravel(), minlength=bundle.sim_clusters).astype(float)
    workload = freq * sizes

    def stats(name, v):
        positive = v[v > 0]
        return [
            name,
            float(positive.min()),
            float(np.median(positive)),
            float(positive.max()),
            skew_ratio(v),
            gini(v),
        ]

    rows = [
        stats("access frequency", freq),
        stats("cluster size", sizes.astype(float)),
        stats("workload (f*s)", workload),
    ]
    return rows, freq, sizes, workload


def test_fig04_skew_distributions(run_once):
    rows, freq, sizes, workload = run_once(run_skew)
    text = render_table(
        ["distribution", "min", "median", "max", "max/min", "gini"],
        rows,
        title="Figure 4: per-cluster skew on SPACEV1B-like data (IVF scaled)",
    )
    save_result("fig04_skew", text)

    # Paper claims: all three distributions are heavily skewed.
    assert skew_ratio(freq) > 10  # 'popular clusters receive 500x more'
    assert skew_ratio(sizes.astype(float)) > 10  # 'large clusters 1e6 x'
    assert gini(workload) > 0.2
    # Workload skew combines both sources: it is at least as unequal as
    # the milder of its two factors.
    assert gini(workload) >= min(gini(freq), gini(sizes.astype(float))) - 0.05
