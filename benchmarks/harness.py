"""Shared infrastructure for the per-figure benchmark harnesses.

Scaling methodology (see DESIGN.md section 5 and EXPERIMENTS.md):

* datasets are scaled down 1e9 -> ~6e4 vectors while cluster counts and
  nprobe scale down by the same factor (16x), so per-cluster list
  lengths — restored via ``timing_scale`` — and the nprobe/|C| ratio
  match the paper;
* the PIM system is simulated at 64 DPUs so the clusters-per-DPU ratio
  (4-16) brackets the paper's 4.6-18.3; measured QPS is extrapolated to
  the paper's 896 DPUs linearly, which is the paper's own Figure-20
  methodology (near-linear scaling, verified by bench_fig20);
* CPU and GPU are analytic models over the same probe statistics, so
  their absolute times need no extrapolation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.baselines.cpu import CpuEngine
from repro.baselines.gpu import GpuEngine
from repro.baselines.pim_naive import PIM_NAIVE_CONFIG
from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.data import make_dataset, make_queries, zipf_weights
from repro.data.synthetic import DEEP1B, SIFT1B, SPACEV1B, DatasetSpec
from repro.hardware.specs import UPMEM_7_DIMMS
from repro.ivfpq import IVFPQIndex

RESULTS_DIR = Path(__file__).parent / "results"

# When set (``pytest benchmarks --trace-dir <dir>`` or assignment from a
# driver script), every figure run also dumps the Chrome-trace JSON of
# the PIM batches it executed, named ``<figure>.trace.json``.
TRACE_DIR: Path | None = None
_TRACE_SCHEDULES: list = []

# Every ``pim_qps`` call since the last ``save_result`` — the raw
# material for the schema-versioned ``<figure>.json`` result record.
_RESULT_RUNS: list = []

# --- Scaled defaults ---------------------------------------------------------
N_BASE = 60_000  # vectors per synthetic corpus
N_TRAIN = 20_000
TRAIN_ITERS = 4
SCALE_FACTOR = 16  # |C| and nprobe scaled down 16x from the paper
SIM_DPUS = 64  # simulated PIM size (clusters/DPU ratio matches paper)
PAPER_DPUS = UPMEM_7_DIMMS.n_dpus  # 896
EXTRAPOLATION = PAPER_DPUS / SIM_DPUS
N_COMPONENTS = 96
ZIPF_ALPHA = 0.4
N_HISTORY = 3000

PAPER_IVFS = (4096, 8192, 16384)
PAPER_NPROBES = (64, 128, 256)
SIM_IVFS = tuple(v // SCALE_FACTOR for v in PAPER_IVFS)  # 256, 512, 1024
SIM_NPROBES = tuple(v // SCALE_FACTOR for v in PAPER_NPROBES)  # 4, 8, 16
BATCH_SIZE = 400

DATASETS = {"SIFT1B": SIFT1B, "DEEP1B": DEEP1B, "SPACEV1B": SPACEV1B}


def timing_scale(spec_full_scale: int, n: int, sim_clusters: int, paper_clusters: int) -> float:
    """Factor that restores paper-scale inverted-list lengths."""
    paper_list = spec_full_scale / paper_clusters
    sim_list = n / sim_clusters
    return paper_list / sim_list


@dataclass
class Bundle:
    """Everything one (dataset, IVF) evaluation point needs."""

    name: str
    spec: DatasetSpec
    vectors: np.ndarray
    queries: np.ndarray
    history: np.ndarray
    index: IVFPQIndex
    sim_clusters: int
    paper_clusters: int
    scale: float


_CACHE: dict[tuple[str, int], Bundle] = {}
_DATA_CACHE: dict[str, tuple] = {}


def dataset_arrays(name: str):
    """Vectors/queries/history for a dataset, cached per session."""
    if name not in _DATA_CACHE:
        spec = DATASETS[name]
        import zlib

        ds = make_dataset(
            spec,
            N_BASE,
            n_components=N_COMPONENTS,
            size_sigma=1.0,
            correlated_subspaces=4,
            # Stable per-dataset seed (Python's hash() is randomized
            # per process, which would make benches nondeterministic).
            rng=np.random.default_rng(zlib.crc32(name.encode())),
        )
        pop = zipf_weights(N_COMPONENTS, ZIPF_ALPHA)
        history = make_queries(ds, N_HISTORY, popularity=pop, rng=np.random.default_rng(5))
        queries = make_queries(ds, BATCH_SIZE, popularity=pop, rng=np.random.default_rng(6))
        _DATA_CACHE[name] = (ds, queries, history)
    return _DATA_CACHE[name]


def get_bundle(name: str, sim_clusters: int) -> Bundle:
    """Trained bundle for (dataset, cluster count), cached per session."""
    key = (name, sim_clusters)
    if key not in _CACHE:
        ds, queries, history = dataset_arrays(name)
        spec = DATASETS[name]
        index = IVFPQIndex(spec.dim, sim_clusters, spec.pq_m)
        index.train(
            ds.vectors[:N_TRAIN], n_iter=TRAIN_ITERS, rng=np.random.default_rng(0)
        )
        index.add(ds.vectors)
        paper_clusters = sim_clusters * SCALE_FACTOR
        _CACHE[key] = Bundle(
            name=name,
            spec=spec,
            vectors=ds.vectors,
            queries=queries,
            history=history,
            index=index,
            sim_clusters=sim_clusters,
            paper_clusters=paper_clusters,
            scale=timing_scale(spec.full_scale, N_BASE, sim_clusters, paper_clusters),
        )
    return _CACHE[key]


def build_pim_engine(
    bundle: Bundle,
    *,
    nprobe: int,
    k: int = 10,
    naive: bool = False,
    n_dpus: int = SIM_DPUS,
    upanns: UpANNSConfig | None = None,
    batch_size: int = BATCH_SIZE,
) -> UpANNSEngine:
    if upanns is None:
        upanns = PIM_NAIVE_CONFIG if naive else UpANNSConfig()
    cfg = SystemConfig(
        index=IndexConfig(
            dim=bundle.spec.dim,
            n_clusters=bundle.sim_clusters,
            m=bundle.spec.pq_m,
            train_iters=TRAIN_ITERS,
        ),
        query=QueryConfig(nprobe=nprobe, k=k, batch_size=batch_size),
        upanns=upanns,
        pim=UPMEM_7_DIMMS.with_n_dpus(n_dpus),
        timing_scale=bundle.scale,
    )
    engine = UpANNSEngine(cfg)
    engine.build(
        bundle.vectors, history_queries=bundle.history, prebuilt_index=bundle.index
    )
    return engine


def pim_qps(engine: UpANNSEngine, queries: np.ndarray, *, k: int | None = None):
    """Run a batch; return (extrapolated-to-896-DPUs QPS, BatchResult)."""
    result = engine.search_batch(queries, k=k)
    if TRACE_DIR is not None and result.schedule is not None:
        _TRACE_SCHEDULES.append(result.schedule)
    n_sim = engine.config.pim.n_dpus
    qps = result.qps * (PAPER_DPUS / n_sim)
    _RESULT_RUNS.append((qps, result))
    return qps, result


def cpu_engine(bundle: Bundle) -> CpuEngine:
    return CpuEngine(bundle.index, workload_scale=bundle.scale)


def gpu_engine(bundle: Bundle, **kwargs) -> GpuEngine:
    """A100 model for a bundle.

    Timing uses the per-list scale; memory uses the full-corpus scale
    (what must be resident on the device).  DEEP1B-like float corpora
    additionally store re-ranking vectors (PQ12 alone cannot reach the
    benchmark's recall targets), which is what pushes DEEP over the
    80 GB capacity at larger nprobe — the paper's blue-X markers.
    """
    kwargs.setdefault("memory_scale", bundle.spec.full_scale / bundle.vectors.shape[0])
    if bundle.spec.name == "DEEP1B":
        kwargs.setdefault("rerank_bytes_per_vector", 48)
    return GpuEngine(bundle.index, workload_scale=bundle.scale, **kwargs)


def save_result(figure: str, text: str) -> None:
    """Print a figure's regenerated rows and archive them on disk.

    Every figure that ran PIM batches through :func:`pim_qps` also gets
    a schema-versioned machine-readable record, ``<figure>.json``
    (``repro.bench.result/v1``): config, QPS stats over every batch,
    summed stage seconds, the last batch's per-resource utilization and
    critical path, and a registry snapshot.  ``python -m
    repro.telemetry.schema results/<figure>.json`` validates it.

    With :data:`TRACE_DIR` set, also composes every PIM batch schedule
    recorded since the last figure into one sequential timeline and
    writes it as ``<figure>.trace.json`` (Chrome-trace / Perfetto
    format) — no per-benchmark code needed.
    """
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{figure}.txt").write_text(text + "\n")
    print(f"\n===== {figure} =====\n{text}\n")
    if _RESULT_RUNS:
        from repro import telemetry
        from repro.telemetry.pipeline import TIMING_STAGES

        stage_seconds: dict[str, float] = {}
        for _, result in _RESULT_RUNS:
            for stage, attr in TIMING_STAGES:
                stage_seconds[stage] = stage_seconds.get(stage, 0.0) + getattr(
                    result.timing, attr
                )
        last_schedule = next(
            (r.schedule for _, r in reversed(_RESULT_RUNS) if r.schedule is not None),
            None,
        )
        if last_schedule is not None:
            record = telemetry.make_result_record(
                name=figure,
                config={
                    "sim_dpus": SIM_DPUS,
                    "paper_dpus": PAPER_DPUS,
                    "extrapolation": EXTRAPOLATION,
                    "n_base": N_BASE,
                    "batch_size": BATCH_SIZE,
                    "scale_factor": SCALE_FACTOR,
                },
                qps_values=[qps for qps, _ in _RESULT_RUNS],
                stage_seconds=stage_seconds,
                utilization=telemetry.utilization_report(last_schedule).to_json(),
                metrics=telemetry.snapshot(),
            )
            path = RESULTS_DIR / f"{figure}.json"
            path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
            print(f"wrote {len(_RESULT_RUNS)} run(s) to {path}")
        _RESULT_RUNS.clear()
    if TRACE_DIR is not None and _TRACE_SCHEDULES:
        from repro.sim import compose

        TRACE_DIR.mkdir(parents=True, exist_ok=True)
        combined = compose(list(_TRACE_SCHEDULES), "sequential")
        path = TRACE_DIR / f"{figure}.trace.json"
        path.write_text(json.dumps(combined.to_chrome_trace()))
        print(f"wrote {len(_TRACE_SCHEDULES)} batch schedule(s) to {path}")
        _TRACE_SCHEDULES.clear()
