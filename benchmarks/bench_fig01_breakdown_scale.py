"""Figure 1: IVFPQ query-time breakdown on CPU and GPU at 1M/100M/1B.

Paper setup: SIFT vectors, M=32, |C|=4096, nprobe=32.  Claims to
reproduce: (a) the CPU bottleneck *shifts* from LUT construction at 1M
to distance calculation at 1B (99.5 %); (b) the GPU is dominated by the
top-k stage at every scale, increasingly so as the dataset grows.
"""

import pytest

from benchmarks.harness import (
    dataset_arrays,
    save_result,
    timing_scale,
)
from repro.analysis.report import render_table
from repro.baselines.cpu import CpuEngine
from repro.baselines.gpu import GpuEngine
from repro.ivfpq import IVFPQIndex
from repro.metrics import breakdown_percentages, dominant_stage

SCALES = {"1M": 10**6, "100M": 10**8, "1B": 10**9}
SIM_CLUSTERS = 256
PAPER_CLUSTERS = 4096
NPROBE = 2  # paper nprobe=32, scaled by 16 like |C|


@pytest.fixture(scope="module")
def m32_index():
    ds, queries, _ = dataset_arrays("SIFT1B")
    index = IVFPQIndex(128, SIM_CLUSTERS, 32)
    import numpy as np

    index.train(ds.vectors[:20000], n_iter=4, rng=np.random.default_rng(0))
    index.add(ds.vectors)
    return index, queries


def run_breakdown(m32_index):
    index, queries = m32_index
    rows = []
    shift = {}
    for label, n in SCALES.items():
        scale = timing_scale(n, index.ntotal, SIM_CLUSTERS, PAPER_CLUSTERS)
        for hw, engine in (
            ("CPU", CpuEngine(index, workload_scale=scale)),
            ("GPU", GpuEngine(index, workload_scale=scale)),
        ):
            res = engine.search_batch(queries, 10, NPROBE, compute_results=False)
            pct = breakdown_percentages(res.stage_seconds)
            rows.append(
                [
                    hw,
                    label,
                    pct["cluster_filter"],
                    pct["lut_construction"],
                    pct["distance_calc"],
                    pct["topk_selection"],
                    dominant_stage(res.stage_seconds),
                ]
            )
            shift[(hw, label)] = dominant_stage(res.stage_seconds)
    return rows, shift


def test_fig01_breakdown_across_scales(m32_index, run_once):
    rows, shift = run_once(run_breakdown, m32_index)
    text = render_table(
        ["hw", "scale", "filter%", "LUT%", "distance%", "topk%", "bottleneck"],
        rows,
        title="Figure 1: IVFPQ stage breakdown (M=32, IVF4096, nprobe=32)",
        float_fmt="{:.1f}",
    )
    save_result("fig01_breakdown_scale", text)

    # Paper claim (a): CPU bottleneck shifts LUT -> distance with scale.
    assert shift[("CPU", "1M")] == "lut_construction"
    assert shift[("CPU", "1B")] == "distance_calc"
    # Paper claim (b): GPU top-k dominates at billion scale (64 %+).
    gpu_1b = [r for r in rows if r[0] == "GPU" and r[1] == "1B"][0]
    assert gpu_1b[5] > 60.0
    # CPU distance share at 1B approaches the paper's 99.5 %.
    cpu_1b = [r for r in rows if r[0] == "CPU" and r[1] == "1B"][0]
    assert cpu_1b[4] > 95.0
