"""Figure 10: QPS of UpANNS / PIM-naive / Faiss-CPU across datasets,
IVF in {4096, 8192, 16384} and nprobe in {64, 128, 256} (both scaled by
16 in simulation; reported at paper-equivalent values).

Shape targets from the paper: UpANNS is the fastest PIM/CPU solution at
every setting (1.6-4.3x over Faiss-CPU); QPS decreases with nprobe for
every solution; UpANNS's advantage over the CPU grows with IVF (the
CPU loses cache locality on smaller clusters); PIM-naive trails UpANNS.
"""

from benchmarks.harness import save_result
from benchmarks.sweep_overall import run_sweep
from repro.analysis.report import render_table
from repro.metrics import normalize_to


def test_fig10_qps_normalized_to_cpu(run_once):
    results = run_once(run_sweep)
    rows = []
    checks_grow_with_ivf = {}
    for r in results:
        rows.append(
            [
                r["dataset"],
                r["ivf"],
                r["nprobe"],
                r["cpu_qps"],
                r["naive_qps"],
                r["upanns_qps"],
                r["upanns_qps"] / r["cpu_qps"],
            ]
        )
        checks_grow_with_ivf.setdefault((r["dataset"], r["nprobe"]), []).append(
            r["upanns_qps"] / r["cpu_qps"]
        )
    text = render_table(
        ["dataset", "IVF", "nprobe", "CPU qps", "PIM-naive qps", "UpANNS qps", "UpANNS/CPU"],
        rows,
        title="Figure 10: QPS vs Faiss-CPU (paper-equivalent IVF/nprobe)",
        float_fmt="{:.2f}",
    )
    save_result("fig10_qps_vs_cpu", text)

    # UpANNS beats the CPU everywhere, within the paper's reported band.
    speedups = [r["upanns_qps"] / r["cpu_qps"] for r in results]
    assert min(speedups) > 1.0
    assert max(speedups) < 10.0  # same order as the paper's 1.6-4.3x
    # QPS decreases with nprobe at fixed (dataset, IVF) for all engines.
    by_setting = {}
    for r in results:
        by_setting.setdefault((r["dataset"], r["ivf"]), []).append(r)
    for rows_ in by_setting.values():
        rows_ = sorted(rows_, key=lambda r: r["nprobe"])
        for eng in ("cpu_qps", "upanns_qps"):
            vals = [r[eng] for r in rows_]
            assert vals[0] >= vals[-1]
    # UpANNS/CPU advantage grows with IVF on average (paper section
    # 5.2; individual cells carry +-15 % scheduling noise).
    first = [r[0] for r in checks_grow_with_ivf.values()]
    last = [r[-1] for r in checks_grow_with_ivf.values()]
    import numpy as np

    assert np.mean(last) >= np.mean(first) * 0.95
    # UpANNS consistently above PIM-naive.
    assert all(r["upanns_qps"] > r["naive_qps"] for r in results)
