"""Design-choice ablations beyond the paper's own figures (DESIGN.md §4).

1. Replication headroom: how over-provisioning replicas vs the paper's
   exact ceil(s*f/W̄) affects balance and MRAM cost.
2. Scheduler refinement: greedy Algorithm 2 with and without the local-
   search rebalancing pass.
3. Optimization stack: cumulative effect of enabling placement, CAE and
   top-k pruning one at a time.
"""

import numpy as np

from benchmarks.harness import (
    SIM_NPROBES,
    build_pim_engine,
    get_bundle,
    pim_qps,
    save_result,
)
from repro.analysis.report import render_table
from repro.config import UpANNSConfig
from repro.core.scheduling import schedule_batch


def run_headroom_ablation():
    bundle = get_bundle("SIFT1B", 512)
    rows = []
    for headroom in (1.0, 1.5, 2.0, 3.0, 4.0):
        engine = build_pim_engine(
            bundle,
            nprobe=SIM_NPROBES[1],
            upanns=UpANNSConfig(replication_headroom=headroom),
        )
        qps, res = pim_qps(engine, bundle.queries)
        rows.append(
            [
                headroom,
                engine.replication_factor(),
                res.cycle_load_ratio,
                qps,
            ]
        )
    return rows


def run_refinement_ablation():
    bundle = get_bundle("SIFT1B", 512)
    engine = build_pim_engine(bundle, nprobe=SIM_NPROBES[1])
    sizes = bundle.index.ivf.cluster_sizes()
    probes = bundle.index.ivf.search_clusters(bundle.queries, SIM_NPROBES[1])
    greedy = schedule_batch(probes, sizes, engine.placement, refine=False)
    refined = schedule_batch(probes, sizes, engine.placement, refine=True)
    return greedy.load_ratio(), refined.load_ratio()


def run_stack_ablation():
    bundle = get_bundle("SIFT1B", 512)
    stack = [
        ("none (PIM-naive)", UpANNSConfig(enable_placement=False, enable_cae=False, enable_topk_pruning=False)),
        ("+placement", UpANNSConfig(enable_placement=True, enable_cae=False, enable_topk_pruning=False)),
        ("+CAE", UpANNSConfig(enable_placement=True, enable_cae=True, enable_topk_pruning=False)),
        ("+topk pruning (full)", UpANNSConfig()),
    ]
    rows = []
    for label, cfg in stack:
        engine = build_pim_engine(bundle, nprobe=SIM_NPROBES[1], upanns=cfg)
        qps, res = pim_qps(engine, bundle.queries)
        rows.append([label, qps, res.cycle_load_ratio])
    return rows


def run_combo_length_ablation():
    """Paper section 4.3: 'longer combinations can be selected if a
    larger cache size is available'.  Sweep the mined run length."""
    bundle = get_bundle("SIFT1B", 512)
    rows = []
    for length in (2, 3, 4, 5):
        engine = build_pim_engine(
            bundle,
            nprobe=SIM_NPROBES[1],
            upanns=UpANNSConfig(cae_combo_length=length),
        )
        qps, _ = pim_qps(engine, bundle.queries)
        rows.append([length, engine.length_reduction_rate(), qps])
    return rows


def test_ablation_combo_length(run_once):
    rows = run_once(run_combo_length_ablation)
    text = render_table(
        ["combo length", "length reduction", "qps"],
        [[r[0], f"{r[1] * 100:.1f}%", r[2]] for r in rows],
        title="Ablation: co-occurrence combination length (paper default 3)",
        float_fmt="{:.1f}",
    )
    save_result("ablation_combo_length", text)
    # Longer runs shrink covered vectors more per hit but match less
    # often; with 4 correlated subspaces planted, length 3-4 should beat
    # length 2 on reduction rate.
    reductions = {r[0]: r[1] for r in rows}
    assert reductions[3] > 0.02
    assert max(reductions[3], reductions[4]) >= reductions[2] * 0.8
    # All lengths keep a working engine (results exactness is covered by
    # unit tests; here we check throughput stays in a sane band).
    qps = [r[2] for r in rows]
    assert max(qps) / min(qps) < 1.5


def test_ablation_replication_headroom(run_once):
    rows = run_once(run_headroom_ablation)
    text = render_table(
        ["headroom", "replicas/cluster", "max/avg cycles", "qps"],
        rows,
        title="Ablation: replication headroom (1.0 = paper's exact ncpy)",
        float_fmt="{:.2f}",
    )
    save_result("ablation_headroom", text)
    # More headroom -> more replicas and no worse balance.
    replicas = [r[1] for r in rows]
    assert replicas == sorted(replicas)
    assert rows[-1][2] <= rows[0][2] + 0.05


def test_ablation_scheduler_refinement(run_once):
    greedy, refined = run_once(run_refinement_ablation)
    text = (
        f"greedy Algorithm 2 max/avg: {greedy:.3f}\n"
        f"with local-search refinement: {refined:.3f}"
    )
    save_result("ablation_refinement", text)
    assert refined <= greedy + 1e-9


def test_ablation_optimization_stack(run_once):
    rows = run_once(run_stack_ablation)
    text = render_table(
        ["optimizations", "qps (896-DPU equiv)", "max/avg cycles"],
        rows,
        title="Ablation: cumulative optimization stack",
        float_fmt="{:.2f}",
    )
    save_result("ablation_stack", text)
    qps = [r[1] for r in rows]
    # Placement is the big win; CAE and pruning add on top.
    assert qps[1] > qps[0]
    assert qps[3] >= qps[1] * 0.95
    assert qps[3] > qps[0]
