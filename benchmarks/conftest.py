"""Benchmark-suite configuration.

Makes the repo root importable so `benchmarks.harness` resolves when
pytest is invoked from the repository root, and provides a `run_once`
helper that times a sweep exactly once under pytest-benchmark (the
sweeps are deterministic simulations — repeating them only wastes
wall-clock).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))


def pytest_addoption(parser):
    parser.addoption(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="dump each figure's composed batch schedule as Chrome-trace "
        "JSON into DIR (one <figure>.trace.json per save_result call)",
    )


def pytest_configure(config):
    trace_dir = config.getoption("--trace-dir")
    if trace_dir is not None:
        from benchmarks import harness

        harness.TRACE_DIR = Path(trace_dir)


@pytest.fixture
def run_once(benchmark):
    """Time ``fn`` once via pytest-benchmark and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
