"""Figure 18: QPS vs requested k (1..100) for UpANNS, Faiss-CPU and
Faiss-GPU.

Paper shape: UpANNS averages ~2.5x Faiss-CPU and ~1.6x Faiss-GPU;
Faiss-CPU's QPS is nearly flat in k (distance-bound); UpANNS and
Faiss-GPU degrade slightly as k grows (result-transfer and k-select
costs respectively).
"""

import numpy as np

from benchmarks.harness import (
    build_pim_engine,
    cpu_engine,
    get_bundle,
    gpu_engine,
    pim_qps,
    save_result,
)
from repro.analysis.report import render_series

KS = (1, 10, 50, 100)
NPROBE = 4


def run_k_sweep():
    bundle = get_bundle("SIFT1B", 256)
    cpu = cpu_engine(bundle)
    gpu = gpu_engine(bundle)
    up = build_pim_engine(bundle, nprobe=NPROBE, k=max(KS))
    cpu_qps, gpu_qps, up_qps = [], [], []
    for k in KS:
        cpu_qps.append(cpu.search_batch(bundle.queries, k, NPROBE, compute_results=False).qps)
        gpu_qps.append(gpu.search_batch(bundle.queries, k, NPROBE, compute_results=False).qps)
        q, _ = pim_qps(up, bundle.queries, k=k)
        up_qps.append(q)
    return list(KS), cpu_qps, gpu_qps, up_qps


def test_fig18_topk_size(run_once):
    ks, cpu_qps, gpu_qps, up_qps = run_once(run_k_sweep)
    text = render_series(
        "k",
        ks,
        {"Faiss-CPU": cpu_qps, "Faiss-GPU": gpu_qps, "UpANNS": up_qps},
        title="Figure 18: QPS vs top-k size (SIFT1B-like, IVF4096, nprobe=64)",
        float_fmt="{:.1f}",
    )
    save_result("fig18_topk_size", text)

    # UpANNS above the CPU at every k.
    assert all(u > c for u, c in zip(up_qps, cpu_qps))
    # CPU nearly flat in k (< 5 % swing).
    assert max(cpu_qps) / min(cpu_qps) < 1.05
    # GPU and UpANNS degrade as k grows — but only mildly.
    assert gpu_qps[-1] < gpu_qps[0]
    assert up_qps[-1] < up_qps[0]
    assert up_qps[-1] > up_qps[0] / 4
    # Average advantage in the paper's reported direction.
    assert np.mean([u / c for u, c in zip(up_qps, cpu_qps)]) > 1.5
