"""Figure 11: max/avg DPU workload ratio — PIM-naive vs UpANNS.

Paper claims: PIM-naive's ratio is significantly above 1, *especially
when IVF and nprobe are small*; UpANNS stays close to 1 everywhere.
"""

import numpy as np

from benchmarks.harness import save_result
from benchmarks.sweep_overall import run_sweep
from repro.analysis.report import render_table


def test_fig11_workload_balance(run_once):
    results = run_once(run_sweep)
    rows = [
        [r["dataset"], r["ivf"], r["nprobe"], r["naive_ratio"], r["upanns_ratio"]]
        for r in results
    ]
    text = render_table(
        ["dataset", "IVF", "nprobe", "naive max/avg", "UpANNS max/avg"],
        rows,
        title="Figure 11: DPU workload balance (max/avg busy cycles)",
        float_fmt="{:.2f}",
    )
    save_result("fig11_balance", text)

    naive = np.array([r["naive_ratio"] for r in results])
    upanns = np.array([r["upanns_ratio"] for r in results])
    # UpANNS close to 1 under all settings; naive significantly above.
    assert np.median(upanns) < 1.5
    assert upanns.max() < 2.5
    assert (naive >= upanns * 0.95).all()
    assert naive.mean() > 2.0
    # Naive imbalance worst at the smallest IVF x nprobe corner.
    small = [
        r["naive_ratio"]
        for r in results
        if r["ivf"] == 4096 and r["nprobe"] == 64
    ]
    large = [
        r["naive_ratio"]
        for r in results
        if r["ivf"] == 16384 and r["nprobe"] == 256
    ]
    assert np.mean(small) > np.mean(large)
