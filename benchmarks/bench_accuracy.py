"""Accuracy exhibit (paper §5.1): "The optimizations in UpANNS do not
impact the accuracy."

Not a numbered figure, but a claim every numbered figure rests on: the
four engines must return identical results, and recall against exact
ground truth must depend only on (nprobe, PQ geometry) — never on which
engine ran the search.
"""

import numpy as np

from benchmarks.harness import (
    build_pim_engine,
    cpu_engine,
    dataset_arrays,
    get_bundle,
    save_result,
)
from repro.analysis.report import render_series
from repro.data.groundtruth import compute_groundtruth
from repro.ivfpq import recall_at_k

NPROBES = (2, 4, 8, 16)
K = 10


def run_accuracy():
    bundle = get_bundle("SIFT1B", 256)
    ds, _, _ = dataset_arrays("SIFT1B")
    queries = bundle.queries[:150]
    _, gt = compute_groundtruth(ds.vectors, queries, K)

    cpu = cpu_engine(bundle)
    up = build_pim_engine(bundle, nprobe=max(NPROBES))
    naive = build_pim_engine(bundle, nprobe=max(NPROBES), naive=True)

    recalls = {"Faiss-CPU": [], "UpANNS": [], "PIM-naive": []}
    identical = True
    for nprobe in NPROBES:
        probes = bundle.index.ivf.search_clusters(queries, nprobe)
        r_cpu = cpu.search_batch(queries, K, nprobe)
        r_up = up.search_batch(queries, probes=[row for row in probes])
        r_naive = naive.search_batch(queries, probes=[row for row in probes])
        recalls["Faiss-CPU"].append(recall_at_k(r_cpu.ids, gt, K))
        recalls["UpANNS"].append(recall_at_k(r_up.ids, gt, K))
        recalls["PIM-naive"].append(recall_at_k(r_naive.ids, gt, K))

        def clean(d):
            return np.where(np.isfinite(d), d, -1.0)

        identical &= np.allclose(
            clean(r_up.distances), clean(r_cpu.distances), rtol=1e-4, atol=1e-3
        )
        identical &= np.allclose(
            clean(r_naive.distances), clean(r_cpu.distances), rtol=1e-4, atol=1e-3
        )
    return list(NPROBES), recalls, identical


def test_accuracy_preservation(run_once):
    nprobes, recalls, identical = run_once(run_accuracy)
    text = render_series(
        "nprobe",
        nprobes,
        recalls,
        title="Accuracy: recall@10 vs nprobe, per engine (must coincide)",
        float_fmt="{:.3f}",
    )
    text += f"\nall engines return identical distances: {identical}"
    save_result("accuracy_preservation", text)

    assert identical, "an engine's optimizations changed search results"
    # Recall is engine-independent...
    for a, b, c in zip(*recalls.values()):
        assert a == b == c
    # ...rising with nprobe up to small non-monotonicities (under PQ
    # distortion an extra probed cluster can inject an approximate-
    # distance imposter that displaces a true neighbor), and
    # non-trivial at the top end.
    up = recalls["UpANNS"]
    assert all(y >= x - 0.01 for x, y in zip(up, up[1:]))
    assert up[-1] >= up[0]
    assert up[-1] > 0.4
