"""Table 1: specifications of the evaluated hardware platforms."""

from benchmarks.harness import save_result
from repro.analysis.report import render_table
from repro.hardware.specs import TABLE1_ROWS


def run_table():
    return [
        [
            spec.name,
            f"{spec.price_usd:,.0f} USD",
            f"{spec.memory_gb:.0f} GB",
            f"{spec.peak_power_w:.0f} W",
            f"{spec.bandwidth_gb_per_s:.1f} GB/s",
        ]
        for spec in TABLE1_ROWS
    ]


def test_table1_hardware_specs(run_once):
    rows = run_once(run_table)
    text = render_table(
        ["hardware", "approx. price", "memory", "peak power", "bandwidth"],
        rows,
        title="Table 1: evaluated hardware architectures",
    )
    save_result("table1_hardware", text)

    # Paper's cross-platform facts: PIM is the cheapest per bandwidth
    # and sits between CPU and GPU in aggregate bandwidth.
    cpu, gpu, pim = TABLE1_ROWS
    assert cpu.bandwidth_bytes_per_s < pim.bandwidth_bytes_per_s < gpu.bandwidth_bytes_per_s
    assert pim.peak_power_w < cpu.peak_power_w < gpu.peak_power_w
    assert pim.price_usd < gpu.price_usd
