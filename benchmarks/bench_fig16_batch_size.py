"""Figure 16: per-query latency vs batch size (10 / 100 / 1000).

Paper shape (IVF4096, nprobe=64): UpANNS has the lowest latency at
every batch size, and its advantage over Faiss-CPU and PIM-naive grows
with the batch size — pre/post-processing overheads amortize and the
scheduler gets more pairs to balance.
"""

import numpy as np
import pytest

from benchmarks.harness import (
    build_pim_engine,
    cpu_engine,
    get_bundle,
    save_result,
)
from repro.analysis.report import render_table
from repro.data import make_queries, zipf_weights
from benchmarks.harness import N_COMPONENTS, PAPER_DPUS, SIM_DPUS, ZIPF_ALPHA, dataset_arrays

BATCH_SIZES = (10, 100, 1000)
NPROBE = 4  # paper nprobe=64 scaled


def run_batch_sweep():
    bundle = get_bundle("SIFT1B", 256)  # paper IVF4096 scaled
    ds, _, _ = dataset_arrays("SIFT1B")
    pop = zipf_weights(N_COMPONENTS, ZIPF_ALPHA)
    cpu = cpu_engine(bundle)
    up = build_pim_engine(bundle, nprobe=NPROBE, batch_size=max(BATCH_SIZES))
    naive = build_pim_engine(bundle, nprobe=NPROBE, naive=True, batch_size=max(BATCH_SIZES))
    rows = []
    for bs in BATCH_SIZES:
        queries = make_queries(ds, bs, popularity=pop, rng=np.random.default_rng(bs))
        lat_cpu = cpu.search_batch(queries, 10, NPROBE, compute_results=False).total_seconds / bs
        r_up = up.search_batch(queries)
        r_naive = naive.search_batch(queries)
        extrap = SIM_DPUS / PAPER_DPUS  # latency shrinks with more DPUs
        lat_up = r_up.timing.total_s / bs * extrap
        lat_naive = r_naive.timing.total_s / bs * extrap
        rows.append([bs, lat_cpu * 1e3, lat_naive * 1e3, lat_up * 1e3])
    return rows


def test_fig16_batch_size(run_once):
    rows = run_once(run_batch_sweep)
    text = render_table(
        ["batch size", "Faiss-CPU ms/q", "PIM-naive ms/q", "UpANNS ms/q"],
        rows,
        title="Figure 16: per-query latency vs batch size (IVF4096, nprobe=64)",
        float_fmt="{:.3f}",
    )
    save_result("fig16_batch_size", text)

    # UpANNS lowest latency once the batch is large enough to feed the
    # DPUs (>= 100; at BS=10 our scaled simulation's per-pair critical
    # path exceeds the CPU's — see EXPERIMENTS.md for the deviation
    # note).  The paper's headline trend — the speedup over both
    # baselines grows with batch size — must hold.
    for _bs, cpu_ms, naive_ms, up_ms in rows[1:]:
        assert up_ms < cpu_ms
        assert up_ms < naive_ms
    speedups_cpu = [r[1] / r[3] for r in rows]
    speedups_naive = [r[2] / r[3] for r in rows]
    assert speedups_cpu == sorted(speedups_cpu)
    assert speedups_naive[-1] > speedups_naive[0]


# --- Overlap modes ----------------------------------------------------------

N_STREAM_BATCHES = 8
STREAM_BS = 100


def run_overlap_sweep():
    """Serve a stream of batches under both overlap modes.

    Double buffering hides batch N+1's host prep + transfer-in behind
    batch N's DPU execution, so the streamed wall-clock drops relative
    to the strict-sequential accounting used everywhere else.
    """
    from repro.core.service import OnlineService
    from repro.sim import pipeline_wallclock

    bundle = get_bundle("SIFT1B", 256)
    ds, _, _ = dataset_arrays("SIFT1B")
    pop = zipf_weights(N_COMPONENTS, ZIPF_ALPHA)
    engine = build_pim_engine(bundle, nprobe=NPROBE, batch_size=STREAM_BS)
    service = OnlineService(engine)
    for b in range(N_STREAM_BATCHES):
        queries = make_queries(
            ds, STREAM_BS, popularity=pop, rng=np.random.default_rng(1000 + b)
        )
        service.submit(queries)
    seq = pipeline_wallclock(service.schedules, "sequential")
    db = pipeline_wallclock(service.schedules, "double_buffer")
    return seq, db


def run_event_overlap_sweep():
    """The same stream through both execution cores.

    The analytic path *composes* the recorded per-batch spans under the
    overlap policy; the event core re-executes the retained work DAGs in
    one discrete-event simulation where batch N+1's transfer-in queues
    behind batch N's genuine bus occupancy.  On a contention-free
    sequential stream the cores agree to float precision; under double
    buffering the overlap ratio is *measured from queuing* rather than
    derived from a composition formula.
    """
    from repro.core.service import OnlineService
    from repro.sim import execute_stream, pipeline_wallclock

    bundle = get_bundle("SIFT1B", 256)
    ds, _, _ = dataset_arrays("SIFT1B")
    pop = zipf_weights(N_COMPONENTS, ZIPF_ALPHA)
    engine = build_pim_engine(bundle, nprobe=NPROBE, batch_size=STREAM_BS)
    service = OnlineService(engine)
    for b in range(N_STREAM_BATCHES):
        queries = make_queries(
            ds, STREAM_BS, popularity=pop, rng=np.random.default_rng(1000 + b)
        )
        service.submit(queries)
    composed = {
        mode: pipeline_wallclock(service.schedules, mode)
        for mode in ("sequential", "double_buffer")
    }
    streams = {
        mode: execute_stream(service.works, overlap=mode)
        for mode in ("sequential", "double_buffer")
    }
    return service, composed, streams


def test_fig16_event_overlap(run_once):
    import json

    from benchmarks.harness import RESULTS_DIR
    from repro import telemetry
    from repro.telemetry.pipeline import TIMING_STAGES

    service, composed, streams = run_once(run_event_overlap_sweep)
    event = {mode: s.makespan for mode, s in streams.items()}
    rows = [
        [
            mode,
            composed[mode] * 1e3,
            event[mode] * 1e3,
            1.0 - event[mode] / event["sequential"],
        ]
        for mode in ("sequential", "double_buffer")
    ]
    text = render_table(
        ["overlap mode", "composed ms", "event-queued ms", "overlap ratio"],
        rows,
        title=(
            f"Figure 16 (ext): {N_STREAM_BATCHES} x {STREAM_BS}-query stream, "
            "analytic composition vs discrete-event queuing"
        ),
        float_fmt="{:.4f}",
    )
    save_result("fig16_event_overlap", text)

    # Sequential streams are contention-free, so the event run must
    # reproduce the composed accounting; double buffering must hide
    # nonzero transfer-in time under both cores.
    assert event["sequential"] == pytest.approx(
        composed["sequential"], rel=1e-9
    )
    assert event["double_buffer"] < event["sequential"]
    assert composed["double_buffer"] < composed["sequential"]

    stage_seconds: dict[str, float] = {}
    for sched in service.schedules:
        timing = sched.derive_batch_timing()
        for stage, attr in TIMING_STAGES:
            stage_seconds[stage] = stage_seconds.get(stage, 0.0) + getattr(
                timing, attr
            )
    record = telemetry.make_result_record(
        name="fig16_event_overlap",
        config={
            "n_batches": N_STREAM_BATCHES,
            "batch_size": STREAM_BS,
            "nprobe": NPROBE,
            "wallclock_s": {
                "composed": composed,
                "event": event,
            },
            "overlap_ratio": {
                "composed": 1.0 - composed["double_buffer"] / composed["sequential"],
                "event": 1.0 - event["double_buffer"] / event["sequential"],
            },
        },
        qps_values=[
            STREAM_BS / s.derive_batch_timing().total_s
            for s in service.schedules
        ],
        stage_seconds=stage_seconds,
        utilization=telemetry.utilization_report(
            streams["double_buffer"]
        ).to_json(),
        metrics=telemetry.snapshot(),
    )
    path = RESULTS_DIR / "fig16_event_overlap.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def test_fig16_overlap_double_buffer(run_once):
    seq, db = run_once(run_overlap_sweep)
    text = render_table(
        ["overlap mode", "wall-clock ms", "ms/query", "speedup"],
        [
            ["sequential", seq * 1e3, seq * 1e3 / (N_STREAM_BATCHES * STREAM_BS), 1.0],
            [
                "double_buffer",
                db * 1e3,
                db * 1e3 / (N_STREAM_BATCHES * STREAM_BS),
                seq / db,
            ],
        ],
        title=(
            f"Figure 16 (ext): {N_STREAM_BATCHES} x {STREAM_BS}-query stream, "
            "sequential vs double-buffered pipeline"
        ),
        float_fmt="{:.4f}",
    )
    save_result("fig16_overlap", text)
    assert db < seq  # transfer-in is nonzero, so there is time to hide
