"""Figure 16: per-query latency vs batch size (10 / 100 / 1000).

Paper shape (IVF4096, nprobe=64): UpANNS has the lowest latency at
every batch size, and its advantage over Faiss-CPU and PIM-naive grows
with the batch size — pre/post-processing overheads amortize and the
scheduler gets more pairs to balance.
"""

import numpy as np

from benchmarks.harness import (
    build_pim_engine,
    cpu_engine,
    get_bundle,
    save_result,
)
from repro.analysis.report import render_table
from repro.data import make_queries, zipf_weights
from benchmarks.harness import N_COMPONENTS, PAPER_DPUS, SIM_DPUS, ZIPF_ALPHA, dataset_arrays

BATCH_SIZES = (10, 100, 1000)
NPROBE = 4  # paper nprobe=64 scaled


def run_batch_sweep():
    bundle = get_bundle("SIFT1B", 256)  # paper IVF4096 scaled
    ds, _, _ = dataset_arrays("SIFT1B")
    pop = zipf_weights(N_COMPONENTS, ZIPF_ALPHA)
    cpu = cpu_engine(bundle)
    up = build_pim_engine(bundle, nprobe=NPROBE, batch_size=max(BATCH_SIZES))
    naive = build_pim_engine(bundle, nprobe=NPROBE, naive=True, batch_size=max(BATCH_SIZES))
    rows = []
    for bs in BATCH_SIZES:
        queries = make_queries(ds, bs, popularity=pop, rng=np.random.default_rng(bs))
        lat_cpu = cpu.search_batch(queries, 10, NPROBE, compute_results=False).total_seconds / bs
        r_up = up.search_batch(queries)
        r_naive = naive.search_batch(queries)
        extrap = SIM_DPUS / PAPER_DPUS  # latency shrinks with more DPUs
        lat_up = r_up.timing.total_s / bs * extrap
        lat_naive = r_naive.timing.total_s / bs * extrap
        rows.append([bs, lat_cpu * 1e3, lat_naive * 1e3, lat_up * 1e3])
    return rows


def test_fig16_batch_size(run_once):
    rows = run_once(run_batch_sweep)
    text = render_table(
        ["batch size", "Faiss-CPU ms/q", "PIM-naive ms/q", "UpANNS ms/q"],
        rows,
        title="Figure 16: per-query latency vs batch size (IVF4096, nprobe=64)",
        float_fmt="{:.3f}",
    )
    save_result("fig16_batch_size", text)

    # UpANNS lowest latency once the batch is large enough to feed the
    # DPUs (>= 100; at BS=10 our scaled simulation's per-pair critical
    # path exceeds the CPU's — see EXPERIMENTS.md for the deviation
    # note).  The paper's headline trend — the speedup over both
    # baselines grows with batch size — must hold.
    for _bs, cpu_ms, naive_ms, up_ms in rows[1:]:
        assert up_ms < cpu_ms
        assert up_ms < naive_ms
    speedups_cpu = [r[1] / r[3] for r in rows]
    speedups_naive = [r[2] / r[3] for r in rows]
    assert speedups_cpu == sorted(speedups_cpu)
    assert speedups_naive[-1] > speedups_naive[0]


# --- Overlap modes ----------------------------------------------------------

N_STREAM_BATCHES = 8
STREAM_BS = 100


def run_overlap_sweep():
    """Serve a stream of batches under both overlap modes.

    Double buffering hides batch N+1's host prep + transfer-in behind
    batch N's DPU execution, so the streamed wall-clock drops relative
    to the strict-sequential accounting used everywhere else.
    """
    from repro.core.service import OnlineService
    from repro.sim import pipeline_wallclock

    bundle = get_bundle("SIFT1B", 256)
    ds, _, _ = dataset_arrays("SIFT1B")
    pop = zipf_weights(N_COMPONENTS, ZIPF_ALPHA)
    engine = build_pim_engine(bundle, nprobe=NPROBE, batch_size=STREAM_BS)
    service = OnlineService(engine)
    for b in range(N_STREAM_BATCHES):
        queries = make_queries(
            ds, STREAM_BS, popularity=pop, rng=np.random.default_rng(1000 + b)
        )
        service.submit(queries)
    seq = pipeline_wallclock(service.schedules, "sequential")
    db = pipeline_wallclock(service.schedules, "double_buffer")
    return seq, db


def test_fig16_overlap_double_buffer(run_once):
    seq, db = run_once(run_overlap_sweep)
    text = render_table(
        ["overlap mode", "wall-clock ms", "ms/query", "speedup"],
        [
            ["sequential", seq * 1e3, seq * 1e3 / (N_STREAM_BATCHES * STREAM_BS), 1.0],
            [
                "double_buffer",
                db * 1e3,
                db * 1e3 / (N_STREAM_BATCHES * STREAM_BS),
                seq / db,
            ],
        ],
        title=(
            f"Figure 16 (ext): {N_STREAM_BATCHES} x {STREAM_BS}-query stream, "
            "sequential vs double-buffered pipeline"
        ),
        float_fmt="{:.4f}",
    )
    save_result("fig16_overlap", text)
    assert db < seq  # transfer-in is nonzero, so there is time to hide
