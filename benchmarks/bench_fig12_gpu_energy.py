"""Figure 12: UpANNS vs Faiss-GPU — QPS (a) and QPS/W (b), plus the
per-dollar comparison from section 5.2.

Shape targets: UpANNS QPS is comparable to the GPU's (same order);
UpANNS delivers ~2x the GPU's QPS/W in most settings (paper headline
2.3x); per-dollar QPS advantage up to ~9.3x; GPU runs out of memory on
DEEP1B-like settings (blue-X markers).
"""

import numpy as np

from benchmarks.harness import save_result
from benchmarks.sweep_overall import run_sweep
from repro.analysis.report import render_table
from repro.hardware.specs import A100_PCIE_80GB, UPMEM_7_DIMMS


def test_fig12_gpu_qps_and_energy(run_once):
    results = run_once(run_sweep)
    rows = []
    for r in results:
        if r["gpu_oom"]:
            rows.append(
                [r["dataset"], r["ivf"], r["nprobe"], "OOM (X)", r["upanns_qps"], "-", "-"]
            )
            continue
        qps_ratio = r["upanns_qps"] / r["gpu_qps"]
        watt_ratio = r["upanns_qps_per_w"] / r["gpu_qps_per_w"]
        dollar_ratio = (r["upanns_qps"] / UPMEM_7_DIMMS.price_usd) / (
            r["gpu_qps"] / A100_PCIE_80GB.price_usd
        )
        rows.append(
            [
                r["dataset"],
                r["ivf"],
                r["nprobe"],
                r["gpu_qps"],
                r["upanns_qps"],
                watt_ratio,
                dollar_ratio,
            ]
        )
    text = render_table(
        ["dataset", "IVF", "nprobe", "GPU qps", "UpANNS qps", "QPS/W ratio", "QPS/$ ratio"],
        rows,
        title="Figure 12: UpANNS vs Faiss-GPU (QPS, QPS/W, QPS/$)",
        float_fmt="{:.2f}",
    )
    save_result("fig12_gpu_energy", text)

    ok = [r for r in results if not r["gpu_oom"]]
    qps_ratios = np.array([r["upanns_qps"] / r["gpu_qps"] for r in ok])
    watt_ratios = np.array([r["upanns_qps_per_w"] / r["gpu_qps_per_w"] for r in ok])
    # 'Comparable QPS': within the same order of magnitude everywhere.
    assert qps_ratios.min() > 0.2 and qps_ratios.max() < 5.0
    # Better energy efficiency in most cases (~2x on average).
    assert np.median(watt_ratios) > 1.0
    assert watt_ratios.max() > 1.5
    # Per-dollar QPS strongly favors PIM (paper: up to 9.3x).
    dollar = [
        (r["upanns_qps"] / UPMEM_7_DIMMS.price_usd)
        / (r["gpu_qps"] / A100_PCIE_80GB.price_usd)
        for r in ok
    ]
    assert max(dollar) > 3.0
