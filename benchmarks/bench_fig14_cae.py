"""Figure 14: speedup from Co-occurrence Aware Encoding (CAE) vs the
achieved vector-length reduction rate.

Paper shape: performance improvement correlates positively with the
length-reduction rate; LUT-construction time rises slightly (partial
sums must be built); distance-calculation time falls, more so at higher
reduction rates.
"""

import numpy as np

from benchmarks.harness import (
    N_COMPONENTS,
    SIM_DPUS,
    ZIPF_ALPHA,
    build_pim_engine,
    save_result,
    timing_scale,
)
from benchmarks.harness import Bundle, N_TRAIN, TRAIN_ITERS
from repro.analysis.report import render_table
from repro.config import UpANNSConfig
from repro.data import make_dataset, make_queries, zipf_weights
from repro.data.synthetic import SIFT1B
from repro.ivfpq import IVFPQIndex

CORRELATION_LEVELS = (0, 2, 5, 8)  # correlated subspaces planted
N = 40_000
CLUSTERS = 256


def make_cae_bundle(correlated: int) -> Bundle:
    ds = make_dataset(
        SIFT1B,
        N,
        n_components=N_COMPONENTS,
        size_sigma=1.0,
        correlated_subspaces=correlated,
        rng=np.random.default_rng(100 + correlated),
    )
    pop = zipf_weights(N_COMPONENTS, ZIPF_ALPHA)
    history = make_queries(ds, 2000, popularity=pop, rng=np.random.default_rng(5))
    queries = make_queries(ds, 300, popularity=pop, rng=np.random.default_rng(6))
    index = IVFPQIndex(SIFT1B.dim, CLUSTERS, SIFT1B.pq_m)
    index.train(ds.vectors[:N_TRAIN], n_iter=TRAIN_ITERS, rng=np.random.default_rng(0))
    index.add(ds.vectors)
    return Bundle(
        name=f"corr{correlated}",
        spec=SIFT1B,
        vectors=ds.vectors,
        queries=queries,
        history=history,
        index=index,
        sim_clusters=CLUSTERS,
        paper_clusters=CLUSTERS * 16,
        scale=timing_scale(SIFT1B.full_scale, N, CLUSTERS, CLUSTERS * 16),
    )


def run_cae_sweep():
    rows = []
    for corr in CORRELATION_LEVELS:
        bundle = make_cae_bundle(corr)
        with_cae = build_pim_engine(bundle, nprobe=8, upanns=UpANNSConfig(enable_cae=True))
        without = build_pim_engine(bundle, nprobe=8, upanns=UpANNSConfig(enable_cae=False))
        r_with = with_cae.search_batch(bundle.queries)
        r_without = without.search_batch(bundle.queries)
        rows.append(
            {
                "reduction": with_cae.length_reduction_rate(),
                "speedup": r_with.qps / r_without.qps,
                "lut_with": r_with.stage_seconds.lut_construction,
                "lut_without": r_without.stage_seconds.lut_construction,
                "dist_with": r_with.stage_seconds.distance_calc,
                "dist_without": r_without.stage_seconds.distance_calc,
            }
        )
    return rows


def test_fig14_cae_improvement(run_once):
    rows = run_once(run_cae_sweep)
    table = [
        [
            f"{r['reduction'] * 100:.1f}%",
            r["speedup"],
            r["lut_with"] / max(r["lut_without"], 1e-12),
            r["dist_with"] / max(r["dist_without"], 1e-12),
        ]
        for r in rows
    ]
    text = render_table(
        ["length reduction", "QPS speedup", "LUT time ratio", "distance time ratio"],
        table,
        title="Figure 14: CAE speedup vs length-reduction rate",
        float_fmt="{:.3f}",
    )
    save_result("fig14_cae", text)

    reductions = [r["reduction"] for r in rows]
    speedups = [r["speedup"] for r in rows]
    # More planted correlation -> higher reduction rates.
    assert reductions[-1] > reductions[0]
    assert max(reductions) > 0.10
    # Speedup correlates positively with reduction (paper's key claim).
    corr = np.corrcoef(reductions, speedups)[0, 1]
    assert corr > 0.8
    # The highest-reduction setting is a real win.
    assert speedups[-1] > 1.05
    # LUT construction gets slightly slower (partial-sum work), distance
    # calculation gets faster, at the high-reduction end.
    best = rows[-1]
    assert best["lut_with"] >= best["lut_without"] * 0.999
    assert best["dist_with"] < best["dist_without"]
