"""Baseline systems the paper compares against: Faiss-CPU-like,
Faiss-GPU-like (A100 model) and PIM-naive."""

from repro.baselines.cpu import BaselineBatchResult, CpuEngine
from repro.baselines.gpu import GpuEngine
from repro.baselines.pim_naive import PIM_NAIVE_CONFIG, make_pim_naive

__all__ = [
    "BaselineBatchResult",
    "CpuEngine",
    "GpuEngine",
    "PIM_NAIVE_CONFIG",
    "make_pim_naive",
]
