"""Faiss-CPU-like baseline: functional IVFPQ + Xeon cost model.

Functional results come from the shared reference
:class:`~repro.ivfpq.index.IVFPQIndex` (bit-exact with every other
engine).  Timing follows the paper's measured structure (Figures 1, 19):

* cluster filtering and LUT construction are compute-bound (FLOP model);
* distance calculation is memory-bound — the paper counts 250M random
  accesses per query at 1B scale, saturating the 85.3 GB/s DDR4 bus; we
  charge the scanned code bytes at a random-access-discounted bandwidth;
* top-k is negligible on the CPU (it rides along the distance scan).

This reproduces the Figure 1 bottleneck shift: at small scale the fixed
per-probe LUT work dominates; as lists grow, the distance stage takes
over (99.5 % of time at 1B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NotTrainedError
from repro.hardware.counters import StageCycles
from repro.hardware.specs import CpuSpec, XEON_4110_PAIR
from repro.ivfpq.index import IVFPQIndex, SearchResult


@dataclass
class BaselineBatchResult:
    """Functional result + modeled timing for a baseline engine."""

    ids: np.ndarray
    distances: np.ndarray
    stage_seconds: StageCycles
    total_seconds: float

    @property
    def qps(self) -> float:
        n = self.ids.shape[0]
        return n / self.total_seconds if self.total_seconds > 0 else float("inf")


@dataclass
class CpuEngine:
    """CPU IVFPQ engine with an analytic Xeon timing model."""

    index: IVFPQIndex
    spec: CpuSpec = field(default_factory=lambda: XEON_4110_PAIR)
    workload_scale: float = 1.0
    flop_efficiency: float = 0.35
    # Fraction of peak DRAM bandwidth achieved by the ADC scan's mixed
    # streaming(codes)/random(LUT) access pattern.
    scan_bandwidth_efficiency: float = 0.42
    # Streaming efficiency degrades further as inverted lists shrink
    # below the LLC-friendly size (shorter sequential runs, more TLB and
    # prefetch misses) — this is why the paper's CPU "does not exhibit a
    # linear increase in QPS with increasing IVF" (section 5.2).
    locality_floor: float = 0.70
    locality_knee_bytes: float = 4 * 1024 * 1024
    # Cost of maintaining the running top-k per scanned point.  On the
    # CPU the compare rides the memory-bound scan almost for free, which
    # is why the paper measures distance calculation at 99.5 % of
    # runtime with top-k negligible (Figure 19).
    topk_ns_per_point: float = 0.002

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int,
        *,
        compute_results: bool = True,
    ) -> BaselineBatchResult:
        """Search a batch; ``compute_results=False`` models timing only.

        Timing depends only on probe statistics, so QPS-only benches can
        skip the functional search (identical numbers, much faster).
        """
        if not self.index.is_trained:
            raise NotTrainedError("index must be trained")
        queries = np.atleast_2d(queries)
        nq = queries.shape[0]
        if compute_results:
            result: SearchResult = self.index.search(queries, k, nprobe)
            ids, distances = result.ids, result.distances
        else:
            ids = np.full((nq, k), -1, dtype=np.int64)
            distances = np.full((nq, k), np.inf, dtype=np.float32)

        stage = self._stage_model(queries, k, nprobe)
        return BaselineBatchResult(
            ids=ids,
            distances=distances,
            stage_seconds=stage,
            total_seconds=stage.total,
        )

    def _stage_model(self, queries: np.ndarray, k: int, nprobe: int) -> StageCycles:
        nq = queries.shape[0]
        dim = self.index.dim
        m = self.index.m
        ksub = self.index.pq.ksub
        dsub = self.index.pq.dsub
        n_clusters = self.index.n_clusters
        flops = self.spec.flops * self.flop_efficiency

        # (a) cluster filtering: nq x |C| GEMM.
        filter_s = 2.0 * nq * n_clusters * dim / flops

        # (b) LUT construction: one (m x ksub x dsub) table per probe.
        lut_s = 2.0 * nq * nprobe * m * ksub * dsub / flops

        # (c) distance calculation: memory-bound over scanned codes.
        scanned = float(self.index.scanned_points(queries, nprobe).sum())
        scanned *= self.workload_scale
        scan_bytes = scanned * m  # one byte per sub-code
        avg_cluster_bytes = (
            self.index.ntotal * self.workload_scale / max(n_clusters, 1) * m
        )
        locality = self.locality_floor + (1.0 - self.locality_floor) * min(
            1.0, avg_cluster_bytes / self.locality_knee_bytes
        )
        # When the whole compressed index fits the last-level cache (the
        # million-scale regime of Figure 1), the scan runs at cache
        # bandwidth (~an order of magnitude above DRAM) and the LUT
        # stage becomes the bottleneck — the paper's scale-shift claim.
        index_bytes = self.index.ntotal * self.workload_scale * m
        cache_fraction = min(1.0, self.spec.cache_bytes / max(index_bytes, 1.0))
        cache_boost = 1.0 + 9.0 * cache_fraction
        bw = (
            self.spec.bandwidth_bytes_per_s
            * self.scan_bandwidth_efficiency
            * locality
            * cache_boost
        )
        dist_s = scan_bytes / bw

        # (d) top-k: rides the scan; tiny per-point constant.
        topk_s = scanned * self.topk_ns_per_point * 1e-9

        return StageCycles(
            cluster_filter=filter_s,
            lut_construction=lut_s,
            distance_calc=dist_s,
            topk_selection=topk_s,
        )

    def memory_required_bytes(self) -> float:
        """Resident index size (codes + ids) at the modeled scale."""
        n_eff = self.index.ntotal * self.workload_scale
        return n_eff * (self.index.m + 8)
