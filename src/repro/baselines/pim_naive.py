"""PIM-naive baseline (paper section 5.1).

"PIM-naive is the naive implementation of IVFPQ on PIM with our PIM
resource management strategy" — i.e. it keeps Opt2 (thread scheduling,
WRAM reuse) but drops Opt1 (random, non-replicated placement; forced
scheduling), Opt3 (plain PQ codes) and Opt4 (un-pruned top-k merge).
It also ships non-uniform host<->DPU buffers, paying the serialized
transfer penalty UpANNS avoids by padding.

Implemented as a configuration of the shared
:class:`~repro.core.engine.UpANNSEngine`, so the two systems differ by
exactly the optimizations under study and nothing else.
"""

from __future__ import annotations

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.hardware.specs import DEFAULT_N_TASKLETS, PimSystemSpec, UPMEM_7_DIMMS

PIM_NAIVE_CONFIG = UpANNSConfig(
    enable_placement=False,
    enable_cae=False,
    enable_topk_pruning=False,
)


def make_pim_naive(
    dim: int,
    *,
    n_clusters: int,
    m: int,
    nprobe: int,
    k: int = 10,
    pim_spec: PimSystemSpec | None = None,
    batch_size: int = 1000,
    train_iters: int = 8,
    timing_scale: float = 1.0,
    n_tasklets: int = DEFAULT_N_TASKLETS,
    mram_read_vectors: int = 16,
) -> UpANNSEngine:
    """Construct the PIM-naive engine with the given geometry."""
    upanns = UpANNSConfig(
        enable_placement=False,
        enable_cae=False,
        enable_topk_pruning=False,
        n_tasklets=n_tasklets,
        mram_read_vectors=mram_read_vectors,
    )
    cfg = SystemConfig(
        index=IndexConfig(dim=dim, n_clusters=n_clusters, m=m, train_iters=train_iters),
        query=QueryConfig(nprobe=nprobe, k=k, batch_size=batch_size),
        upanns=upanns,
        pim=pim_spec if pim_spec is not None else UPMEM_7_DIMMS,
        timing_scale=timing_scale,
    )
    return UpANNSEngine(cfg)
