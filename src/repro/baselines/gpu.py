"""Faiss-GPU-like baseline: functional IVFPQ + A100 cost model.

The paper's profiling (Nsight, Figures 1 and 19) shows the A100 is *not*
bandwidth-bound on IVFPQ: distance calculation is fast behind 1.9 TB/s
HBM, but the low-parallelism top-k stage — CUDA stream synchronization
and k-selection — consumes 64-89 % of runtime and grows with k.  The
model therefore charges:

* filtering/LUT as GEMM FLOPs (negligible),
* the scan at a high fraction of HBM bandwidth,
* top-k as per-(query-tile, probe) k-select kernel launches plus
  synchronization, scaling with k — the dominant term.

The A100's 80 GB capacity is also modeled: an index whose working set
does not fit raises :class:`~repro.errors.DeviceOutOfMemoryError`,
reproducing the paper's blue-X DEEP1B markers in Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math

import numpy as np

from repro.errors import DeviceOutOfMemoryError, NotTrainedError
from repro.baselines.cpu import BaselineBatchResult
from repro.hardware.counters import StageCycles
from repro.hardware.specs import A100_PCIE_80GB, GpuSpec
from repro.ivfpq.index import IVFPQIndex, SearchResult


@dataclass
class GpuEngine:
    """GPU IVFPQ engine with an analytic A100 timing + capacity model."""

    index: IVFPQIndex
    spec: GpuSpec = field(default_factory=lambda: A100_PCIE_80GB)
    workload_scale: float = 1.0
    flop_efficiency: float = 0.5
    scan_bandwidth_efficiency: float = 0.65
    # k-select: the paper's Nsight profiling shows GPU runtime dominated
    # (64-89 %) by low-parallelism k-selection + CUDA stream sync, not
    # bandwidth.  We charge a per-candidate selection cost that grows
    # mildly with k (Figure 18/19 trends) plus a per-tile sync term.
    query_tile: int = 256
    select_ns_per_candidate: float = 0.09
    select_k_coefficient: float = 0.02
    sync_us_per_tile: float = 45.0
    # Bytes per stored vector beyond PQ codes (ids + interleaved layout
    # padding); raw-vector re-ranking storage can be added per dataset
    # (DEEP1B-style float corpora need re-ranking to recover recall).
    id_bytes: int = 8
    rerank_bytes_per_vector: int = 0
    # Transient per-candidate selection state resident during the scan
    # (distance + index in the k-select working buffers, amortized over
    # the candidate stream).
    temp_bytes_per_candidate: float = 2.0
    # The capacity model can be evaluated at a different (usually full,
    # unscaled-dataset) size than the timing model: memory is about what
    # must be resident, not what a query touches.  None = workload_scale.
    memory_scale: float | None = None

    def required_bytes(self, nprobe: int) -> float:
        """Modeled device working set at the effective (scaled) size."""
        scale = self.memory_scale if self.memory_scale is not None else self.workload_scale
        n_eff = self.index.ntotal * scale
        static = n_eff * (self.index.m + self.id_bytes + self.rerank_bytes_per_vector)
        avg_cluster = n_eff / max(self.index.n_clusters, 1)
        temp = (
            self.query_tile
            * nprobe
            * avg_cluster
            * self.temp_bytes_per_candidate
        )
        return static + temp

    def check_memory(self, nprobe: int) -> None:
        need = self.required_bytes(nprobe)
        if need > self.spec.memory_bytes:
            raise DeviceOutOfMemoryError(
                f"GPU needs {need / 1e9:.1f} GB (index + k-select temporaries "
                f"at nprobe={nprobe}) but has {self.spec.memory_bytes / 1e9:.0f} GB"
            )

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int,
        *,
        compute_results: bool = True,
    ) -> BaselineBatchResult:
        """Search a batch; ``compute_results=False`` models timing only."""
        if not self.index.is_trained:
            raise NotTrainedError("index must be trained")
        self.check_memory(nprobe)
        queries = np.atleast_2d(queries)
        nq = queries.shape[0]
        if compute_results:
            result: SearchResult = self.index.search(queries, k, nprobe)
            ids, distances = result.ids, result.distances
        else:
            ids = np.full((nq, k), -1, dtype=np.int64)
            distances = np.full((nq, k), np.inf, dtype=np.float32)
        stage = self._stage_model(queries, k, nprobe)
        return BaselineBatchResult(
            ids=ids,
            distances=distances,
            stage_seconds=stage,
            total_seconds=stage.total,
        )

    def _stage_model(self, queries: np.ndarray, k: int, nprobe: int) -> StageCycles:
        nq = queries.shape[0]
        dim = self.index.dim
        m = self.index.m
        ksub = self.index.pq.ksub
        dsub = self.index.pq.dsub
        flops = self.spec.flops * self.flop_efficiency

        filter_s = 2.0 * nq * self.index.n_clusters * dim / flops
        lut_s = 2.0 * nq * nprobe * m * ksub * dsub / flops

        scanned = float(self.index.scanned_points(queries, nprobe).sum())
        scanned *= self.workload_scale
        bw = self.spec.bandwidth_bytes_per_s * self.scan_bandwidth_efficiency
        dist_s = scanned * m / bw

        # Top-k: per-candidate k-selection at low parallelism (grows
        # mildly with k) plus per-tile launch + stream synchronization.
        n_tiles = math.ceil(nq / self.query_tile)
        select_s = (
            scanned
            * self.select_ns_per_candidate
            * (1.0 + self.select_k_coefficient * k)
            * 1e-9
        )
        sync_s = (
            n_tiles
            * (self.sync_us_per_tile + nprobe * self.spec.kernel_launch_us / 64.0)
            * 1e-6
        )
        topk_s = select_s + sync_s

        return StageCycles(
            cluster_filter=filter_s,
            lut_construction=lut_s,
            distance_calc=dist_s,
            topk_selection=topk_s,
        )
