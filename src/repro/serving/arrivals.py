"""Open-loop arrival generation: seeded Poisson/burst schedules per tenant.

Arrivals are generated up front on the simulated clock — an open-loop
workload offers requests at its own rate regardless of how the service
keeps up, which is what makes overload observable at all (a closed loop
self-throttles).  Everything is deterministic under the seed: tenant
``i`` draws from ``np.random.default_rng([seed, i])``, so adding a
tenant never perturbs another tenant's arrival sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.serving.request import Request
from repro.tracing.context import format_trace_id
from repro.workload.batch import BatchGenerator


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's traffic contract.

    ``rate_qps`` is the mean offered rate.  A bursty tenant modulates
    it with a square wave: for the first ``burst_duty`` fraction of
    every ``burst_period_s`` the instantaneous rate is ``burst_factor``
    times the base rate (``burst_factor=1`` is plain Poisson).
    ``slo_ms`` is the per-request deadline from arrival (None = no SLO).
    """

    name: str
    rate_qps: float
    slo_ms: float | None = None
    burst_factor: float = 1.0
    burst_period_s: float = 1.0
    burst_duty: float = 0.5
    #: Popularity skew of this tenant's query mix (``repro.workload``).
    zipf_alpha: float = 1.0
    drift_per_batch: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant needs a name")
        if not math.isfinite(self.rate_qps) or self.rate_qps <= 0.0:
            raise ConfigError(
                f"tenant {self.name!r}: rate_qps must be finite and > 0, "
                f"got {self.rate_qps!r}"
            )
        if self.slo_ms is not None and (
            not math.isfinite(self.slo_ms) or self.slo_ms <= 0.0
        ):
            raise ConfigError(
                f"tenant {self.name!r}: slo_ms must be finite and > 0, "
                f"got {self.slo_ms!r}"
            )
        if not math.isfinite(self.burst_factor) or self.burst_factor < 1.0:
            raise ConfigError(
                f"tenant {self.name!r}: burst_factor must be >= 1, "
                f"got {self.burst_factor!r}"
            )
        if not math.isfinite(self.burst_period_s) or self.burst_period_s <= 0.0:
            raise ConfigError(
                f"tenant {self.name!r}: burst_period_s must be > 0"
            )
        if not 0.0 < self.burst_duty < 1.0:
            raise ConfigError(
                f"tenant {self.name!r}: burst_duty must be in (0, 1), "
                f"got {self.burst_duty!r}"
            )

    def scaled(self, load: float) -> "TenantConfig":
        """This tenant at ``load`` times its base rate (sweep helper)."""
        if not math.isfinite(load) or load <= 0.0:
            raise ConfigError(f"load multiplier must be > 0, got {load!r}")
        return TenantConfig(
            name=self.name,
            rate_qps=self.rate_qps * load,
            slo_ms=self.slo_ms,
            burst_factor=self.burst_factor,
            burst_period_s=self.burst_period_s,
            burst_duty=self.burst_duty,
            zipf_alpha=self.zipf_alpha,
            drift_per_batch=self.drift_per_batch,
        )

    def rate_at(self, t: float) -> float:
        """Instantaneous offered rate at simulated time ``t``.

        Normalized so the *mean* over a period equals ``rate_qps``:
        the burst window runs hotter, the trough correspondingly cooler.
        """
        if self.burst_factor == 1.0:
            return self.rate_qps
        d, f = self.burst_duty, self.burst_factor
        phase = (t / self.burst_period_s) % 1.0
        if phase < d:
            return self.rate_qps * f
        # Trough rate balances the burst so the period mean stays at
        # rate_qps: d*f + (1-d)*trough == 1 (clamped when d*f > 1).
        return self.rate_qps * max((1.0 - d * f) / (1.0 - d), 0.0)


@dataclass
class ArrivalGenerator:
    """Deterministic merged arrival stream for a set of tenants."""

    tenants: tuple[TenantConfig, ...]
    seed: int = 0
    horizon_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigError("need at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ConfigError(f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise ConfigError(f"seed must be >= 0, got {self.seed}")
        if not math.isfinite(self.horizon_s) or self.horizon_s <= 0.0:
            raise ConfigError(f"horizon_s must be > 0, got {self.horizon_s!r}")
        self.tenants = tuple(self.tenants)

    def _tenant_arrival_times(self, index: int) -> np.ndarray:
        """Arrival instants for tenant ``index`` within the horizon.

        Non-homogeneous Poisson via per-event thinning against the
        tenant's peak rate: exponential gaps at the peak, keep each
        candidate with probability ``rate_at(t) / peak``.  Exact and
        deterministic under the seed.
        """
        tenant = self.tenants[index]
        rng = np.random.default_rng([self.seed, index])
        # rate_at is maximal inside the burst window, and t=0 is in it.
        peak = max(tenant.rate_at(0.0), tenant.rate_qps)
        times = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / peak))
            if t >= self.horizon_s:
                break
            if float(rng.random()) * peak <= tenant.rate_at(t):
                times.append(t)
        return np.asarray(times, dtype=np.float64)

    def generate(
        self, generators: dict[str, BatchGenerator]
    ) -> list[Request]:
        """All requests of all tenants, sorted by arrival time.

        ``generators`` maps tenant name to the :class:`BatchGenerator`
        supplying its query mix (Zipf + drift).  Trace ids are assigned
        in arrival order — the same order a single service loop would
        assign them — which is what makes the closed-loop degenerate
        mode reproduce ``OnlineService.submit`` ids exactly.
        """
        missing = [t.name for t in self.tenants if t.name not in generators]
        if missing:
            raise ConfigError(f"no query generator for tenants {missing}")
        per_tenant: list[tuple[int, np.ndarray]] = []
        for i, tenant in enumerate(self.tenants):
            per_tenant.append((i, self._tenant_arrival_times(i)))
        merged: list[tuple[float, int, int]] = []
        for i, times in per_tenant:
            for j, t in enumerate(times):
                merged.append((float(t), i, j))
        # Sort by (time, tenant index, per-tenant ordinal): a total
        # deterministic order even on (measure-zero) ties.
        merged.sort()
        queries: dict[int, np.ndarray] = {
            i: generators[self.tenants[i].name].next_queries(len(times))
            if len(times)
            else np.empty((0, 1), dtype=np.float32)
            for i, times in per_tenant
        }
        requests = []
        for n, (t, i, j) in enumerate(merged):
            tenant = self.tenants[i]
            deadline = (
                t + tenant.slo_ms / 1e3 if tenant.slo_ms is not None else math.inf
            )
            requests.append(
                Request(
                    trace_id=format_trace_id(n),
                    tenant=tenant.name,
                    query=queries[i][j],
                    arrival_s=t,
                    deadline_s=deadline,
                )
            )
        return requests
