"""The serving frontend: a deterministic event loop over arrivals.

:class:`ServingFrontend` drives one run: arrivals flow through
admission into the coalescer; batches close on size or deadline *and*
only when the pipeline is predicted free (the frontend paces
submissions, so under overload the queues — not the pipeline — absorb
the backlog and waiting requests can visibly time out).  Each closed
batch is submitted to the :class:`~repro.core.service.OnlineService`
with the frontend's own trace ids and an optionally degraded
``n_probe``; shed and timed-out requests are charged one tiny
``host_cpu`` span each, appended to the next submitted batch (or to a
trailing request-plane batch when the run ends without one), so every
offered request owns a span in the combined schedule.

The whole loop runs on the simulated clock — no wall-clock, no
unseeded RNG (simlint DET001 scope).  With a single tenant, no
deadline and ``shedding=False`` the frontend degenerates to a plain
closed-loop ``OnlineService.submit`` driver and reproduces its results
bit-for-bit (golden-pinned by the serving tests).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.service import OnlineService, ServiceReport
from repro.errors import ConfigError
from repro.sanitize.hook import debug_sanitize_schedule
from repro.serving.admission import ADMIT, AdmissionPolicy, TokenBucket
from repro.serving.arrivals import TenantConfig
from repro.serving.coalescer import BatchCoalescer
from repro.serving.request import (
    STATUS_COMPLETED,
    STATUS_SHED,
    STATUS_TIMED_OUT,
    Request,
)
from repro.sim import (
    HOST_CPU,
    STAGE_CANCEL,
    STAGE_SHED,
    BatchSchedule,
    BatchWork,
    EventEngine,
    execute_stream,
)
from repro.telemetry.pipeline import observe_lane_stats
from repro.telemetry.registry import get_registry
from repro.tracing.context import TraceContext

logger = logging.getLogger(__name__)

#: Modeled host cost of bookkeeping one shed/timed-out request
#: (the admission controller's rejection path is not free).
SHED_CHARGE_S = 2e-6


@dataclass
class FrontendResult:
    """Everything one frontend run produced."""

    requests: list[Request]
    #: The combined stream schedule (event core, arrival-time release).
    schedule: BatchSchedule
    #: Event engine retained for its per-lane queue telemetry.
    engine: EventEngine
    #: Per-batch service reports, in submission order.
    reports: list[ServiceReport]
    #: Simulated time the last arrival was offered.
    horizon_s: float

    def by_status(self, status: str) -> list[Request]:
        return [r for r in self.requests if r.status == status]

    def ledger(self) -> dict[str, dict]:
        """Offered/admitted/shed/timed-out counts, total and per tenant.

        Conservation holds exactly by construction:
        ``offered == admitted + shed + timed_out`` (``admitted`` means
        *executed*; the three buckets are disjoint terminal states).
        """
        tenants: dict[str, dict] = {}
        for req in self.requests:
            row = tenants.setdefault(
                req.tenant,
                {
                    "offered": 0,
                    "admitted": 0,
                    "shed": 0,
                    "timed_out": 0,
                    "shed_by_reason": {},
                },
            )
            row["offered"] += 1
            if req.status == STATUS_COMPLETED:
                row["admitted"] += 1
            elif req.status == STATUS_TIMED_OUT:
                row["timed_out"] += 1
            elif req.status == STATUS_SHED:
                row["shed"] += 1
                reasons = row["shed_by_reason"]
                reasons[req.shed_reason] = reasons.get(req.shed_reason, 0) + 1
            else:  # pragma: no cover - the run loop leaves no one queued
                raise ConfigError(
                    f"request {req.trace_id} ended non-terminal: {req.status}"
                )
        totals = {"offered": 0, "admitted": 0, "shed": 0, "timed_out": 0}
        for row in tenants.values():
            for key in totals:
                totals[key] += row[key]
        return {"totals": totals, "tenants": tenants}

    def latencies_ms(self, tenant: str | None = None) -> np.ndarray:
        """Completed-request latencies in milliseconds (sorted)."""
        vals = [
            req.latency_s * 1e3
            for req in self.requests
            if req.status == STATUS_COMPLETED
            and req.latency_s is not None
            and (tenant is None or req.tenant == tenant)
        ]
        return np.sort(np.asarray(vals, dtype=np.float64))

    def goodput_qps(self, tenant: str | None = None) -> float:
        """Completed-within-SLO requests per simulated second."""
        good = 0
        for req in self.requests:
            if req.status != STATUS_COMPLETED or req.latency_s is None:
                continue
            if tenant is not None and req.tenant != tenant:
                continue
            if req.arrival_s + req.latency_s <= req.deadline_s:
                good += 1
        span = max(self.horizon_s, self.schedule.makespan)
        return good / span if span > 0 else 0.0

    def coverage_floor(self) -> float:
        """Worst per-batch coverage across every executed batch."""
        floors = [
            rep.coverage_floor for rep in self.reports
        ]
        return min(floors) if floors else 1.0


@dataclass
class ServingFrontend:
    """One run of the multi-tenant serving loop."""

    service: OnlineService
    tenants: tuple[TenantConfig, ...]
    policy: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    max_batch: int = 32
    max_delay_s: float = 0.002
    #: EWMA weight for the batch-duration predictor.
    ewma_alpha: float = 0.3

    # Run state (rebuilt by :meth:`run`).
    works: list[BatchWork] = field(init=False, default_factory=list)
    releases: list[float] = field(init=False, default_factory=list)
    reports: list[ServiceReport] = field(init=False, default_factory=list)
    _coalescer: BatchCoalescer = field(init=False)
    _buckets: dict[str, TokenBucket | None] = field(init=False)
    _pending: list[tuple[str, Request, float]] = field(init=False, default_factory=list)
    _busy_until_s: float = field(init=False, default=0.0)
    _est_batch_s: float | None = field(init=False, default=None)
    _last_intake_s: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigError("frontend needs at least one tenant")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha!r}")
        self.tenants = tuple(self.tenants)
        names = tuple(t.name for t in self.tenants)
        self._coalescer = BatchCoalescer(
            tenant_names=names,
            max_batch=self.max_batch,
            max_delay_s=self.max_delay_s,
        )
        self._buckets = {name: self.policy.bucket_for() for name in names}

    # --- The event loop ------------------------------------------------

    def run(self, requests: list[Request], *, k: int | None = None) -> FrontendResult:
        """Drive all ``requests`` (sorted by arrival) to terminal states."""
        for a, b in zip(requests, requests[1:]):
            if b.arrival_s < a.arrival_s:
                raise ConfigError("requests must be sorted by arrival time")
        i, n = 0, len(requests)
        while i < n or self._coalescer.total_depth > 0:
            t_arr = requests[i].arrival_s if i < n else math.inf
            if self._coalescer.total_depth > 0:
                # A full batch became closable no later than the last
                # processed arrival; otherwise wait for the oldest
                # request's coalescing deadline.  Either way the
                # pipeline must be (predicted) free.
                if self._coalescer.size_ready:
                    trigger = self._last_intake_s
                else:
                    trigger = self._coalescer.earliest_due_s()
                close_t = max(trigger, self._busy_until_s)
            else:
                close_t = math.inf
            if t_arr <= close_t:
                self._intake(requests[i])
                i += 1
            else:
                self._close_batch(close_t, k=k)
        self._flush_pending()
        schedule, engine = self._stream_schedule()
        self._finalize_latencies(requests, schedule)
        horizon = requests[-1].arrival_s if requests else 0.0
        result = FrontendResult(
            requests=list(requests),
            schedule=schedule,
            engine=engine,
            reports=list(self.reports),
            horizon_s=horizon,
        )
        self._export_metrics(result)
        return result

    def _intake(self, req: Request) -> None:
        """Admission decision for one arrival, on the simulated clock."""
        t = req.arrival_s
        self._last_intake_s = t
        predicted_done = None
        if self._est_batch_s is not None:
            waves = 1 + self._coalescer.total_depth // self.max_batch
            predicted_done = (
                max(self._busy_until_s, t) + waves * self._est_batch_s
            )
        verdict = self.policy.decide(
            now_s=t,
            queue_depth=self._coalescer.depth(req.tenant),
            deadline_s=req.deadline_s,
            predicted_done_s=predicted_done,
            bucket=self._buckets[req.tenant],
        )
        if verdict == ADMIT:
            req.admitted_s = t
            self._coalescer.enqueue(req)
        else:
            req.finish(STATUS_SHED, reason=verdict)
            self._pending.append((STAGE_SHED, req, t))

    def _close_batch(self, close_t: float, *, k: int | None) -> None:
        """Expire, drain, maybe degrade, and submit one batch."""
        if self.policy.shedding:
            for req in self._coalescer.expire(close_t):
                req.finish(STATUS_TIMED_OUT)
                self._pending.append((STAGE_CANCEL, req, close_t))
        batch = self._coalescer.drain()
        if not batch:
            return
        configured = self.service.engine.config.query.nprobe
        oldest = min(r.arrival_s for r in batch)
        budgets = [r.deadline_s - r.arrival_s for r in batch]
        eff_nprobe = self.policy.degraded_nprobe(
            configured,
            predicted_wait_s=close_t - oldest,
            tightest_budget_s=min(budgets),
        )
        ctx = TraceContext(
            trace_ids=tuple(r.trace_id for r in batch),
            batch=len(self.service.works),
        )
        queries = np.stack([r.query for r in batch]).astype(np.float32)
        report = self.service.submit(queries, k=k, trace=ctx, nprobe=eff_nprobe)
        work = self.service.works[-1]
        b = len(self.works)
        charge_s = self._charge_pending(work, b)
        self.works.append(work)
        self.releases.append(close_t)
        self.reports.append(report)
        total_s = report.result.timing.total_s + charge_s
        self._est_batch_s = (
            total_s
            if self._est_batch_s is None
            else self.ewma_alpha * total_s
            + (1.0 - self.ewma_alpha) * self._est_batch_s
        )
        self._busy_until_s = max(close_t, self._busy_until_s) + total_s
        for req in batch:
            req.finish(STATUS_COMPLETED)
            req.batch = b
            req.nprobe = eff_nprobe
            req.coverage = report.coverage_floor
        if eff_nprobe < configured:
            logger.info(
                "batch %d degraded: n_probe %d -> %d (queue wait %.3f ms)",
                b,
                configured,
                eff_nprobe,
                (close_t - oldest) * 1e3,
            )

    def _charge_pending(self, work: BatchWork, batch: int) -> float:
        """Append pending shed/cancel spans to ``work``; total charge."""
        charge = 0.0
        for stage, req, _t in self._pending:
            work.work(HOST_CPU, stage, SHED_CHARGE_S, trace_ids=(req.trace_id,))
            req.batch = batch
            charge += SHED_CHARGE_S
        self._pending.clear()
        return charge

    def _flush_pending(self) -> None:
        """Trailing request-plane batch for charges with no batch left."""
        if not self._pending:
            return
        work = BatchWork(
            dpu_frequency_hz=self.service.engine.config.pim.dpu.frequency_hz,
            batch=len(self.works),
        )
        release = max(
            [t for _s, _r, t in self._pending]
            + ([self.releases[-1]] if self.releases else [0.0])
        )
        self._charge_pending(work, len(self.works))
        self.works.append(work)
        self.releases.append(release)

    # --- Post-run accounting -------------------------------------------

    def _stream_schedule(self) -> tuple[BatchSchedule, EventEngine]:
        """Execute the retained stream through the event core.

        Always the event engine — queue-wait must emerge from genuine
        lane contention, and arrival-time release is an event-core
        concept (the analytic composer has no notion of idle gaps).
        """
        engine = EventEngine()
        combined = execute_stream(
            self.works,
            overlap=self.service.overlap,
            kills=self.service._stream_kills(),
            engine=engine,
            releases=self.releases,
        )
        self.service.last_event_engine = engine
        observe_lane_stats(engine.lane_stats, schedule=combined)
        debug_sanitize_schedule(combined, label="serving stream run")
        return combined, engine

    def _finalize_latencies(
        self, requests: list[Request], schedule: BatchSchedule
    ) -> None:
        """Per-request end-to-end latency from the combined stream.

        A request's completion is the end of the last span carrying its
        trace id (the batch-wide aggregate for executed requests, the
        shed/cancel span for rejected ones); latency is measured from
        arrival, so queue wait — real lane contention plus release
        gaps — is inside it.
        """
        ends: dict[str, float] = {}
        for tl in schedule.timelines.values():
            for span in tl.spans:
                if span.trace is None:
                    continue
                for tid in span.trace.trace_ids:
                    prev = ends.get(tid)
                    if prev is None or span.t1 > prev:
                        ends[tid] = span.t1
        for req in requests:
            end = ends.get(req.trace_id)
            if end is None:
                raise ConfigError(
                    f"request {req.trace_id} owns no span in the stream"
                )
            req.latency_s = max(0.0, end - req.arrival_s)

    def _export_metrics(self, result: FrontendResult) -> None:
        reg = get_registry()
        ledger = result.ledger()
        offered = reg.counter(
            "repro_serving_offered_total",
            "requests offered to the frontend",
            labelnames=("tenant",),
        )
        admitted = reg.counter(
            "repro_serving_admitted_total",
            "requests admitted and executed",
            labelnames=("tenant",),
        )
        shed = reg.counter(
            "repro_serving_shed_total",
            "requests shed at intake",
            labelnames=("tenant", "reason"),
        )
        timed_out = reg.counter(
            "repro_serving_timed_out_total",
            "queued requests cancelled past their deadline",
            labelnames=("tenant",),
        )
        for name, row in ledger["tenants"].items():
            offered.labels(tenant=name).inc(row["offered"])
            admitted.labels(tenant=name).inc(row["admitted"])
            timed_out.labels(tenant=name).inc(row["timed_out"])
            for reason, count in row["shed_by_reason"].items():
                shed.labels(tenant=name, reason=reason).inc(count)
        reg.counter(
            "repro_serving_batches_total", "batches the frontend submitted"
        ).inc(len(self.reports))
        reg.gauge(
            "repro_serving_goodput_qps",
            "completed-within-SLO requests per simulated second",
        ).set(result.goodput_qps())
