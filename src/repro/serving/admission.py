"""SLO-aware admission control: token buckets, backpressure, degrade.

Admission runs at intake, on the simulated clock, before a request may
join its tenant queue.  Three gates, in order of cheapness: a bounded
queue (``queue_full``), a per-tenant token bucket (``rate_limit``), and
a predicted-wait check against the request's deadline
(``predicted_wait``).  Separately from shedding, the policy decides
when an overloaded batch should *degrade* — shrink ``n_probe`` and
sacrifice coverage instead of latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.serving.request import (
    SHED_PREDICTED_WAIT,
    SHED_QUEUE_FULL,
    SHED_RATE_LIMIT,
)

#: Admission verdicts that are not shed reasons.
ADMIT = "admit"


@dataclass
class TokenBucket:
    """Deterministic token bucket on the simulated clock."""

    rate_qps: float
    burst: float
    _tokens: float = field(init=False)
    _last_s: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if not math.isfinite(self.rate_qps) or self.rate_qps <= 0.0:
            raise ConfigError(
                f"token bucket rate_qps must be finite and > 0, got {self.rate_qps!r}"
            )
        if not math.isfinite(self.burst) or self.burst < 1.0:
            raise ConfigError(
                f"token bucket burst must be >= 1 (one whole request), "
                f"got {self.burst!r}"
            )
        self._tokens = self.burst

    def try_take(self, now_s: float) -> bool:
        """Refill to ``now_s`` and take one token if available."""
        if now_s < self._last_s:
            raise ConfigError(
                f"token bucket time went backwards: {now_s} < {self._last_s}"
            )
        self._tokens = min(
            self.burst, self._tokens + (now_s - self._last_s) * self.rate_qps
        )
        self._last_s = now_s
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for intake shedding and overload degradation.

    ``shedding=False`` turns every gate off (the no-shedding baseline:
    unbounded queues, no rate limits, no timeouts, no degrade) — used
    both for the divergence baseline under overload and for the
    closed-loop degenerate mode that must reproduce plain
    ``OnlineService.submit`` behavior bit-for-bit.
    """

    shedding: bool = True
    #: Per-tenant queue bound; arrivals beyond it shed ``queue_full``.
    max_queue_depth: int = 64
    #: Per-tenant token refill rate; None disables the bucket.
    rate_limit_qps: float | None = None
    #: Bucket capacity in whole requests.
    rate_limit_burst: float = 8.0
    #: Shed ``predicted_wait`` when the predicted completion overshoots
    #: the request's deadline by more than this factor of its SLO
    #: budget (1.0 = shed exactly at predicted miss).
    predicted_wait_slack: float = 1.0
    #: Degrade (shrink n_probe) when the predicted queue wait exceeds
    #: this fraction of the tightest drained deadline budget.
    degrade_wait_frac: float = 0.5
    #: Coverage floor degrade may not cross: the effective n_probe
    #: never drops below ``ceil(min_coverage * configured)``.
    min_coverage: float = 0.5

    def __post_init__(self) -> None:
        if isinstance(self.max_queue_depth, bool) or not isinstance(
            self.max_queue_depth, int
        ):
            raise ConfigError(
                f"max_queue_depth must be an integer, got {self.max_queue_depth!r}"
            )
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.rate_limit_qps is not None and (
            not math.isfinite(self.rate_limit_qps) or self.rate_limit_qps <= 0.0
        ):
            raise ConfigError(
                f"rate_limit_qps must be finite and > 0, got {self.rate_limit_qps!r}"
            )
        if not math.isfinite(self.rate_limit_burst) or self.rate_limit_burst < 1.0:
            raise ConfigError(
                f"rate_limit_burst must be >= 1, got {self.rate_limit_burst!r}"
            )
        if not math.isfinite(self.predicted_wait_slack) or (
            self.predicted_wait_slack <= 0.0
        ):
            raise ConfigError(
                f"predicted_wait_slack must be > 0, got {self.predicted_wait_slack!r}"
            )
        if not 0.0 <= self.degrade_wait_frac <= 1.0:
            raise ConfigError(
                f"degrade_wait_frac must be in [0, 1], got {self.degrade_wait_frac!r}"
            )
        if not 0.0 < self.min_coverage <= 1.0:
            raise ConfigError(
                f"min_coverage must be in (0, 1], got {self.min_coverage!r}"
            )

    def bucket_for(self) -> TokenBucket | None:
        """A fresh per-tenant token bucket (None when unlimited)."""
        if not self.shedding or self.rate_limit_qps is None:
            return None
        return TokenBucket(rate_qps=self.rate_limit_qps, burst=self.rate_limit_burst)

    def decide(
        self,
        *,
        now_s: float,
        queue_depth: int,
        deadline_s: float,
        predicted_done_s: float | None,
        bucket: TokenBucket | None,
    ) -> str:
        """Admission verdict for one arrival: :data:`ADMIT` or a shed reason.

        ``predicted_done_s`` is the frontend's completion estimate for a
        request admitted now (None before any batch has been observed —
        a cold predictor never sheds on prediction alone).
        """
        if not self.shedding:
            return ADMIT
        if queue_depth >= self.max_queue_depth:
            return SHED_QUEUE_FULL
        if bucket is not None and not bucket.try_take(now_s):
            return SHED_RATE_LIMIT
        if (
            predicted_done_s is not None
            and math.isfinite(deadline_s)
            and predicted_done_s
            > now_s + (deadline_s - now_s) * self.predicted_wait_slack
        ):
            return SHED_PREDICTED_WAIT
        return ADMIT

    def degraded_nprobe(
        self,
        configured: int,
        *,
        predicted_wait_s: float,
        tightest_budget_s: float,
    ) -> int:
        """Effective ``n_probe`` for a batch closing under load.

        Returns ``configured`` when the predicted queue wait is within
        bounds; otherwise shrinks to half the configured probing, but
        never below the :attr:`min_coverage` floor.
        """
        if not self.shedding or not math.isfinite(tightest_budget_s):
            return configured
        if predicted_wait_s <= self.degrade_wait_frac * tightest_budget_s:
            return configured
        floor = max(1, math.ceil(self.min_coverage * configured))
        return max(floor, configured // 2)
