"""Adaptive batch coalescing with tenant-fair draining.

Admitted requests wait in per-tenant FIFO queues; a batch closes when
either enough requests are waiting (size trigger) or the oldest one has
waited its maximum delay (deadline trigger).  Draining interleaves
tenants round-robin from a rotating offset, so a heavy tenant cannot
starve a light one out of batch slots — each close takes at most its
fair share plus whatever slots other tenants left unused.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.serving.request import Request


@dataclass
class BatchCoalescer:
    """Per-tenant queues + the close-on-size-or-deadline policy."""

    tenant_names: tuple[str, ...]
    max_batch: int = 32
    max_delay_s: float = 0.002
    _queues: dict[str, deque[Request]] = field(init=False)
    _rr_offset: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not self.tenant_names:
            raise ConfigError("coalescer needs at least one tenant")
        if isinstance(self.max_batch, bool) or not isinstance(self.max_batch, int):
            raise ConfigError(f"max_batch must be an integer, got {self.max_batch!r}")
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if not math.isfinite(self.max_delay_s) or self.max_delay_s < 0.0:
            raise ConfigError(
                f"max_delay_s must be finite and >= 0, got {self.max_delay_s!r}"
            )
        self.tenant_names = tuple(self.tenant_names)
        self._queues = {name: deque() for name in self.tenant_names}

    def enqueue(self, request: Request) -> None:
        queue = self._queues.get(request.tenant)
        if queue is None:
            raise ConfigError(f"unknown tenant {request.tenant!r}")
        queue.append(request)

    def depth(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        if queue is None:
            raise ConfigError(f"unknown tenant {tenant!r}")
        return len(queue)

    @property
    def total_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def size_ready(self) -> bool:
        """Enough waiting to close a full batch immediately."""
        return self.total_depth >= self.max_batch

    def earliest_due_s(self) -> float:
        """When the oldest queued request hits its maximum delay."""
        heads = [q[0].arrival_s for q in self._queues.values() if q]
        if not heads:
            return math.inf
        return min(heads) + self.max_delay_s

    def expire(self, now_s: float) -> list[Request]:
        """Pop every queued request whose deadline has passed ``now_s``."""
        expired = []
        for queue in self._queues.values():
            kept: deque[Request] = deque()
            while queue:
                req = queue.popleft()
                (expired if req.deadline_s <= now_s else kept).append(req)
            queue.extend(kept)
        expired.sort(key=lambda r: (r.arrival_s, r.trace_id))
        return expired

    def drain(self) -> list[Request]:
        """Close one batch: up to ``max_batch`` requests, tenant-fair.

        Round-robin one request per tenant per lap, starting from a
        rotating offset so the same tenant does not always get the
        first (and under contention, the last guaranteed) slot.
        """
        names = self.tenant_names
        batch: list[Request] = []
        start = self._rr_offset
        self._rr_offset = (self._rr_offset + 1) % len(names)
        while len(batch) < self.max_batch:
            took = False
            for lane in range(len(names)):
                if len(batch) >= self.max_batch:
                    break
                queue = self._queues[names[(start + lane) % len(names)]]
                if queue:
                    batch.append(queue.popleft())
                    took = True
            if not took:
                break
        return batch
