"""Run summaries: percentiles, ledgers, record assembly, rendering.

Turns one :class:`~repro.serving.frontend.FrontendResult` into the
``totals``/``tenants`` sections of a ``repro.serve/v1`` record (the
``curve`` section is assembled by the CLI across a load sweep), and
renders records for human eyes.
"""

from __future__ import annotations

import numpy as np

from repro.serving.frontend import FrontendResult


def percentile_ms(latencies_ms: np.ndarray, q: float) -> float:
    """The ``q``-th percentile of sorted millisecond latencies (0 if empty)."""
    if latencies_ms.size == 0:
        return 0.0
    return float(np.percentile(latencies_ms, q))


def _summary_row(result: FrontendResult, tenant: str | None) -> dict:
    lat = result.latencies_ms(tenant)
    return {
        "goodput_qps": result.goodput_qps(tenant),
        "p50_ms": percentile_ms(lat, 50),
        "p95_ms": percentile_ms(lat, 95),
        "p99_ms": percentile_ms(lat, 99),
    }


def serve_record_kwargs(result: FrontendResult) -> dict:
    """The ``totals`` and ``tenants`` sections for ``make_serve_record``."""
    ledger = result.ledger()
    totals = dict(ledger["totals"])
    totals.update(_summary_row(result, None))
    totals["coverage_floor"] = result.coverage_floor()
    totals["batches"] = len(result.reports)
    tenants = []
    for name in sorted(ledger["tenants"]):
        row = {"tenant": name}
        row.update(ledger["tenants"][name])
        row.update(_summary_row(result, name))
        tenants.append(row)
    return {"totals": totals, "tenants": tenants}


def render_serve_report(record: dict) -> str:
    """Human-readable view of a ``repro.serve/v1`` record."""
    totals = record["totals"]
    lines = [
        f"serve run: {record['name']}",
        (
            f"  offered {totals['offered']}  admitted {totals['admitted']}  "
            f"shed {totals['shed']}  timed-out {totals['timed_out']}  "
            f"batches {totals['batches']}"
        ),
        (
            f"  goodput {totals['goodput_qps']:.1f} qps  "
            f"p50 {totals['p50_ms']:.3f} ms  p95 {totals['p95_ms']:.3f} ms  "
            f"p99 {totals['p99_ms']:.3f} ms  "
            f"coverage floor {totals['coverage_floor']:.3f}"
        ),
    ]
    for row in record["tenants"]:
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(row["shed_by_reason"].items())
        )
        lines.append(
            f"  tenant {row['tenant']}: offered {row['offered']} "
            f"admitted {row['admitted']} shed {row['shed']}"
            + (f" ({reasons})" if reasons else "")
            + f" timed-out {row['timed_out']}  p99 {row['p99_ms']:.3f} ms"
        )
    if record["curve"]:
        lines.append("  goodput vs offered load:")
        for point in record["curve"]:
            mode = "shed" if point["shedding"] else "base"
            lines.append(
                f"    {mode} x{point['offered_load']:.2f}: "
                f"offered {point['offered_qps']:.1f} qps -> "
                f"goodput {point['goodput_qps']:.1f} qps, "
                f"p99 {point['p99_ms']:.3f} ms, shed {point['shed']}, "
                f"timed-out {point['timed_out']}, "
                f"coverage floor {point['coverage_floor']:.3f}"
            )
    return "\n".join(lines)
