"""The request: unit of work the serving frontend tracks end to end.

Every offered request — admitted, shed at intake, or timed out in
queue — owns at least one span in the run's combined schedule, so the
tracing stack (``repro.tracing``) can explain what happened to any
request id: executed requests own their batch's pipeline spans, shed
requests own one :data:`~repro.sim.schedule.STAGE_SHED` span and timed
out requests one :data:`~repro.sim.schedule.STAGE_CANCEL` span on the
``host_cpu`` lane (the admission bookkeeping is real host work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

#: Request lifecycle states.  ``queued`` is the only transient state;
#: a finished run contains none of them.
STATUS_QUEUED = "queued"
STATUS_COMPLETED = "completed"
STATUS_SHED = "shed"
STATUS_TIMED_OUT = "timed_out"

#: Why admission control turned a request away at intake.
SHED_QUEUE_FULL = "queue_full"
SHED_RATE_LIMIT = "rate_limit"
SHED_PREDICTED_WAIT = "predicted_wait"
SHED_REASONS = (SHED_QUEUE_FULL, SHED_RATE_LIMIT, SHED_PREDICTED_WAIT)

#: Annotations ``explain_query`` attaches to overload-response spans.
SHED_ANNOTATION = (
    "request shed at intake: admission control rejected it before queuing"
)
TIMEOUT_ANNOTATION = (
    "request timed out in queue: its deadline expired before execution"
)


@dataclass
class Request:
    """One query request flowing through the serving frontend."""

    trace_id: str
    tenant: str
    #: The query vector, shape ``(dim,)`` float32.
    query: np.ndarray
    #: Arrival on the simulated clock (open-loop: independent of service).
    arrival_s: float
    #: Absolute completion deadline; ``inf`` means no SLO.
    deadline_s: float = math.inf
    status: str = STATUS_QUEUED
    #: Set when ``status == STATUS_SHED``.
    shed_reason: str | None = None
    #: Time the request was admitted to its tenant queue (== arrival).
    admitted_s: float | None = None
    #: Stream batch index the request executed in (or carried its
    #: shed/cancel span in), once known.
    batch: int | None = None
    #: End-to-end modeled latency, filled from the combined stream run.
    latency_s: float | None = None
    #: Effective n_probe the request's batch ran with (degrade response).
    nprobe: int | None = None
    #: Worst per-query coverage of the request's batch (1.0 = full).
    coverage: float = 1.0
    _finalized: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not self.trace_id:
            raise ConfigError("request needs a trace id")
        if not math.isfinite(self.arrival_s) or self.arrival_s < 0.0:
            raise ConfigError(f"bad arrival time {self.arrival_s!r}")
        if math.isnan(self.deadline_s) or self.deadline_s < self.arrival_s:
            raise ConfigError(
                f"deadline {self.deadline_s!r} precedes arrival {self.arrival_s!r}"
            )

    def finish(self, status: str, *, reason: str | None = None) -> None:
        """Move to a terminal state exactly once."""
        if self._finalized:
            raise ConfigError(f"request {self.trace_id} finalized twice")
        if status == STATUS_SHED and reason not in SHED_REASONS:
            raise ConfigError(f"unknown shed reason {reason!r}")
        self.status = status
        self.shed_reason = reason
        self._finalized = True
