"""Multi-tenant serving frontend: arrivals, admission, coalescing, shedding.

An event-driven request layer on top of
:class:`~repro.core.service.OnlineService`.  Open-loop arrivals (seeded
Poisson/burst schedules per tenant, on the simulated clock) flow through
SLO-aware admission control into per-tenant bounded queues; an adaptive
coalescer closes batches on size or deadline with tenant-fair draining;
overload is answered by rejecting at intake, shrinking ``n_probe``
through the engine's degraded-coverage path, or timing out queued
requests with a charged cancellation.  Execution rides
:func:`~repro.sim.events.execute_stream` in event mode with arrival-time
work release, so queue-wait emerges from genuine lane contention.

Everything here is deterministic under a seed (simlint DET001 scope):
no wall-clock, no unseeded RNG.
"""

from repro.serving.admission import AdmissionPolicy, TokenBucket
from repro.serving.arrivals import ArrivalGenerator, TenantConfig
from repro.serving.coalescer import BatchCoalescer
from repro.serving.frontend import FrontendResult, ServingFrontend
from repro.serving.report import render_serve_report, serve_record_kwargs
from repro.serving.request import (
    SHED_ANNOTATION,
    SHED_PREDICTED_WAIT,
    SHED_QUEUE_FULL,
    SHED_RATE_LIMIT,
    SHED_REASONS,
    STATUS_COMPLETED,
    STATUS_QUEUED,
    STATUS_SHED,
    STATUS_TIMED_OUT,
    TIMEOUT_ANNOTATION,
    Request,
)

__all__ = [
    "AdmissionPolicy",
    "ArrivalGenerator",
    "BatchCoalescer",
    "FrontendResult",
    "Request",
    "SHED_ANNOTATION",
    "SHED_PREDICTED_WAIT",
    "SHED_QUEUE_FULL",
    "SHED_RATE_LIMIT",
    "SHED_REASONS",
    "STATUS_COMPLETED",
    "STATUS_QUEUED",
    "STATUS_SHED",
    "STATUS_TIMED_OUT",
    "ServingFrontend",
    "TIMEOUT_ANNOTATION",
    "TenantConfig",
    "TokenBucket",
    "render_serve_report",
    "serve_record_kwargs",
]
