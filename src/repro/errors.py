"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch simulator/algorithm failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """An invalid or inconsistent configuration was supplied.

    Also a :class:`ValueError`: construction-time validation (fault
    plans, admission policies, tenant configs) raises this, and callers
    holding only stdlib vocabulary can still catch it as the bad-value
    error it is.
    """


class InvalidQueryError(ReproError, ValueError):
    """A query array failed intake validation.

    Raised by :meth:`OnlineService.submit <repro.core.service.OnlineService.submit>`
    and the serving frontend for empty batches, dimension mismatches and
    non-finite vectors — instead of a deep numpy traceback from inside
    the pipeline.  Also a :class:`ValueError` for stdlib-only callers.
    """


class WramOverflowError(ReproError):
    """A WRAM allocation request exceeds the DPU's 64 KB scratchpad."""


class MramOverflowError(ReproError):
    """Data loaded onto a DPU exceeds its 64 MB MRAM capacity."""


class DmaAlignmentError(ReproError):
    """An MRAM DMA transfer violates UPMEM's size/alignment rules.

    Transfers must be 8-byte aligned, at least 8 bytes and at most
    2048 bytes (UPMEM SDK constraint, paper section 4.2.1).
    """


class PlacementError(ReproError):
    """Cluster placement could not satisfy capacity/balance constraints."""


class SchedulingError(ReproError):
    """A query references a cluster with no replica on any DPU."""


class DeviceOutOfMemoryError(ReproError):
    """A baseline device (e.g. the modeled GPU) cannot hold the index.

    Mirrors the GPU out-of-memory failure the paper reports for DEEP1B
    on the 80 GB A100 (blue 'X' markers in Figure 12).
    """


class NotTrainedError(ReproError):
    """An index/engine operation requires training that has not happened."""


class ExecutorError(ReproError):
    """The parallel executor backend failed (``repro.parallel``).

    Raised when a worker process dies mid-task (the pool is broken) or
    a task cannot be shipped; the engine tears the pool down so the next
    batch rebuilds it.  Never raised by the serial backend.
    """


class FaultError(ReproError):
    """Base class for injected-fault conditions (``repro.faults``).

    Raised only when graceful degradation is impossible or disabled;
    the fault plane's default posture is to re-route, retry, or degrade
    with a coverage flag rather than raise.
    """


class DpuFailedError(FaultError):
    """A DPU (or a whole rank/DIMM of DPUs) is permanently dead.

    Also the escalation of a transient transfer fault that exhausted
    its retry budget.
    """


class TransferFaultError(FaultError):
    """A host<->MRAM transfer failed and could not be retried."""


class CoverageError(FaultError):
    """A batch's coverage fell below a caller-required floor.

    Degraded batches normally complete with a per-query ``coverage``
    fraction; callers that cannot tolerate partial results raise this.
    """
