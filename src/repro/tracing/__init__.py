"""Per-query causal tracing: trace contexts, trace records, explainers.

The simulator's spans say *where* time went; this package says *whose*
time it was.  A :class:`TraceContext` assigns every query in a batch a
stable trace id at service intake; the engines thread those ids through
their :class:`~repro.sim.events.WorkItem` DAGs so both execution cores
emit spans carrying :class:`~repro.sim.span.SpanTrace` metadata
(trace ids, causal parents, and a queue-wait vs. service-time split).

Downstream:

* :func:`make_trace_record` / :func:`validate_trace_record` export a
  schedule's traced spans as a schema-versioned ``repro.trace/v1``
  record (validated like ``repro.bench.result/v1``);
* :func:`explain_query` walks a query's span DAG backward along the
  critical path and returns ranked wait/compute/transfer/retry
  contributions, including fault-retry and mid-flight-kill annotations;
* ``repro.cli trace --trace-out/--query`` and ``repro.cli explain``
  expose both on the command line.

Nothing here feeds a timing ledger: trace metadata rides alongside the
spans, and golden timings stay bit-identical with tracing enabled.
"""

from repro.tracing.context import TraceContext, format_trace_id
from repro.tracing.explain import (
    Contribution,
    QueryExplanation,
    explain_query,
    render_explanation,
    worst_query,
)
from repro.tracing.record import (
    TRACE_SCHEMA,
    make_trace_record,
    query_latencies,
    query_spans,
    span_id,
    validate_trace_record,
)

__all__ = [
    "Contribution",
    "QueryExplanation",
    "TRACE_SCHEMA",
    "TraceContext",
    "explain_query",
    "format_trace_id",
    "make_trace_record",
    "query_latencies",
    "query_spans",
    "render_explanation",
    "span_id",
    "validate_trace_record",
    "worst_query",
]
