"""Schema-versioned per-query trace records (``repro.trace/v1``).

A trace record is the exported form of a traced
:class:`~repro.sim.schedule.BatchSchedule`: one row per span carrying
:class:`~repro.sim.span.SpanTrace` metadata, plus one row per query
deriving its end-to-end window from the spans that served it.  Like
``repro.bench.result/v1``, the maker validates what it builds and the
validator is runnable from CI (``python -m repro.telemetry.schema``
dispatches on the embedded ``schema`` tag).

Span ids are ``b<batch>.<uid>`` — the work-item uid scoped by stream
position, which is unique both for per-batch analytic schedules (uid
spaces restart per batch, batches differ) and for stream-merged event
schedules (uids are globally unique, batches annotate).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigError
from repro.sim.schedule import BatchSchedule

TRACE_SCHEMA = "repro.trace/v1"

#: Required keys of one span row in a trace record.
SPAN_FIELDS = ("span", "uid", "batch", "resource", "stage", "t0", "duration_s", "wait_s")
#: Required keys of one query row in a trace record.
QUERY_FIELDS = ("trace_id", "batch", "t0", "t1", "latency_s", "n_spans")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def span_id(batch: int, uid: int) -> str:
    """Canonical span id: the work-item uid scoped by stream position."""
    return f"b{batch}.{uid}"


def _resolve_parent(
    batch: int, parent_uid: int, by_key: dict[tuple[int, int], Any]
) -> str | None:
    """Span id of a parent uid, preferring the same batch.

    Stream-merged DAGs gate a batch's roots on the previous batch's last
    bus item, so a parent uid may live in an earlier batch; cancelled
    items (mid-flight kills) may have produced no span at all, in which
    case the reference is dropped rather than fabricated.
    """
    if (batch, parent_uid) in by_key:
        return span_id(batch, parent_uid)
    earlier = [b for (b, u) in by_key if u == parent_uid and b < batch]
    if earlier:
        return span_id(max(earlier), parent_uid)
    return None


def make_trace_record(
    *,
    name: str,
    config: dict[str, Any],
    schedule: BatchSchedule,
) -> dict[str, Any]:
    """Assemble and validate one trace record from a traced schedule."""
    by_key: dict[tuple[int, int], Any] = {}
    traced = []
    for tl in schedule.timelines.values():
        for span in tl.spans:
            if span.trace is not None:
                traced.append(span)
                by_key[(span.trace.batch, span.trace.uid)] = span
    if not traced:
        raise ConfigError(
            "schedule carries no trace metadata; run the batches through "
            "an engine with tracing (any search_batch call) first"
        )

    span_rows: list[dict[str, Any]] = []
    queries: dict[str, dict[str, Any]] = {}
    for span in sorted(traced, key=lambda s: (s.trace.batch, s.trace.uid)):
        tr = span.trace
        parents = []
        for p in tr.parents:
            ref = _resolve_parent(tr.batch, p, by_key)
            if ref is not None:
                parents.append(ref)
        row: dict[str, Any] = {
            "span": span_id(tr.batch, tr.uid),
            "uid": tr.uid,
            "batch": tr.batch,
            "resource": span.resource,
            "stage": span.stage,
            "t0": span.t0,
            "duration_s": span.duration,
            "wait_s": tr.wait_s,
            "parents": parents,
            "trace_ids": list(tr.trace_ids),
        }
        if span.cycles is not None:
            row["cycles"] = span.cycles
        if tr.killed:
            row["killed"] = True
        span_rows.append(row)
        for qid in tr.trace_ids:
            q = queries.get(qid)
            ready = span.t0 - tr.wait_s
            if q is None:
                queries[qid] = {
                    "trace_id": qid,
                    "batch": tr.batch,
                    "t0": ready,
                    "t1": span.t1,
                    "n_spans": 1,
                    "killed": tr.killed,
                }
            else:
                q["t0"] = min(q["t0"], ready)
                q["t1"] = max(q["t1"], span.t1)
                q["n_spans"] += 1
                q["killed"] = q["killed"] or tr.killed
    query_rows = []
    for qid in sorted(queries):
        q = queries[qid]
        q["latency_s"] = q["t1"] - q["t0"]
        if not q["killed"]:
            del q["killed"]
        query_rows.append(q)

    record = {
        "schema": TRACE_SCHEMA,
        "name": name,
        "config": dict(config),
        "queries": query_rows,
        "spans": span_rows,
    }
    errors = validate_trace_record(record)
    if errors:
        raise ConfigError(
            "constructed an invalid trace record: " + "; ".join(errors)
        )
    return record


def validate_trace_record(record: Any) -> list[str]:
    """Structural errors in a ``repro.trace/v1`` record (empty = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return ["record must be a JSON object"]
    if record.get("schema") != TRACE_SCHEMA:
        errors.append(
            f"schema must be {TRACE_SCHEMA!r}, got {record.get('schema')!r}"
        )
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append("missing non-empty string 'name'")
    config = record.get("config")
    if not isinstance(config, dict) or not all(isinstance(k, str) for k in config):
        errors.append("'config' must be an object with string keys")

    spans = record.get("spans")
    declared_ids: set[str] = set()
    referenced_ids: set[str] = set()
    span_ids: set[str] = set()
    if not isinstance(spans, list) or not spans:
        errors.append("'spans' must be a non-empty list")
        spans = []
    for i, row in enumerate(spans):
        where = f"spans[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("span", "resource", "stage"):
            if not isinstance(row.get(key), str) or not row.get(key):
                errors.append(f"{where}: missing non-empty string '{key}'")
        for key in ("uid", "batch"):
            if not isinstance(row.get(key), int) or row.get(key, -1) < 0:
                errors.append(f"{where}.{key} must be a non-negative integer")
        for key in ("t0", "duration_s", "wait_s"):
            if not _is_number(row.get(key)) or row.get(key, -1) < 0:
                errors.append(f"{where}.{key} must be a non-negative number")
        parents = row.get("parents")
        if not isinstance(parents, list) or not all(
            isinstance(p, str) for p in parents
        ):
            errors.append(f"{where}.parents must be a list of span ids")
        trace_ids = row.get("trace_ids")
        if not isinstance(trace_ids, list) or not all(
            isinstance(t, str) for t in trace_ids
        ):
            errors.append(f"{where}.trace_ids must be a list of trace ids")
        else:
            referenced_ids.update(trace_ids)
        if isinstance(row.get("span"), str):
            if row["span"] in span_ids:
                errors.append(f"{where}: duplicate span id {row['span']!r}")
            span_ids.add(row["span"])

    queries = record.get("queries")
    if not isinstance(queries, list) or not queries:
        errors.append("'queries' must be a non-empty list")
        queries = []
    for i, row in enumerate(queries):
        where = f"queries[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            continue
        qid = row.get("trace_id")
        if not isinstance(qid, str) or not qid:
            errors.append(f"{where}: missing non-empty string 'trace_id'")
        else:
            if qid in declared_ids:
                errors.append(f"{where}: duplicate trace id {qid!r}")
            declared_ids.add(qid)
        if not isinstance(row.get("batch"), int) or row.get("batch", -1) < 0:
            errors.append(f"{where}.batch must be a non-negative integer")
        for key in ("t0", "t1", "latency_s"):
            if not _is_number(row.get(key)) or row.get(key, -1) < 0:
                errors.append(f"{where}.{key} must be a non-negative number")
        n = row.get("n_spans")
        if not isinstance(n, int) or n < 1:
            errors.append(f"{where}.n_spans must be a positive integer")

    # Cross-section consistency: every id a span references is declared,
    # and every declared query owns at least one span.
    for qid in sorted(referenced_ids - declared_ids):
        errors.append(f"span references undeclared trace id {qid!r}")
    for qid in sorted(declared_ids - referenced_ids):
        errors.append(f"query {qid!r} owns no spans")
    # Parent references must resolve within the record.
    for i, row in enumerate(spans):
        if not isinstance(row, dict) or not isinstance(row.get("parents"), list):
            continue
        for p in row["parents"]:
            if isinstance(p, str) and p not in span_ids:
                errors.append(f"spans[{i}]: unresolved parent {p!r}")
    return errors


def query_latencies(schedule: BatchSchedule) -> dict[str, float]:
    """Per-query wall-clock latency straight from a traced schedule.

    The cheap sibling of :func:`make_trace_record` for metric hot paths:
    each query's window is min ready time (``t0 - wait_s``) to max span
    end over the spans carrying its id.  Untraced schedules yield ``{}``.
    """
    windows: dict[str, tuple[float, float]] = {}
    for tl in schedule.timelines.values():
        for span in tl.spans:
            tr = span.trace
            if tr is None:
                continue
            ready = span.t0 - tr.wait_s
            for qid in tr.trace_ids:
                prev = windows.get(qid)
                if prev is None:
                    windows[qid] = (ready, span.t1)
                else:
                    windows[qid] = (min(prev[0], ready), max(prev[1], span.t1))
    return {qid: t1 - t0 for qid, (t0, t1) in sorted(windows.items())}


def query_spans(record: dict[str, Any], trace_id: str) -> list[dict[str, Any]]:
    """The span rows that did work for ``trace_id``, in (batch, uid) order.

    Raises :class:`ConfigError` when the record declares no such query —
    the caller almost certainly typo'd an id, and an empty dump would
    read as "this query did nothing".
    """
    declared = {
        q.get("trace_id")
        for q in record.get("queries", ())
        if isinstance(q, dict)
    }
    if trace_id not in declared:
        sample = ", ".join(sorted(x for x in declared if isinstance(x, str))[:5])
        raise ConfigError(
            f"trace id {trace_id!r} not in this record (knowns start: {sample})"
        )
    rows = [
        row
        for row in record.get("spans", ())
        if isinstance(row, dict) and trace_id in row.get("trace_ids", ())
    ]
    rows.sort(key=lambda r: (r.get("batch", 0), r.get("uid", 0)))
    return rows
