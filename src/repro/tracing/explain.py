"""Per-query critical-path explanation over ``repro.trace/v1`` records.

:func:`explain_query` answers "where did query X's latency go?": it
walks the span DAG backward from the query's last span along the
latest-ending causal parent, splitting every step into queue wait
(the span's ``wait_s``, time the work sat ready behind its lane's FIFO)
and service time (the span's duration, classified as compute, transfer
or fault-retry).  The walk stops at the query's intake time, so the
summed contributions cover the query's whole wall-clock window — the
coverage ratio is reported and asserted ≥ 0.95 in tests.

Fault annotations come straight from the span metadata ``repro.faults``
left behind: ``retry`` spans are the bus re-drives a transient transfer
fault cost, and ``killed`` spans are mid-flight truncations where a
fault fence interrupted in-flight work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError
from repro.faults import KILL_ANNOTATION, RETRY_ANNOTATION
from repro.sim.schedule import (
    STAGE_CANCEL,
    STAGE_RETRY,
    STAGE_SHED,
    STAGE_TRANSFER_IN,
    STAGE_TRANSFER_OUT,
)
from repro.tracing.record import query_spans

#: Contribution kinds, in render order.
KINDS = ("wait", "compute", "transfer", "retry", "cancel")

_EPS = 1e-12


def _kind(stage: str) -> str:
    if stage == STAGE_RETRY:
        return "retry"
    if stage in (STAGE_SHED, STAGE_CANCEL):
        return "cancel"
    if stage in (STAGE_TRANSFER_IN, STAGE_TRANSFER_OUT):
        return "transfer"
    return "compute"


@dataclass(frozen=True)
class Contribution:
    """One ranked share of a query's latency."""

    kind: str  # wait | compute | transfer | retry
    where: str  # "<stage>@<resource>" (waits: "(wait)@<resource>")
    seconds: float
    share: float  # fraction of the query's wall-clock latency
    spans: tuple[str, ...] = ()  # span ids this row aggregates
    annotation: str = ""


@dataclass
class QueryExplanation:
    """Critical-path attribution of one query's wall-clock latency."""

    trace_id: str
    batch: int
    t0: float
    t1: float
    latency_s: float
    #: Aggregated contributions, largest first.
    ranked: list[Contribution] = field(default_factory=list)
    #: Fraction of the latency the critical path accounts for.
    coverage: float = 0.0
    #: True when a mid-flight kill truncated a span on the path.
    killed: bool = False


def explain_query(record: dict[str, Any], trace_id: str) -> QueryExplanation:
    """Walk the critical path of ``trace_id`` through a trace record."""
    queries = {
        q["trace_id"]: q
        for q in record.get("queries", ())
        if isinstance(q, dict) and isinstance(q.get("trace_id"), str)
    }
    if trace_id not in queries:
        # query_spans raises with the helpful known-ids message.
        query_spans(record, trace_id)
    q = queries[trace_id]
    by_id = {
        row["span"]: row
        for row in record.get("spans", ())
        if isinstance(row, dict) and isinstance(row.get("span"), str)
    }
    mine = query_spans(record, trace_id)
    terminal = max(mine, key=lambda r: (r["t0"] + r["duration_s"], r["span"]))
    # Lazy: the serving package sits above core.service in the import
    # DAG; pulling it at module scope would close a cycle through
    # tracing's package __init__.
    from repro.serving.request import SHED_ANNOTATION, TIMEOUT_ANNOTATION

    t0, t1 = float(q["t0"]), float(q["t1"])
    latency = float(q["latency_s"])
    steps: list[tuple[dict[str, Any], float, float]] = []  # (row, wait, dur)
    covered = 0.0
    killed = False
    cur: dict[str, Any] | None = terminal
    seen: set[str] = set()
    while cur is not None and cur["span"] not in seen:
        seen.add(cur["span"])
        wait = float(cur["wait_s"])
        dur = float(cur["duration_s"])
        steps.append((cur, wait, dur))
        covered += wait + dur
        killed = killed or bool(cur.get("killed"))
        ready = float(cur["t0"]) - wait
        if ready <= t0 + _EPS:
            break
        parents = [by_id[p] for p in cur.get("parents", ()) if p in by_id]
        if not parents:
            break
        cur = max(parents, key=lambda r: (r["t0"] + r["duration_s"], r["span"]))

    # Aggregate the path into ranked rows: waits keyed by the lane the
    # work queued behind, service time keyed by stage@resource.
    agg: dict[tuple[str, str], dict[str, Any]] = {}

    def bump(kind: str, where: str, seconds: float, span: str, note: str) -> None:
        row = agg.setdefault(
            (kind, where),
            {"seconds": 0.0, "spans": [], "annotation": note},
        )
        row["seconds"] += seconds
        row["spans"].append(span)
        if note and note not in row["annotation"]:
            row["annotation"] = (
                f"{row['annotation']}; {note}" if row["annotation"] else note
            )

    for row, wait, dur in steps:
        notes = []
        if row["stage"] == STAGE_RETRY:
            notes.append(RETRY_ANNOTATION)
        if row["stage"] == STAGE_SHED:
            notes.append(SHED_ANNOTATION)
        if row["stage"] == STAGE_CANCEL:
            notes.append(TIMEOUT_ANNOTATION)
        if row.get("killed"):
            notes.append(KILL_ANNOTATION)
        note = "; ".join(notes)
        if wait > 0.0:
            bump("wait", f"(wait)@{row['resource']}", wait, row["span"], "")
        if dur > 0.0:
            bump(
                _kind(row["stage"]),
                f"{row['stage']}@{row['resource']}",
                dur,
                row["span"],
                note,
            )

    ranked = [
        Contribution(
            kind=kind,
            where=where,
            seconds=entry["seconds"],
            share=(entry["seconds"] / latency) if latency > 0 else 0.0,
            spans=tuple(entry["spans"]),
            annotation=entry["annotation"],
        )
        for (kind, where), entry in agg.items()
    ]
    ranked.sort(key=lambda c: (-c.seconds, c.where))
    return QueryExplanation(
        trace_id=trace_id,
        batch=int(q["batch"]),
        t0=t0,
        t1=t1,
        latency_s=latency,
        ranked=ranked,
        coverage=(covered / latency) if latency > 0 else 1.0,
        killed=killed,
    )


def render_explanation(exp: QueryExplanation) -> str:
    """Human-readable table for ``repro.cli explain``."""
    lines = [
        f"query {exp.trace_id} (batch {exp.batch}): "
        f"{exp.latency_s * 1e3:.3f} ms wall-clock "
        f"[{exp.t0 * 1e3:.3f} ms -> {exp.t1 * 1e3:.3f} ms]",
        f"critical path covers {exp.coverage * 100.0:.1f}% of the latency"
        + ("  ** mid-flight kill on path **" if exp.killed else ""),
        f"{'share':>6}  {'seconds':>12}  {'kind':<8}  where",
    ]
    for c in exp.ranked:
        line = (
            f"{c.share * 100.0:5.1f}%  {c.seconds:12.9f}  {c.kind:<8}  {c.where}"
        )
        if c.annotation:
            line += f"  [{c.annotation}]"
        lines.append(line)
    return "\n".join(lines)


def worst_query(record: dict[str, Any]) -> str:
    """Trace id with the largest wall-clock latency in a record."""
    queries = [
        q
        for q in record.get("queries", ())
        if isinstance(q, dict) and isinstance(q.get("trace_id"), str)
    ]
    if not queries:
        raise ConfigError("trace record declares no queries")
    return max(queries, key=lambda q: (float(q["latency_s"]), q["trace_id"]))[
        "trace_id"
    ]
