"""Trace-context propagation: stable per-query ids assigned at intake.

A :class:`TraceContext` is created once per submitted batch — by
:class:`~repro.core.service.OnlineService` with a monotonically growing
query counter, or by an engine itself for standalone ``search_batch``
calls — and threaded through the work-DAG builders so every
:class:`~repro.sim.events.WorkItem` knows which queries it does work
for.  Ids are deterministic (a zero-padded counter, no RNG/wall-clock:
simlint DET001 applies to everything feeding the timeline).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import ConfigError


def format_trace_id(n: int) -> str:
    """Canonical trace id for the ``n``-th query a service has seen."""
    return f"q{n:06d}"


@dataclass(frozen=True)
class TraceContext:
    """Trace ids for one batch's queries, in query order.

    ``trace_ids[i]`` is query ``i``'s id within the batch; ``batch`` is
    the stream position the batch will occupy in the service's combined
    run (0 for standalone engine calls).
    """

    trace_ids: tuple[str, ...]
    batch: int = 0

    def __post_init__(self) -> None:
        if len(set(self.trace_ids)) != len(self.trace_ids):
            raise ConfigError("trace ids within a batch must be unique")
        if self.batch < 0:
            raise ConfigError(f"negative batch index {self.batch}")

    @classmethod
    def for_batch(
        cls, n_queries: int, *, batch: int = 0, start: int = 0
    ) -> "TraceContext":
        """Ids ``q<start>..q<start+n-1>`` for a batch of ``n_queries``."""
        if n_queries < 0:
            raise ConfigError(f"negative query count {n_queries}")
        return cls(
            trace_ids=tuple(
                format_trace_id(start + i) for i in range(n_queries)
            ),
            batch=batch,
        )

    def __len__(self) -> int:
        return len(self.trace_ids)

    def all_ids(self) -> tuple[str, ...]:
        """Every id in the batch (batch-wide stages serve all queries)."""
        return self.trace_ids

    def ids_for(self, query_indices: Iterable[int]) -> tuple[str, ...]:
        """Ids of a subset of queries (e.g. one DPU's assigned pairs).

        Deduplicates while preserving first-appearance order, so a DPU
        serving several (query, cluster) pairs of the same query tags
        its chain with that query once.
        """
        seen: dict[str, None] = {}
        for qi in query_indices:
            if not 0 <= qi < len(self.trace_ids):
                raise ConfigError(
                    f"query index {qi} outside batch of {len(self.trace_ids)}"
                )
            seen.setdefault(self.trace_ids[qi], None)
        return tuple(seen)
