"""WRAM scratchpad allocator with physical addressing.

UPMEM DPUs have 64 KB of fast WRAM and *no MMU* — kernels address WRAM
physically (paper challenge 2).  UpANNS therefore plans WRAM layout
statically and *reuses* regions across pipeline stages: the codebook
region is overwritten by encoded-point read buffers once the LUT is
built (Figure 6, red annotations).

:class:`WramAllocator` models exactly that: named, explicitly-freed
regions with fixed physical offsets, overflow detection, and a live-range
log that tests use to prove reuse plans never overlap two simultaneously
live buffers.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigError, WramOverflowError
from repro.hardware.specs import DpuSpec
from repro.telemetry.pipeline import observe_wram_peak

WRAM_ALIGN = 8


def _default_capacity() -> int:
    """WRAM capacity comes from the spec, as specs.py promises."""
    return DpuSpec().wram_bytes


@dataclass(frozen=True)
class WramRegion:
    """A named, fixed-offset region of WRAM."""

    name: str
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size

    def overlaps(self, other: "WramRegion") -> bool:
        return self.offset < other.end and other.offset < self.end


@dataclass
class WramAllocator:
    """First-fit allocator over a fixed-size physical scratchpad."""

    capacity: int = field(default_factory=_default_capacity)
    _live: dict[str, WramRegion] = field(default_factory=dict)
    _history: list[tuple[str, str, int, int]] = field(default_factory=list)
    peak_bytes: int = 0

    def _aligned(self, size: int) -> int:
        return (size + WRAM_ALIGN - 1) // WRAM_ALIGN * WRAM_ALIGN

    def alloc(self, name: str, size: int) -> WramRegion:
        """Allocate a named region; first-fit into the lowest free gap."""
        if name in self._live:
            raise WramOverflowError(f"region {name!r} already allocated")
        if size <= 0:
            raise WramOverflowError(f"region {name!r} has non-positive size")
        size = self._aligned(size)
        offset = self._find_gap(size)
        if offset is None:
            raise WramOverflowError(
                f"cannot fit {size} B region {name!r}: "
                f"{self.used_bytes} B of {self.capacity} B in use"
            )
        region = WramRegion(name, offset, size)
        self._live[name] = region
        self._history.append(("alloc", name, offset, size))
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        observe_wram_peak(self.peak_bytes)
        return region

    def free(self, name: str) -> None:
        """Release a region so its physical range can be reused."""
        region = self._live.pop(name, None)
        if region is None:
            raise WramOverflowError(f"region {name!r} is not allocated")
        self._history.append(("free", name, region.offset, region.size))

    def _find_gap(self, size: int) -> int | None:
        regions = sorted(self._live.values(), key=lambda r: r.offset)
        cursor = 0
        for r in regions:
            if r.offset - cursor >= size:
                return cursor
            cursor = max(cursor, r.end)
        if self.capacity - cursor >= size:
            return cursor
        return None

    @property
    def used_bytes(self) -> int:
        return sum(r.size for r in self._live.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def region(self, name: str) -> WramRegion:
        return self._live[name]

    def is_live(self, name: str) -> bool:
        return name in self._live

    def live_regions(self) -> list[WramRegion]:
        return sorted(self._live.values(), key=lambda r: r.offset)

    def largest_free_block(self) -> int:
        """Size of the largest contiguous free range (fragmentation probe)."""
        best, cursor = 0, 0
        for r in self.live_regions():
            best = max(best, r.offset - cursor)
            cursor = max(cursor, r.end)
        return max(best, self.capacity - cursor)

    def verify_no_overlap(self) -> None:
        """Assert the invariant that live regions never overlap."""
        regions = self.live_regions()
        for a, b in zip(regions, regions[1:]):
            if a.overlaps(b):  # pragma: no cover - defensive
                raise WramOverflowError(f"overlap between {a.name} and {b.name}")

    def history(self) -> list[tuple[str, str, int, int]]:
        """(op, name, offset, size) log, for reuse-plan verification."""
        return list(self._history)


def replay_history(
    history: Iterable[Sequence], capacity: int | None = None
) -> WramAllocator:
    """Re-execute an ``(op, name, offset, size)`` log on a fresh allocator.

    First-fit placement is deterministic, so a faithfully recorded log
    must reproduce the exact offsets it recorded; any divergence means
    the log was tampered with or produced by different allocator
    semantics.  Used by the WRAM001 static checks and the live-range
    tests to validate reuse plans offline.

    Raises :class:`~repro.errors.WramOverflowError` on an invalid
    sequence and :class:`~repro.errors.ConfigError` on a malformed log
    or an offset mismatch.
    """
    allocator = WramAllocator() if capacity is None else WramAllocator(capacity)
    for entry in history:
        try:
            op, name, offset, size = entry
        except ValueError as exc:
            raise ConfigError(f"malformed history entry {entry!r}") from exc
        if op == "alloc":
            region = allocator.alloc(name, size)
            if region.offset != offset:
                raise ConfigError(
                    f"history replay diverged: {name!r} recorded at offset "
                    f"{offset} but first-fit places it at {region.offset}"
                )
        elif op == "free":
            allocator.free(name)
        else:
            raise ConfigError(f"unknown history op {op!r}")
    return allocator
