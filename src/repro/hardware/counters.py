"""Event counters collected while a DPU kernel executes.

The simulator separates *what happened* (these counters) from *how long it
took* (the timing models in :mod:`repro.hardware.pipeline` and
:mod:`repro.hardware.mram`).  Kernels charge counters as they run on real
data; the :class:`repro.hardware.dpu.DPU` converts the ledger into cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Counters:
    """Additive event ledger for one DPU (or one kernel invocation)."""

    instructions: int = 0
    mram_read_bytes: int = 0
    mram_write_bytes: int = 0
    dma_transactions: int = 0
    dma_cycles: int = 0
    wram_reads: int = 0
    wram_writes: int = 0
    barriers: int = 0
    heap_comparisons: int = 0
    pruned_insertions: int = 0

    def merge(self, other: "Counters") -> None:
        """Accumulate ``other`` into ``self`` field-wise."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __iadd__(self, other: "Counters") -> "Counters":
        self.merge(other)
        return self

    def copy(self) -> "Counters":
        return Counters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class StageCycles:
    """Per-pipeline-stage cycle attribution for the IVFPQ online stages.

    Mirrors the four-stage decomposition the paper reports in Figures 1,
    14 and 19: cluster filtering runs on the host, the other three run on
    the DPU.
    """

    cluster_filter: float = 0.0
    lut_construction: float = 0.0
    distance_calc: float = 0.0
    topk_selection: float = 0.0
    other: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.cluster_filter
            + self.lut_construction
            + self.distance_calc
            + self.topk_selection
            + self.other
        )

    def merge(self, other: "StageCycles") -> None:
        self.cluster_filter += other.cluster_filter
        self.lut_construction += other.lut_construction
        self.distance_calc += other.distance_calc
        self.topk_selection += other.topk_selection
        self.other += other.other

    def __iadd__(self, other: "StageCycles") -> "StageCycles":
        self.merge(other)
        return self

    def scaled(self, factor: float) -> "StageCycles":
        return StageCycles(
            cluster_filter=self.cluster_filter * factor,
            lut_construction=self.lut_construction * factor,
            distance_calc=self.distance_calc * factor,
            topk_selection=self.topk_selection * factor,
            other=self.other * factor,
        )

    def fractions(self) -> dict[str, float]:
        """Return each stage's share of the total (for breakdown plots)."""
        total = self.total
        if total <= 0:
            return {k: 0.0 for k in self.as_dict()}
        return {k: v / total for k, v in self.as_dict().items()}

    def as_dict(self) -> dict[str, float]:
        return {
            "cluster_filter": self.cluster_filter,
            "lut_construction": self.lut_construction,
            "distance_calc": self.distance_calc,
            "topk_selection": self.topk_selection,
            "other": self.other,
        }


@dataclass
class KernelResult:
    """What one kernel invocation produced: events plus stage attribution."""

    counters: Counters = field(default_factory=Counters)
    stage_cycles: StageCycles = field(default_factory=StageCycles)
