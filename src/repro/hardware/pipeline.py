"""DPU pipeline throughput model.

Each UPMEM DPU has a 14-stage in-order pipeline with fine-grained
multithreading: every cycle, the dispatcher issues one instruction from a
*different* tasklet (round-robin).  Consecutive instructions from the
same tasklet must be at least 11 cycles apart, because only the last
three pipeline stages overlap with the first stages of the next
instruction of the same thread (paper section 5.3.2).  Consequences the
paper measures, and this model reproduces:

* with T tasklets, instruction throughput is ``min(T, 11) / 11`` of peak;
* QPS scales linearly up to 11 tasklets (Figure 13), then saturates —
  running 12-24 tasklets adds no throughput (but costs WRAM for buffers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.specs import DpuSpec


@dataclass(frozen=True)
class PipelineModel:
    """Converts instruction counts into cycles for a tasklet count."""

    spec: DpuSpec = DpuSpec()

    def throughput(self, n_tasklets: int) -> float:
        """Instructions per cycle achieved with ``n_tasklets`` threads."""
        self._validate(n_tasklets)
        return min(n_tasklets, self.spec.pipeline_reissue_cycles) / float(
            self.spec.pipeline_reissue_cycles
        )

    def compute_cycles(self, instructions: float, n_tasklets: int) -> float:
        """Cycles to retire ``instructions`` with ``n_tasklets`` threads."""
        if instructions < 0:
            raise ConfigError("instruction count cannot be negative")
        if instructions == 0:
            return 0.0
        return instructions / self.throughput(n_tasklets)

    def speedup(self, n_tasklets: int) -> float:
        """Speedup over a single tasklet (the Figure 13 y-axis)."""
        return self.throughput(n_tasklets) / self.throughput(1)

    def saturation_point(self) -> int:
        """Tasklet count beyond which adding threads gains nothing."""
        return self.spec.pipeline_reissue_cycles

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.spec.frequency_hz

    def _validate(self, n_tasklets: int) -> None:
        if not 1 <= n_tasklets <= self.spec.max_tasklets:
            raise ConfigError(
                f"tasklet count {n_tasklets} outside [1, {self.spec.max_tasklets}]"
            )


@dataclass(frozen=True)
class BarrierModel:
    """Cost of a hardware barrier across tasklets.

    UpANNS uses four barriers per (query, cluster) kernel (Figure 6).
    A barrier costs roughly one pipeline drain plus a few instructions
    per participating tasklet.
    """

    spec: DpuSpec = DpuSpec()
    cycles_per_tasklet: float = 4.0

    def barrier_cycles(self, n_tasklets: int) -> float:
        if not 1 <= n_tasklets <= self.spec.max_tasklets:
            raise ConfigError(f"invalid tasklet count {n_tasklets}")
        return self.spec.pipeline_stages + self.cycles_per_tasklet * n_tasklets
