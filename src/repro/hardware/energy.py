"""Per-batch energy accounting beyond the paper's peak-power proxy.

The paper compares efficiency by *peak* power ("we can use it as an
approximation").  This module refines that with an activity-based
model: a DPU burns ``active_w`` while busy and ``idle_w`` while parked,
plus a constant per-DIMM background draw.  The Figure-12 peak-power
comparison is recovered by :func:`peak_energy`, and the refined model
exposes how load imbalance wastes energy (idle DPUs still draw power
while the makespan DPU finishes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.hardware.specs import PimSystemSpec


@dataclass(frozen=True)
class DpuPowerModel:
    """Power states of one DPU, derived from the per-DIMM figure.

    Falevoz & Legriel measure 23.22 W per 128-DPU DIMM at load
    (~181 mW/DPU); at idle roughly half the draw remains (DRAM refresh
    and logic leakage).
    """

    active_w: float = 0.181
    idle_w: float = 0.090
    dimm_background_w: float = 0.0

    def batch_energy_j(
        self, busy_seconds: np.ndarray, makespan_s: float
    ) -> float:
        """Joules burned by the array during one batch.

        Each DPU is active for its own busy time and idle for the rest
        of the batch (the makespan): imbalance directly shows up as
        idle-energy waste.
        """
        busy = np.asarray(busy_seconds, dtype=np.float64)
        if makespan_s < 0 or (busy < -1e-12).any():
            raise ConfigError("negative times in energy accounting")
        if busy.size and makespan_s + 1e-12 < busy.max():
            raise ConfigError("makespan shorter than the busiest DPU")
        active_j = float(busy.sum()) * self.active_w
        idle_j = float((makespan_s - busy).sum()) * self.idle_w
        return active_j + idle_j

    def wasted_idle_fraction(
        self, busy_seconds: np.ndarray, makespan_s: float
    ) -> float:
        """Share of the batch's energy spent in idle DPUs."""
        total = self.batch_energy_j(busy_seconds, makespan_s)
        if total <= 0:
            return 0.0
        busy = np.asarray(busy_seconds, dtype=np.float64)
        idle_j = float((makespan_s - busy).sum()) * self.idle_w
        return idle_j / total


def peak_energy(spec: PimSystemSpec, seconds: float) -> float:
    """The paper's approximation: peak power x elapsed time."""
    if seconds < 0:
        raise ConfigError("elapsed time cannot be negative")
    return spec.peak_power_w * seconds


def batch_energy_report(
    spec: PimSystemSpec,
    busy_seconds: np.ndarray,
    makespan_s: float,
    n_queries: int,
    model: DpuPowerModel | None = None,
) -> dict[str, float]:
    """Energy summary for one batch: refined vs peak-power accounting."""
    model = model if model is not None else DpuPowerModel()
    refined = model.batch_energy_j(busy_seconds, makespan_s)
    peak = peak_energy(spec, makespan_s)
    return {
        "refined_j": refined,
        "peak_j": peak,
        "j_per_query": refined / max(n_queries, 1),
        "idle_fraction": model.wasted_idle_fraction(busy_seconds, makespan_s),
    }
