"""Functional-plus-timing model of a single DPU.

A :class:`DPU` holds named MRAM buffers (real NumPy arrays — kernels
compute on actual data), a WRAM allocator, and a cycle ledger.  Kernels
charge events through the ``charge_*`` methods; :meth:`elapsed_cycles`
converts the ledger into time using the pipeline and MRAM models.

Timing composition: the 14-stage pipeline overlaps MRAM DMA with
computation when enough tasklets are resident (paper Opt2), so compute
and DMA cycles overlap up to an efficiency factor; barriers serialize.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MramOverflowError
from repro.hardware.counters import Counters
from repro.hardware.mram import MramModel
from repro.hardware.pipeline import BarrierModel, PipelineModel
from repro.hardware.specs import DEFAULT_N_TASKLETS, DpuSpec
from repro.hardware.wram import WramAllocator
from repro.telemetry.pipeline import observe_dma


@dataclass
class DPU:
    """One DRAM Processing Unit: storage + event ledger."""

    dpu_id: int
    spec: DpuSpec = field(default_factory=DpuSpec)
    mram_model: MramModel = field(default_factory=MramModel)
    n_tasklets: int = DEFAULT_N_TASKLETS
    # How completely the pipeline hides DMA latency behind compute:
    # 1.0 = perfect overlap (time = max), 0.0 = fully serial (time = sum).
    overlap_efficiency: float = 0.85

    counters: Counters = field(default_factory=Counters)
    wram: WramAllocator = field(init=False)
    _mram: dict[str, np.ndarray] = field(default_factory=dict)
    _mram_used: int = 0

    def __post_init__(self) -> None:
        self.wram = WramAllocator(capacity=self.spec.wram_bytes)
        self.pipeline = PipelineModel(self.spec)
        self.barrier_model = BarrierModel(self.spec)

    # --- MRAM storage (functional) -----------------------------------

    def mram_store(self, name: str, array: np.ndarray) -> None:
        """Place a named buffer in MRAM, enforcing the 64 MB capacity."""
        new_bytes = array.nbytes
        old = self._mram.get(name)
        projected = self._mram_used - (old.nbytes if old is not None else 0) + new_bytes
        if projected > self.spec.mram_bytes:
            raise MramOverflowError(
                f"DPU {self.dpu_id}: storing {name!r} ({new_bytes} B) exceeds "
                f"MRAM capacity {self.spec.mram_bytes} B "
                f"(used {self._mram_used} B)"
            )
        self._mram[name] = array
        self._mram_used = projected

    def mram_load(self, name: str) -> np.ndarray:
        return self._mram[name]

    def mram_contains(self, name: str) -> bool:
        return name in self._mram

    def mram_delete(self, name: str) -> None:
        arr = self._mram.pop(name)
        self._mram_used -= arr.nbytes

    @property
    def mram_used_bytes(self) -> int:
        return self._mram_used

    @property
    def mram_free_bytes(self) -> int:
        return self.spec.mram_bytes - self._mram_used

    # --- Event charging -----------------------------------------------

    def charge_instructions(self, count: float) -> None:
        self.counters.instructions += int(count)

    def charge_mram_read(self, total_bytes: int, chunk_bytes: int) -> float:
        """Charge a bulk MRAM->WRAM stream; returns the DMA cycles added."""
        cycles = self.mram_model.bulk_transfer_cycles(total_bytes, chunk_bytes)
        self.counters.mram_read_bytes += total_bytes
        self.counters.dma_transactions += self.mram_model.transactions_for(
            total_bytes, chunk_bytes
        )
        self.counters.dma_cycles += int(cycles)
        observe_dma("read", total_bytes, chunk_bytes)
        return cycles

    def charge_mram_write(self, total_bytes: int, chunk_bytes: int) -> float:
        cycles = self.mram_model.bulk_transfer_cycles(total_bytes, chunk_bytes)
        self.counters.mram_write_bytes += total_bytes
        self.counters.dma_transactions += self.mram_model.transactions_for(
            total_bytes, chunk_bytes
        )
        self.counters.dma_cycles += int(cycles)
        observe_dma("write", total_bytes, chunk_bytes)
        return cycles

    def charge_barrier(self) -> float:
        self.counters.barriers += 1
        return self.barrier_model.barrier_cycles(self.n_tasklets)

    # --- Timing conversion ---------------------------------------------

    def combine_cycles(self, compute_cycles: float, dma_cycles: float) -> float:
        """Overlap compute and DMA per the pipeline-hiding model."""
        lo = max(compute_cycles, dma_cycles)
        hi = compute_cycles + dma_cycles
        return hi - self.overlap_efficiency * (hi - lo)

    def elapsed_cycles(self) -> float:
        """Total cycles implied by the current ledger (coarse view)."""
        compute = self.pipeline.compute_cycles(
            self.counters.instructions, self.n_tasklets
        )
        dma = float(self.counters.dma_cycles)
        barrier = self.counters.barriers * self.barrier_model.barrier_cycles(
            self.n_tasklets
        )
        return self.combine_cycles(compute, dma) + barrier

    def elapsed_seconds(self) -> float:
        return self.elapsed_cycles() / self.spec.frequency_hz

    def reset_counters(self) -> None:
        self.counters = Counters()
