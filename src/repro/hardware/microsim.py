"""Cycle-level DPU micro-simulator (validation substrate).

The analytic :class:`~repro.hardware.pipeline.PipelineModel` asserts
that a DPU retires ``min(T, 11)/11`` instructions per cycle with T
resident tasklets.  This module *derives* that behaviour instead of
assuming it: a discrete-time simulation of the 14-stage in-order
pipeline with round-robin dispatch, the same-thread reissue interval,
blocking DMA transactions through a single MRAM engine, and barriers.

It is far too slow for whole-system simulation (that is the analytic
model's job) but exactly right for validating the model's shape — the
tests check that the micro-simulated throughput curve matches the
closed form, including the knee at 11 tasklets, and that DMA-bound
workloads saturate at the MRAM engine's service rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigError
from repro.hardware.mram import MramModel
from repro.hardware.specs import DpuSpec


class OpKind(Enum):
    """Workload atoms a tasklet program is made of."""

    COMPUTE = "compute"  # one ALU instruction
    DMA = "dma"  # a blocking MRAM<->WRAM transaction
    BARRIER = "barrier"  # wait for all tasklets


@dataclass(frozen=True)
class Op:
    kind: OpKind
    # For DMA: transfer size in bytes; ignored otherwise.
    size_bytes: int = 0


def compute_block(n: int) -> list[Op]:
    """n back-to-back ALU instructions."""
    return [Op(OpKind.COMPUTE)] * n


def dma_read(size_bytes: int) -> list[Op]:
    return [Op(OpKind.DMA, size_bytes=size_bytes)]


def barrier() -> list[Op]:
    return [Op(OpKind.BARRIER)]


@dataclass
class _Tasklet:
    program: list[Op]
    pc: int = 0
    # Cycle at which this tasklet may issue its next instruction.
    ready_at: int = 0
    at_barrier: bool = False

    @property
    def done(self) -> bool:
        return self.pc >= len(self.program)


@dataclass
class MicroSim:
    """Run identical (or distinct) tasklet programs to completion."""

    spec: DpuSpec = field(default_factory=DpuSpec)
    mram: MramModel = field(default_factory=MramModel)

    def run(self, programs: list[list[Op]]) -> int:
        """Simulate until every tasklet finishes; returns total cycles.

        Dispatch: one instruction per cycle, round-robin over ready
        tasklets; an issued instruction makes its tasklet unready for
        ``pipeline_reissue_cycles`` (the in-order same-thread hazard).
        DMA: the single MRAM engine serves one transaction at a time;
        the issuing tasklet blocks until it completes.  Barriers release
        when every live tasklet has arrived.
        """
        if not 1 <= len(programs) <= self.spec.max_tasklets:
            raise ConfigError(
                f"tasklet count {len(programs)} outside [1, {self.spec.max_tasklets}]"
            )
        tasklets = [_Tasklet(program=list(p)) for p in programs]
        reissue = self.spec.pipeline_reissue_cycles
        dma_free_at = 0  # cycle at which the MRAM engine is next free
        cycle = 0
        rr = 0  # round-robin pointer
        guard = 0
        while any(not t.done for t in tasklets):
            guard += 1
            if guard > 100_000_000:  # pragma: no cover - defensive
                raise ConfigError("micro-simulation did not terminate")

            # Barrier release check: all non-done tasklets waiting.
            live = [t for t in tasklets if not t.done]
            if live and all(t.at_barrier for t in live):
                for t in live:
                    t.at_barrier = False
                    t.pc += 1
                    t.ready_at = cycle + self.spec.pipeline_stages
                cycle += 1
                continue

            issued = False
            for i in range(len(tasklets)):
                t = tasklets[(rr + i) % len(tasklets)]
                if t.done or t.at_barrier or t.ready_at > cycle:
                    continue
                op = t.program[t.pc]
                if op.kind is OpKind.COMPUTE:
                    t.pc += 1
                    t.ready_at = cycle + reissue
                elif op.kind is OpKind.DMA:
                    start = max(cycle, dma_free_at)
                    latency = int(round(self.mram.latency_cycles(op.size_bytes)))
                    dma_free_at = start + latency
                    t.pc += 1
                    t.ready_at = dma_free_at
                else:  # BARRIER
                    t.at_barrier = True
                rr = (rr + i + 1) % len(tasklets)
                issued = True
                break
            cycle += 1
            if not issued:
                # Nothing ready this cycle: fast-forward to the next
                # event instead of ticking one cycle at a time.
                pending = [
                    t.ready_at
                    for t in tasklets
                    if not t.done and not t.at_barrier and t.ready_at > cycle
                ]
                if pending:
                    cycle = max(cycle, min(pending))
        # Issuing the last instruction is not finishing it: account for
        # in-flight DMA and pipeline drain of the final instructions.
        finish = max((t.ready_at for t in tasklets), default=cycle)
        return max(cycle, dma_free_at, finish)

    def throughput(self, n_tasklets: int, instructions_per_tasklet: int = 2000) -> float:
        """Measured instructions/cycle for a pure-compute workload."""
        programs = [compute_block(instructions_per_tasklet) for _ in range(n_tasklets)]
        cycles = self.run(programs)
        return n_tasklets * instructions_per_tasklet / cycles
