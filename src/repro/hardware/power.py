"""Peak-power and cost-efficiency accounting.

The paper approximates energy efficiency by peak power ("we can use it as
an approximation to compare the energy efficiency", section 5.2):
QPS/W with 162 W for 7 PIM DIMMs vs 300 W for the A100, plus the
QPS-per-dollar comparison (up to 9.3x in UpANNS's favor).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.specs import HardwareSpec, PimSystemSpec


@dataclass(frozen=True)
class EfficiencyReport:
    """QPS normalized by power and price for one platform."""

    name: str
    qps: float
    peak_power_w: float
    price_usd: float

    @property
    def qps_per_watt(self) -> float:
        return self.qps / self.peak_power_w

    @property
    def qps_per_dollar(self) -> float:
        return self.qps / self.price_usd

    def energy_per_query_j(self) -> float:
        """Joules per query at peak power (upper bound)."""
        if self.qps <= 0:
            raise ConfigError("QPS must be positive to compute energy/query")
        return self.peak_power_w / self.qps


def report_for_spec(spec: HardwareSpec, qps: float) -> EfficiencyReport:
    return EfficiencyReport(
        name=spec.name,
        qps=qps,
        peak_power_w=spec.peak_power_w,
        price_usd=spec.price_usd,
    )


def report_for_pim(spec: PimSystemSpec, qps: float) -> EfficiencyReport:
    return EfficiencyReport(
        name=f"{spec.n_dpus}-DPU UPMEM PIM",
        qps=qps,
        peak_power_w=spec.peak_power_w,
        price_usd=spec.price_usd,
    )


def dpus_for_power_budget(spec: PimSystemSpec, budget_w: float) -> int:
    """How many DPUs fit under a power budget (Figure 20's 300 W line).

    With 23.22 W per 128-DPU DIMM the paper computes 1654 DPUs for an
    A100-equivalent 300 W budget.
    """
    if budget_w <= 0:
        raise ConfigError("power budget must be positive")
    per_dimm = spec.chips_per_dimm * spec.dpus_per_chip
    per_dpu_w = spec.dimm_peak_power_w / per_dimm
    return int(budget_w / per_dpu_w)
