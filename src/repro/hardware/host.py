"""Host-CPU cost model for the PIM deployment's orchestration work.

In UpANNS the host CPU performs the light-weight stages: cluster
filtering (query x centroid distances), query scheduling (Algorithm 2)
and final top-k aggregation across DPUs.  These are compute-bound,
small-footprint steps, so a FLOP/comparison cost model over the
:class:`~repro.hardware.specs.CpuSpec` suffices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math

from repro.hardware.specs import CpuSpec, XEON_4110_PAIR


@dataclass(frozen=True)
class HostModel:
    """Analytic timing for host-side orchestration stages."""

    cpu: CpuSpec = field(default_factory=lambda: XEON_4110_PAIR)
    # Achievable fraction of peak FLOPs for small GEMM-like kernels.
    flop_efficiency: float = 0.5
    # Cost of one scheduling decision (heap/bookkeeping) in seconds.
    schedule_op_seconds: float = 30e-9
    # Cost of one comparison during final host-side top-k merging.
    merge_op_seconds: float = 6e-9

    def cluster_filter_seconds(self, n_queries: int, n_clusters: int, dim: int) -> float:
        """Distances from every query to every coarse centroid + top-nprobe.

        2*D FLOPs per (query, centroid) pair for the L2 computation; the
        partial-sort term is dominated by the distance matrix.
        """
        flops = 2.0 * n_queries * n_clusters * dim
        return flops / (self.cpu.flops * self.flop_efficiency)

    def scheduling_seconds(self, n_queries: int, nprobe: int) -> float:
        """Algorithm 2 runs in O(|Q| * nprobe) (paper section 4.1.2)."""
        return n_queries * nprobe * self.schedule_op_seconds

    def scheduling_seconds_for_pairs(self, n_pairs: int) -> float:
        """Algorithm 2 cost from the actual scheduled pair count.

        The engines know the exact number of (query, cluster) decisions
        the scheduler made — charging that directly avoids the shape
        mismatch of passing a pair total through the per-query API.
        """
        return n_pairs * self.schedule_op_seconds

    def aggregate_seconds(self, n_queries: int, k: int, n_partials_per_query: int) -> float:
        """Merge per-DPU top-k lists into the final per-query top-k."""
        if n_partials_per_query <= 0:
            return 0.0
        comparisons = n_queries * n_partials_per_query * k * math.log2(max(k, 2))
        return comparisons * self.merge_op_seconds
