"""Hardware descriptors for the three evaluated platforms (paper Table 1).

The paper compares a dual-socket Intel Xeon Silver 4110 host, an NVIDIA
A100 PCI-e 80 GB GPU and seven UPMEM PIM DIMMs (896 DPUs).  These
dataclasses capture the published specifications that every cost model in
:mod:`repro.baselines` and :mod:`repro.hardware` is parameterized by, so
that changing a spec consistently changes the simulation.

All frequencies are in Hz, capacities in bytes, bandwidths in bytes/s and
power in watts unless a field name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

GiB = 1024**3
GB = 10**9
KiB = 1024
MiB = 1024**2


@dataclass(frozen=True)
class HardwareSpec:
    """Platform-level descriptor (one row of the paper's Table 1)."""

    name: str
    price_usd: float
    memory_bytes: int
    peak_power_w: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.price_usd <= 0 or self.memory_bytes <= 0:
            raise ConfigError(f"invalid spec for {self.name!r}")
        if self.peak_power_w <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise ConfigError(f"invalid spec for {self.name!r}")

    @property
    def memory_gb(self) -> float:
        return self.memory_bytes / GB

    @property
    def bandwidth_gb_per_s(self) -> float:
        return self.bandwidth_bytes_per_s / GB


@dataclass(frozen=True)
class CpuSpec(HardwareSpec):
    """Host CPU descriptor.

    ``flops`` is the aggregate single-precision FLOP/s available for the
    compute-bound LUT-construction stage; ``random_access_efficiency``
    discounts the streaming bandwidth for the pointer-chasing access
    pattern of the distance-calculation stage (the paper identifies this
    stage as memory-bound: 250M random accesses per query at 1B scale).
    """

    cores: int = 16
    frequency_hz: float = 2.10e9
    flops: float = 5.3e11
    random_access_efficiency: float = 0.35
    cache_bytes: int = 11 * MiB * 2


@dataclass(frozen=True)
class GpuSpec(HardwareSpec):
    """GPU descriptor (A100-class).

    ``topk_sync_us`` models the per-(query, probe) CUDA stream
    synchronization cost that the paper measures to dominate GPU runtime
    (64–89 % in the top-k stage, Figures 1 and 19). ``flops`` is FP32.
    """

    flops: float = 1.95e13
    sm_count: int = 108
    topk_sync_us: float = 1.6
    kernel_launch_us: float = 8.0


@dataclass(frozen=True)
class DpuSpec:
    """A single UPMEM DRAM Processing Unit (paper section 2.2)."""

    frequency_hz: float = 350e6
    max_tasklets: int = 24
    pipeline_stages: int = 14
    # Consecutive instructions of the SAME thread must be >= this many
    # cycles apart; with >= this many tasklets the pipeline issues one
    # instruction per cycle (paper section 5.3.2: QPS scales linearly up
    # to 11 tasklets, then saturates).
    pipeline_reissue_cycles: int = 11
    wram_bytes: int = 64 * KiB
    mram_bytes: int = 64 * MiB
    iram_bytes: int = 24 * KiB

    def __post_init__(self) -> None:
        if not 1 <= self.pipeline_reissue_cycles <= self.pipeline_stages:
            raise ConfigError("reissue interval cannot exceed pipeline depth")
        if self.max_tasklets < 1:
            raise ConfigError("a DPU needs at least one tasklet")


@dataclass(frozen=True)
class PimSystemSpec:
    """A host populated with UPMEM DIMMs.

    Topology per the paper: each DIMM houses 16 PIM chips x 8 DPUs =
    128 DPUs; 7 DIMMs => 896 DPUs, 56 GB MRAM, 162 W peak (23.22 W per
    DIMM per Falevoz & Legriel).  Host<->MRAM transfers are parallel
    across DPUs only when all per-DPU buffers are the same size,
    otherwise they serialize (paper section 2.2).
    """

    n_dimms: int = 7
    chips_per_dimm: int = 16
    dpus_per_chip: int = 8
    dpu: DpuSpec = field(default_factory=DpuSpec)
    dimm_peak_power_w: float = 23.22
    dimm_price_usd: float = 400.0
    # Aggregate host<->MRAM bandwidth for uniform parallel transfers.
    host_transfer_bytes_per_s: float = 2.0e9
    # Effective MRAM streaming bandwidth of one DPU; x 896 DPUs this
    # yields ~0.6 TB/s, matching the 612.5 GB/s aggregate in Table 1.
    dpu_mram_bytes_per_s: float = 683.7e6

    def __post_init__(self) -> None:
        if min(self.n_dimms, self.chips_per_dimm, self.dpus_per_chip) < 1:
            raise ConfigError("PIM topology dimensions must be positive")

    @property
    def n_dpus(self) -> int:
        return self.n_dimms * self.chips_per_dimm * self.dpus_per_chip

    @property
    def total_mram_bytes(self) -> int:
        return self.n_dpus * self.dpu.mram_bytes

    @property
    def peak_power_w(self) -> float:
        return self.n_dimms * self.dimm_peak_power_w

    @property
    def price_usd(self) -> float:
        return self.n_dimms * self.dimm_price_usd

    @property
    def aggregate_bandwidth_bytes_per_s(self) -> float:
        return self.n_dpus * self.dpu_mram_bytes_per_s

    def with_n_dpus(self, n_dpus: int) -> "PimSystemSpec":
        """Return a spec scaled to exactly ``n_dpus`` DPUs.

        Used by the scalability study (Figure 20), which sweeps 500-2560
        DPUs.  Partial DIMMs are allowed for power accounting: power
        scales with DPU count at 23.22/128 W per DPU.
        """
        if n_dpus < 1:
            raise ConfigError("n_dpus must be positive")
        per_dimm = self.chips_per_dimm * self.dpus_per_chip
        # Represent as 1 "dimm" of n_dpus chips x 1 dpu to keep the
        # topology product exact while preserving per-DPU parameters.
        return replace(
            self,
            n_dimms=1,
            chips_per_dimm=n_dpus,
            dpus_per_chip=1,
            dimm_peak_power_w=self.dimm_peak_power_w * n_dpus / per_dimm,
            dimm_price_usd=self.dimm_price_usd * n_dpus / per_dimm,
        )

    def as_hardware_spec(self) -> HardwareSpec:
        """Summarize the PIM system as a Table-1 row."""
        return HardwareSpec(
            name=f"{self.n_dpus}-DPU UPMEM PIM",
            price_usd=self.price_usd,
            memory_bytes=self.total_mram_bytes,
            peak_power_w=self.peak_power_w,
            bandwidth_bytes_per_s=self.aggregate_bandwidth_bytes_per_s,
        )


# --- Published Table 1 instances -------------------------------------------

XEON_4110_PAIR = CpuSpec(
    name="2x Intel Xeon Silver 4110 + 4x DDR4",
    price_usd=1400.0,
    memory_bytes=128 * GB,
    peak_power_w=190.0,
    bandwidth_bytes_per_s=85.3 * GB,
    cores=16,
    frequency_hz=2.10e9,
)

A100_PCIE_80GB = GpuSpec(
    name="NVIDIA A100 PCI-e 80GB",
    price_usd=20000.0,
    memory_bytes=80 * GB,
    peak_power_w=300.0,
    bandwidth_bytes_per_s=1935 * GB,
)

UPMEM_7_DIMMS = PimSystemSpec(n_dimms=7)

#: Default resident tasklet count: the pipeline saturation point (paper
#: section 5.3.2 — QPS scales linearly up to 11 tasklets, then plateaus).
#: Engines and configs import this instead of re-spelling the number, so
#: changing ``DpuSpec.pipeline_reissue_cycles`` changes every default.
DEFAULT_N_TASKLETS = DpuSpec().pipeline_reissue_cycles

TABLE1_ROWS = (
    XEON_4110_PAIR,
    A100_PCIE_80GB,
    UPMEM_7_DIMMS.as_hardware_spec(),
)
