"""PIM system topology and host<->MRAM transfer model.

A :class:`PimSystem` owns the full set of simulated DPUs (896 for the
paper's 7-DIMM testbed) plus the host-side transfer model.  The key
architectural quirk it models (paper section 2.2): host->MRAM transfers
across DPUs proceed *in parallel only when every per-DPU buffer has the
same size*; otherwise the driver falls back to sequential per-DPU copies.
UpANNS exploits this by padding scheduling metadata to uniform sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ConfigError
from repro.hardware.dpu import DPU
from repro.hardware.mram import MramModel
from repro.hardware.specs import DEFAULT_N_TASKLETS, PimSystemSpec
from repro.sim.span import PIM_BUS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import BatchWork
    from repro.sim.schedule import BatchSchedule
    from repro.sim.span import Span


@dataclass
class TransferStats:
    """Outcome of a host<->MRAM transfer batch."""

    total_bytes: int
    parallel: bool
    seconds: float


@dataclass
class PimSystem:
    """The simulated UPMEM deployment: topology + DPU instances."""

    spec: PimSystemSpec = field(default_factory=PimSystemSpec)
    n_tasklets: int = DEFAULT_N_TASKLETS
    mram_model: MramModel = field(default_factory=MramModel)
    dpus: list[DPU] = field(init=False)

    def __post_init__(self) -> None:
        if not 1 <= self.n_tasklets <= self.spec.dpu.max_tasklets:
            raise ConfigError(f"invalid tasklet count {self.n_tasklets}")
        self.dpus = [
            DPU(
                dpu_id=i,
                spec=self.spec.dpu,
                mram_model=self.mram_model,
                n_tasklets=self.n_tasklets,
            )
            for i in range(self.spec.n_dpus)
        ]

    @property
    def n_dpus(self) -> int:
        return self.spec.n_dpus

    def dpu(self, dpu_id: int) -> DPU:
        return self.dpus[dpu_id]

    def reset_counters(self) -> None:
        for d in self.dpus:
            d.reset_counters()

    # --- Host <-> MRAM transfers ---------------------------------------

    def host_transfer_seconds(self, buffer_sizes: Sequence[int]) -> TransferStats:
        """Time to push (or pull) one buffer per DPU from the host.

        Uniform sizes -> one parallel transfer at the aggregate host
        bandwidth; non-uniform -> serialized copies (each at the
        aggregate bandwidth since only one DPU is active at a time,
        which is the degradation the paper warns about).
        """
        sizes = [int(s) for s in buffer_sizes if s > 0]
        if not sizes:
            return TransferStats(0, True, 0.0)
        bw = self.spec.host_transfer_bytes_per_s
        total = sum(sizes)
        uniform = len(set(sizes)) == 1
        if uniform:
            # All DPUs receive concurrently; wall time is one buffer's
            # worth at full host bandwidth.
            seconds = sizes[0] / bw
        else:
            seconds = total / bw
        return TransferStats(total, uniform, seconds)

    def broadcast_seconds(self, size_bytes: int) -> float:
        """Same buffer to all DPUs (e.g. the query batch)."""
        if size_bytes <= 0:
            return 0.0
        return size_bytes / self.spec.host_transfer_bytes_per_s

    def gather_seconds(self, per_dpu_bytes: Iterable[int]) -> TransferStats:
        """Pull per-DPU result buffers back to the host."""
        return self.host_transfer_seconds(list(per_dpu_bytes))

    # --- Span-recording transfer API -----------------------------------
    # The engines account transfer time by emitting spans onto the
    # shared ``pim_bus`` lane of a schedule; these wrappers keep the
    # timing model and the event emission in one place.

    def record_broadcast(
        self,
        schedule: "BatchSchedule",
        size_bytes: int,
        *,
        stage: str,
        start_s: float | None = None,
    ) -> "Span":
        """Charge a same-buffer-to-all-DPUs push as a ``pim_bus`` span."""
        seconds = self.broadcast_seconds(size_bytes)
        if start_s is None:
            return schedule.record(PIM_BUS, stage, seconds)
        return schedule.record_at(PIM_BUS, stage, start_s, seconds)

    def record_transfer(
        self,
        schedule: "BatchSchedule",
        buffer_sizes: Sequence[int],
        *,
        stage: str,
        start_s: float | None = None,
    ) -> "Span":
        """Charge a per-DPU buffer push/pull as a ``pim_bus`` span."""
        stats = self.host_transfer_seconds(buffer_sizes)
        if start_s is None:
            return schedule.record(PIM_BUS, stage, stats.seconds)
        return schedule.record_at(PIM_BUS, stage, start_s, stats.seconds)

    def record_gather(
        self,
        schedule: "BatchSchedule",
        per_dpu_bytes: Iterable[int],
        *,
        stage: str,
        start_s: float | None = None,
    ) -> "Span":
        """Charge a per-DPU result pull as a ``pim_bus`` span."""
        return self.record_transfer(
            schedule, list(per_dpu_bytes), stage=stage, start_s=start_s
        )

    # --- Work-emission transfer API --------------------------------------
    # Event-core counterparts of the record_* wrappers: the engines now
    # *describe* transfers as work items on the ``pim_bus`` lane and the
    # execution core (analytic replay or discrete-event) places them.

    def work_broadcast(
        self,
        work: "BatchWork",
        size_bytes: int,
        *,
        stage: str,
        after: Iterable[int | None] = (),
        trace_ids: Iterable[str] = (),
    ) -> int:
        """Describe a same-buffer-to-all-DPUs push as a bus work item."""
        return work.work(
            PIM_BUS,
            stage,
            self.broadcast_seconds(size_bytes),
            after=after,
            trace_ids=trace_ids,
        )

    def work_transfer(
        self,
        work: "BatchWork",
        buffer_sizes: Sequence[int],
        *,
        stage: str,
        after: Iterable[int | None] = (),
        trace_ids: Iterable[str] = (),
    ) -> int:
        """Describe a per-DPU buffer push/pull as a bus work item."""
        stats = self.host_transfer_seconds(buffer_sizes)
        return work.work(
            PIM_BUS, stage, stats.seconds, after=after, trace_ids=trace_ids
        )

    def work_gather(
        self,
        work: "BatchWork",
        per_dpu_bytes: Iterable[int],
        *,
        stage: str,
        after: Iterable[int | None] = (),
        trace_ids: Iterable[str] = (),
    ) -> int:
        """Describe a per-DPU result pull as a bus work item."""
        return self.work_transfer(
            work,
            list(per_dpu_bytes),
            stage=stage,
            after=after,
            trace_ids=trace_ids,
        )

    # --- Aggregate views -------------------------------------------------

    def makespan_seconds(self) -> float:
        """Batch execution time: the slowest DPU determines the makespan.

        The paper: "the largest workload among DPUs determines the
        overall performance" (section 5.3.1).
        """
        if not self.dpus:
            return 0.0
        return max(d.elapsed_seconds() for d in self.dpus)

    def load_ratio(self) -> float:
        """max/mean DPU busy time — the Figure 11 balance metric."""
        from repro.metrics.balance import max_mean_ratio

        return max_mean_ratio([d.elapsed_cycles() for d in self.dpus])

    def total_mram_used(self) -> int:
        return sum(d.mram_used_bytes for d in self.dpus)
