"""Simulated UPMEM PIM hardware substrate.

Functional + timing models of the architecture described in the paper's
section 2.2: DPUs (350 MHz, 24 threads, 14-stage pipeline), the
MRAM/WRAM/IRAM memory hierarchy, DMA constraints, host transfer
semantics, topology and power.
"""

from repro.hardware.counters import Counters, KernelResult, StageCycles
from repro.hardware.dpu import DPU
from repro.hardware.energy import DpuPowerModel, batch_energy_report, peak_energy
from repro.hardware.host import HostModel
from repro.hardware.microsim import MicroSim, Op, OpKind, barrier, compute_block, dma_read
from repro.hardware.mram import (
    MAX_DMA_BYTES,
    MIN_DMA_BYTES,
    MramModel,
    round_up_dma,
    validate_dma_size,
)
from repro.hardware.pipeline import BarrierModel, PipelineModel
from repro.hardware.power import (
    EfficiencyReport,
    dpus_for_power_budget,
    report_for_pim,
    report_for_spec,
)
from repro.hardware.rank import PimSystem, TransferStats
from repro.hardware.specs import (
    A100_PCIE_80GB,
    TABLE1_ROWS,
    UPMEM_7_DIMMS,
    XEON_4110_PAIR,
    CpuSpec,
    DpuSpec,
    GpuSpec,
    HardwareSpec,
    PimSystemSpec,
)
from repro.hardware.wram import WramAllocator, WramRegion

__all__ = [
    "A100_PCIE_80GB",
    "BarrierModel",
    "Counters",
    "CpuSpec",
    "DPU",
    "DpuPowerModel",
    "DpuSpec",
    "EfficiencyReport",
    "GpuSpec",
    "HardwareSpec",
    "HostModel",
    "KernelResult",
    "MAX_DMA_BYTES",
    "MIN_DMA_BYTES",
    "MicroSim",
    "MramModel",
    "Op",
    "OpKind",
    "barrier",
    "compute_block",
    "dma_read",
    "PimSystem",
    "PimSystemSpec",
    "PipelineModel",
    "StageCycles",
    "TABLE1_ROWS",
    "TransferStats",
    "UPMEM_7_DIMMS",
    "WramAllocator",
    "WramRegion",
    "batch_energy_report",
    "peak_energy",
    "XEON_4110_PAIR",
    "dpus_for_power_budget",
    "report_for_pim",
    "report_for_spec",
    "round_up_dma",
    "validate_dma_size",
]
