"""MRAM DMA transfer model.

UPMEM DPUs move data between the 64 MB MRAM and the 64 KB WRAM through an
explicit DMA engine.  Transfers must be 8-byte aligned, between 8 and
2048 bytes.  The paper's Figure 7 measures the transfer latency curve:
it grows *slowly* from 8 B up to roughly 256 B (fixed DMA setup cost
dominates) and *almost linearly* beyond (per-byte streaming dominates).
This knee is what makes ~16-vector reads optimal in Figure 17.

The model here is a two-slope piecewise-linear curve in cycles:

    latency(s) = setup + slow_rate * min(s, knee) + fast_rate * max(0, s - knee)

with default constants calibrated against the published UPMEM
characterization (Gomez-Luna et al., IEEE Access 2022) so that an 8 B
read costs ~78 cycles and a 2 KB read ~1 us at 350 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DmaAlignmentError

MIN_DMA_BYTES = 8
MAX_DMA_BYTES = 2048
DMA_ALIGN = 8


def validate_dma_size(size_bytes: int) -> None:
    """Raise :class:`DmaAlignmentError` unless ``size_bytes`` is legal.

    UPMEM constraint (paper section 4.2.1): multiples of 8 in [8, 2048].
    """
    if size_bytes < MIN_DMA_BYTES or size_bytes > MAX_DMA_BYTES:
        raise DmaAlignmentError(
            f"DMA size {size_bytes} outside [{MIN_DMA_BYTES}, {MAX_DMA_BYTES}]"
        )
    if size_bytes % DMA_ALIGN != 0:
        raise DmaAlignmentError(f"DMA size {size_bytes} not {DMA_ALIGN}-byte aligned")


def round_up_dma(size_bytes: int) -> int:
    """Round a payload size up to a legal DMA transfer size."""
    size = max(MIN_DMA_BYTES, (size_bytes + DMA_ALIGN - 1) // DMA_ALIGN * DMA_ALIGN)
    if size > MAX_DMA_BYTES:
        raise DmaAlignmentError(f"payload {size_bytes} exceeds max DMA {MAX_DMA_BYTES}")
    return size


@dataclass(frozen=True)
class MramModel:
    """Latency curve for a single MRAM<->WRAM DMA transaction."""

    setup_cycles: float = 77.0
    slow_rate_cycles_per_byte: float = 0.085
    fast_rate_cycles_per_byte: float = 0.47
    knee_bytes: int = 256

    def latency_cycles(self, size_bytes: int) -> float:
        """Cycles for one DMA transaction of ``size_bytes`` (validated)."""
        validate_dma_size(size_bytes)
        slow_part = min(size_bytes, self.knee_bytes)
        fast_part = max(0, size_bytes - self.knee_bytes)
        return (
            self.setup_cycles
            + self.slow_rate_cycles_per_byte * slow_part
            + self.fast_rate_cycles_per_byte * fast_part
        )

    def latency_curve(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`latency_cycles` (sizes must all be legal)."""
        sizes = np.asarray(sizes)
        for s in np.unique(sizes):
            validate_dma_size(int(s))
        slow = np.minimum(sizes, self.knee_bytes)
        fast = np.maximum(0, sizes - self.knee_bytes)
        return (
            self.setup_cycles
            + self.slow_rate_cycles_per_byte * slow
            + self.fast_rate_cycles_per_byte * fast
        )

    def bulk_transfer_cycles(self, total_bytes: int, chunk_bytes: int) -> float:
        """Cycles to stream ``total_bytes`` using ``chunk_bytes`` DMA reads.

        The tail transfer is rounded up to a legal DMA size, matching how
        a real kernel must over-fetch the final partial chunk.
        """
        if total_bytes <= 0:
            return 0.0
        validate_dma_size(chunk_bytes)
        full, tail = divmod(total_bytes, chunk_bytes)
        cycles = full * self.latency_cycles(chunk_bytes)
        if tail:
            cycles += self.latency_cycles(round_up_dma(tail))
        return cycles

    def transactions_for(self, total_bytes: int, chunk_bytes: int) -> int:
        """Number of DMA transactions for a bulk transfer."""
        if total_bytes <= 0:
            return 0
        validate_dma_size(chunk_bytes)
        return -(-total_bytes // chunk_bytes)

    def effective_bandwidth_bytes_per_cycle(self, chunk_bytes: int) -> float:
        """Sustained bytes/cycle when streaming with a given chunk size."""
        return chunk_bytes / self.latency_cycles(chunk_bytes)
