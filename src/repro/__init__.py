"""UpANNS reproduction: billion-scale ANNS on a simulated UPMEM PIM.

Public API
----------
The most common entry points are re-exported here:

* :class:`~repro.core.engine.UpANNSEngine` / :func:`~repro.core.engine.make_engine`
  — the paper's system (build + batch search on the PIM simulator);
* :class:`~repro.baselines.cpu.CpuEngine`, :class:`~repro.baselines.gpu.GpuEngine`,
  :func:`~repro.baselines.pim_naive.make_pim_naive` — the compared baselines;
* :class:`~repro.ivfpq.index.IVFPQIndex`, :class:`~repro.ivfpq.flat.FlatIndex`
  — the reference algorithm stack and exact ground truth;
* :mod:`repro.data` — synthetic SIFT/DEEP/SPACEV-like datasets and workloads.

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.baselines import CpuEngine, GpuEngine, make_pim_naive
from repro.core import (
    BatchResult,
    IVFFlatPimEngine,
    MultiHostEngine,
    OnlineService,
    UpANNSEngine,
    make_engine,
    make_flat_engine,
)
from repro.data import make_dataset, make_queries
from repro.ivfpq import (
    FlatIndex,
    IVFFlatIndex,
    IVFPQIndex,
    PQIndex,
    load_index,
    recall_1_at_k,
    recall_at_k,
    save_index,
)
from repro.metrics import LatencyRecorder

__version__ = "1.0.0"

__all__ = [
    "BatchResult",
    "CpuEngine",
    "FlatIndex",
    "GpuEngine",
    "IVFFlatIndex",
    "IVFFlatPimEngine",
    "IVFPQIndex",
    "LatencyRecorder",
    "MultiHostEngine",
    "OnlineService",
    "PQIndex",
    "IndexConfig",
    "QueryConfig",
    "SystemConfig",
    "UpANNSConfig",
    "UpANNSEngine",
    "__version__",
    "load_index",
    "make_dataset",
    "make_engine",
    "make_flat_engine",
    "make_pim_naive",
    "save_index",
    "make_queries",
    "recall_1_at_k",
    "recall_at_k",
]
