"""Telemetry: metrics registry, exposition, utilization reports, logging.

The observability layer of the reproduction (ROADMAP: "production-scale
system serving heavy traffic").  Four pieces:

* :mod:`repro.telemetry.registry` — process-wide ``MetricsRegistry``
  with ``Counter`` / ``Gauge`` / fixed-bucket ``Histogram`` families
  (labels supported, fully deterministic);
* :mod:`repro.telemetry.exposition` — Prometheus text format and a
  schema-versioned JSON snapshot, plus well-formedness validators;
* :mod:`repro.telemetry.report` — per-resource utilization and
  critical-path attribution derived from any ``BatchSchedule``;
* :mod:`repro.telemetry.schema` — machine-readable benchmark result
  records (``python -m repro.telemetry.schema`` validates them);
* :mod:`repro.telemetry.log` — structured stderr logging (simlint
  OBS001 forbids raw ``print()`` outside the CLI).
"""

from repro.telemetry.exposition import (
    SNAPSHOT_SCHEMA,
    prometheus_text,
    snapshot,
    validate_prometheus_text,
    validate_snapshot,
)
from repro.telemetry.log import StructuredLogger, configure, get_logger
from repro.telemetry.pipeline import (
    observe_batch,
    observe_dma,
    observe_faults,
    observe_lane_occupancy,
    observe_lane_stats,
    observe_query_latencies,
    observe_wram_peak,
)
from repro.telemetry.registry import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    get_registry,
    reset_metrics,
    set_registry,
)
from repro.telemetry.report import (
    ResourceUtilization,
    UtilizationReport,
    critical_path_attribution,
    utilization_report,
)
# schema re-exports are lazy so `python -m repro.telemetry.schema` does
# not trip runpy's found-in-sys.modules warning.
_SCHEMA_NAMES = (
    "RESULT_SCHEMA",
    "CHAOS_SCHEMA",
    "SERVE_SCHEMA",
    "make_result_record",
    "validate_result_record",
    "make_chaos_record",
    "validate_chaos_record",
    "make_serve_record",
    "validate_serve_record",
)


def __getattr__(name: str):
    if name in _SCHEMA_NAMES:
        from repro.telemetry import schema

        return getattr(schema, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CHAOS_SCHEMA",
    "DEFAULT_SECONDS_BUCKETS",
    "MetricsRegistry",
    "RESULT_SCHEMA",
    "ResourceUtilization",
    "SERVE_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "StructuredLogger",
    "UtilizationReport",
    "configure",
    "critical_path_attribution",
    "get_logger",
    "get_registry",
    "make_chaos_record",
    "make_result_record",
    "make_serve_record",
    "observe_batch",
    "observe_dma",
    "observe_faults",
    "observe_lane_occupancy",
    "observe_lane_stats",
    "observe_query_latencies",
    "observe_wram_peak",
    "prometheus_text",
    "reset_metrics",
    "set_registry",
    "snapshot",
    "utilization_report",
    "validate_chaos_record",
    "validate_prometheus_text",
    "validate_result_record",
    "validate_serve_record",
    "validate_snapshot",
]
