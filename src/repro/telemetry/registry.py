"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The PIM benchmarking literature (Gomez-Luna et al., "Benchmarking a New
Paradigm") makes its claims checkable through per-resource counters;
this module gives the simulator the same substrate.  A
:class:`MetricsRegistry` owns named metric *families*; a family with
label names fans out into one child per label-value combination (the
Prometheus data model).  Everything is deterministic: values change only
through explicit ``inc``/``set``/``observe`` calls — there are no
wallclock reads, so instrumenting a simulated hot path can never perturb
modeled time (the golden-timing guarantee).

Instrumented code fetches metrics through the get-or-create accessors
(:meth:`MetricsRegistry.counter` et al.), so swapping the process-wide
registry (tests, CLI runs) retargets every call site at once.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.errors import ConfigError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default histogram buckets for modeled-seconds observations.
DEFAULT_SECONDS_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigError(f"invalid metric name {name!r}")
    return name


def _check_labelnames(labelnames: tuple[str, ...]) -> tuple[str, ...]:
    for label in labelnames:
        if not _LABEL_RE.match(label):
            raise ConfigError(f"invalid label name {label!r}")
        if label == "le":
            raise ConfigError("label name 'le' is reserved for histograms")
    if len(set(labelnames)) != len(labelnames):
        raise ConfigError(f"duplicate label names in {labelnames!r}")
    return labelnames


class _Child:
    """One labelled time series of a metric family."""

    __slots__ = ("labels",)

    def __init__(self, labels: dict[str, str]):
        self.labels = labels


class CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, labels: dict[str, str]):
        super().__init__(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, labels: dict[str, str]):
        super().__init__(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """High-water update: keep the larger of current and ``value``."""
        if value > self.value:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramChild(_Child):
    __slots__ = ("buckets", "counts", "inf_count", "sum", "count", "exemplars")

    def __init__(self, labels: dict[str, str], buckets: tuple[float, ...]):
        super().__init__(labels)
        self.buckets = buckets
        self.counts = [0] * len(buckets)  # per-bucket (non-cumulative)
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0
        #: bucket index -> (value, trace id) of the worst observation
        #: that landed there (index ``len(buckets)`` is the +Inf bucket).
        self.exemplars: dict[int, tuple[float, str]] = {}

    def observe(self, value: float, count: int = 1, exemplar: str | None = None) -> None:
        """Record ``count`` identical observations of ``value``.

        The batched form exists for the DMA hot path: a bulk transfer is
        thousands of equal-size transactions, observed in O(1).
        ``exemplar`` ties the observation back to a trace id; each
        bucket keeps the exemplar of its largest value seen, so a
        latency histogram always names a worst offender per bucket.
        """
        if count < 0:
            raise ConfigError(f"observation count must be >= 0, got {count}")
        if count == 0:
            return
        i = bisect_left(self.buckets, value)
        if i < len(self.buckets):
            self.counts[i] += count
        else:
            self.inf_count += count
        self.sum += value * count
        self.count += count
        if exemplar is not None:
            prev = self.exemplars.get(i)
            # Ties go to the latest observation, matching worst_query()'s
            # (latency, trace id) tie-break when ids arrive in sorted order.
            if prev is None or value >= prev[0]:
                self.exemplars[i] = (float(value), exemplar)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, Prometheus ``le`` style."""
        out = []
        running = 0
        for le, n in zip(self.buckets, self.counts):
            running += n
            out.append((le, running))
        return out

    def worst_exemplar(self) -> str | None:
        """Trace id of the largest exemplar-carrying observation."""
        if not self.exemplars:
            return None
        return max(self.exemplars.values())[1]


@dataclass
class MetricFamily:
    """A named metric plus all its labelled children."""

    name: str
    type: str
    help: str
    labelnames: tuple[str, ...] = ()
    buckets: tuple[float, ...] = ()  # histograms only
    _children: dict[tuple[str, ...], _Child] = field(default_factory=dict)

    def labels(self, **labelvalues: str | int | float):
        """The child for one label-value combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ConfigError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        child = self._children.get(key)
        if child is None:
            labels = dict(zip(self.labelnames, key))
            if self.type == COUNTER:
                child = CounterChild(labels)
            elif self.type == GAUGE:
                child = GaugeChild(labels)
            else:
                child = HistogramChild(labels, self.buckets)
            self._children[key] = child
        return child

    def _default_child(self):
        if self.labelnames:
            raise ConfigError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                "use .labels(...) first"
            )
        return self.labels()

    # Label-less convenience forwarding.
    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def set_max(self, value: float) -> None:
        self._default_child().set_max(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def observe(
        self, value: float, count: int = 1, exemplar: str | None = None
    ) -> None:
        self._default_child().observe(value, count, exemplar)

    def children(self) -> list[_Child]:
        """Children in deterministic (sorted label values) order."""
        return [self._children[k] for k in sorted(self._children)]


class MetricsRegistry:
    """Name -> :class:`MetricFamily` map with get-or-create semantics."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._cache: dict[object, object] = {}

    def _get_or_create(
        self,
        name: str,
        type_: str,
        help_: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = (),
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.type != type_:
                raise ConfigError(
                    f"metric {name!r} already registered as {family.type}, "
                    f"requested {type_}"
                )
            if family.labelnames != labelnames:
                raise ConfigError(
                    f"metric {name!r} already registered with labels "
                    f"{family.labelnames}, requested {labelnames}"
                )
            if type_ == HISTOGRAM and buckets and family.buckets != buckets:
                raise ConfigError(
                    f"histogram {name!r} already registered with buckets "
                    f"{family.buckets}, requested {buckets}"
                )
            return family
        family = MetricFamily(
            name=_check_name(name),
            type=type_,
            help=help_,
            labelnames=_check_labelnames(tuple(labelnames)),
            buckets=buckets,
        )
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, COUNTER, help, tuple(labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, GAUGE, help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> MetricFamily:
        buckets = tuple(float(b) for b in buckets)
        if not buckets:
            raise ConfigError(f"histogram {name!r} needs at least one bucket")
        if list(buckets) != sorted(set(buckets)):
            raise ConfigError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        return self._get_or_create(name, HISTOGRAM, help, tuple(labelnames), buckets)

    def families(self) -> list[MetricFamily]:
        """All families in name order (deterministic exposition)."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def cached(self, key: object, factory):
        """Get-or-create an arbitrary handle memoized on this registry.

        Hot paths use this to hold resolved metric children (skipping the
        name/label lookups per call).  Entries live exactly as long as
        the families they reference: :meth:`reset` drops both, so a
        cached child can never outlive its family.
        """
        try:
            return self._cache[key]
        except KeyError:
            value = factory()
            self._cache[key] = value
            return value

    def reset(self) -> None:
        """Drop every registered family and cached handle (test isolation)."""
        self._families.clear()
        self._cache.clear()

    # Exposition lives in repro.telemetry.exposition; these forwarders
    # keep the common calls one import away.
    def snapshot(self) -> dict:
        from repro.telemetry.exposition import snapshot

        return snapshot(self)

    def prometheus_text(self) -> str:
        from repro.telemetry.exposition import prometheus_text

        return prometheus_text(self)


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry instrumented code reports into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def reset_metrics() -> None:
    """Clear the process-wide registry in place (test/CLI-run isolation)."""
    _default_registry.reset()
