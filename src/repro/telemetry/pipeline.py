"""Shared metric definitions for the instrumented online pipelines.

Engines call :func:`observe_batch` once per served batch; the hardware
models call the ``observe_*`` helpers from their charge paths.  All
helpers write into the process-wide registry via get-or-create, so they
are safe to call before any explicit registry setup and retarget
automatically when tests swap the registry.

Nothing here reads the wallclock or feeds back into the timing models:
metrics observe modeled quantities, they never produce them (the
golden-timing tests pin this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.telemetry.registry import (
    DEFAULT_SECONDS_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    get_registry,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import LaneStats
    from repro.sim.schedule import BatchSchedule, BatchTiming

#: DMA transaction sizes are legal in [8, MAX_DMA_BYTES]; power-of-two
#: buckets ending at the hardware ceiling.
DMA_BUCKETS = tuple(float(2**i) for i in range(3, 12))
#: Queries per batch; 2048 here is a workload knob, not the DMA limit.
BATCH_SIZE_BUCKETS = (1.0, 8.0, 32.0, 128.0, 512.0, 2048.0)  # simlint: ignore[HW001]
#: Outstanding requests on one exclusive FIFO lane (in-flight + queued).
LANE_DEPTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

#: Stage labels for the six BatchTiming scalars.
TIMING_STAGES = (
    ("cluster_filter", "host_filter_s"),
    ("schedule", "host_schedule_s"),
    ("transfer_in", "transfer_in_s"),
    ("dpu", "dpu_makespan_s"),
    ("transfer_out", "transfer_out_s"),
    ("aggregate", "host_aggregate_s"),
)


def _dma_children(reg: MetricsRegistry, direction: str):
    """Cached (bytes counter child, size histogram child) for a direction."""
    return reg.cached(
        ("observe_dma", direction),
        lambda: (
            reg.counter(
                "repro_mram_dma_bytes_total",
                "bytes moved across the MRAM<->WRAM DMA engine",
                ("direction",),
            ).labels(direction=direction),
            reg.histogram(
                "repro_mram_dma_transfer_bytes",
                "per-DMA-transaction transfer size",
                ("direction",),
                buckets=DMA_BUCKETS,
            ).labels(direction=direction),
        ),
    )


def dma_observations(total_bytes: int, chunk_bytes: int) -> tuple[tuple[int, int], ...]:
    """One bulk stream as pre-aggregated (transfer size, count) pairs:
    ``full`` chunk-sized transactions plus one rounded tail."""
    if total_bytes <= 0:
        return ()
    full, tail = divmod(total_bytes, chunk_bytes)
    obs = []
    if full:
        obs.append((chunk_bytes, full))
    if tail:
        from repro.hardware.mram import round_up_dma

        obs.append((round_up_dma(tail), 1))
    return tuple(obs)


def observe_dma(
    direction: str,
    total_bytes: int,
    chunk_bytes: int,
    *,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record one bulk MRAM<->WRAM stream: bytes moved + per-transaction
    size histogram (``full`` chunk-sized reads plus one rounded tail)."""
    if total_bytes <= 0:
        return
    reg = registry if registry is not None else get_registry()
    bytes_child, hist = _dma_children(reg, direction)
    bytes_child.inc(total_bytes)
    for size, count in dma_observations(total_bytes, chunk_bytes):
        hist.observe(size, count=count)


def observe_dma_batch(
    direction: str,
    total_bytes: int,
    observations: "dict[int, int] | list[tuple[int, int]]",
    *,
    registry: MetricsRegistry | None = None,
) -> None:
    """Flush many streams' pre-aggregated transactions in one call.

    Counter and histogram updates are integer-valued, so draining an
    accumulated ``{transfer size: count}`` map leaves the registry in
    exactly the state per-stream :func:`observe_dma` calls would — the
    grouped kernel uses this to replay thousands of charges cheaply.
    """
    if total_bytes <= 0:
        return
    reg = registry if registry is not None else get_registry()
    bytes_child, hist = _dma_children(reg, direction)
    bytes_child.inc(total_bytes)
    items = observations.items() if isinstance(observations, dict) else observations
    for size, count in items:
        hist.observe(size, count=count)


def observe_wram_peak(peak_bytes: int, *, registry: MetricsRegistry | None = None) -> None:
    """High-water mark across every WRAM allocator in the process."""
    reg = registry if registry is not None else get_registry()
    reg.gauge(
        "repro_wram_peak_bytes",
        "allocation high-water mark across all WRAM scratchpads",
    ).set_max(peak_bytes)


def observe_batch(
    engine: str,
    n_queries: int,
    timing: "BatchTiming",
    *,
    busy_cycles: float = 0.0,
    active_dpus: int = 0,
    n_tasklets: int = 0,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record one served batch: volume, sizes, per-stage seconds, DPU load."""
    reg = registry if registry is not None else get_registry()
    reg.counter(
        "repro_queries_total", "queries served", ("engine",)
    ).labels(engine=engine).inc(n_queries)
    reg.counter(
        "repro_batches_total", "batches served", ("engine",)
    ).labels(engine=engine).inc()
    reg.histogram(
        "repro_batch_size",
        "queries per served batch",
        ("engine",),
        buckets=BATCH_SIZE_BUCKETS,
    ).labels(engine=engine).observe(n_queries)
    stage_counter = reg.counter(
        "repro_stage_seconds_total",
        "modeled seconds per pipeline stage",
        ("engine", "stage"),
    )
    for stage, attr in TIMING_STAGES:
        stage_counter.labels(engine=engine, stage=stage).inc(getattr(timing, attr))
    # The retry stage exists only under fault injection; the label child
    # is created lazily so fault-free metric snapshots are unchanged.
    if timing.retry_s > 0:
        stage_counter.labels(engine=engine, stage="retry").inc(timing.retry_s)
    if busy_cycles > 0:
        reg.counter(
            "repro_dpu_busy_cycles_total", "DPU busy cycles across all lanes"
        ).inc(busy_cycles)
    if active_dpus > 0:
        reg.gauge(
            "repro_dpu_active", "DPUs with nonzero work in the last batch"
        ).set(active_dpus)
    if n_tasklets > 0:
        reg.gauge(
            "repro_dpu_tasklets",
            "tasklet occupancy per DPU (WRAM-plan effective)",
        ).set(n_tasklets)


def observe_lane_stats(
    lane_stats: "Mapping[str, LaneStats]",
    *,
    schedule: "BatchSchedule | None" = None,
    registry: MetricsRegistry | None = None,
) -> None:
    """Publish the event core's per-lane FIFO bookkeeping.

    ``lane_stats`` is :attr:`~repro.sim.events.EventEngine.lane_stats`
    after a run; each lane becomes a ``repro_lane_*`` series labelled by
    resource.  When the run's schedule is supplied, the busy/idle split
    and the queue-depth/queue-wait histograms are derived from its spans
    too (:func:`observe_lane_occupancy`).
    """
    reg = registry if registry is not None else get_registry()
    dispatched = reg.gauge(
        "repro_lane_dispatched",
        "items the lane completed in the last event run",
        ("resource",),
    )
    queued = reg.gauge(
        "repro_lane_queued",
        "arrivals that found the lane busy and had to queue",
        ("resource",),
    )
    cancelled = reg.gauge(
        "repro_lane_cancelled",
        "items cancelled because the lane was fenced by a fault",
        ("resource",),
    )
    peak = reg.gauge(
        "repro_lane_peak_outstanding",
        "high-water mark of in-flight + queued items on the lane",
        ("resource",),
    )
    for resource in sorted(lane_stats):
        stats = lane_stats[resource]
        dispatched.labels(resource=resource).set(stats.dispatched)
        queued.labels(resource=resource).set(stats.queued)
        cancelled.labels(resource=resource).set(stats.cancelled)
        peak.labels(resource=resource).set_max(stats.peak_outstanding)
    if schedule is not None:
        observe_lane_occupancy(schedule, registry=reg)


def observe_lane_occupancy(
    schedule: "BatchSchedule",
    *,
    registry: MetricsRegistry | None = None,
) -> None:
    """Rolling per-lane occupancy derived from a (traced) schedule.

    Sweeps each lane's spans as a ready/complete event series — a span's
    ready time is ``t0 - wait_s`` from its trace metadata, so queued
    time counts as outstanding — and publishes the busy/idle split, an
    outstanding-depth histogram sampled at every arrival, and a
    queue-wait histogram carrying trace-id exemplars.
    """
    reg = registry if registry is not None else get_registry()
    makespan = schedule.makespan
    busy_g = reg.gauge(
        "repro_lane_busy_seconds", "seconds the lane was executing", ("resource",)
    )
    idle_g = reg.gauge(
        "repro_lane_idle_seconds",
        "makespan seconds the lane sat idle",
        ("resource",),
    )
    depth_h = reg.histogram(
        "repro_lane_outstanding",
        "outstanding items (in-flight + queued) sampled at each arrival",
        ("resource",),
        buckets=LANE_DEPTH_BUCKETS,
    )
    wait_h = reg.histogram(
        "repro_lane_queue_wait_seconds",
        "per-item FIFO queue wait (ready -> dispatch gap)",
        ("resource",),
    )
    for resource in sorted(schedule.timelines):
        spans = schedule.timelines[resource].spans
        busy = sum(s.duration for s in spans)
        busy_g.labels(resource=resource).set(busy)
        idle_g.labels(resource=resource).set(max(0.0, makespan - busy))
        events: list[tuple[float, int]] = []
        for s in spans:
            tr = s.trace
            wait = tr.wait_s if tr is not None else 0.0
            events.append((s.t0 - wait, 1))
            events.append((s.t1, -1))
            if tr is not None and wait > 0.0:
                wait_h.labels(resource=resource).observe(
                    wait,
                    exemplar=tr.trace_ids[0] if tr.trace_ids else None,
                )
        depth = 0
        depth_child = depth_h.labels(resource=resource)
        # Sorting (t, delta) retires completions before same-instant
        # arrivals, so back-to-back FIFO dispatch never reads depth 2.
        for _t, delta in sorted(events):
            depth += delta
            if delta > 0:
                depth_child.observe(depth)


def observe_query_latencies(
    latencies: Mapping[str, float],
    *,
    registry: MetricsRegistry | None = None,
) -> MetricFamily:
    """Per-query end-to-end latency histogram with trace-id exemplars.

    Each bucket remembers the trace id of the worst latency that landed
    in it, so a tail bucket can always be chased back to a concrete
    query (``repro.cli explain --query <id>``).
    """
    reg = registry if registry is not None else get_registry()
    hist = reg.histogram(
        "repro_query_latency_seconds",
        "per-query end-to-end modeled latency",
        buckets=DEFAULT_SECONDS_BUCKETS,
    )
    for qid in sorted(latencies):
        hist.observe(latencies[qid], exemplar=qid)
    return hist


def observe_faults(
    engine: str,
    *,
    injected: int = 0,
    retries: int = 0,
    rerouted_pairs: int = 0,
    dropped_pairs: int = 0,
    dead_units: int = 0,
    coverage_floor: float = 1.0,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record one batch's fault activity (``repro_faults_*`` family).

    Called only when a :class:`~repro.faults.FaultPlan` is injected, so
    fault-free metric snapshots contain none of these series.
    """
    reg = registry if registry is not None else get_registry()
    events = reg.counter(
        "repro_faults_injected_total",
        "fault events applied by the injection plane",
        ("engine",),
    ).labels(engine=engine)
    if injected:
        events.inc(injected)
    if retries:
        reg.counter(
            "repro_faults_retries_total",
            "transfer retry attempts charged to the timeline",
            ("engine",),
        ).labels(engine=engine).inc(retries)
    if rerouted_pairs:
        reg.counter(
            "repro_faults_rerouted_pairs_total",
            "(query, cluster) pairs failed over to a surviving replica",
            ("engine",),
        ).labels(engine=engine).inc(rerouted_pairs)
    if dropped_pairs:
        reg.counter(
            "repro_faults_dropped_pairs_total",
            "(query, cluster) pairs lost to clusters with no live replica",
            ("engine",),
        ).labels(engine=engine).inc(dropped_pairs)
    reg.gauge(
        "repro_faults_dead_units",
        "units (DPUs or hosts) currently dead",
        ("engine",),
    ).labels(engine=engine).set(dead_units)
    reg.gauge(
        "repro_faults_coverage_floor",
        "worst per-query served-cluster fraction in the last batch",
        ("engine",),
    ).labels(engine=engine).set(coverage_floor)


def observe_executor(
    backend: str,
    *,
    workers: int,
    tasks: int,
    dpu_groups: int,
    queries_shipped: int,
    max_chunk_pairs: int = 0,
    registry: MetricsRegistry | None = None,
) -> None:
    """Record one parallel dispatch (``repro_executor_*`` family).

    Called per batch by the ``repro.parallel`` process backend; serial
    batches emit nothing, so serial metric snapshots are unchanged.
    ``queries_shipped`` counts query rows crossing the pipe (duplicates
    across chunks included) — the knob the shared-memory design keeps
    small relative to index bytes.
    """
    reg = registry if registry is not None else get_registry()
    reg.gauge(
        "repro_executor_workers",
        "worker processes in the active executor pool",
        ("backend",),
    ).labels(backend=backend).set(workers)
    reg.counter(
        "repro_executor_batches_total",
        "batches dispatched through the parallel executor",
        ("backend",),
    ).labels(backend=backend).inc()
    reg.counter(
        "repro_executor_tasks_total",
        "worker tasks (DPU-group chunks) dispatched",
        ("backend",),
    ).labels(backend=backend).inc(tasks)
    reg.counter(
        "repro_executor_dpu_groups_total",
        "DPU worklists executed out-of-process",
        ("backend",),
    ).labels(backend=backend).inc(dpu_groups)
    reg.counter(
        "repro_executor_queries_shipped_total",
        "query rows serialized to workers (cross-chunk duplicates included)",
        ("backend",),
    ).labels(backend=backend).inc(queries_shipped)
    if max_chunk_pairs > 0:
        reg.gauge(
            "repro_executor_chunk_pairs_peak",
            "largest (query, cluster) pair count on one worker task",
            ("backend",),
        ).labels(backend=backend).set_max(max_chunk_pairs)
