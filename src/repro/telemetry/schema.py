"""Schema-versioned, machine-readable benchmark result records.

Every harness figure run (and ``repro.cli metrics --json``) emits one
record so the perf trajectory is diffable across commits::

    {
      "schema": "repro.bench.result/v1",
      "name": "fig16_batch_size",
      "config": {...},                      # free-form, str keys
      "qps": {"mean":, "min":, "max":, "n_batches":},
      "stage_seconds": {"cluster_filter":, ..., "dpu":, ...},
      "utilization": {"makespan_s":, "resources": [...], "critical_path": {}},
      "metrics": {"schema": "repro.metrics/v1", "metrics": [...]}
    }

:func:`make_result_record` builds and validates one;
:func:`validate_result_record` returns structural errors.  Run as a
module to validate files from CI::

    python -m repro.telemetry.schema benchmarks/results/*.json
    python -m repro.telemetry.schema --prom scrape.prom
"""

from __future__ import annotations

import json
import sys
from typing import Any, Iterable

from repro.errors import ConfigError
from repro.telemetry.exposition import validate_prometheus_text, validate_snapshot
from repro.telemetry.log import get_logger

RESULT_SCHEMA = "repro.bench.result/v1"
PERF_SCHEMA = "repro.perf/v1"
CHAOS_SCHEMA = "repro.chaos/v1"
SANITIZE_SCHEMA = "repro.sanitize/v1"
SERVE_SCHEMA = "repro.serve/v1"

#: Stage keys the six-scalar :class:`~repro.sim.schedule.BatchTiming`
#: decomposes a batch into (the record may carry extra engine-specific
#: stages; these are the canonical ones).
BATCH_STAGES = (
    "cluster_filter",
    "schedule",
    "transfer_in",
    "dpu",
    "transfer_out",
    "aggregate",
)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def make_result_record(
    *,
    name: str,
    config: dict[str, Any],
    qps_values: Iterable[float],
    stage_seconds: dict[str, float],
    utilization: dict[str, Any],
    metrics: dict[str, Any],
) -> dict[str, Any]:
    """Assemble and validate one result record (raises on invalid)."""
    qps = [float(v) for v in qps_values]
    if not qps:
        raise ConfigError("a result record needs at least one QPS sample")
    record = {
        "schema": RESULT_SCHEMA,
        "name": name,
        "config": dict(config),
        "qps": {
            "mean": sum(qps) / len(qps),
            "min": min(qps),
            "max": max(qps),
            "n_batches": len(qps),
        },
        "stage_seconds": {k: float(v) for k, v in stage_seconds.items()},
        "utilization": utilization,
        "metrics": metrics,
    }
    errors = validate_result_record(record)
    if errors:
        raise ConfigError(
            "constructed an invalid result record: " + "; ".join(errors)
        )
    return record


def validate_result_record(record: Any) -> list[str]:
    """Structural errors in a result record (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return ["record must be a JSON object"]
    if record.get("schema") != RESULT_SCHEMA:
        errors.append(
            f"schema must be {RESULT_SCHEMA!r}, got {record.get('schema')!r}"
        )
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append("missing non-empty string 'name'")
    config = record.get("config")
    if not isinstance(config, dict) or not all(
        isinstance(k, str) for k in config
    ):
        errors.append("'config' must be an object with string keys")
    errors.extend(_validate_qps(record.get("qps")))
    errors.extend(_validate_stage_seconds(record.get("stage_seconds")))
    errors.extend(_validate_utilization(record.get("utilization")))
    metrics = record.get("metrics")
    if metrics is None:
        errors.append("missing 'metrics' registry snapshot")
    else:
        errors.extend(f"metrics: {e}" for e in validate_snapshot(metrics))
    return errors


def _validate_qps(qps: Any) -> list[str]:
    if not isinstance(qps, dict):
        return ["'qps' must be an object"]
    errors = []
    for key in ("mean", "min", "max"):
        if not _is_number(qps.get(key)) or qps.get(key, -1) < 0:
            errors.append(f"qps.{key} must be a non-negative number")
    n = qps.get("n_batches")
    if not isinstance(n, int) or n < 1:
        errors.append("qps.n_batches must be a positive integer")
    if not errors and not (qps["min"] <= qps["mean"] <= qps["max"]):
        errors.append("qps.mean must lie within [qps.min, qps.max]")
    return errors


def _validate_stage_seconds(stages: Any) -> list[str]:
    if not isinstance(stages, dict):
        return ["'stage_seconds' must be an object"]
    errors = []
    for key, value in stages.items():
        if not isinstance(key, str):
            errors.append(f"stage_seconds key {key!r} is not a string")
        elif not _is_number(value) or value < 0:
            errors.append(f"stage_seconds[{key!r}] must be a non-negative number")
    return errors


def _validate_utilization(util: Any) -> list[str]:
    if not isinstance(util, dict):
        return ["'utilization' must be an object"]
    errors = []
    if not _is_number(util.get("makespan_s")) or util.get("makespan_s", -1) < 0:
        errors.append("utilization.makespan_s must be a non-negative number")
    resources = util.get("resources")
    if not isinstance(resources, list):
        errors.append("utilization.resources must be a list")
        resources = []
    for i, row in enumerate(resources):
        where = f"utilization.resources[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(row.get("resource"), str):
            errors.append(f"{where}: missing string 'resource'")
        for key in ("busy_s", "idle_s"):
            if not _is_number(row.get(key)) or row.get(key, -1) < 0:
                errors.append(f"{where}.{key} must be a non-negative number")
        u = row.get("utilization")
        if not _is_number(u) or not (0.0 <= u <= 1.0):
            errors.append(f"{where}.utilization must be within [0, 1]")
        if not isinstance(row.get("n_spans"), int) or row.get("n_spans", -1) < 0:
            errors.append(f"{where}.n_spans must be a non-negative integer")
    path = util.get("critical_path")
    if not isinstance(path, dict):
        errors.append("utilization.critical_path must be an object")
    else:
        for key, value in path.items():
            if not isinstance(key, str) or not _is_number(value) or value < 0:
                errors.append(
                    f"critical_path[{key!r}] must map a string to a "
                    "non-negative number"
                )
    return errors


def make_perf_record(
    *,
    name: str,
    config: dict[str, Any],
    cases: list[dict[str, Any]],
) -> dict[str, Any]:
    """Assemble and validate one wall-clock perf record.

    Unlike :data:`RESULT_SCHEMA` records (modeled seconds), a perf
    record carries *host* wall-clock measurements from ``repro.perf``:
    one case per batch shape with looped / grouped-cold / grouped-warm
    timings, plus aggregate totals.  Speedups are ratios of wall-clock
    sums, so the record stays comparable across machines.
    """
    if not cases:
        raise ConfigError("a perf record needs at least one case")
    looped = sum(float(c.get("looped_s", 0.0)) for c in cases)
    warm = sum(float(c.get("grouped_warm_s", 0.0)) for c in cases)
    record = {
        "schema": PERF_SCHEMA,
        "name": name,
        "config": dict(config),
        "cases": [dict(c) for c in cases],
        "totals": {
            "looped_s": looped,
            "grouped_warm_s": warm,
            "speedup": (looped / warm) if warm > 0 else 0.0,
        },
    }
    errors = validate_perf_record(record)
    if errors:
        raise ConfigError(
            "constructed an invalid perf record: " + "; ".join(errors)
        )
    return record


#: Required per-case wall-clock fields of a perf record.
PERF_CASE_FIELDS = ("looped_s", "grouped_cold_s", "grouped_warm_s")

#: Optional per-case scalars added by later harness versions (sustained
#: throughput + median-based gating); validated when present so old
#: records stay valid.
PERF_CASE_OPTIONAL_FIELDS = ("qps_warm", "qps_cold", "speedup_warm_median")

#: Keys of an optional ``*_stats`` per-repeat variance block.
PERF_STATS_KEYS = ("min", "median", "stdev")


def _validate_perf_stats(where: str, stats: Any) -> list[str]:
    if not isinstance(stats, dict):
        return [f"{where} must be an object"]
    errors = []
    for key in PERF_STATS_KEYS:
        if not _is_number(stats.get(key)) or stats.get(key, -1) < 0:
            errors.append(f"{where}.{key} must be a non-negative number")
    return errors


def _validate_perf_workers(where: str, workers: Any) -> list[str]:
    """The optional ``workers`` sweep table: {"N": {warm_s, qps_warm,
    speedup_warm}} measured under the ``process:N`` backend."""
    if not isinstance(workers, dict):
        return [f"{where} must be an object"]
    errors = []
    for n_workers, point in workers.items():
        pw = f"{where}[{n_workers!r}]"
        if not (isinstance(n_workers, str) and n_workers.isdigit()):
            errors.append(f"{where} keys must be worker-count strings")
        if not isinstance(point, dict):
            errors.append(f"{pw} must be an object")
            continue
        for key in ("warm_s", "qps_warm", "speedup_warm"):
            if not _is_number(point.get(key)) or point.get(key, -1) < 0:
                errors.append(f"{pw}.{key} must be a non-negative number")
    return errors


def validate_perf_record(record: Any) -> list[str]:
    """Structural errors in a perf record (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return ["record must be a JSON object"]
    if record.get("schema") != PERF_SCHEMA:
        errors.append(
            f"schema must be {PERF_SCHEMA!r}, got {record.get('schema')!r}"
        )
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append("missing non-empty string 'name'")
    config = record.get("config")
    if not isinstance(config, dict) or not all(
        isinstance(k, str) for k in config
    ):
        errors.append("'config' must be an object with string keys")
    cases = record.get("cases")
    if not isinstance(cases, list) or not cases:
        errors.append("'cases' must be a non-empty list")
        cases = []
    for i, case in enumerate(cases):
        where = f"cases[{i}]"
        if not isinstance(case, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(case.get("name"), str) or not case.get("name"):
            errors.append(f"{where}: missing non-empty string 'name'")
        if not isinstance(case.get("shape"), dict):
            errors.append(f"{where}: 'shape' must be an object")
        if not isinstance(case.get("repeats"), int) or case.get("repeats", 0) < 1:
            errors.append(f"{where}: 'repeats' must be a positive integer")
        for key in PERF_CASE_FIELDS:
            if not _is_number(case.get(key)) or case.get(key, -1) < 0:
                errors.append(f"{where}.{key} must be a non-negative number")
        for key in ("speedup_cold", "speedup_warm"):
            if not _is_number(case.get(key)) or case.get(key, -1) < 0:
                errors.append(f"{where}.{key} must be a non-negative number")
        for key in PERF_CASE_OPTIONAL_FIELDS:
            if key in case and (
                not _is_number(case.get(key)) or case.get(key, -1) < 0
            ):
                errors.append(
                    f"{where}.{key} must be a non-negative number when present"
                )
        for key in ("looped_stats", "grouped_warm_stats"):
            if key in case:
                errors.extend(_validate_perf_stats(f"{where}.{key}", case[key]))
        if "workers" in case:
            errors.extend(
                _validate_perf_workers(f"{where}.workers", case["workers"])
            )
    totals = record.get("totals")
    if not isinstance(totals, dict):
        errors.append("'totals' must be an object")
    else:
        for key in ("looped_s", "grouped_warm_s", "speedup"):
            if not _is_number(totals.get(key)) or totals.get(key, -1) < 0:
                errors.append(f"totals.{key} must be a non-negative number")
    return errors


def make_chaos_record(
    *,
    name: str,
    config: dict[str, Any],
    plan: dict[str, Any],
    faults_injected: int,
    retries: int,
    rerouted_pairs: int,
    dropped_pairs: int,
    dead_units: list[int],
    coverage_floor: float,
    recall_delta: float,
    retry_seconds: float,
    recovery_batches: int,
    recovery_seconds: float,
    batches: list[dict[str, Any]],
) -> dict[str, Any]:
    """Assemble and validate one chaos-run record.

    The record summarizes a seeded fault-injection scenario end-to-end:
    what the plan injected, how the stack compensated (retries,
    re-routes, recovery refreshes) and what it cost functionally
    (coverage floor, recall delta vs the fault-free run) and in modeled
    time (``retry_seconds``, ``recovery_seconds``).
    """
    record = {
        "schema": CHAOS_SCHEMA,
        "name": name,
        "config": dict(config),
        "plan": dict(plan),
        "faults": {
            "injected": int(faults_injected),
            "retries": int(retries),
            "rerouted_pairs": int(rerouted_pairs),
            "dropped_pairs": int(dropped_pairs),
            "dead_units": [int(u) for u in dead_units],
        },
        "degradation": {
            "coverage_floor": float(coverage_floor),
            "recall_delta": float(recall_delta),
        },
        "recovery": {
            "batches": int(recovery_batches),
            "retry_seconds": float(retry_seconds),
            "recovery_seconds": float(recovery_seconds),
        },
        "batches": [dict(b) for b in batches],
    }
    errors = validate_chaos_record(record)
    if errors:
        raise ConfigError(
            "constructed an invalid chaos record: " + "; ".join(errors)
        )
    return record


#: Required per-batch fields of a chaos record.
CHAOS_BATCH_FIELDS = ("batch", "coverage_floor", "rerouted_pairs", "dropped_pairs")


def validate_chaos_record(record: Any) -> list[str]:
    """Structural errors in a chaos record (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return ["record must be a JSON object"]
    if record.get("schema") != CHAOS_SCHEMA:
        errors.append(
            f"schema must be {CHAOS_SCHEMA!r}, got {record.get('schema')!r}"
        )
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append("missing non-empty string 'name'")
    for section in ("config", "plan"):
        value = record.get(section)
        if not isinstance(value, dict) or not all(
            isinstance(k, str) for k in value
        ):
            errors.append(f"'{section}' must be an object with string keys")
    faults = record.get("faults")
    if not isinstance(faults, dict):
        errors.append("'faults' must be an object")
    else:
        for key in ("injected", "retries", "rerouted_pairs", "dropped_pairs"):
            if not isinstance(faults.get(key), int) or faults.get(key, -1) < 0:
                errors.append(f"faults.{key} must be a non-negative integer")
        dead = faults.get("dead_units")
        if not isinstance(dead, list) or not all(
            isinstance(u, int) and u >= 0 for u in dead
        ):
            errors.append("faults.dead_units must be a list of unit ids")
    degradation = record.get("degradation")
    if not isinstance(degradation, dict):
        errors.append("'degradation' must be an object")
    else:
        floor = degradation.get("coverage_floor")
        if not _is_number(floor) or not (0.0 <= floor <= 1.0):
            errors.append("degradation.coverage_floor must be within [0, 1]")
        if not _is_number(degradation.get("recall_delta")):
            errors.append("degradation.recall_delta must be a number")
    recovery = record.get("recovery")
    if not isinstance(recovery, dict):
        errors.append("'recovery' must be an object")
    else:
        if not isinstance(recovery.get("batches"), int) or recovery.get("batches", -1) < 0:
            errors.append("recovery.batches must be a non-negative integer")
        for key in ("retry_seconds", "recovery_seconds"):
            if not _is_number(recovery.get(key)) or recovery.get(key, -1) < 0:
                errors.append(f"recovery.{key} must be a non-negative number")
    batches = record.get("batches")
    if not isinstance(batches, list) or not batches:
        errors.append("'batches' must be a non-empty list")
        batches = []
    for i, row in enumerate(batches):
        where = f"batches[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(row.get("batch"), int) or row.get("batch", -1) < 0:
            errors.append(f"{where}.batch must be a non-negative integer")
        floor = row.get("coverage_floor")
        if not _is_number(floor) or not (0.0 <= floor <= 1.0):
            errors.append(f"{where}.coverage_floor must be within [0, 1]")
        for key in ("rerouted_pairs", "dropped_pairs"):
            if not isinstance(row.get(key), int) or row.get(key, -1) < 0:
                errors.append(f"{where}.{key} must be a non-negative integer")
    return errors


#: Count fields whose conservation a serve record must satisfy exactly:
#: every offered request ends in exactly one of the three terminal
#: buckets (``admitted`` means *executed*).
SERVE_LEDGER_FIELDS = ("offered", "admitted", "shed", "timed_out")
#: Latency-summary fields carried by totals and every tenant row.
SERVE_SUMMARY_FIELDS = ("goodput_qps", "p50_ms", "p95_ms", "p99_ms")
#: Required fields of one goodput-vs-offered-load curve point.
SERVE_CURVE_FIELDS = SERVE_LEDGER_FIELDS + (
    "offered_load",
    "offered_qps",
    "goodput_qps",
    "p99_ms",
    "coverage_floor",
    "shedding",
)


def make_serve_record(
    *,
    name: str,
    config: dict[str, Any],
    totals: dict[str, Any],
    tenants: list[dict[str, Any]],
    curve: list[dict[str, Any]],
) -> dict[str, Any]:
    """Assemble and validate one serving-run record.

    The record summarizes a seeded open-loop serving scenario: the
    offered/admitted/shed/timed-out ledger (total and per tenant, with
    per-reason shed counts), admitted-request latency percentiles and
    goodput, and a goodput-vs-offered-load curve across the swept load
    points (rows carry ``shedding`` so the shedding frontend and the
    no-shedding baseline can share one record).
    """
    record = {
        "schema": SERVE_SCHEMA,
        "name": name,
        "config": dict(config),
        "totals": dict(totals),
        "tenants": [dict(t) for t in tenants],
        "curve": [dict(p) for p in curve],
    }
    errors = validate_serve_record(record)
    if errors:
        raise ConfigError(
            "constructed an invalid serve record: " + "; ".join(errors)
        )
    return record


def _validate_serve_ledger(where: str, row: Any) -> list[str]:
    """Shared checks: count fields plus exact offered conservation."""
    errors = []
    for key in SERVE_LEDGER_FIELDS:
        if not isinstance(row.get(key), int) or row.get(key, -1) < 0:
            errors.append(f"{where}.{key} must be a non-negative integer")
    if not errors:
        balance = row["admitted"] + row["shed"] + row["timed_out"]
        if row["offered"] != balance:
            errors.append(
                f"{where}: offered ({row['offered']}) != admitted + shed "
                f"+ timed_out ({balance})"
            )
    return errors


def _validate_serve_summary(where: str, row: Any) -> list[str]:
    errors = []
    for key in SERVE_SUMMARY_FIELDS:
        if not _is_number(row.get(key)) or row.get(key, -1) < 0:
            errors.append(f"{where}.{key} must be a non-negative number")
    if not errors and not (
        row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
    ):
        errors.append(f"{where}: percentiles must be non-decreasing (p50<=p95<=p99)")
    return errors


def validate_serve_record(record: Any) -> list[str]:
    """Structural errors in a serve record (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return ["record must be a JSON object"]
    if record.get("schema") != SERVE_SCHEMA:
        errors.append(
            f"schema must be {SERVE_SCHEMA!r}, got {record.get('schema')!r}"
        )
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append("missing non-empty string 'name'")
    config = record.get("config")
    if not isinstance(config, dict) or not all(isinstance(k, str) for k in config):
        errors.append("'config' must be an object with string keys")
    totals = record.get("totals")
    if not isinstance(totals, dict):
        errors.append("'totals' must be an object")
        totals = {}
    else:
        errors += _validate_serve_ledger("totals", totals)
        errors += _validate_serve_summary("totals", totals)
        floor = totals.get("coverage_floor")
        if not _is_number(floor) or not (0.0 <= floor <= 1.0):
            errors.append("totals.coverage_floor must be within [0, 1]")
        if not isinstance(totals.get("batches"), int) or totals.get("batches", -1) < 0:
            errors.append("totals.batches must be a non-negative integer")
    tenants = record.get("tenants")
    if not isinstance(tenants, list) or not tenants:
        errors.append("'tenants' must be a non-empty list")
        tenants = []
    sums = dict.fromkeys(SERVE_LEDGER_FIELDS, 0)
    rows_ok = True
    for i, row in enumerate(tenants):
        where = f"tenants[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            rows_ok = False
            continue
        if not isinstance(row.get("tenant"), str) or not row.get("tenant"):
            errors.append(f"{where}: missing non-empty string 'tenant'")
        row_errors = _validate_serve_ledger(where, row)
        row_errors += _validate_serve_summary(where, row)
        errors += row_errors
        if row_errors:
            rows_ok = False
            continue
        for key in SERVE_LEDGER_FIELDS:
            sums[key] += row[key]
        reasons = row.get("shed_by_reason")
        if not isinstance(reasons, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and v >= 0
            for k, v in reasons.items()
        ):
            errors.append(
                f"{where}.shed_by_reason must map reason -> non-negative count"
            )
        elif sum(reasons.values()) != row["shed"]:
            errors.append(
                f"{where}: shed_by_reason sums to {sum(reasons.values())} "
                f"but shed is {row['shed']}"
            )
    if rows_ok and isinstance(totals, dict) and not errors:
        for key in SERVE_LEDGER_FIELDS:
            if sums[key] != totals.get(key):
                errors.append(
                    f"tenant {key} counts sum to {sums[key]} but "
                    f"totals.{key} is {totals.get(key)!r}"
                )
    curve = record.get("curve")
    if not isinstance(curve, list):
        errors.append("'curve' must be a list")
        curve = []
    for i, point in enumerate(curve):
        where = f"curve[{i}]"
        if not isinstance(point, dict):
            errors.append(f"{where}: not an object")
            continue
        errors += _validate_serve_ledger(where, point)
        for key in ("offered_load", "offered_qps", "goodput_qps", "p99_ms"):
            if not _is_number(point.get(key)) or point.get(key, -1) < 0:
                errors.append(f"{where}.{key} must be a non-negative number")
        floor = point.get("coverage_floor")
        if not _is_number(floor) or not (0.0 <= floor <= 1.0):
            errors.append(f"{where}.coverage_floor must be within [0, 1]")
        if not isinstance(point.get("shedding"), bool):
            errors.append(f"{where}.shedding must be a boolean")
    return errors


#: Required keys of one finding row in a sanitize record.
SANITIZE_FINDING_FIELDS = ("code", "location", "message")


def validate_sanitize_record(record: Any) -> list[str]:
    """Structural errors in a ``repro.sanitize/v1`` record.

    The record is what ``repro.cli sanitize`` emits: which inputs were
    checked, how many invariants each violated, and one row per finding
    (``code``/``location``/``message`` plus the source file).
    """
    errors: list[str] = []
    if not isinstance(record, dict):
        return ["record must be a JSON object"]
    if record.get("schema") != SANITIZE_SCHEMA:
        errors.append(
            f"schema must be {SANITIZE_SCHEMA!r}, got {record.get('schema')!r}"
        )
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append("missing non-empty string 'name'")
    inputs = record.get("inputs")
    if not isinstance(inputs, list):
        errors.append("'inputs' must be a list")
        inputs = []
    for i, row in enumerate(inputs):
        where = f"inputs[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(row.get("path"), str) or not row.get("path"):
            errors.append(f"{where}: missing non-empty string 'path'")
        if not isinstance(row.get("kind"), str) or not row.get("kind"):
            errors.append(f"{where}: missing non-empty string 'kind'")
        count = row.get("findings")
        if not isinstance(count, int) or count < 0:
            errors.append(f"{where}.findings must be a non-negative integer")
    findings = record.get("findings")
    if not isinstance(findings, list):
        errors.append("'findings' must be a list")
        findings = []
    for i, row in enumerate(findings):
        where = f"findings[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in SANITIZE_FINDING_FIELDS:
            if not isinstance(row.get(key), str) or not row.get(key):
                errors.append(f"{where}: missing non-empty string '{key}'")
    count = record.get("count")
    if not isinstance(count, int) or count < 0:
        errors.append("'count' must be a non-negative integer")
    elif count != len(findings):
        errors.append(
            f"'count' is {count} but the record carries {len(findings)} finding(s)"
        )
    return errors


def main(argv: list[str] | None = None) -> int:
    """Validate result-record JSON files (or, with ``--prom``, Prometheus
    text scrapes).  Exit 0 = all valid, 1 = invalid, 2 = usage/IO error."""
    argv = list(sys.argv[1:] if argv is None else argv)
    log = get_logger()
    prom = "--prom" in argv
    if prom:
        argv.remove("--prom")
    if not argv:
        log.error(
            "schema.usage",
            usage="python -m repro.telemetry.schema [--prom] FILE...",
        )
        return 2
    status = 0
    for path in argv:
        try:
            text = open(path, encoding="utf-8").read()
        except OSError as exc:
            log.error("schema.read_failed", file=path, error=str(exc))
            return 2
        kind = "prometheus"
        if prom:
            errors = validate_prometheus_text(text)
        else:
            try:
                record = json.loads(text)
            except json.JSONDecodeError as exc:
                record, errors = None, [f"not valid JSON: {exc}"]
            if record is not None:
                # Dispatch on the embedded schema tag so one invocation
                # can validate a mixed set of record files.
                if isinstance(record, dict) and record.get("schema") == PERF_SCHEMA:
                    kind, errors = "perf", validate_perf_record(record)
                elif isinstance(record, dict) and record.get("schema") == CHAOS_SCHEMA:
                    kind, errors = "chaos", validate_chaos_record(record)
                elif (
                    isinstance(record, dict)
                    and record.get("schema") == SANITIZE_SCHEMA
                ):
                    kind, errors = "sanitize", validate_sanitize_record(record)
                elif isinstance(record, dict) and record.get("schema") == SERVE_SCHEMA:
                    kind, errors = "serve", validate_serve_record(record)
                elif (
                    isinstance(record, dict)
                    and isinstance(record.get("schema"), str)
                    and record["schema"].startswith("repro.trace/")
                ):
                    # Lazy: keeps the schema CLI import-light (the trace
                    # validator pulls in repro.sim).
                    from repro.tracing.record import validate_trace_record

                    kind, errors = "trace", validate_trace_record(record)
                else:
                    kind, errors = "result", validate_result_record(record)
        if errors:
            for err in errors:
                log.error("schema.invalid", file=path, error=err)
            status = 1
        else:
            log.info("schema.valid", file=path, kind=kind)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
