"""Utilization reports derived from recorded :class:`BatchSchedule` events.

The paper's core claims are about *where time goes* — host sync vs MRAM
traffic vs DPU compute.  Given any schedule (one batch or a composed
stream), :func:`utilization_report` derives, per resource lane:

* busy seconds (sum of span durations) and idle seconds (makespan
  window minus busy),
* utilization (busy / makespan),

plus a **critical-path attribution**: walking backwards from the
makespan, each instant is attributed to the latest-starting span
covering it (ties broken deterministically), and uncovered instants to
``(wait)``.  The per-resource totals answer "which resource would I
speed up to shorten this run" — the utilization numbers alone cannot
(a lane can be 95% busy entirely off the critical path).

DPU lanes (``dpu/<i>``) are collapsed into one aggregate row by default
— a 896-DPU schedule would otherwise drown the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.sim.span import is_dpu_resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.schedule import BatchSchedule

#: Aggregate row name for collapsed DPU lanes.
DPU_GROUP = "dpu/*"
#: Critical-path key for instants no span covers.
WAIT = "(wait)"


@dataclass(frozen=True)
class ResourceUtilization:
    """Busy/idle accounting for one resource lane (or lane group)."""

    resource: str
    busy_s: float
    idle_s: float
    utilization: float  # busy / (n_lanes * makespan), in [0, 1]
    n_spans: int
    n_lanes: int = 1


@dataclass
class UtilizationReport:
    """Per-resource utilization + critical-path attribution."""

    makespan_s: float
    resources: list[ResourceUtilization]
    critical_path: dict[str, float]  # resource (or WAIT) -> seconds

    def resource(self, name: str) -> ResourceUtilization:
        for row in self.resources:
            if row.resource == name:
                return row
        raise KeyError(name)

    def to_json(self) -> dict[str, Any]:
        return {
            "makespan_s": self.makespan_s,
            "resources": [
                {
                    "resource": r.resource,
                    "busy_s": r.busy_s,
                    "idle_s": r.idle_s,
                    "utilization": r.utilization,
                    "n_spans": r.n_spans,
                    "n_lanes": r.n_lanes,
                }
                for r in self.resources
            ],
            "critical_path": dict(self.critical_path),
        }

    def render_text(self) -> str:
        """Human-readable table + critical-path summary."""
        from repro.analysis.report import render_table

        rows = [
            [
                r.resource,
                r.busy_s * 1e3,
                r.idle_s * 1e3,
                100.0 * r.utilization,
                r.n_spans,
            ]
            for r in self.resources
        ]
        table = render_table(
            ["resource", "busy ms", "idle ms", "util %", "spans"],
            rows,
            title=f"utilization over {self.makespan_s * 1e3:.3f} ms makespan",
            float_fmt="{:.3f}",
        )
        total = sum(self.critical_path.values())
        parts = [
            f"{name} {seconds * 1e3:.3f} ms ({100.0 * seconds / total:.1f}%)"
            for name, seconds in sorted(
                self.critical_path.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return table + "\ncritical path: " + (" | ".join(parts) if parts else "-")


def _group(resource: str, collapse_dpus: bool) -> str:
    return DPU_GROUP if collapse_dpus and is_dpu_resource(resource) else resource


def critical_path_attribution(
    schedule: "BatchSchedule", *, collapse_dpus: bool = True
) -> dict[str, float]:
    """Seconds of the makespan attributed to each resource (or ``(wait)``).

    Backward walk from the makespan: at time ``t`` the responsible span
    is the latest-starting span covering ``(t0 < t <= t1)``; ties broken
    by latest end, then resource name, so the attribution is fully
    deterministic.  When no span covers ``t``, the gap back to the
    previous span end is attributed to :data:`WAIT`.
    """
    spans = [
        span
        for tl in schedule.timelines.values()
        for span in tl.spans
        if span.duration > 0
    ]
    attribution: dict[str, float] = {}
    t = schedule.makespan
    if not spans or t <= 0:
        return attribution
    while t > 0:
        best = None
        best_key: tuple[float, float, str] | None = None
        for span in spans:
            if span.t0 < t <= span.t1:
                key = (span.t0, span.t1, span.resource)
                if best_key is None or key > best_key:
                    best, best_key = span, key
        if best is None:
            prev_end = max((s.t1 for s in spans if s.t1 < t), default=0.0)
            attribution[WAIT] = attribution.get(WAIT, 0.0) + (t - prev_end)
            t = prev_end
        else:
            group = _group(best.resource, collapse_dpus)
            attribution[group] = attribution.get(group, 0.0) + (t - best.t0)
            t = best.t0
    return attribution


def utilization_report(
    schedule: "BatchSchedule", *, collapse_dpus: bool = True
) -> UtilizationReport:
    """Derive per-resource busy/idle/utilization from any schedule."""
    makespan = schedule.makespan
    busy: dict[str, float] = {}
    n_spans: dict[str, int] = {}
    n_lanes: dict[str, int] = {}
    for resource, tl in schedule.timelines.items():
        group = _group(resource, collapse_dpus)
        busy[group] = busy.get(group, 0.0) + sum(s.duration for s in tl.spans)
        n_spans[group] = n_spans.get(group, 0) + len(tl.spans)
        n_lanes[group] = n_lanes.get(group, 0) + 1
    resources = []
    for group in sorted(busy):
        window = makespan * n_lanes[group]
        utilization = busy[group] / window if window > 0 else 0.0
        resources.append(
            ResourceUtilization(
                resource=group,
                busy_s=busy[group],
                idle_s=max(0.0, window - busy[group]),
                utilization=min(1.0, utilization),
                n_spans=n_spans[group],
                n_lanes=n_lanes[group],
            )
        )
    return UtilizationReport(
        makespan_s=makespan,
        resources=resources,
        critical_path=critical_path_attribution(
            schedule, collapse_dpus=collapse_dpus
        ),
    )
