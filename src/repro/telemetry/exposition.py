"""Exposition formats for a :class:`~repro.telemetry.registry.MetricsRegistry`.

Two formats, both deterministic (families in name order, children in
sorted label order):

* **Prometheus text format** (`prometheus_text`) — the de-facto scrape
  format: ``# HELP`` / ``# TYPE`` headers followed by samples;
  histograms expand into cumulative ``_bucket{le=...}`` series plus
  ``_sum`` / ``_count``.
* **JSON snapshot** (`snapshot`) — a schema-versioned object embedded in
  benchmark result records and the ``repro.cli metrics --json`` output.

Both have well-formedness validators used by tests and CI
(`validate_prometheus_text`, `validate_snapshot`).
"""

from __future__ import annotations

import math
from typing import Any

from repro.telemetry.registry import MetricsRegistry, get_registry

SNAPSHOT_SCHEMA = "repro.metrics/v1"

_TYPES = ("counter", "gauge", "histogram")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN, defensively; the registry never produces one
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [(k, v) for k, v in labels.items()] + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in items)
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry | None = None) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    registry = registry if registry is not None else get_registry()
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for child in family.children():
            if family.type == "histogram":
                for le, cumulative in child.cumulative_buckets():
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_labels_text(child.labels, (('le', _format_value(le)),))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{family.name}_bucket"
                    f"{_labels_text(child.labels, (('le', '+Inf'),))}"
                    f" {child.count}"
                )
                lines.append(
                    f"{family.name}_sum{_labels_text(child.labels)}"
                    f" {_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_labels_text(child.labels)} {child.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_labels_text(child.labels)}"
                    f" {_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(registry: MetricsRegistry | None = None) -> dict[str, Any]:
    """JSON-able snapshot of every family and child in the registry."""
    registry = registry if registry is not None else get_registry()
    metrics: list[dict[str, Any]] = []
    for family in registry.families():
        samples: list[dict[str, Any]] = []
        for child in family.children():
            if family.type == "histogram":
                sample: dict[str, Any] = {
                    "labels": dict(child.labels),
                    "buckets": [
                        [le, cumulative]
                        for le, cumulative in child.cumulative_buckets()
                    ],
                    "sum": child.sum,
                    "count": child.count,
                }
                # Classic text format has no exemplar syntax, so trace-id
                # exemplars ride only in the JSON snapshot.
                if child.exemplars:
                    sample["exemplars"] = [
                        {
                            "le": (
                                "+Inf"
                                if i >= len(child.buckets)
                                else child.buckets[i]
                            ),
                            "value": value,
                            "trace_id": trace_id,
                        }
                        for i, (value, trace_id) in sorted(
                            child.exemplars.items()
                        )
                    ]
                samples.append(sample)
            else:
                samples.append(
                    {"labels": dict(child.labels), "value": child.value}
                )
        metrics.append(
            {
                "name": family.name,
                "type": family.type,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": samples,
            }
        )
    return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}


# ---------------------------------------------------------------------------
# Well-formedness validators (tests + CI scrape check)
# ---------------------------------------------------------------------------

def validate_snapshot(payload: Any) -> list[str]:
    """Structural errors in a JSON snapshot (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["snapshot must be a JSON object"]
    if payload.get("schema") != SNAPSHOT_SCHEMA:
        errors.append(
            f"snapshot schema must be {SNAPSHOT_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, list):
        return errors + ["snapshot 'metrics' must be a list"]
    seen: set[str] = set()
    for i, metric in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(metric, dict):
            errors.append(f"{where}: not an object")
            continue
        name = metric.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing metric name")
            name = f"<{i}>"
        if name in seen:
            errors.append(f"{where}: duplicate metric name {name!r}")
        seen.add(name)
        if metric.get("type") not in _TYPES:
            errors.append(f"{where} ({name}): bad type {metric.get('type')!r}")
        samples = metric.get("samples")
        if not isinstance(samples, list):
            errors.append(f"{where} ({name}): 'samples' must be a list")
            continue
        for j, sample in enumerate(samples):
            swhere = f"{where} ({name}) sample[{j}]"
            if not isinstance(sample, dict):
                errors.append(f"{swhere}: not an object")
                continue
            if not isinstance(sample.get("labels"), dict):
                errors.append(f"{swhere}: missing labels object")
            if metric.get("type") == "histogram":
                errors.extend(_validate_snapshot_histogram(sample, swhere))
            elif not isinstance(sample.get("value"), (int, float)):
                errors.append(f"{swhere}: missing numeric value")
    return errors


def _validate_snapshot_histogram(sample: dict, where: str) -> list[str]:
    errors: list[str] = []
    buckets = sample.get("buckets")
    count = sample.get("count")
    if not isinstance(buckets, list):
        return [f"{where}: histogram needs a bucket list"]
    if not isinstance(count, int) or count < 0:
        errors.append(f"{where}: histogram needs a non-negative count")
        return errors
    if not isinstance(sample.get("sum"), (int, float)):
        errors.append(f"{where}: histogram needs a numeric sum")
    prev_le, prev_n = -math.inf, 0
    for pair in buckets:
        if not (isinstance(pair, list) and len(pair) == 2):
            errors.append(f"{where}: bucket entries must be [le, count] pairs")
            return errors
        le, n = pair
        if not isinstance(le, (int, float)) or not isinstance(n, int):
            errors.append(f"{where}: bucket [le, count] must be numeric")
            return errors
        if le <= prev_le:
            errors.append(f"{where}: bucket bounds not increasing at le={le}")
        if n < prev_n:
            errors.append(f"{where}: cumulative counts decrease at le={le}")
        prev_le, prev_n = le, n
    if prev_n > count:
        errors.append(
            f"{where}: last bucket count {prev_n} exceeds total count {count}"
        )
    exemplars = sample.get("exemplars")
    if exemplars is not None:
        if not isinstance(exemplars, list):
            return errors + [f"{where}: 'exemplars' must be a list"]
        for k, ex in enumerate(exemplars):
            if not (
                isinstance(ex, dict)
                and isinstance(ex.get("value"), (int, float))
                and isinstance(ex.get("trace_id"), str)
                and ex.get("trace_id")
                and (
                    isinstance(ex.get("le"), (int, float))
                    or ex.get("le") == "+Inf"
                )
            ):
                errors.append(
                    f"{where}: exemplar[{k}] needs le, numeric value and a "
                    "non-empty trace_id"
                )
    return errors


def validate_prometheus_text(text: str) -> list[str]:
    """Well-formedness errors for a Prometheus text scrape.

    Checks the invariants a scraper relies on: every sample belongs to a
    ``# TYPE``-declared family, HELP/TYPE come before samples, histogram
    series carry the ``_bucket``/``_sum``/``_count`` suffixes with a
    ``+Inf`` bucket and non-decreasing cumulative counts.
    """
    errors: list[str] = []
    declared: dict[str, str] = {}
    bucket_state: dict[str, tuple[float, float]] = {}  # series key -> (le, n)
    inf_seen: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                errors.append(f"line {lineno}: malformed {parts[1]} comment")
                continue
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in _TYPES:
                    errors.append(f"line {lineno}: unknown metric type")
                    continue
                if parts[2] in declared:
                    errors.append(f"line {lineno}: duplicate TYPE for {parts[2]}")
                declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        name, labels, value, err = _parse_sample_line(line, lineno)
        if err:
            errors.append(err)
            continue
        base, suffix = _family_of(name, declared)
        if base is None:
            errors.append(f"line {lineno}: sample {name!r} has no TYPE declaration")
            continue
        if declared[base] == "histogram":
            if suffix not in ("_bucket", "_sum", "_count"):
                errors.append(
                    f"line {lineno}: histogram sample {name!r} must use "
                    "_bucket/_sum/_count"
                )
                continue
            if suffix == "_bucket":
                le_raw = labels.get("le")
                if le_raw is None:
                    errors.append(f"line {lineno}: _bucket sample missing 'le'")
                    continue
                key = base + _labels_text(
                    {k: v for k, v in sorted(labels.items()) if k != "le"}
                )
                le = math.inf if le_raw == "+Inf" else _float_or_none(le_raw)
                if le is None:
                    errors.append(f"line {lineno}: bad le value {le_raw!r}")
                    continue
                prev_le, prev_n = bucket_state.get(key, (-math.inf, 0.0))
                if le <= prev_le:
                    errors.append(
                        f"line {lineno}: bucket bounds not increasing for {base}"
                    )
                if value < prev_n:
                    errors.append(
                        f"line {lineno}: cumulative bucket count decreases "
                        f"for {base}"
                    )
                bucket_state[key] = (le, value)
                if le == math.inf:
                    inf_seen.add(key)
        elif suffix:
            errors.append(
                f"line {lineno}: {declared[base]} sample {name!r} must not "
                "use a histogram suffix"
            )
    for key in bucket_state:
        if key not in inf_seen:
            errors.append(f"histogram series {key} has no +Inf bucket")
    return errors


def _family_of(name: str, declared: dict[str, str]) -> tuple[str | None, str]:
    """Resolve a sample name to (declared family, suffix)."""
    if name in declared:
        return name, ""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in declared:
            return name[: -len(suffix)], suffix
    return None, ""


def _float_or_none(raw: str) -> float | None:
    try:
        return float(raw)
    except ValueError:
        return None


def _parse_sample_line(
    line: str, lineno: int
) -> tuple[str, dict[str, str], float, str | None]:
    """Parse ``name{labels} value`` -> (name, labels, value, error)."""
    rest = line
    brace = rest.find("{")
    labels: dict[str, str] = {}
    if brace >= 0:
        name = rest[:brace]
        close = rest.rfind("}")
        if close < brace:
            return "", {}, 0.0, f"line {lineno}: unbalanced braces"
        body, rest = rest[brace + 1 : close], rest[close + 1 :]
        for item in filter(None, (p.strip() for p in _split_labels(body))):
            if "=" not in item:
                return "", {}, 0.0, f"line {lineno}: malformed label {item!r}"
            key, _, raw = item.partition("=")
            raw = raw.strip()
            if len(raw) < 2 or raw[0] != '"' or raw[-1] != '"':
                return "", {}, 0.0, f"line {lineno}: unquoted label value {raw!r}"
            labels[key.strip()] = (
                raw[1:-1]
                .replace(r"\n", "\n")
                .replace(r"\"", '"')
                .replace(r"\\", "\\")
            )
    else:
        name, _, rest = rest.partition(" ")
    parts = rest.split()
    if not name or not parts:
        return "", {}, 0.0, f"line {lineno}: expected 'name value'"
    if parts[0] == "+Inf":
        return name, labels, math.inf, None
    value = _float_or_none(parts[0])
    if value is None:
        return "", {}, 0.0, f"line {lineno}: non-numeric value {parts[0]!r}"
    return name, labels, value, None


def _split_labels(body: str) -> list[str]:
    """Split a label body on commas outside quoted values."""
    out, current, in_quotes, escaped = [], [], False, False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            out.append("".join(current))
            current = []
        else:
            current.append(ch)
    out.append("".join(current))
    return out
