"""Structured stderr logging for the CLI and module entry points.

Simlint rule OBS001 forbids raw ``print()`` inside ``src/repro`` outside
the CLI: progress and diagnostic output goes through this logger, which
keeps stdout clean for user-facing result lines (tables, QPS numbers,
JSON payloads that other tools parse).

Lines are ``event key=value`` pairs — machine-grep-able, deterministic
(no timestamps; a simulated system must not read the wallclock in its
reporting path), and levelled.  ``repro.cli --verbose/--quiet`` map onto
:func:`configure`.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, TextIO

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (int, bool)) or value is None:
        return str(value)
    text = str(value)
    if text == "" or any(c in text for c in ' ="\n\t'):
        return json.dumps(text)
    return text


@dataclass
class StructuredLogger:
    """Levelled ``event key=value`` line writer (stderr by default)."""

    level: int = INFO
    stream: TextIO | None = None  # None = sys.stderr resolved per call
    #: Number of lines emitted (visible to tests without capture tricks).
    emitted: int = field(default=0, repr=False)

    def _write(self, level: int, event: str, fields: dict[str, Any]) -> None:
        if level < self.level:
            return
        stream = self.stream if self.stream is not None else sys.stderr
        parts = [f"repro {_LEVEL_NAMES.get(level, level)} {event}"]
        parts.extend(f"{key}={_format_value(val)}" for key, val in fields.items())
        stream.write(" ".join(parts) + "\n")
        self.emitted += 1

    def debug(self, event: str, **fields: Any) -> None:
        self._write(DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._write(INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._write(WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._write(ERROR, event, fields)


_logger = StructuredLogger()


def get_logger() -> StructuredLogger:
    """The process-wide structured logger."""
    return _logger


def configure(verbosity: int = 0, stream: TextIO | None = None) -> StructuredLogger:
    """Map a CLI verbosity knob onto the global logger.

    ``verbosity``: negative = quiet (warnings and errors only), 0 =
    normal (info), positive = verbose (debug).
    """
    if verbosity < 0:
        _logger.level = WARNING
    elif verbosity == 0:
        _logger.level = INFO
    else:
        _logger.level = DEBUG
    if stream is not None:
        _logger.stream = stream
    return _logger
