"""Command-line interface: generate / build / search / bench / specs.

Usage examples::

    python -m repro.cli generate --out corpus.fvecs --n 30000 --spec SIFT1B
    python -m repro.cli build --vectors corpus.fvecs --index index.npz \
        --clusters 128 --m 16
    python -m repro.cli search --index index.npz --queries queries.fvecs \
        --k 10 --nprobe 8
    python -m repro.cli bench --n 30000 --clusters 128
    python -m repro.cli metrics --json
    python -m repro.cli perf --quick
    python -m repro.cli specs
    python -m repro.cli lint src/repro

Progress chatter goes to stderr through the structured logger (tune it
with ``-v`` / ``-q``); the machine- or human-consumable *results* of a
command stay on stdout so they can be piped.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import telemetry
from repro.analysis.report import render_table
from repro.baselines.cpu import CpuEngine
from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import UpANNSEngine
from repro.data.loader import read_vecs, write_vecs
from repro.data.synthetic import ALL_SPECS, make_dataset, make_queries
from repro.data.skew import zipf_weights
from repro.hardware.specs import TABLE1_ROWS, UPMEM_7_DIMMS
from repro.ivfpq import IVFPQIndex
from repro.ivfpq.io import load_index, save_index

_SPECS = {spec.name: spec for spec in ALL_SPECS}

log = telemetry.get_logger()


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = _SPECS[args.spec]
    rng = np.random.default_rng(args.seed)
    dataset = make_dataset(
        spec,
        args.n,
        n_components=args.components,
        correlated_subspaces=args.correlated,
        rng=rng,
    )
    write_vecs(args.out, dataset.vectors)
    log.info("generate.corpus", file=args.out, n=args.n, dim=spec.dim)
    if args.queries_out:
        popularity = zipf_weights(args.components, args.zipf_alpha)
        queries = make_queries(dataset, args.n_queries, popularity=popularity, rng=rng)
        write_vecs(args.queries_out, queries)
        log.info("generate.queries", file=args.queries_out, n=args.n_queries)
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    vectors = read_vecs(args.vectors).astype(np.float32)
    log.info("build.loaded", n=vectors.shape[0], dim=vectors.shape[1])
    index = IVFPQIndex(vectors.shape[1], args.clusters, args.m, args.nbits)
    t0 = time.time()
    index.train(vectors, n_iter=args.train_iters, rng=np.random.default_rng(args.seed))
    index.add(vectors)
    log.info(
        "build.trained",
        ivf=args.clusters,
        pq_m=args.m,
        seconds=round(time.time() - t0, 1),
    )
    save_index(args.index, index)
    log.info("build.saved", file=args.index)
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    queries = read_vecs(args.queries).astype(np.float32)
    log.info(
        "search.index",
        vectors=index.ntotal,
        ivf=index.n_clusters,
        pq_m=index.m,
        queries=queries.shape[0],
    )
    cfg = SystemConfig(
        index=IndexConfig(
            dim=index.dim, n_clusters=index.n_clusters, m=index.m, nbits=index.nbits
        ),
        query=QueryConfig(nprobe=args.nprobe, k=args.k, batch_size=queries.shape[0]),
        upanns=UpANNSConfig(),
        pim=UPMEM_7_DIMMS,
        timing_scale=args.timing_scale,
    )
    engine = UpANNSEngine(cfg)
    engine.build(np.empty((0, index.dim), np.float32), prebuilt_index=index)
    result = engine.search_batch(queries)
    print(f"modeled QPS: {result.qps:,.1f}   balance max/avg: {result.cycle_load_ratio:.2f}")
    for i in range(min(args.show, queries.shape[0])):
        print(f"q{i}: {result.ids[i].tolist()}")
    if args.groundtruth:
        from repro.data.groundtruth import load_groundtruth
        from repro.ivfpq.recall import recall_at_k

        _, gt = load_groundtruth(args.groundtruth)
        print(f"recall@{args.k}: {recall_at_k(result.ids, gt, args.k):.3f}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    spec = _SPECS[args.spec]
    rng = np.random.default_rng(args.seed)
    dataset = make_dataset(
        spec, args.n, n_components=64, correlated_subspaces=4, rng=rng
    )
    popularity = zipf_weights(64, 0.6)
    history = make_queries(dataset, 2000, popularity=popularity, rng=rng)
    queries = make_queries(dataset, args.n_queries, popularity=popularity, rng=rng)

    cfg = SystemConfig(
        index=IndexConfig(dim=spec.dim, n_clusters=args.clusters, m=spec.pq_m, train_iters=5),
        query=QueryConfig(nprobe=args.nprobe, k=args.k, batch_size=args.n_queries),
        pim=UPMEM_7_DIMMS,
        timing_scale=args.timing_scale,
    )
    engine = UpANNSEngine(cfg)
    log.info("bench.building", n=args.n, clusters=args.clusters)
    engine.build(dataset.vectors, history_queries=history)
    cpu = CpuEngine(engine.index, workload_scale=args.timing_scale)
    r_pim = engine.search_batch(queries)
    r_cpu = cpu.search_batch(queries, args.k, args.nprobe, compute_results=False)
    print(
        render_table(
            ["engine", "QPS", "QPS/W"],
            [
                ["Faiss-CPU (modeled)", r_cpu.qps, r_cpu.qps / 190.0],
                [
                    "UpANNS (896 DPUs)",
                    r_pim.qps,
                    r_pim.qps / UPMEM_7_DIMMS.peak_power_w,
                ],
            ],
            float_fmt="{:.1f}",
        )
    )
    print(f"speedup: {r_pim.qps / r_cpu.qps:.2f}x")
    return 0


def _tiny_deployment(args: argparse.Namespace):
    """Build the tiny synthetic deployment shared by the ``trace``,
    ``metrics`` and ``chaos`` subcommands; returns (engine, batches)."""
    from repro.data.synthetic import SIFT1B
    from repro.hardware.specs import PimSystemSpec

    from dataclasses import replace

    rng = np.random.default_rng(args.seed)
    spec = replace(SIFT1B, dim=32, pq_m=8)
    dataset = make_dataset(
        spec, 4000, n_components=16, correlated_subspaces=2, rng=rng
    )
    popularity = zipf_weights(16, 0.6)
    queries = make_queries(
        dataset, args.batches * args.batch_size, popularity=popularity, rng=rng
    )
    history = make_queries(dataset, 300, popularity=popularity, rng=rng)

    cfg = SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=4),
        query=QueryConfig(nprobe=8, k=5, batch_size=args.batch_size),
        upanns=UpANNSConfig(),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        timing_scale=args.timing_scale,
    )
    engine = UpANNSEngine(cfg)
    engine.sim_engine = getattr(args, "sim_engine", None)
    engine.build(dataset.vectors, history_queries=history, rng=rng)
    batches = [
        queries[b * args.batch_size : (b + 1) * args.batch_size]
        for b in range(args.batches)
    ]
    return engine, batches


def _tiny_service(args: argparse.Namespace):
    """Build and drive the tiny synthetic deployment shared by the
    ``trace`` and ``metrics`` subcommands; returns the served service."""
    from repro.core.service import OnlineService

    engine, batches = _tiny_deployment(args)
    fault_specs = getattr(args, "fault", None)
    hazard = getattr(args, "hazard", 0.0)
    if fault_specs or hazard > 0.0:
        from repro.faults import FaultPlan

        engine.inject(
            FaultPlan.from_specs(
                fault_specs or [], seed=args.seed, transfer_hazard=hazard
            )
        )
    service = OnlineService(
        engine,
        overlap=args.overlap,
        sim_engine=getattr(args, "sim_engine", None),
    )
    for batch in batches:
        service.submit(batch)
    return service


def _scenario_config(args: argparse.Namespace) -> dict:
    """The tiny-deployment knobs, as recorded in exported artifacts."""
    from repro.sim import resolve_sim_engine

    return {
        "batches": args.batches,
        "batch_size": args.batch_size,
        "overlap": args.overlap,
        "sim_engine": resolve_sim_engine(getattr(args, "sim_engine", None)),
        "timing_scale": args.timing_scale,
        "seed": args.seed,
    }


def _cmd_trace(args: argparse.Namespace) -> int:
    """Serve a few batches on a tiny synthetic deployment and dump the
    composed per-resource timeline as Chrome-trace JSON (optionally the
    per-query ``repro.trace/v1`` record and one query's span dump too)."""
    import json

    from repro.sim import validate_chrome_trace

    service = _tiny_service(args)
    combined = service.combined_schedule()
    payload = combined.to_chrome_trace()
    errors = validate_chrome_trace(payload)
    if errors:
        for err in errors:
            log.error("trace.invalid", error=err)
        return 1
    if args.sanitize:
        from repro.sanitize import sanitize_chrome_trace

        findings = sanitize_chrome_trace(payload)
        if findings:
            for finding in findings:
                log.error("trace.sanitize_failed", error=finding.render())
            return 1
        log.info("trace.sanitized", findings=0)
    with open(args.out, "w") as fh:
        json.dump(payload, fh)
    n_events = len(payload["traceEvents"])
    print(
        f"wrote {n_events} events over {len(combined.resources())} resources "
        f"to {args.out} ({args.overlap}: wall-clock {combined.makespan * 1e3:.3f} ms)"
    )
    if args.trace_out or args.query:
        from repro.errors import ConfigError
        from repro.tracing import make_trace_record, query_spans

        record = make_trace_record(
            name="cli_trace",
            config=_scenario_config(args),
            schedule=combined,
        )
        if args.trace_out:
            with open(args.trace_out, "w", encoding="utf-8") as fh:
                json.dump(record, fh, indent=2, sort_keys=True)
                fh.write("\n")
            log.info(
                "trace.record_written",
                file=args.trace_out,
                queries=len(record["queries"]),
                spans=len(record["spans"]),
            )
        if args.query:
            try:
                rows = query_spans(record, args.query)
            except ConfigError as exc:
                log.error("trace.unknown_query", error=str(exc))
                return 2
            for row in rows:
                print(json.dumps(row, sort_keys=True))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Attribute a query's wall-clock latency along its critical path.

    Either explains a previously exported ``repro.trace/v1`` record
    (``--record``) or serves the tiny synthetic deployment first.  The
    query defaults to the worst (highest-latency) one — the same id a
    latency-histogram tail-bucket exemplar points at.
    """
    import json

    from repro.errors import ConfigError
    from repro.tracing import (
        explain_query,
        render_explanation,
        validate_trace_record,
        worst_query,
    )

    if args.record:
        try:
            with open(args.record, encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            log.error("explain.read_failed", file=args.record, error=str(exc))
            return 2
        errors = validate_trace_record(record)
        if errors:
            for err in errors:
                log.error("explain.invalid_record", file=args.record, error=err)
            return 2
    else:
        from repro.tracing import make_trace_record

        service = _tiny_service(args)
        record = make_trace_record(
            name="cli_explain",
            config=_scenario_config(args),
            schedule=service.combined_schedule(),
        )
    try:
        qid = args.query or worst_query(record)
        explanation = explain_query(record, qid)
    except ConfigError as exc:
        log.error("explain.failed", error=str(exc))
        return 2
    print(render_explanation(explanation))
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    """Run the simsan dynamic checks over JSON artifacts.

    Each file is auto-classified (Chrome trace, chaos/result record, or
    golden-timings fixture) and routed to the matching conservation
    checks.  Text output lists one finding per line; ``--json`` emits a
    ``repro.sanitize/v1`` record instead.  Exit 0 = clean, 1 = findings,
    2 = unreadable input.
    """
    import json

    from repro.sanitize import (
        detect_kind,
        make_sanitize_record,
        sanitize_payload,
        with_source,
    )

    inputs: list[dict[str, object]] = []
    findings = []
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            log.error("sanitize.read_failed", file=path, error=str(exc))
            return 2
        per_file = sanitize_payload(payload, strict_zero=args.strict)
        inputs.append(
            {
                "path": str(path),
                "kind": detect_kind(payload),
                "findings": len(per_file),
            }
        )
        findings.extend(with_source(per_file, str(path)))

    record = make_sanitize_record(
        name="cli_sanitize", inputs=inputs, findings=findings
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        log.info("sanitize.record_written", file=args.out)
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        checked = ", ".join(
            f"{row['path']} ({row['kind']})" for row in inputs
        )
        verdict = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"sanitize: {verdict} over {checked}")
    return 1 if findings else 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Serve the tiny deployment and report per-resource utilization.

    Default output is a human-readable table; ``--json`` emits a full
    schema-versioned result record instead, and ``--prom FILE`` writes
    the registry as Prometheus text exposition alongside either.
    """
    import json

    from repro.sim import resolve_sim_engine

    telemetry.reset_metrics()
    service = _tiny_service(args)
    combined = service.combined_schedule()
    report = telemetry.utilization_report(combined)

    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(telemetry.prometheus_text())
        log.info("metrics.prom_written", file=args.prom)

    if args.json:
        stage_seconds: dict[str, float] = {}
        qps_values = []
        for sched in service.schedules:
            timing = sched.derive_batch_timing()
            qps_values.append(args.batch_size / timing.total_s)
            for stage, attr in telemetry.pipeline.TIMING_STAGES:
                stage_seconds[stage] = stage_seconds.get(stage, 0.0) + getattr(
                    timing, attr
                )
        record = telemetry.make_result_record(
            name="cli_metrics",
            config={
                "batches": args.batches,
                "batch_size": args.batch_size,
                "overlap": args.overlap,
                "sim_engine": resolve_sim_engine(args.sim_engine),
                "timing_scale": args.timing_scale,
                "seed": args.seed,
                "n_dpus": service.engine.pim.n_dpus,
            },
            qps_values=qps_values,
            stage_seconds=stage_seconds,
            utilization=report.to_json(),
            metrics=telemetry.snapshot(),
        )
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    """Time looped vs grouped kernel execution on the standard shapes.

    Emits a human-readable table by default; ``--out FILE`` writes the
    schema-versioned ``repro.perf/v1`` record, ``--json`` dumps it to
    stdout instead of the table.  With ``--baseline FILE`` the run
    additionally gates on the committed record (exit 1 on regression).
    """
    import json

    from repro.perf import compare_to_baseline, run_perf

    sweep = None
    if args.sweep_workers is not None:
        sweep = tuple(
            int(n) for n in args.sweep_workers.split(",") if n.strip()
        )
    record = run_perf(
        quick=args.quick,
        repeats=args.repeats,
        seed=args.seed,
        executor=args.executor,
        sweep_workers=sweep,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        log.info("perf.record_written", file=args.out)
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        rows = [
            [
                c["name"],
                c["looped_s"] * 1e3,
                c["grouped_cold_s"] * 1e3,
                c["grouped_warm_s"] * 1e3,
                f"{c['speedup_warm']:.2f}x",
            ]
            for c in record["cases"]
        ]
        print(
            render_table(
                ["case", "looped ms", "cold ms", "warm ms", "speedup"],
                rows,
                title="host wall-clock: looped vs grouped kernel",
                float_fmt="{:.1f}",
            )
        )
        totals = record["totals"]
        print(f"overall warm speedup: {totals['speedup']:.2f}x")
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = compare_to_baseline(
            record, baseline, max_regression=args.max_regression
        )
        if failures:
            for failure in failures:
                log.error("perf.regression", detail=failure)
            return 1
        log.info("perf.baseline_ok", file=args.baseline)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded chaos scenario end-to-end on the tiny deployment.

    Serves the same query stream twice — once fault-free as the
    reference, once with the fault plan armed — and emits a
    schema-versioned ``repro.chaos/v1`` record: faults injected,
    retries, re-routes, coverage floor, recall delta and recovery cost.
    The default plan kills one fully-replicated DPU at batch 3, the
    zero-recall-loss failover scenario.
    """
    import json

    from repro.core.service import OnlineService
    from repro.faults import FaultPlan, pick_replicated_unit
    from repro.sim import resolve_sim_engine

    telemetry.reset_metrics()

    # Reference pass: identical deployment, no plan armed.
    engine, batches = _tiny_deployment(args)
    reference = OnlineService(engine, sim_engine=args.sim_engine)
    ref_ids = [reference.submit(b).result.ids for b in batches]

    # Chaos pass: fresh identical deployment with the plan armed.
    engine, batches = _tiny_deployment(args)
    specs = list(args.fault or [])
    if not specs and args.hazard == 0.0:
        target = pick_replicated_unit(engine.placement)
        if target is None:
            log.error("chaos.no_replicated_dpu")
            return 2
        specs = [f"dpu:{target}@3"]
    plan = FaultPlan.from_specs(
        specs, seed=args.seed, transfer_hazard=args.hazard
    )
    state = engine.inject(plan)
    # Double-buffered serving makes the combined-run check below
    # meaningful: under the event core a DPU death fences its lane while
    # the previous batch's compute is still in flight on it.
    service = OnlineService(
        engine, overlap="double_buffer", sim_engine=args.sim_engine
    )
    from repro.errors import DpuFailedError

    try:
        reports = [service.submit(b) for b in batches]
    except DpuFailedError as exc:
        # Total loss: every unit is dead, there is nothing to degrade to.
        log.error("chaos.total_loss", error=str(exc))
        return 1

    # Run-level schedule gate: the whole chaos run — retries, mid-flight
    # DPU-death truncation, cross-batch interleaving — must produce a
    # causally clean timeline under the selected simulation core.
    from repro.sanitize import sanitize_schedule

    combined = service.combined_schedule()
    stream_findings = sanitize_schedule(combined)
    if stream_findings:
        for finding in stream_findings:
            log.error("chaos.stream_sanitize_failed", error=finding.render())
        return 1
    log.info(
        "chaos.stream_sanitized",
        engine=resolve_sim_engine(args.sim_engine),
        wallclock_ms=round(combined.makespan * 1e3, 3),
    )

    # Functional damage: top-k agreement against the fault-free run.
    matched = total = 0
    for ids, report in zip(ref_ids, reports):
        got = report.result.ids
        for qi in range(ids.shape[0]):
            want = set(int(i) for i in ids[qi] if i >= 0)
            have = set(int(i) for i in got[qi] if i >= 0)
            matched += len(want & have)
            total += len(want)
    recall_delta = 1.0 - (matched / total if total else 1.0)

    batch_rows = []
    for i, report in enumerate(reports):
        deg = report.result.degraded
        batch_rows.append(
            {
                "batch": i,
                "coverage_floor": deg.coverage_floor if deg else 1.0,
                "rerouted_pairs": deg.rerouted_pairs if deg else 0,
                "dropped_pairs": deg.dropped_pairs if deg else 0,
                "retry_seconds": report.result.timing.retry_s,
                "recovery_seconds": report.recovery_s,
            }
        )
    first_fault = min((e.batch for e in state.events_fired), default=None)
    recovered_at = next(
        (i for i, r in enumerate(reports) if r.recovery_s > 0), None
    )
    recovery_batches = (
        recovered_at - first_fault + 1
        if first_fault is not None and recovered_at is not None
        else 0
    )
    record = telemetry.make_chaos_record(
        name="cli_chaos",
        config={
            "batches": args.batches,
            "batch_size": args.batch_size,
            "seed": args.seed,
            "sim_engine": resolve_sim_engine(args.sim_engine),
            "timing_scale": args.timing_scale,
            "n_dpus": engine.pim.n_dpus,
        },
        plan={
            "events": [e.to_dict() for e in plan.events],
            "seed": plan.seed,
            "transfer_hazard": plan.transfer_hazard,
            "max_retries": plan.max_retries,
        },
        faults_injected=len(state.events_fired),
        retries=state.total_retries,
        rerouted_pairs=state.total_rerouted_pairs,
        dropped_pairs=state.total_dropped_pairs,
        dead_units=list(state.dead_units),
        coverage_floor=min((r["coverage_floor"] for r in batch_rows), default=1.0),
        recall_delta=recall_delta,
        retry_seconds=sum(r["retry_seconds"] for r in batch_rows),
        recovery_batches=recovery_batches,
        recovery_seconds=sum(r.recovery_s for r in reports),
        batches=batch_rows,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        log.info("chaos.record_written", file=args.out)
    if args.json or not args.out:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        faults = record["faults"]
        print(
            f"chaos: {faults['injected']} faults, {faults['retries']} retries, "
            f"{faults['rerouted_pairs']} pairs re-routed, "
            f"{faults['dropped_pairs']} dropped; coverage floor "
            f"{record['degradation']['coverage_floor']:.3f}, recall delta "
            f"{record['degradation']['recall_delta']:.4f}, recovered in "
            f"{record['recovery']['batches']} batches"
        )
    return 0


def _serve_deployment(args: argparse.Namespace):
    """A fresh tiny deployment for one serving run; (service, dataset)."""
    from dataclasses import replace

    from repro.core.service import OnlineService
    from repro.data.synthetic import SIFT1B
    from repro.hardware.specs import PimSystemSpec

    rng = np.random.default_rng(args.seed)
    spec = replace(SIFT1B, dim=32, pq_m=8)
    dataset = make_dataset(
        spec, 4000, n_components=16, correlated_subspaces=2, rng=rng
    )
    history = make_queries(
        dataset, 300, popularity=zipf_weights(16, 0.6), rng=rng
    )
    cfg = SystemConfig(
        index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=4),
        query=QueryConfig(nprobe=8, k=5, batch_size=args.batch_size),
        upanns=UpANNSConfig(),
        pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        timing_scale=args.timing_scale,
    )
    engine = UpANNSEngine(cfg)
    # The serving frontend's stream always re-executes through the
    # event core (arrival-time release needs it); keep the per-batch
    # core aligned so there is a single timing story per run.
    engine.sim_engine = "event"
    engine.build(dataset.vectors, history_queries=history, rng=rng)
    service = OnlineService(engine, overlap="sequential", sim_engine="event")
    return service, dataset


def _serve_tenants(args: argparse.Namespace, capacity_qps: float):
    """The two-tenant mix every serve run uses, at base (1x) load.

    ``interactive`` offers two thirds of calibrated capacity as smooth
    Poisson traffic under the SLO; ``batchy`` offers the remaining
    third in 4x bursts with no deadline of its own.
    """
    from repro.serving import TenantConfig

    return (
        TenantConfig(
            name="interactive",
            rate_qps=capacity_qps * 2.0 / 3.0,
            slo_ms=args.slo_ms,
        ),
        TenantConfig(
            name="batchy",
            rate_qps=capacity_qps / 3.0,
            burst_factor=4.0,
            burst_period_s=0.05,
            burst_duty=0.25,
        ),
    )


def _serve_run(args: argparse.Namespace, load: float, shedding: bool):
    """One seeded open-loop run; returns its FrontendResult."""
    from repro.serving import AdmissionPolicy, ArrivalGenerator, ServingFrontend
    from repro.workload.batch import BatchGenerator

    service, dataset = _serve_deployment(args)
    tenants = tuple(
        t.scaled(load) for t in _serve_tenants(args, args.capacity_qps)
    )
    generator = ArrivalGenerator(
        tenants=tenants, seed=args.seed, horizon_s=args.horizon
    )
    query_gens = {
        t.name: BatchGenerator(
            dataset,
            batch_size=args.batch_size,
            zipf_alpha=t.zipf_alpha,
            drift_per_batch=t.drift_per_batch,
            rng=np.random.default_rng([args.seed, i]),
        )
        for i, t in enumerate(tenants)
    }
    requests = generator.generate(query_gens)
    policy = AdmissionPolicy(
        shedding=shedding, max_queue_depth=args.queue_depth
    )
    frontend = ServingFrontend(
        service,
        tenants,
        policy=policy,
        max_batch=args.batch_size,
        max_delay_s=args.max_delay_ms / 1e3,
    )
    return frontend.run(requests)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Sweep offered load through the serving frontend and emit a
    schema-versioned ``repro.serve/v1`` record.

    Calibrates the tiny deployment's capacity closed-loop, then runs
    each swept load twice — shedding frontend and no-shedding
    baseline — over identical seeded arrival streams, so the record's
    goodput-vs-offered-load curve shows exactly what admission control
    buys under overload.
    """
    import json

    from repro.sanitize import sanitize_schedule
    from repro.serving import render_serve_report, serve_record_kwargs

    telemetry.reset_metrics()

    # Calibration: closed-loop batches on a fresh deployment give the
    # pipeline's sustainable rate (batch size over mean batch seconds).
    service, dataset = _serve_deployment(args)
    from repro.workload.batch import BatchGenerator

    cal_gen = BatchGenerator(
        dataset,
        batch_size=args.batch_size,
        rng=np.random.default_rng(args.seed),
    )
    totals = [
        service.submit(cal_gen.next_batch().queries).result.timing.total_s
        for _ in range(4)
    ]
    args.capacity_qps = args.batch_size / (sum(totals) / len(totals))
    log.info("serve.calibrated", capacity_qps=round(args.capacity_qps, 1))

    loads = [float(x) for x in args.load_sweep.split(",") if x.strip()]
    if not loads or any(x <= 0 for x in loads):
        log.error("serve.bad_load_sweep", value=args.load_sweep)
        return 2
    modes = [True] if args.no_baseline else [True, False]

    curve = []
    headline = None
    for load in loads:
        for shedding in modes:
            result = _serve_run(args, load, shedding)
            findings = sanitize_schedule(result.schedule)
            if findings:
                for finding in findings:
                    log.error("serve.stream_sanitize_failed", error=finding.render())
                return 1
            ledger = result.ledger()["totals"]
            lat = result.latencies_ms()
            offered_qps = ledger["offered"] / args.horizon
            point = dict(ledger)
            point.update(
                {
                    "offered_load": load,
                    "offered_qps": offered_qps,
                    "goodput_qps": result.goodput_qps(),
                    "p99_ms": float(np.percentile(lat, 99)) if lat.size else 0.0,
                    "coverage_floor": result.coverage_floor(),
                    "shedding": shedding,
                }
            )
            curve.append(point)
            log.info(
                "serve.point",
                load=load,
                shedding=shedding,
                offered=ledger["offered"],
                shed=ledger["shed"],
                timed_out=ledger["timed_out"],
                goodput_qps=round(point["goodput_qps"], 1),
                p99_ms=round(point["p99_ms"], 3),
            )
            if shedding and (headline is None or load >= headline[0]):
                headline = (load, result)

    assert headline is not None
    sections = serve_record_kwargs(headline[1])
    record = telemetry.make_serve_record(
        name="cli_serve",
        config={
            "seed": args.seed,
            "horizon_s": args.horizon,
            "slo_ms": args.slo_ms,
            "max_batch": args.batch_size,
            "max_delay_ms": args.max_delay_ms,
            "queue_depth": args.queue_depth,
            "timing_scale": args.timing_scale,
            "capacity_qps": args.capacity_qps,
            "loads": loads,
            "headline_load": headline[0],
            "sim_engine": "event",
        },
        totals=sections["totals"],
        tenants=sections["tenants"],
        curve=curve,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        log.info("serve.record_written", file=args.out)
    if args.json or not args.out:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(render_serve_report(record))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.__main__ import main as lint_main

    return lint_main(list(args.lint_args))


def _cmd_specs(_args: argparse.Namespace) -> int:
    rows = [
        [s.name, f"{s.price_usd:,.0f}", f"{s.memory_gb:.0f} GB",
         f"{s.peak_power_w:.0f} W", f"{s.bandwidth_gb_per_s:.1f} GB/s"]
        for s in TABLE1_ROWS
    ]
    print(render_table(["hardware", "price USD", "memory", "power", "bandwidth"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="UpANNS reproduction CLI"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more progress chatter on stderr (debug level)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="less progress chatter on stderr (warnings only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic corpus")
    gen.add_argument("--out", required=True)
    gen.add_argument("--queries-out", default=None)
    gen.add_argument("--spec", choices=sorted(_SPECS), default="SIFT1B")
    gen.add_argument("--n", type=int, default=30_000)
    gen.add_argument("--n-queries", type=int, default=500)
    gen.add_argument("--components", type=int, default=64)
    gen.add_argument("--correlated", type=int, default=4)
    gen.add_argument("--zipf-alpha", type=float, default=0.6)
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    build = sub.add_parser("build", help="train and save an IVFPQ index")
    build.add_argument("--vectors", required=True)
    build.add_argument("--index", required=True)
    build.add_argument("--clusters", type=int, default=128)
    build.add_argument("--m", type=int, default=16)
    build.add_argument("--nbits", type=int, default=8)
    build.add_argument("--train-iters", type=int, default=8)
    build.add_argument("--seed", type=int, default=0)
    build.set_defaults(func=_cmd_build)

    search = sub.add_parser("search", help="search a saved index on PIM")
    search.add_argument("--index", required=True)
    search.add_argument("--queries", required=True)
    search.add_argument("--k", type=int, default=10)
    search.add_argument("--nprobe", type=int, default=8)
    search.add_argument("--timing-scale", type=float, default=1.0)
    search.add_argument("--show", type=int, default=3)
    search.add_argument("--groundtruth", default=None)
    search.set_defaults(func=_cmd_search)

    bench = sub.add_parser("bench", help="quick UpANNS-vs-CPU comparison")
    bench.add_argument("--spec", choices=sorted(_SPECS), default="SIFT1B")
    bench.add_argument("--n", type=int, default=30_000)
    bench.add_argument("--n-queries", type=int, default=300)
    bench.add_argument("--clusters", type=int, default=128)
    bench.add_argument("--nprobe", type=int, default=8)
    bench.add_argument("--k", type=int, default=10)
    bench.add_argument("--timing-scale", type=float, default=1000.0)
    bench.add_argument("--seed", type=int, default=0)
    bench.set_defaults(func=_cmd_bench)

    trace = sub.add_parser(
        "trace",
        help="serve a tiny synthetic workload and export a Chrome-trace JSON",
    )
    trace.add_argument("--out", required=True)
    trace.add_argument("--batches", type=int, default=3)
    trace.add_argument("--batch-size", type=int, default=32)
    trace.add_argument(
        "--overlap", choices=["sequential", "double_buffer"], default="sequential"
    )
    trace.add_argument("--timing-scale", type=float, default=1.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="KIND:TARGET@BATCH",
        help="inject a fault (e.g. dpu:5@2); repeatable",
    )
    trace.add_argument(
        "--hazard",
        type=float,
        default=0.0,
        help="seeded per-DPU transient transfer-fault probability per batch",
    )
    trace.add_argument(
        "--sanitize",
        action="store_true",
        help="run the full simsan checks (incl. happens-before) on the "
        "exported trace; exit 1 on any finding",
    )
    trace.add_argument(
        "--sim-engine",
        choices=["analytic", "event"],
        default=None,
        help="simulation core for the combined run (default: "
        "REPRO_SIM_ENGINE env, else analytic)",
    )
    trace.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="also write the per-query repro.trace/v1 record as JSON",
    )
    trace.add_argument(
        "--query",
        default=None,
        metavar="ID",
        help="dump one query's span rows (e.g. q000003) as JSON lines",
    )
    trace.set_defaults(func=_cmd_trace)

    explain = sub.add_parser(
        "explain",
        help="rank where one query's latency went (waits, compute, "
        "transfers, fault retries) along its critical path",
    )
    explain.add_argument(
        "--record",
        default=None,
        metavar="FILE",
        help="explain an exported repro.trace/v1 record instead of "
        "serving the tiny deployment",
    )
    explain.add_argument(
        "--query",
        default=None,
        metavar="ID",
        help="trace id to explain (default: the worst-latency query)",
    )
    explain.add_argument("--batches", type=int, default=3)
    explain.add_argument("--batch-size", type=int, default=32)
    explain.add_argument(
        "--overlap", choices=["sequential", "double_buffer"], default="sequential"
    )
    explain.add_argument("--timing-scale", type=float, default=1.0)
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="KIND:TARGET@BATCH",
        help="inject a fault (e.g. dpu:5@2); repeatable",
    )
    explain.add_argument(
        "--hazard",
        type=float,
        default=0.0,
        help="seeded per-DPU transient transfer-fault probability per batch",
    )
    explain.add_argument(
        "--sim-engine",
        choices=["analytic", "event"],
        default=None,
        help="simulation core for the combined run (default: "
        "REPRO_SIM_ENGINE env, else analytic)",
    )
    explain.set_defaults(func=_cmd_explain)

    sanitize = sub.add_parser(
        "sanitize",
        help="simsan: check traces, chaos/result records and golden "
        "timings for races and conservation bugs",
    )
    sanitize.add_argument("files", nargs="+", metavar="FILE")
    sanitize.add_argument(
        "--json",
        action="store_true",
        help="emit a repro.sanitize/v1 record instead of text findings",
    )
    sanitize.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the repro.sanitize/v1 record to FILE",
    )
    sanitize.add_argument(
        "--strict",
        action="store_true",
        help="additionally flag zero-duration spans",
    )
    sanitize.set_defaults(func=_cmd_sanitize)

    metrics = sub.add_parser(
        "metrics",
        help="serve a tiny synthetic workload and report resource utilization",
    )
    metrics.add_argument("--batches", type=int, default=3)
    metrics.add_argument("--batch-size", type=int, default=32)
    metrics.add_argument(
        "--overlap", choices=["sequential", "double_buffer"], default="sequential"
    )
    metrics.add_argument("--timing-scale", type=float, default=1.0)
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument(
        "--json",
        action="store_true",
        help="emit a repro.bench.result/v1 record instead of the text table",
    )
    metrics.add_argument(
        "--prom",
        default=None,
        metavar="FILE",
        help="also write the registry as Prometheus text exposition",
    )
    metrics.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="KIND:TARGET@BATCH",
        help="inject a fault (e.g. dpu:5@2); repeatable",
    )
    metrics.add_argument(
        "--hazard",
        type=float,
        default=0.0,
        help="seeded per-DPU transient transfer-fault probability per batch",
    )
    metrics.add_argument(
        "--sim-engine",
        choices=["analytic", "event"],
        default=None,
        help="simulation core for the combined run (default: "
        "REPRO_SIM_ENGINE env, else analytic)",
    )
    metrics.set_defaults(func=_cmd_metrics)

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded fault scenario and emit a repro.chaos/v1 record",
    )
    chaos.add_argument("--batches", type=int, default=6)
    chaos.add_argument("--batch-size", type=int, default=32)
    chaos.add_argument("--timing-scale", type=float, default=1.0)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="KIND:TARGET@BATCH",
        help="inject a fault (default: kill one replicated DPU at batch 3)",
    )
    chaos.add_argument(
        "--hazard",
        type=float,
        default=0.0,
        help="seeded per-DPU transient transfer-fault probability per batch",
    )
    chaos.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the repro.chaos/v1 record as JSON",
    )
    chaos.add_argument(
        "--json",
        action="store_true",
        help="dump the record to stdout even when --out is given",
    )
    chaos.add_argument(
        "--sim-engine",
        choices=["analytic", "event"],
        default=None,
        help="simulation core for the run-level schedule gate (default: "
        "REPRO_SIM_ENGINE env, else analytic)",
    )
    chaos.set_defaults(func=_cmd_chaos)

    serve = sub.add_parser(
        "serve",
        help="sweep offered load through the multi-tenant serving "
        "frontend and emit a repro.serve/v1 record",
    )
    serve.add_argument(
        "--horizon",
        type=float,
        default=0.2,
        help="simulated seconds of open-loop arrivals per run",
    )
    serve.add_argument(
        "--slo-ms",
        type=float,
        default=20.0,
        help="interactive tenant's per-request deadline",
    )
    serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=3.0,
        help="coalescer deadline: a queued request waits at most this "
        "long for its batch to fill",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=24,
        help="coalescer size trigger (and calibration batch size)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=48,
        help="per-tenant queue bound for the shedding frontend",
    )
    serve.add_argument(
        "--load-sweep",
        default="0.5,1.0,2.0",
        metavar="X,Y,...",
        help="offered-load multiples of calibrated capacity to sweep",
    )
    serve.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the no-shedding baseline runs (shedding curve only)",
    )
    serve.add_argument("--timing-scale", type=float, default=1.0)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the repro.serve/v1 record as JSON",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="dump the record to stdout even when --out is given",
    )
    serve.set_defaults(func=_cmd_serve)

    perf = sub.add_parser(
        "perf",
        help="wall-clock microbenchmark: looped vs grouped kernel execution",
    )
    perf.add_argument(
        "--quick",
        action="store_true",
        help="run only the tiny CI smoke cases",
    )
    perf.add_argument("--repeats", type=int, default=3)
    perf.add_argument("--seed", type=int, default=0)
    perf.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the repro.perf/v1 record as JSON",
    )
    perf.add_argument(
        "--json",
        action="store_true",
        help="dump the record to stdout instead of the summary table",
    )
    perf.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="committed perf record to gate against (exit 1 on regression)",
    )
    perf.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail when a case's warm speedup falls below baseline/THIS",
    )
    perf.add_argument(
        "--executor",
        default=None,
        metavar="SPEC",
        help="grouped-engine backend for the main timings: serial (default), "
        "process, or process:N — results are asserted identical to the "
        "looped reference either way",
    )
    perf.add_argument(
        "--sweep-workers",
        default=None,
        metavar="N,N,...",
        help="comma-separated worker counts for the process-pool scaling "
        "sweep (default: 1,2,4,8 on full runs, none on --quick; pass '' "
        "to disable)",
    )
    perf.set_defaults(func=_cmd_perf)

    specs = sub.add_parser("specs", help="print the Table-1 hardware specs")
    specs.set_defaults(func=_cmd_specs)

    lint = sub.add_parser(
        "lint",
        help="run the simlint invariant checker (same as python -m repro.lint)",
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.lint",
    )
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    telemetry.configure(args.verbose - args.quiet)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
