"""Host wall-clock microbenchmarks: looped vs grouped kernel execution.

Everything else in this repo measures *modeled* seconds; this module is
the one place that reads the host clock.  It times the functional
execution path — the Python/NumPy work the simulator actually performs
per batch — under the reference per-pair loop (``kernel_mode="looped"``)
and the vectorized grouped path (``kernel_mode="grouped"``), on the
standard batch shapes:

* the Figure-16 batch-size sweep shape (paper nprobe=64, k=10,
  batch sizes 10/100/1000, 64 simulated DPUs), and
* a tiny ``--quick`` subset CI can afford to run on every push.

Each case reports three wall-clock numbers: ``looped_s`` (best of
``repeats`` runs of the loop path), ``grouped_cold_s`` (first grouped
run after the cross-batch caches are cleared) and ``grouped_warm_s``
(best of ``repeats`` repeat-traffic runs, where the LUT cache hits).
Both engines must return bit-identical ids/distances — the harness
asserts this before trusting any timing.

Results are emitted as schema-versioned ``repro.perf/v1`` records
(:func:`repro.telemetry.schema.make_perf_record`); speedups are ratios
of wall-clock sums, so records stay comparable across machines and CI
can gate on them (:func:`compare_to_baseline`).

Run via the CLI::

    python -m repro.cli perf --quick              # CI smoke subset
    python -m repro.cli perf --out BENCH_perf.json
    python -m repro.cli perf --quick --baseline BENCH_perf.json
"""

from __future__ import annotations

import gc
import os
import statistics
import time
from dataclasses import dataclass, replace
from typing import Any, Callable

import numpy as np

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import BatchResult, UpANNSEngine
from repro.data.skew import zipf_weights
from repro.data.synthetic import SIFT1B, make_dataset, make_queries
from repro.errors import ConfigError
from repro.hardware.specs import PimSystemSpec
from repro.ivfpq import IVFPQIndex
from repro.telemetry.log import get_logger
from repro.telemetry.schema import make_perf_record

log = get_logger()

#: LUT-cache capacity used for the sweeps.  The fig16 shape's working
#: set (500+ queries x 64 probed clusters) does not fit the 64 MB
#: service default, so the harness sizes the cache to hold it — the
#: capacity is recorded in the emitted record's config.
LUT_CACHE_BYTES = 1 << 30

#: How many vectors of a corpus feed k-means training.
_N_TRAIN_MAX = 20_000


@dataclass(frozen=True)
class PerfCase:
    """One timed batch shape (corpus geometry + batch size)."""

    name: str
    batch_size: int
    dim: int = 64
    m: int = 8
    n_clusters: int = 128
    n_vectors: int = 40_000
    nprobe: int = 64
    k: int = 10
    chips_per_dimm: int = 8  # 8 DPUs/chip -> 64 DPUs at the default

    @property
    def n_dpus(self) -> int:
        return self.chips_per_dimm * 8

    @property
    def setup_key(self) -> tuple:
        """Cases sharing this key share one corpus/index/engine pair."""
        return (
            self.dim,
            self.m,
            self.n_clusters,
            self.n_vectors,
            self.nprobe,
            self.k,
            self.chips_per_dimm,
        )

    def shape(self) -> dict[str, int]:
        return {
            "batch_size": self.batch_size,
            "dim": self.dim,
            "m": self.m,
            "n_clusters": self.n_clusters,
            "n_vectors": self.n_vectors,
            "nprobe": self.nprobe,
            "k": self.k,
            "n_dpus": self.n_dpus,
        }


def _quick(name: str, batch_size: int) -> PerfCase:
    return PerfCase(
        name,
        batch_size,
        dim=32,
        m=8,
        n_clusters=32,
        n_vectors=4_000,
        nprobe=8,
        k=5,
        chips_per_dimm=2,  # 16 DPUs
    )


#: CI smoke subset: small enough to run on every push.
QUICK_CASES: tuple[PerfCase, ...] = (
    _quick("quick_bs32", 32),
    _quick("quick_bs64", 64),
)

#: Figure-16 batch-size sweep at the paper's nprobe=64.
FIG16_CASES: tuple[PerfCase, ...] = tuple(
    PerfCase(f"fig16_bs{bs}", bs) for bs in (10, 100, 1000)
)

#: The full suite includes the quick cases so a committed full record
#: doubles as the CI baseline for ``--quick`` runs (cases match by name).
FULL_CASES: tuple[PerfCase, ...] = QUICK_CASES + FIG16_CASES


@dataclass
class _Setup:
    """Shared fixtures for every case with the same :attr:`setup_key`."""

    queries_for: Callable[[int, int], np.ndarray]
    looped: UpANNSEngine
    grouped: UpANNSEngine


def _build_setup(
    case: PerfCase,
    seed: int,
    lut_cache_bytes: int,
    *,
    executor: str | None = None,
) -> _Setup:
    rng = np.random.default_rng(seed)
    spec = replace(SIFT1B, dim=case.dim, pq_m=case.m)
    dataset = make_dataset(
        spec, case.n_vectors, n_components=32, correlated_subspaces=4, rng=rng
    )
    popularity = zipf_weights(32, 0.6)
    history = make_queries(dataset, 500, popularity=popularity, rng=rng)
    index = IVFPQIndex(case.dim, case.n_clusters, case.m)
    index.train(
        dataset.vectors[:_N_TRAIN_MAX],
        n_iter=4,
        rng=np.random.default_rng(seed),
    )
    index.add(dataset.vectors)

    def queries_for(batch_size: int, case_seed: int) -> np.ndarray:
        return make_queries(
            dataset,
            batch_size,
            popularity=popularity,
            rng=np.random.default_rng(case_seed),
        )

    def build_engine(mode: str) -> UpANNSEngine:
        cfg = SystemConfig(
            index=IndexConfig(
                dim=case.dim, n_clusters=case.n_clusters, m=case.m, train_iters=4
            ),
            query=QueryConfig(
                nprobe=case.nprobe, k=case.k, batch_size=case.batch_size
            ),
            upanns=UpANNSConfig(
                kernel_mode=mode, lut_cache_bytes=lut_cache_bytes
            ),
            pim=PimSystemSpec(
                n_dimms=1, chips_per_dimm=case.chips_per_dimm, dpus_per_chip=8
            ),
        )
        engine = UpANNSEngine(cfg)
        engine.build(
            dataset.vectors, history_queries=history, prebuilt_index=index
        )
        return engine

    grouped = build_engine("grouped")
    # Only the grouped (serving) engine gets the backend override; the
    # looped engine stays the inline reference every result is checked
    # against.
    grouped.executor = executor
    return _Setup(
        queries_for=queries_for,
        looped=build_engine("looped"),
        grouped=grouped,
    )


def _timed(engine: UpANNSEngine, queries: np.ndarray) -> tuple[float, BatchResult]:
    # Same hygiene as ``timeit``: collect up front, keep the collector
    # out of the timed region (the looped path churns ~1e5 small objects
    # per batch, so stray GC pauses otherwise dominate run-to-run noise).
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        result = engine.search_batch(queries)
        elapsed = time.perf_counter() - t0
    finally:
        if was_enabled:
            gc.enable()
    return elapsed, result


def _best_of(
    engine: UpANNSEngine, queries: np.ndarray, repeats: int
) -> tuple[dict[str, float], BatchResult]:
    """Repeat-timing with variance: {min, median, stdev} + last result.

    CI gates on the median (robust to one noisy repeat on a shared
    runner); ``min`` remains the headline single-batch number.
    """
    samples = []
    elapsed, result = _timed(engine, queries)
    samples.append(elapsed)
    for _ in range(repeats - 1):
        elapsed, result = _timed(engine, queries)
        samples.append(elapsed)
    return {
        "min": min(samples),
        "median": statistics.median(samples),
        "stdev": statistics.stdev(samples) if len(samples) >= 2 else 0.0,
    }, result


def _sustained_qps(
    engine: UpANNSEngine, queries: np.ndarray, rounds: int, *, cold: bool = False
) -> float:
    """Open-loop sustained throughput: ``rounds`` back-to-back batches.

    Each batch is issued the instant the previous one returns; ``cold``
    clears the cross-batch caches before every batch (the epoch bump
    propagates to pool workers), so cold QPS prices the full LUT-build
    path under every executor backend.
    """
    total = 0.0
    for _ in range(rounds):
        if cold:
            engine.clear_runtime_caches()
        elapsed, _result = _timed(engine, queries)
        total += elapsed
    return rounds * queries.shape[0] / total if total > 0 else 0.0


def _check_equivalent(case: PerfCase, looped: BatchResult, grouped: BatchResult) -> None:
    """The grouped path must be bit-identical to the loop it replaces."""
    if not np.array_equal(looped.ids, grouped.ids) or not np.array_equal(
        looped.distances, grouped.distances
    ):
        raise ConfigError(
            f"perf case {case.name!r}: grouped results differ from looped — "
            "refusing to time a wrong kernel"
        )


def run_case(
    case: PerfCase,
    setup: _Setup,
    *,
    repeats: int,
    seed: int,
    sweep_workers: tuple[int, ...] = (),
) -> dict[str, Any]:
    """Time one batch shape; returns a perf-record case dict.

    Beyond the classic best-of latency triple, each case now carries
    per-repeat variance (``*_stats`` with min/median/stdev — CI gates on
    ``speedup_warm_median``), open-loop sustained throughput
    (``qps_warm`` / ``qps_cold``) and, when ``sweep_workers`` is
    non-empty, a worker-scaling table measured under the
    ``process:N`` executor backend with results asserted bit-identical
    to the looped reference at every point.
    """
    queries = setup.queries_for(case.batch_size, seed + case.batch_size)
    looped_stats, r_looped = _best_of(setup.looped, queries, repeats)
    looped_s = looped_stats["min"]

    # Cold = first grouped run with every cross-batch cache empty.
    grouped = setup.grouped
    grouped.clear_runtime_caches()
    cold_s, r_cold = _timed(grouped, queries)
    warm_stats, r_warm = _best_of(grouped, queries, repeats)
    warm_s = warm_stats["min"]

    _check_equivalent(case, r_looped, r_cold)
    _check_equivalent(case, r_looped, r_warm)

    # Open-loop sustained throughput on the serving (grouped) path.
    qps_warm = _sustained_qps(grouped, queries, repeats)
    qps_cold = _sustained_qps(grouped, queries, repeats, cold=True)

    workers: dict[str, dict[str, float]] = {}
    if sweep_workers:
        prev_executor = grouped.executor
        try:
            for n_workers in sweep_workers:
                grouped.executor = f"process:{n_workers}"
                grouped.clear_runtime_caches()
                _elapsed, r_pool = _timed(grouped, queries)  # cold + spin-up
                _check_equivalent(case, r_looped, r_pool)
                pool_stats, r_pool = _best_of(grouped, queries, repeats)
                _check_equivalent(case, r_looped, r_pool)
                pool_qps = _sustained_qps(grouped, queries, repeats)
                workers[str(n_workers)] = {
                    "warm_s": pool_stats["median"],
                    "qps_warm": pool_qps,
                    "speedup_warm": (
                        looped_stats["median"] / pool_stats["median"]
                        if pool_stats["median"] > 0
                        else 0.0
                    ),
                }
        finally:
            grouped.executor = prev_executor
            grouped.close()

    case_record = {
        "name": case.name,
        "shape": case.shape(),
        "repeats": repeats,
        "looped_s": looped_s,
        "grouped_cold_s": cold_s,
        "grouped_warm_s": warm_s,
        "looped_stats": looped_stats,
        "grouped_warm_stats": warm_stats,
        "speedup_cold": looped_s / cold_s if cold_s > 0 else 0.0,
        "speedup_warm": looped_s / warm_s if warm_s > 0 else 0.0,
        "speedup_warm_median": (
            looped_stats["median"] / warm_stats["median"]
            if warm_stats["median"] > 0
            else 0.0
        ),
        "qps_warm": qps_warm,
        "qps_cold": qps_cold,
    }
    if workers:
        case_record["workers"] = workers
    log.info(
        "perf.case",
        name=case.name,
        looped_s=round(looped_s, 4),
        cold_s=round(cold_s, 4),
        warm_s=round(warm_s, 4),
        speedup_warm=round(case_record["speedup_warm"], 2),
        qps_warm=round(qps_warm, 1),
    )
    return case_record


def _mode_for(cases: tuple[PerfCase, ...]) -> str:
    """The mode actually run, derived from the case tuple itself.

    The config block used to hard-code ``"full"`` whenever explicit
    cases were passed (and the CLI's record always said full even under
    ``--quick``); deriving it from the cases makes the record honest for
    every entry point.
    """
    if cases == QUICK_CASES:
        return "quick"
    if cases == FULL_CASES:
        return "full"
    return "custom"


def run_perf(
    cases: tuple[PerfCase, ...] | None = None,
    *,
    quick: bool = False,
    repeats: int = 3,
    seed: int = 0,
    lut_cache_bytes: int = LUT_CACHE_BYTES,
    executor: str | None = None,
    sweep_workers: tuple[int, ...] | None = None,
) -> dict[str, Any]:
    """Run a case suite and assemble one ``repro.perf/v1`` record.

    ``executor`` selects the grouped engine's backend for the main
    timings (``serial``, ``process``, ``process:N``) — results are
    asserted bit-identical to the looped reference either way.
    ``sweep_workers`` additionally measures each case under
    ``process:N`` for every N listed (default: ``(1, 2, 4, 8)`` for the
    full suite, no sweep for quick/custom runs — pass an explicit tuple
    to override, ``()`` to disable).
    """
    if repeats < 1:
        raise ConfigError("repeats must be >= 1")
    if cases is None:
        cases = QUICK_CASES if quick else FULL_CASES
    mode = _mode_for(cases)
    if sweep_workers is None:
        sweep_workers = (1, 2, 4, 8) if mode == "full" else ()
    setups: dict[tuple, _Setup] = {}
    case_records = []
    try:
        for case in cases:
            if case.setup_key not in setups:
                log.info("perf.setup", case=case.name, n_vectors=case.n_vectors)
                setups[case.setup_key] = _build_setup(
                    case, seed, lut_cache_bytes, executor=executor
                )
            case_records.append(
                run_case(
                    case,
                    setups[case.setup_key],
                    repeats=repeats,
                    seed=seed,
                    sweep_workers=sweep_workers,
                )
            )
    finally:
        for setup in setups.values():
            setup.looped.close()
            setup.grouped.close()
    host_cpus = os.cpu_count() or 1
    config: dict[str, Any] = {
        "mode": mode,
        "repeats": repeats,
        "seed": seed,
        "lut_cache_bytes": lut_cache_bytes,
        "executor": executor if executor is not None else "serial",
        "sweep_workers": list(sweep_workers),
        # Worker scaling is bounded by the measuring host; recorded
        # so a committed baseline's sweep is interpretable.
        "host_cpus": host_cpus,
    }
    if host_cpus <= 1 and any(n > 1 for n in sweep_workers):
        config["cpu_caveat"] = (
            "single-CPU host: sweep points beyond 1 worker measure "
            "process-pool oversubscription, not parallel speedup"
        )
    return make_perf_record(
        name="perf_quick" if mode == "quick" else "perf",
        config=config,
        cases=case_records,
    )


def compare_to_baseline(
    record: dict[str, Any],
    baseline: dict[str, Any],
    *,
    max_regression: float = 2.0,
) -> list[str]:
    """Regression failures against a committed baseline (empty = pass).

    Cases match by name, so a ``--quick`` run gates against the quick
    cases embedded in the committed full record.  The gated quantity is
    ``speedup_warm_median`` when both records carry it (robust to one
    noisy repeat on a shared runner), falling back to the min-based
    ``speedup_warm`` for pre-variance baselines — either way a
    wall-clock *ratio* measured on one machine, so the check is
    insensitive to how fast the CI runner is.  A case fails when its
    speedup falls below ``baseline / max_regression``, or when the
    baseline records sustained throughput (``qps_warm``/``qps_cold``)
    and the fresh record dropped those fields.
    """
    if max_regression <= 1.0:
        raise ConfigError("max_regression must be > 1.0")
    baseline_cases = {
        c.get("name"): c
        for c in baseline.get("cases", [])
        if isinstance(c, dict)
    }
    failures: list[str] = []
    matched = 0
    for case in record.get("cases", []):
        base = baseline_cases.get(case.get("name"))
        if base is None:
            continue
        matched += 1
        gate = "speedup_warm"
        if "speedup_warm_median" in base and "speedup_warm_median" in case:
            gate = "speedup_warm_median"
        floor = float(base[gate]) / max_regression
        if float(case[gate]) < floor:
            failures.append(
                f"case {case['name']!r}: {gate} "
                f"{case[gate]:.2f}x fell below {floor:.2f}x "
                f"(baseline {base[gate]:.2f}x / {max_regression:g})"
            )
        for qps_field in ("qps_warm", "qps_cold"):
            if qps_field in base and qps_field not in case:
                failures.append(
                    f"case {case['name']!r}: baseline records {qps_field} "
                    "but the fresh record does not — sustained-throughput "
                    "coverage regressed"
                )
    if not matched:
        failures.append("no case names in common with the baseline record")
    return failures
