"""Deterministic fault-injection plane for the PIM serving stack.

Real UPMEM deployments see partial failure as the common case: the PrIM
benchmarking work documents per-DIMM variability, transfer faults and
rank-granularity allocation, and UpANNS's own replica machinery
(Algorithm 1) exists precisely because hot clusters must survive on more
than one DPU.  This module turns those replicas into an availability
mechanism the simulator can exercise:

* a :class:`FaultPlan` describes *what* fails and *when* — permanent DPU
  death, transient MRAM/bus transfer faults, rank/DIMM outage, and
  (for :class:`~repro.core.multihost.MultiHostEngine`) host loss — at
  explicit batch indices or via a seeded per-batch hazard rate;
* a :class:`FaultState` is the plan's live runtime: it advances one
  batch at a time, applies scheduled events, draws hazard faults from a
  seeded generator, and tracks the dead set;
* :func:`restrict_placement` converts a placement plus a dead set into
  the failover view the scheduler actually routes over: pairs headed to
  a dead DPU land on a surviving replica, clusters with zero live
  replicas are *dropped* (graceful degradation) instead of raising;
* a :class:`DegradedResult` records what a batch lost: per-query
  coverage, re-routed and dropped pair counts, retry traffic.

Everything is strictly pay-for-what-you-use: an engine with no plan
injected executes exactly the fault-free code path (golden-pinned), and
an injected plan with no events and zero hazard is observationally
identical to no plan at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.placement import Placement
from repro.errors import ConfigError, DpuFailedError

#: Fault granularities a plan may inject (``host`` only applies to the
#: multi-host coordinator; the others target one host's PIM system).
FAULT_KINDS = ("dpu", "transfer", "rank", "dimm", "host")

#: Default transient-retry policy: capped exponential backoff.
DEFAULT_MAX_RETRIES = 3
DEFAULT_BACKOFF_BASE_S = 50e-6
DEFAULT_BACKOFF_CAP_S = 1e-3

#: Annotations the per-query explainer attaches to spans this plane
#: shaped: ``retry`` spans are re-driven bus traffic after a transient
#: transfer fault; ``killed`` spans were truncated mid-flight when a
#: DPU-death fence interrupted in-flight work (the fault plane owns the
#: wording so the explainer's vocabulary tracks the injection model).
RETRY_ANNOTATION = "fault-retry: bus re-drive after a transient fault"
KILL_ANNOTATION = "mid-flight kill: span truncated by a fault fence"


def retry_backoff_s(
    attempt: int,
    *,
    base_s: float = DEFAULT_BACKOFF_BASE_S,
    cap_s: float = DEFAULT_BACKOFF_CAP_S,
) -> float:
    """Backoff before retry ``attempt`` (1-based): ``base * 2^(n-1)``, capped."""
    if attempt < 1:
        raise ConfigError(f"retry attempts are 1-based, got {attempt}")
    return min(base_s * (2.0 ** (attempt - 1)), cap_s)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure: ``kind`` hits ``target`` at ``batch``.

    ``target`` is a DPU id for ``dpu``/``transfer``, a rank or DIMM
    index for ``rank``/``dimm``, and a host index for ``host``.
    """

    kind: str
    target: int
    batch: int

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        # Reject float-typed indices (a batch "2.5" silently never fires
        # because begin_batch compares with ==) before the sign check.
        for name in ("target", "batch"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigError(
                    f"fault {name} must be an integer, got {value!r}"
                )
        if self.target < 0 or self.batch < 0:
            raise ConfigError(f"fault target/batch must be >= 0: {self}")

    @classmethod
    def parse(cls, spec: str) -> "FaultEvent":
        """Parse the CLI form ``kind:target@batch`` (e.g. ``dpu:3@2``)."""
        try:
            kind, rest = spec.split(":", 1)
            target, batch = rest.split("@", 1)
            return cls(kind=kind.strip(), target=int(target), batch=int(batch))
        except ValueError as exc:
            raise ConfigError(
                f"bad fault spec {spec!r}; expected kind:target@batch "
                f"with kind in {FAULT_KINDS}"
            ) from exc

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "target": self.target, "batch": self.batch}


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seedable failure scenario.

    ``events`` fire at exact batch indices; ``transfer_hazard`` adds a
    seeded per-(DPU, batch) probability of a transient transfer fault on
    top.  Transient faults are retried with capped exponential backoff.
    Escalation is hazard-only: the hazard models whether each retry
    fails again, so a hazard-drawn fault that survives ``max_retries``
    escalates to permanent DPU death (the driver fences the device).
    An explicit ``transfer`` event models a one-shot fault whose single
    retry deterministically succeeds — it never escalates, no matter how
    many such events pile onto one unit.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0
    transfer_hazard: float = 0.0
    max_retries: int = DEFAULT_MAX_RETRIES
    backoff_base_s: float = DEFAULT_BACKOFF_BASE_S
    backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S

    def __post_init__(self) -> None:
        # NaN fails every comparison, so check finiteness explicitly or
        # a NaN hazard/backoff would sail through the range checks.
        import math

        if not math.isfinite(self.transfer_hazard) or not (
            0.0 <= self.transfer_hazard < 1.0
        ):
            raise ConfigError(
                f"transfer_hazard must be in [0, 1), got {self.transfer_hazard!r}"
            )
        if self.max_retries < 1:
            raise ConfigError(f"max_retries must be >= 1, got {self.max_retries!r}")
        for name in ("backoff_base_s", "backoff_cap_s"):
            if not math.isfinite(getattr(self, name)):
                raise ConfigError(
                    f"{name} must be finite, got {getattr(self, name)!r}"
                )
        if self.backoff_cap_s <= 0.0:
            raise ConfigError(
                f"backoff_cap_s must be > 0 (it caps every retry's wait), "
                f"got {self.backoff_cap_s!r}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ConfigError(
                f"need 0 <= backoff_base_s <= backoff_cap_s, got "
                f"base={self.backoff_base_s!r} cap={self.backoff_cap_s!r}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ConfigError(f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise ConfigError(f"seed must be >= 0, got {self.seed}")
        object.__setattr__(self, "events", tuple(self.events))

    @classmethod
    def from_specs(
        cls,
        specs: Iterable[str],
        *,
        seed: int = 0,
        transfer_hazard: float = 0.0,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> "FaultPlan":
        """Build a plan from CLI ``kind:target@batch`` strings."""
        return cls(
            events=tuple(FaultEvent.parse(s) for s in specs),
            seed=seed,
            transfer_hazard=transfer_hazard,
            max_retries=max_retries,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from a config mapping (JSON/TOML-shaped)."""
        events = []
        for entry in data.get("events", ()):
            if isinstance(entry, str):
                events.append(FaultEvent.parse(entry))
            elif isinstance(entry, Mapping):
                events.append(
                    FaultEvent(
                        kind=str(entry["kind"]),
                        target=int(entry["target"]),
                        batch=int(entry["batch"]),
                    )
                )
            else:
                raise ConfigError(f"bad fault event entry: {entry!r}")
        return cls(
            events=tuple(events),
            seed=int(data.get("seed", 0)),
            transfer_hazard=float(data.get("transfer_hazard", 0.0)),
            max_retries=int(data.get("max_retries", DEFAULT_MAX_RETRIES)),
        )

    def is_empty(self) -> bool:
        return not self.events and self.transfer_hazard == 0.0

    def state(self, *, n_units: int, rank_size: int = 1, dimm_size: int = 1) -> "FaultState":
        """Instantiate the live runtime for one engine's unit pool."""
        return FaultState(
            plan=self, n_units=n_units, rank_size=rank_size, dimm_size=dimm_size
        )


@dataclass
class BatchFaults:
    """What the plan injected at the start of one batch."""

    batch: int
    newly_dead: tuple[int, ...] = ()
    #: DPU id -> number of *failed* transfer attempts this batch (each
    #: failed attempt is retried and charged as one ``retry`` span).
    transient: dict[int, int] = field(default_factory=dict)
    #: DPU id -> failed attempts of units whose retry budget exhausted
    #: this batch.  These units are in ``newly_dead``, but the backoff
    #: and re-transmission traffic that preceded the death still
    #: happened and is charged on the timeline like ``transient``.
    escalated: dict[int, int] = field(default_factory=dict)
    #: Events that fired this batch (for reporting).
    events: tuple[FaultEvent, ...] = ()

    def any(self) -> bool:
        return bool(
            self.newly_dead or self.transient or self.escalated or self.events
        )

    def attempts_by_unit(self) -> dict[int, int]:
        """DPU id -> failed attempts, transient and escalated merged.

        This is the batch's retry *ledger*: engines emit exactly one
        ``retry`` span per attempt counted here, and the simsan checker
        holds ``DegradedResult.retries`` to the same sum — so both sides
        must derive it from this one method, never re-add the two dicts.
        """
        return {**self.transient, **self.escalated}

    def total_attempts(self) -> int:
        """Failed transfer attempts this batch (== retry spans charged)."""
        return sum(self.transient.values()) + sum(self.escalated.values())


@dataclass
class FaultState:
    """Live fault runtime: dead set + per-batch injection bookkeeping.

    One state is bound to one engine (its ``n_units`` DPUs, or hosts for
    the multi-host coordinator).  ``begin_batch`` must be called exactly
    once per served batch, in serving order — all randomness comes from
    the plan's seed, so two runs of the same plan over the same batch
    sequence inject identical faults.
    """

    plan: FaultPlan
    n_units: int
    rank_size: int = 1
    dimm_size: int = 1
    dead: set[int] = field(default_factory=set)
    batch_index: int = -1
    #: Cumulative ledger for reports.
    total_retries: int = 0
    total_rerouted_pairs: int = 0
    total_dropped_pairs: int = 0
    events_fired: list[FaultEvent] = field(default_factory=list)
    #: Unit id -> batch index at which it died (event or escalation).
    #: Stream execution (repro.sim.events.execute_stream) uses this to
    #: fence the victim's lane mid-flight at that batch's bus activity,
    #: interrupting whatever span the unit was executing.
    death_batches: dict[int, int] = field(default_factory=dict)
    _rng: np.random.Generator = field(init=False)

    def __post_init__(self) -> None:
        if self.n_units < 1:
            raise ConfigError("fault state needs at least one unit")
        if self.rank_size < 1 or self.dimm_size < 1:
            raise ConfigError("rank/dimm sizes must be >= 1")
        # Fail fast on events that could never fire on this unit pool:
        # without this, a plan targeting dpu 99 of a 16-DPU system only
        # errors at the batch the event lands on (or never, if the run
        # is shorter) — confusing downstream behavior at its finest.
        for event in self.plan.events:
            self._targets_of(event)
        self._rng = np.random.default_rng(self.plan.seed)

    @property
    def dead_units(self) -> tuple[int, ...]:
        return tuple(sorted(self.dead))

    def _targets_of(self, event: FaultEvent) -> list[int]:
        """Expand an event to the unit ids it kills/faults."""
        if event.kind in ("dpu", "transfer", "host"):
            ids = [event.target]
        elif event.kind == "rank":
            lo = event.target * self.rank_size
            ids = list(range(lo, lo + self.rank_size))
        else:  # dimm
            lo = event.target * self.dimm_size
            ids = list(range(lo, lo + self.dimm_size))
        valid = [u for u in ids if 0 <= u < self.n_units]
        if not valid:
            raise ConfigError(
                f"fault event {event} targets no unit in [0, {self.n_units})"
            )
        return valid

    def begin_batch(self) -> BatchFaults:
        """Advance to the next batch and apply everything due at it."""
        self.batch_index += 1
        newly_dead: list[int] = []
        transient: dict[int, int] = {}
        fired: list[FaultEvent] = []
        for event in self.plan.events:
            if event.batch != self.batch_index:
                continue
            fired.append(event)
            if event.kind == "transfer":
                for u in self._targets_of(event):
                    if u not in self.dead:
                        transient[u] = transient.get(u, 0) + 1
            else:
                for u in self._targets_of(event):
                    if u not in self.dead:
                        self.dead.add(u)
                        newly_dead.append(u)
        # Seeded hazard: one draw per live unit per batch, in unit order,
        # so the sequence is independent of which events also fired.
        if self.plan.transfer_hazard > 0.0:
            draws = self._rng.random(self.n_units)
            for u in range(self.n_units):
                if u in self.dead:
                    continue
                if draws[u] < self.plan.transfer_hazard:
                    transient[u] = transient.get(u, 0) + 1
        # Retry escalation: each failed attempt retries; a retry fails
        # again with the hazard probability, up to max_retries.  The
        # hazard is what models retry outcomes, so escalation is
        # hazard-only (see the FaultPlan docstring): with zero hazard an
        # explicit transfer event's retry deterministically succeeds.
        escalated: dict[int, int] = {}
        for u in sorted(transient):
            attempts = transient[u]
            while (
                attempts < self.plan.max_retries
                and self.plan.transfer_hazard > 0.0
                and float(self._rng.random()) < self.plan.transfer_hazard
            ):
                attempts += 1
            if self.plan.transfer_hazard > 0.0 and attempts >= self.plan.max_retries:
                transient.pop(u)
                escalated[u] = attempts
                if u not in self.dead:
                    self.dead.add(u)
                    newly_dead.append(u)
            else:
                transient[u] = attempts
        if len(self.dead) >= self.n_units:
            raise DpuFailedError(
                f"all {self.n_units} units dead at batch {self.batch_index}; "
                "nothing left to fail over to"
            )
        # Escalated units' attempts happened before the device was
        # declared dead — their retry traffic is still fault cost.
        self.total_retries += sum(transient.values()) + sum(escalated.values())
        self.events_fired.extend(fired)
        for u in newly_dead:
            self.death_batches[u] = self.batch_index
        return BatchFaults(
            batch=self.batch_index,
            newly_dead=tuple(newly_dead),
            transient=transient,
            escalated=escalated,
            events=tuple(fired),
        )

    def backoff_s(self, attempt: int) -> float:
        return retry_backoff_s(
            attempt, base_s=self.plan.backoff_base_s, cap_s=self.plan.backoff_cap_s
        )


@dataclass
class DegradedResult:
    """Degradation flag attached to a batch served under a fault plan.

    ``coverage[q]`` is the fraction of query ``q``'s probed (non-empty)
    clusters that a live replica actually served; 1.0 everywhere means
    the batch fully failed over with no functional loss.
    """

    coverage: np.ndarray
    rerouted_pairs: int = 0
    dropped_pairs: int = 0
    retries: int = 0
    retry_s: float = 0.0
    dead_units: tuple[int, ...] = ()
    events: tuple[FaultEvent, ...] = ()

    @property
    def is_degraded(self) -> bool:
        return bool(self.coverage.size) and bool((self.coverage < 1.0).any())

    @property
    def coverage_floor(self) -> float:
        return float(self.coverage.min()) if self.coverage.size else 1.0

    @property
    def coverage_mean(self) -> float:
        return float(self.coverage.mean()) if self.coverage.size else 1.0

    def require_coverage(self, floor: float) -> None:
        """Raise :class:`~repro.errors.CoverageError` below ``floor``."""
        from repro.errors import CoverageError

        if self.coverage_floor < floor:
            raise CoverageError(
                f"batch coverage floor {self.coverage_floor:.3f} below the "
                f"required {floor:.3f} ({self.dropped_pairs} pairs dropped, "
                f"dead units {list(self.dead_units)})"
            )


def restrict_placement(
    placement: Placement, dead: Iterable[int]
) -> tuple[Placement, frozenset[int], frozenset[int]]:
    """The failover view of a placement given a dead-DPU set.

    Returns ``(restricted, rerouted, lost)``: a placement whose replica
    lists contain only live DPUs, the clusters that lost at least one
    replica holder but still have a live one (their pairs *re-route*),
    and the clusters with zero live replicas (their pairs *drop* and
    the batch degrades).  Replica order is preserved so the scheduler's
    deterministic tie-breaking survives the restriction.
    """
    dead_set = set(dead)
    if not dead_set:
        return placement, frozenset(), frozenset()
    replicas: list[list[int]] = []
    rerouted: set[int] = set()
    lost: set[int] = set()
    for c, dpus in enumerate(placement.replicas):
        if not any(d in dead_set for d in dpus):
            replicas.append(dpus)
            continue
        live = [d for d in dpus if d not in dead_set]
        replicas.append(live)
        if live:
            rerouted.add(c)
        elif dpus:
            lost.add(c)
    return (
        Placement(
            n_dpus=placement.n_dpus,
            replicas=replicas,
            dpu_workload=placement.dpu_workload,
            dpu_vectors=placement.dpu_vectors,
            mean_workload=placement.mean_workload,
        ),
        frozenset(rerouted),
        frozenset(lost),
    )


def pick_replicated_unit(placement: Placement, *, exclude: Iterable[int] = ()) -> int | None:
    """A unit whose death loses no data: every cluster it holds has a
    replica elsewhere.  Used by the chaos scenario to demonstrate
    zero-recall-loss failover; ``None`` when no such unit exists."""
    excluded = set(exclude)
    holders: dict[int, int] = {}
    min_reps: dict[int, int] = {}
    for dpus in placement.replicas:
        for d in dpus:
            holders[d] = holders.get(d, 0) + 1
            min_reps[d] = min(min_reps.get(d, len(dpus)), len(dpus))
    candidates = [
        d
        for d, n in sorted(holders.items())
        if d not in excluded and min_reps[d] >= 2
    ]
    if not candidates:
        return None
    # The busiest such unit makes the most interesting failover story.
    return max(candidates, key=lambda d: (holders[d], -d))


def coverage_fractions(
    n_queries: int,
    probes_exec: Sequence[np.ndarray] | np.ndarray,
    dropped: Sequence[tuple[int, int]],
) -> np.ndarray:
    """Per-query served fraction given the executed probe lists and the
    (query, cluster) pairs the scheduler had to drop."""
    denom = np.zeros(n_queries, dtype=np.float64)
    if isinstance(probes_exec, np.ndarray):
        mat = np.atleast_2d(probes_exec)
        denom[: mat.shape[0]] = mat.shape[1]
    else:
        for qi, ids in enumerate(probes_exec):
            denom[qi] = np.asarray(ids).size
    lost = np.zeros(n_queries, dtype=np.float64)
    for qi, _ in dropped:
        lost[qi] += 1
    with np.errstate(invalid="ignore"):
        cov = np.where(denom > 0, (denom - lost) / np.maximum(denom, 1.0), 1.0)
    return cov
