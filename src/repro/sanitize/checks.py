"""The dynamic schedule sanitizer: lane checks + ledger conservation.

The core abstraction is a *lane map*: ``resource -> [(t0, duration,
stage), ...]``.  Both input shapes reduce to it — a live
:class:`~repro.sim.schedule.BatchSchedule` trivially, an exported
Chrome trace via its thread-name metadata — so every invariant is
checked by one implementation (:func:`check_lanes`), which
``repro.sim.trace`` also delegates to instead of keeping its own copy.

The happens-before checks are deliberately conservative: they hold for
single-batch engine output *and* for ``sequential`` / ``double_buffer``
compositions, where batches interleave on shared lanes and per-span
batch identity is gone.  What survives composition:

* no DPU span may start before the first ``transfer_in`` span on the
  ``pim_bus`` lane has ended (nothing executes before any input landed);
* no ``aggregate`` span may start before the first ``transfer_out``
  span ended, nor before the first DPU span closed;
* every ``retry`` span must directly follow a ``transfer_in`` or
  ``retry`` span on its lane (recovery is contiguous with the transfer
  it repairs — kernels launch after recovery, not around it).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from repro.sanitize.findings import (
    SAN_LEDGER,
    SAN_NUMERIC,
    SAN_ORDER,
    SAN_OVERLAP,
    SAN_SCHEMA,
    SAN_TRACE,
    SanFinding,
)
from repro.sim.schedule import (
    STAGE_AGGREGATE,
    STAGE_RETRY,
    STAGE_TRANSFER_IN,
    STAGE_TRANSFER_OUT,
)
from repro.sim.span import PIM_BUS, is_dpu_resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.schedule import BatchSchedule, BatchTiming

#: One span in lane form: (t0, duration, stage).
LaneSpan = tuple[float, float, str]
LaneMap = dict[str, list[LaneSpan]]

#: Relative slack for trace-side comparisons: scaling seconds to
#: microseconds rounds ts and dur independently (same as the historical
#: ``repro.sim.trace`` tolerance).
TRACE_RTOL = 1e-9


def _bad_number(value: float) -> str | None:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "infinite"
    if value < 0:
        return "negative"
    return None


def _slack(rtol: float, reference: float) -> float:
    return rtol * max(1.0, abs(reference))


def check_lanes(
    lanes: LaneMap,
    *,
    rtol: float = 0.0,
    causality: bool = True,
    strict_zero: bool = False,
) -> list[SanFinding]:
    """All lane-level invariants over a resource -> spans map."""
    findings: list[SanFinding] = []
    findings.extend(_check_numeric(lanes, strict_zero=strict_zero))
    findings.extend(_check_overlap(lanes, rtol=rtol))
    if causality:
        findings.extend(_check_causality(lanes, rtol=rtol))
        findings.extend(_check_retry_contiguity(lanes))
    return findings


def _check_numeric(lanes: LaneMap, *, strict_zero: bool) -> list[SanFinding]:
    findings = []
    for resource, spans in lanes.items():
        for t0, duration, stage in spans:
            for label, value in (("start", t0), ("duration", duration)):
                problem = _bad_number(value)
                if problem is not None:
                    findings.append(
                        SanFinding(
                            SAN_NUMERIC,
                            resource,
                            f"{problem} {label} {value!r} on {stage!r} span",
                        )
                    )
            if strict_zero and duration == 0.0:
                findings.append(
                    SanFinding(
                        SAN_NUMERIC,
                        resource,
                        f"zero-duration {stage!r} span at t={t0} (strict mode)",
                    )
                )
    return findings


def _check_overlap(lanes: LaneMap, *, rtol: float) -> list[SanFinding]:
    findings = []
    for resource, spans in lanes.items():
        ordered = sorted(spans, key=lambda s: s[0])
        prev_end = 0.0
        prev_stage = ""
        for t0, duration, stage in ordered:
            if math.isnan(t0) or math.isnan(duration):
                continue  # already a SAN-NUMERIC finding
            if t0 + _slack(rtol, prev_end) < prev_end:
                findings.append(
                    SanFinding(
                        SAN_OVERLAP,
                        resource,
                        f"{stage!r} at t={t0} overlaps {prev_stage!r} "
                        f"ending at {prev_end}",
                    )
                )
            if t0 + duration > prev_end:
                prev_end, prev_stage = t0 + duration, stage
    return findings


def _first_span(
    lanes: LaneMap, stage: str, *, resources: tuple[str, ...] | None = None
) -> LaneSpan | None:
    """Earliest-starting span with ``stage`` (optionally on given lanes)."""
    best: LaneSpan | None = None
    for resource, spans in lanes.items():
        if resources is not None and resource not in resources:
            continue
        for span in spans:
            if span[2] == stage and not math.isnan(span[0]):
                if best is None or span[0] < best[0]:
                    best = span
    return best


def _check_causality(lanes: LaneMap, *, rtol: float) -> list[SanFinding]:
    findings = []
    first_tin = _first_span(lanes, STAGE_TRANSFER_IN, resources=(PIM_BUS,))
    if first_tin is not None:
        tin_end = first_tin[0] + first_tin[1]
        for resource, spans in lanes.items():
            if not is_dpu_resource(resource):
                continue
            for t0, _duration, stage in spans:
                if t0 + _slack(rtol, tin_end) < tin_end:
                    findings.append(
                        SanFinding(
                            SAN_ORDER,
                            resource,
                            f"DPU {stage!r} span starts at t={t0} before the "
                            f"first transfer_in on {PIM_BUS} ends at {tin_end}",
                        )
                    )

    first_tout = _first_span(lanes, STAGE_TRANSFER_OUT)
    first_dpu_end: float | None = None
    for resource, spans in lanes.items():
        if not is_dpu_resource(resource):
            continue
        for t0, duration, _stage in spans:
            if math.isnan(t0) or math.isnan(duration):
                continue
            if first_dpu_end is None or t0 + duration < first_dpu_end:
                first_dpu_end = t0 + duration
    for resource, spans in lanes.items():
        for t0, _duration, stage in spans:
            if stage != STAGE_AGGREGATE:
                continue
            if first_tout is not None:
                tout_end = first_tout[0] + first_tout[1]
                if t0 + _slack(rtol, tout_end) < tout_end:
                    findings.append(
                        SanFinding(
                            SAN_ORDER,
                            resource,
                            f"aggregate span starts at t={t0} before the first "
                            f"transfer_out ends at {tout_end}",
                        )
                    )
            if (
                first_dpu_end is not None
                and t0 + _slack(rtol, first_dpu_end) < first_dpu_end
            ):
                findings.append(
                    SanFinding(
                        SAN_ORDER,
                        resource,
                        f"aggregate span starts at t={t0} before the first DPU "
                        f"span closes at {first_dpu_end}",
                    )
                )
    return findings


def _check_retry_contiguity(lanes: LaneMap) -> list[SanFinding]:
    findings = []
    for resource, spans in lanes.items():
        ordered = sorted(spans, key=lambda s: s[0])
        for i, (t0, _duration, stage) in enumerate(ordered):
            if stage != STAGE_RETRY:
                continue
            prev_stage = ordered[i - 1][2] if i > 0 else None
            if prev_stage not in (STAGE_TRANSFER_IN, STAGE_RETRY):
                before = repr(prev_stage) if prev_stage else "nothing"
                findings.append(
                    SanFinding(
                        SAN_ORDER,
                        resource,
                        f"retry span at t={t0} follows {before} — recovery "
                        "must be contiguous with its failed transfer_in",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# BatchSchedule-level sanitization (lanes + derived-ledger conservation)
# ---------------------------------------------------------------------------


def schedule_lanes(schedule: "BatchSchedule") -> LaneMap:
    """A schedule's timelines in lane form (no copies of Span objects)."""
    return {
        resource: [(s.t0, s.duration, s.stage) for s in tl.spans]
        for resource, tl in schedule.timelines.items()
    }


def sanitize_schedule(
    schedule: "BatchSchedule",
    *,
    timing: "BatchTiming | None" = None,
    stage_seconds: Any = None,
    degraded: Any = None,
    strict_zero: bool = False,
) -> list[SanFinding]:
    """Every simsan invariant over one schedule.

    ``timing``, ``stage_seconds`` and ``degraded`` are the views an
    engine *derived and reported* for this schedule; when supplied they
    are re-derived from the spans and compared bit-for-bit, so a ledger
    that drifted from its events is a finding, not a rounding question.
    """
    findings = check_lanes(schedule_lanes(schedule), strict_zero=strict_zero)
    for resource, tl in schedule.timelines.items():
        for span in tl.spans:
            if span.resource != resource:
                findings.append(
                    SanFinding(
                        SAN_SCHEMA,
                        resource,
                        f"span claims resource {span.resource!r} but is filed "
                        f"under the {resource!r} lane",
                    )
                )
    findings.extend(_check_cycle_conservation(schedule))
    findings.extend(check_trace_partition(schedule))
    findings.extend(
        _check_derived_ledgers(
            schedule, timing=timing, stage_seconds=stage_seconds, degraded=degraded
        )
    )
    return findings


def check_trace_partition(schedule: "BatchSchedule") -> list[SanFinding]:
    """Trace ids must partition a traced schedule's span set.

    An untraced schedule (no span carries metadata) is legal — hand-built
    schedules and composition fixtures never ran through an engine.  But
    once *any* span is traced, all of them must be: a half-traced
    schedule means some emission path dropped the context, and every
    downstream attribution (trace records, explainers, exemplars) would
    silently under-count.  Additionally each ``(batch, uid)`` span
    identity must be unique, each trace id must stay within one batch
    (queries never span stream positions), and queue waits are
    non-negative by construction.
    """
    traced = 0
    untraced: list[tuple[str, str]] = []
    findings: list[SanFinding] = []
    seen_keys: dict[tuple[int, int], str] = {}
    batches_by_qid: dict[str, set[int]] = {}
    for resource, tl in schedule.timelines.items():
        for span in tl.spans:
            tr = span.trace
            if tr is None:
                untraced.append((resource, span.stage))
                continue
            traced += 1
            key = (tr.batch, tr.uid)
            if key in seen_keys:
                findings.append(
                    SanFinding(
                        SAN_TRACE,
                        resource,
                        f"span identity b{tr.batch}.{tr.uid} on {span.stage!r} "
                        f"duplicates one on {seen_keys[key]!r}",
                    )
                )
            else:
                seen_keys[key] = resource
            if math.isnan(tr.wait_s) or tr.wait_s < 0:
                findings.append(
                    SanFinding(
                        SAN_TRACE,
                        resource,
                        f"{span.stage!r} span reports queue wait "
                        f"{tr.wait_s!r} (must be finite and >= 0)",
                    )
                )
            for qid in tr.trace_ids:
                batches_by_qid.setdefault(qid, set()).add(tr.batch)
    if traced and untraced:
        resource, stage = untraced[0]
        findings.append(
            SanFinding(
                SAN_TRACE,
                resource,
                f"{len(untraced)} span(s) carry no trace metadata while "
                f"{traced} do (first: {stage!r}) — trace ids must "
                "partition the span set",
            )
        )
    for qid in sorted(batches_by_qid):
        batches = batches_by_qid[qid]
        if len(batches) > 1:
            findings.append(
                SanFinding(
                    SAN_TRACE,
                    qid,
                    f"trace id appears in {len(batches)} batches "
                    f"{sorted(batches)} — a query lives in exactly one",
                )
            )
    return findings


def _check_cycle_conservation(schedule: "BatchSchedule") -> list[SanFinding]:
    """DPU spans carry cycles; duration must equal ``cycles / f`` exactly
    (that is the only way ``record_dpu_stages`` ever computes it)."""
    freq = schedule.dpu_frequency_hz
    if freq is None or freq <= 0:
        return []
    findings = []
    for tl in schedule.dpu_timelines():
        for span in tl.spans:
            if span.cycles is None or math.isnan(span.duration):
                continue
            expected = span.cycles / freq
            if span.duration != expected:
                findings.append(
                    SanFinding(
                        SAN_LEDGER,
                        tl.resource,
                        f"{span.stage!r} span lasts {span.duration}s but its "
                        f"{span.cycles} cycles at {freq:g} Hz model "
                        f"{expected}s",
                    )
                )
    return findings


def _check_derived_ledgers(
    schedule: "BatchSchedule",
    *,
    timing: "BatchTiming | None",
    stage_seconds: Any,
    degraded: Any,
) -> list[SanFinding]:
    findings: list[SanFinding] = []
    if timing is None:
        return findings
    derived = schedule.derive_batch_timing()
    for name in (
        "host_filter_s",
        "host_schedule_s",
        "transfer_in_s",
        "dpu_makespan_s",
        "transfer_out_s",
        "host_aggregate_s",
        "retry_s",
    ):
        reported = getattr(timing, name)
        expected = getattr(derived, name)
        if reported != expected:
            findings.append(
                SanFinding(
                    SAN_LEDGER,
                    f"timing.{name}",
                    f"reported {reported!r} but the spans derive {expected!r}",
                )
            )
    if timing.total_s != derived.total_s:
        findings.append(
            SanFinding(
                SAN_LEDGER,
                "timing.total_s",
                f"reported {timing.total_s!r} but the spans derive "
                f"{derived.total_s!r}",
            )
        )
    if stage_seconds is not None:
        from repro.metrics.breakdown import stage_seconds_from_schedule

        expected_stages = stage_seconds_from_schedule(schedule, derived)
        for name, expected in expected_stages.as_dict().items():
            reported = getattr(stage_seconds, name)
            if reported != expected:
                findings.append(
                    SanFinding(
                        SAN_LEDGER,
                        f"stage_seconds.{name}",
                        f"reported {reported!r} but the spans derive "
                        f"{expected!r}",
                    )
                )
    if degraded is not None:
        if degraded.retry_s != derived.retry_s:
            findings.append(
                SanFinding(
                    SAN_LEDGER,
                    "degraded.retry_s",
                    f"fault ledger charges {degraded.retry_s!r} but the retry "
                    f"spans sum to {derived.retry_s!r}",
                )
            )
        # Engines emit one retry span per failed attempt (incl. attempts
        # by units that escalated to death), so on a schedule with DPU
        # lanes the span count must equal the attempt ledger.  Host-level
        # coordinators charge retries on their member engines instead.
        if schedule.dpu_timelines():
            n_retry_spans = sum(
                1
                for tl in schedule.timelines.values()
                for span in tl.spans
                if span.stage == STAGE_RETRY
            )
            if degraded.retries != n_retry_spans:
                findings.append(
                    SanFinding(
                        SAN_LEDGER,
                        "degraded.retries",
                        f"fault ledger counts {degraded.retries} attempts but "
                        f"{n_retry_spans} retry span(s) were recorded",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Chrome-trace sanitization (structure + the same lane checks)
# ---------------------------------------------------------------------------


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def collect_trace_lanes(payload: Any) -> tuple[LaneMap, list[SanFinding]]:
    """Parse a Trace Event Format object into a lane map.

    Structural problems come back as ``SAN-SCHEMA`` findings.  Lanes are
    keyed by the thread-name metadata (the simulator names one thread
    per resource) so resource-aware checks work on exported traces; an
    unnamed lane falls back to its ``pid=N tid=M`` key.
    """
    findings: list[SanFinding] = []
    if not isinstance(payload, dict):
        return {}, [
            SanFinding(SAN_SCHEMA, "trace", "top level must be a JSON object")
        ]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return {}, [
            SanFinding(SAN_SCHEMA, "trace", "missing or non-list 'traceEvents'")
        ]

    names: dict[tuple[Any, Any], str] = {}
    raw_lanes: dict[tuple[Any, Any], list[LaneSpan]] = {}
    for i, event in enumerate(events):
        where = f"event {i}"
        if not isinstance(event, dict):
            findings.append(SanFinding(SAN_SCHEMA, where, "not an object"))
            continue
        ph = event.get("ph")
        if ph in ("s", "t", "f"):
            # Flow events bind spans into per-query chains; they carry
            # no lane duration, so validate the binding id and move on.
            if not isinstance(event.get("id"), str) or not event.get("id"):
                findings.append(
                    SanFinding(
                        SAN_SCHEMA, where, "flow event needs a string 'id'"
                    )
                )
            elif not _is_number(event.get("ts")) or event.get("ts") < 0:
                findings.append(
                    SanFinding(
                        SAN_SCHEMA, where, "'ts' must be a non-negative number"
                    )
                )
            continue
        if ph not in ("X", "M"):
            findings.append(
                SanFinding(SAN_SCHEMA, where, f"unsupported phase {ph!r}")
            )
            continue
        if not isinstance(event.get("name"), str):
            findings.append(
                SanFinding(SAN_SCHEMA, where, "missing string 'name'")
            )
        key = (event.get("pid"), event.get("tid"))
        if ph == "M":
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(
                args.get("name"), str
            ):
                findings.append(
                    SanFinding(
                        SAN_SCHEMA, where, "metadata event needs args.name"
                    )
                )
            elif event.get("name") == "thread_name":
                names[key] = args["name"]
            continue
        ts, dur = event.get("ts"), event.get("dur")
        if not _is_number(ts) or ts < 0:
            findings.append(
                SanFinding(
                    SAN_SCHEMA, where, "'ts' must be a non-negative number"
                )
            )
            continue
        if not _is_number(dur) or dur < 0:
            findings.append(
                SanFinding(
                    SAN_SCHEMA, where, "'dur' must be a non-negative number"
                )
            )
            continue
        raw_lanes.setdefault(key, []).append(
            (float(ts), float(dur), str(event.get("name")))
        )

    lanes: LaneMap = {}
    for key, spans in raw_lanes.items():
        label = names.get(key, f"lane pid={key[0]} tid={key[1]}")
        lanes.setdefault(label, []).extend(spans)
    return lanes, findings


def sanitize_chrome_trace(
    payload: Any, *, strict_zero: bool = False
) -> list[SanFinding]:
    """Structure + every lane invariant over an exported Chrome trace."""
    lanes, findings = collect_trace_lanes(payload)
    findings.extend(
        check_lanes(
            lanes, rtol=TRACE_RTOL, causality=True, strict_zero=strict_zero
        )
    )
    return findings
