"""Debug-flag sanitizer hook for the engines' hot path.

Every engine calls :func:`debug_sanitize_schedule` on the schedule it
just recorded (and the trace exporter on the payload it is about to
write).  The hook is a no-op unless the ``REPRO_SANITIZE`` environment
variable is set to a non-empty value other than ``0`` — the check costs
one dict lookup per batch when disabled, so it can stay in the engines
unconditionally.  When armed, any finding raises
:class:`~repro.errors.ConfigError` with every violated invariant in the
message, turning a silently corrupt timeline into a loud failure at the
batch that produced it.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError
from repro.sanitize.checks import sanitize_chrome_trace, sanitize_schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.schedule import BatchSchedule, BatchTiming

#: Environment variable arming the per-batch sanitizer.
ENV_VAR = "REPRO_SANITIZE"


def sanitize_enabled() -> bool:
    """True when the debug sanitizer is armed via :data:`ENV_VAR`."""
    return os.environ.get(ENV_VAR, "") not in ("", "0")


def debug_sanitize_schedule(
    schedule: "BatchSchedule | None",
    *,
    timing: "BatchTiming | None" = None,
    stage_seconds: Any = None,
    degraded: Any = None,
    label: str = "schedule",
) -> None:
    """Sanitize one schedule iff the debug flag is armed; raise on findings."""
    if schedule is None or not sanitize_enabled():
        return
    findings = sanitize_schedule(
        schedule, timing=timing, stage_seconds=stage_seconds, degraded=degraded
    )
    if findings:
        raise ConfigError(
            f"simsan: {label} violates {len(findings)} invariant(s): "
            + "; ".join(f.render() for f in findings)
        )


def debug_sanitize_trace(payload: Any, *, label: str = "trace") -> None:
    """Sanitize a Chrome-trace payload iff the debug flag is armed."""
    if not sanitize_enabled():
        return
    findings = sanitize_chrome_trace(payload)
    if findings:
        raise ConfigError(
            f"simsan: {label} violates {len(findings)} invariant(s): "
            + "; ".join(f.render() for f in findings)
        )
