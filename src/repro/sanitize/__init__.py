"""simsan — timeline race detector + determinism sanitizer.

Layer 1 (this package): a dynamic validator over recorded
:class:`~repro.sim.schedule.BatchSchedule` objects, exported Chrome
traces and schema-versioned result records.  It detects
exclusive-resource double-booking, happens-before violations, numeric
anomalies and conservation mismatches between span sums and the derived
ledgers — each class with its own finding code (see
:mod:`repro.sanitize.findings`).

Layer 2 lives in :mod:`repro.lint` (rules DET001/DET002/SCHED001): the
static half of the same discipline, keeping the *source* of the
simulator deterministic and span-honest.

Entry points: ``python -m repro.cli sanitize FILE...`` for files, the
``REPRO_SANITIZE=1`` environment flag for per-batch engine checks, and
the functions below for tests.
"""

from repro.sanitize.checks import (
    TRACE_RTOL,
    check_lanes,
    check_trace_partition,
    collect_trace_lanes,
    sanitize_chrome_trace,
    sanitize_schedule,
    schedule_lanes,
)
from repro.sanitize.findings import (
    ALL_CODES,
    SAN_LEDGER,
    SAN_NUMERIC,
    SAN_ORDER,
    SAN_OVERLAP,
    SAN_SCHEMA,
    SAN_TRACE,
    SanFinding,
    with_source,
)
from repro.sanitize.hook import (
    ENV_VAR,
    debug_sanitize_schedule,
    debug_sanitize_trace,
    sanitize_enabled,
)
from repro.sanitize.records import (
    SANITIZE_SCHEMA,
    detect_kind,
    make_sanitize_record,
    sanitize_chaos_record,
    sanitize_golden_timings,
    sanitize_payload,
    sanitize_result_record,
    sanitize_serve_record,
    sanitize_trace_record,
)

__all__ = [
    "ALL_CODES",
    "ENV_VAR",
    "SANITIZE_SCHEMA",
    "SAN_LEDGER",
    "SAN_NUMERIC",
    "SAN_ORDER",
    "SAN_OVERLAP",
    "SAN_SCHEMA",
    "SAN_TRACE",
    "SanFinding",
    "TRACE_RTOL",
    "check_lanes",
    "check_trace_partition",
    "collect_trace_lanes",
    "debug_sanitize_schedule",
    "debug_sanitize_trace",
    "detect_kind",
    "make_sanitize_record",
    "sanitize_chaos_record",
    "sanitize_chrome_trace",
    "sanitize_enabled",
    "sanitize_golden_timings",
    "sanitize_payload",
    "sanitize_result_record",
    "sanitize_schedule",
    "sanitize_serve_record",
    "sanitize_trace_record",
    "schedule_lanes",
    "with_source",
]
