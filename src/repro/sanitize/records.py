"""Record-level conservation checks + the ``repro.sanitize/v1`` report.

The telemetry schema validators (``repro.telemetry.schema``) check
*structure*; this module checks *conservation* — the cross-field sums a
structurally valid record can still get wrong:

* chaos records: recovery totals vs per-batch rows, coverage floor vs
  the worst row, fault counters vs row sums;
* result records: critical-path attribution covering the makespan,
  per-resource busy+idle filling each lane's window;
* trace records: each query's latency equal to its window, its window
  bounded by the spans that served it, span counts conserved;
* golden-timing fixtures: the hex-pinned ``total_s`` equal to the
  left-to-right sum of its parts, bit-for-bit.

Float comparisons on JSON round-trips use a tiny relative tolerance
(:data:`RECORD_RTOL`); the golden hex fixtures are compared exactly
because ``float.fromhex`` is lossless.
"""

from __future__ import annotations

import math
from typing import Any

from repro.sanitize.checks import sanitize_chrome_trace
from repro.sanitize.findings import SAN_LEDGER, SAN_SCHEMA, SanFinding

RECORD_RTOL = 1e-9

SANITIZE_SCHEMA = "repro.sanitize/v1"

#: ``BatchTiming`` fields in ``total_s`` summation order.
_TIMING_PARTS = (
    "host_filter_s",
    "host_schedule_s",
    "transfer_in_s",
    "dpu_makespan_s",
    "transfer_out_s",
    "host_aggregate_s",
    "retry_s",
)


def _isclose(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=RECORD_RTOL, abs_tol=1e-15)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def detect_kind(payload: Any) -> str:
    """Classify a loaded JSON payload for :func:`sanitize_payload`."""
    if isinstance(payload, dict):
        if "traceEvents" in payload:
            return "trace"
        schema = payload.get("schema")
        if isinstance(schema, str):
            if schema.startswith("repro.chaos/"):
                return "chaos"
            if schema.startswith("repro.bench.result/"):
                return "result"
            if schema.startswith("repro.perf/"):
                return "perf"
            if schema.startswith("repro.trace/"):
                return "tracerec"
            if schema.startswith("repro.serve/"):
                return "serve"
            if schema == SANITIZE_SCHEMA:
                return "sanitize"
        # Golden-timings fixture: engine name -> views; at least one
        # entry pins a "timing" block (some, e.g. multihost, pin a flat
        # dict of other hex parts and carry no total to conserve).
        if (
            payload
            and all(isinstance(v, dict) for v in payload.values())
            and any("timing" in v for v in payload.values())
        ):
            return "golden"
    return "unknown"


def sanitize_payload(payload: Any, *, strict_zero: bool = False) -> list[SanFinding]:
    """Dispatch a loaded JSON payload to the matching sanitizer."""
    kind = detect_kind(payload)
    if kind == "trace":
        return sanitize_chrome_trace(payload, strict_zero=strict_zero)
    if kind == "chaos":
        return sanitize_chaos_record(payload)
    if kind == "result":
        return sanitize_result_record(payload)
    if kind == "tracerec":
        return sanitize_trace_record(payload)
    if kind == "serve":
        return sanitize_serve_record(payload)
    if kind == "golden":
        return sanitize_golden_timings(payload)
    if kind in ("perf", "sanitize"):
        # Structure-only records: the telemetry schema validator owns
        # them and there is no span/conservation surface to check.
        return []
    return [
        SanFinding(
            SAN_SCHEMA,
            "input",
            "unrecognized payload: expected a Chrome trace, a "
            "repro.chaos/result record, or a golden-timings fixture",
        )
    ]


def sanitize_chaos_record(record: Any) -> list[SanFinding]:
    """Cross-field conservation over a ``repro.chaos/v1`` record.

    Assumes the record is structurally valid (run
    ``repro.telemetry.schema`` first); missing pieces are skipped, not
    re-reported.
    """
    findings: list[SanFinding] = []
    if not isinstance(record, dict):
        return [SanFinding(SAN_SCHEMA, "record", "record must be a JSON object")]
    rows = record.get("batches")
    recovery = record.get("recovery")
    degradation = record.get("degradation")
    config = record.get("config")
    if not isinstance(rows, list) or not all(isinstance(r, dict) for r in rows):
        return findings

    if isinstance(config, dict) and isinstance(config.get("batches"), int):
        if config["batches"] != len(rows):
            findings.append(
                SanFinding(
                    SAN_LEDGER,
                    "batches",
                    f"config promises {config['batches']} batches but the "
                    f"record carries {len(rows)} rows",
                )
            )
    if isinstance(recovery, dict) and _is_number(recovery.get("retry_seconds")):
        total = sum(float(r.get("retry_seconds", 0.0)) for r in rows)
        if not _isclose(float(recovery["retry_seconds"]), total):
            findings.append(
                SanFinding(
                    SAN_LEDGER,
                    "recovery.retry_seconds",
                    f"reports {recovery['retry_seconds']} but the batch rows "
                    f"sum to {total}",
                )
            )
    if isinstance(recovery, dict) and _is_number(recovery.get("recovery_seconds")):
        total = sum(float(r.get("recovery_seconds", 0.0)) for r in rows)
        if not _isclose(float(recovery["recovery_seconds"]), total):
            findings.append(
                SanFinding(
                    SAN_LEDGER,
                    "recovery.recovery_seconds",
                    f"reports {recovery['recovery_seconds']} but the batch "
                    f"rows sum to {total}",
                )
            )
    if isinstance(degradation, dict) and _is_number(
        degradation.get("coverage_floor")
    ):
        floors = [
            float(r["coverage_floor"])
            for r in rows
            if _is_number(r.get("coverage_floor"))
        ]
        worst = min(floors, default=1.0)
        if not _isclose(float(degradation["coverage_floor"]), worst):
            findings.append(
                SanFinding(
                    SAN_LEDGER,
                    "degradation.coverage_floor",
                    f"reports {degradation['coverage_floor']} but the worst "
                    f"batch row is {worst}",
                )
            )
    faults = record.get("faults")
    if isinstance(faults, dict):
        for key in ("rerouted_pairs", "dropped_pairs"):
            if not isinstance(faults.get(key), int):
                continue
            total_pairs = sum(
                int(r.get(key, 0)) for r in rows if isinstance(r.get(key), int)
            )
            if faults[key] != total_pairs:
                findings.append(
                    SanFinding(
                        SAN_LEDGER,
                        f"faults.{key}",
                        f"reports {faults[key]} but the batch rows sum to "
                        f"{total_pairs}",
                    )
                )
    return findings


def _serve_ledger_findings(where: str, row: Any) -> list[SanFinding]:
    """Exact offered-conservation over one serve-record ledger row."""
    keys = ("offered", "admitted", "shed", "timed_out")
    if not isinstance(row, dict) or not all(
        isinstance(row.get(k), int) for k in keys
    ):
        return []
    balance = row["admitted"] + row["shed"] + row["timed_out"]
    if row["offered"] != balance:
        return [
            SanFinding(
                SAN_LEDGER,
                where,
                f"offered {row['offered']} but admitted + shed + timed_out "
                f"is {balance} (requests leaked or double-counted)",
            )
        ]
    return []


def sanitize_serve_record(record: Any) -> list[SanFinding]:
    """Cross-field conservation over a ``repro.serve/v1`` record.

    The structural validator already enforces per-row conservation;
    this re-checks it independently (sanitize runs on files the maker
    never saw) and adds the cross-section sums: tenant ledgers must add
    up to the totals, per-reason shed counts to each tenant's shed
    count, and every curve point must conserve its own offered count.
    """
    findings: list[SanFinding] = []
    if not isinstance(record, dict):
        return [SanFinding(SAN_SCHEMA, "record", "record must be a JSON object")]
    totals = record.get("totals")
    tenants = record.get("tenants")
    findings += _serve_ledger_findings("totals", totals)
    if isinstance(tenants, list):
        sums = {"offered": 0, "admitted": 0, "shed": 0, "timed_out": 0}
        complete = True
        for i, row in enumerate(tenants):
            if not isinstance(row, dict):
                complete = False
                continue
            where = f"tenants[{row.get('tenant', i)!r}]"
            findings += _serve_ledger_findings(where, row)
            for key in sums:
                if isinstance(row.get(key), int):
                    sums[key] += row[key]
                else:
                    complete = False
            reasons = row.get("shed_by_reason")
            if (
                isinstance(reasons, dict)
                and all(isinstance(v, int) for v in reasons.values())
                and isinstance(row.get("shed"), int)
                and sum(reasons.values()) != row["shed"]
            ):
                findings.append(
                    SanFinding(
                        SAN_LEDGER,
                        f"{where}.shed_by_reason",
                        f"reasons sum to {sum(reasons.values())} but shed "
                        f"is {row['shed']}",
                    )
                )
        if complete and isinstance(totals, dict):
            for key, value in sums.items():
                if isinstance(totals.get(key), int) and totals[key] != value:
                    findings.append(
                        SanFinding(
                            SAN_LEDGER,
                            f"totals.{key}",
                            f"reports {totals[key]} but the tenant rows "
                            f"sum to {value}",
                        )
                    )
    curve = record.get("curve")
    if isinstance(curve, list):
        for i, point in enumerate(curve):
            findings += _serve_ledger_findings(f"curve[{i}]", point)
    return findings


def sanitize_result_record(record: Any) -> list[SanFinding]:
    """Conservation checks over a ``repro.bench.result/v1`` record."""
    findings: list[SanFinding] = []
    if not isinstance(record, dict):
        return [SanFinding(SAN_SCHEMA, "record", "record must be a JSON object")]
    util = record.get("utilization")
    if not isinstance(util, dict) or not _is_number(util.get("makespan_s")):
        return findings
    makespan = float(util["makespan_s"])
    path = util.get("critical_path")
    if isinstance(path, dict) and path:
        covered = sum(float(v) for v in path.values() if _is_number(v))
        if not _isclose(covered, makespan):
            findings.append(
                SanFinding(
                    SAN_LEDGER,
                    "utilization.critical_path",
                    f"attribution covers {covered}s of a {makespan}s makespan",
                )
            )
    resources = util.get("resources")
    if isinstance(resources, list):
        for row in resources:
            if not isinstance(row, dict):
                continue
            busy, idle = row.get("busy_s"), row.get("idle_s")
            n_lanes = row.get("n_lanes")
            if (
                _is_number(busy)
                and _is_number(idle)
                and isinstance(n_lanes, int)
                and n_lanes > 0
                and float(idle) > 0.0
            ):
                window = makespan * n_lanes
                if not _isclose(float(busy) + float(idle), window):
                    findings.append(
                        SanFinding(
                            SAN_LEDGER,
                            f"utilization[{row.get('resource')!r}]",
                            f"busy {busy}s + idle {idle}s does not fill the "
                            f"{window}s window ({n_lanes} lane(s))",
                        )
                    )
    return findings


def sanitize_trace_record(record: Any) -> list[SanFinding]:
    """Conservation checks over a ``repro.trace/v1`` record.

    Structure is owned by ``repro.tracing.validate_trace_record`` (and
    the telemetry schema CLI); this re-derives every query's window from
    the span rows that reference it and compares:

    * ``latency_s`` must equal ``t1 - t0`` exactly (that is how the
      maker computes it — a JSON round trip preserves the bits);
    * ``t0``/``t1`` must equal the min ready time / max end time over
      the query's spans (to :data:`RECORD_RTOL`);
    * ``n_spans`` must equal the number of spans carrying the id.
    """
    findings: list[SanFinding] = []
    if not isinstance(record, dict):
        return [SanFinding(SAN_SCHEMA, "record", "record must be a JSON object")]
    spans = record.get("spans")
    queries = record.get("queries")
    if not isinstance(spans, list) or not isinstance(queries, list):
        return findings

    windows: dict[str, tuple[float, float, int]] = {}  # qid -> (t0, t1, n)
    for row in spans:
        if not isinstance(row, dict):
            continue
        t0, dur, wait = row.get("t0"), row.get("duration_s"), row.get("wait_s")
        ids = row.get("trace_ids")
        if (
            not _is_number(t0)
            or not _is_number(dur)
            or not _is_number(wait)
            or not isinstance(ids, list)
        ):
            continue
        ready, end = float(t0) - float(wait), float(t0) + float(dur)
        for qid in ids:
            if not isinstance(qid, str):
                continue
            prev = windows.get(qid)
            if prev is None:
                windows[qid] = (ready, end, 1)
            else:
                windows[qid] = (min(prev[0], ready), max(prev[1], end), prev[2] + 1)

    for i, q in enumerate(queries):
        if not isinstance(q, dict) or not isinstance(q.get("trace_id"), str):
            continue
        qid = q["trace_id"]
        where = f"queries[{qid!r}]"
        t0, t1, latency = q.get("t0"), q.get("t1"), q.get("latency_s")
        if _is_number(t0) and _is_number(t1) and _is_number(latency):
            if float(latency) != float(t1) - float(t0):
                findings.append(
                    SanFinding(
                        SAN_LEDGER,
                        where,
                        f"latency_s {latency} but the window is "
                        f"{float(t1) - float(t0)} (t1 - t0)",
                    )
                )
        derived = windows.get(qid)
        if derived is None:
            continue  # structural validator reports span-less queries
        d_t0, d_t1, d_n = derived
        if _is_number(t0) and not _isclose(float(t0), d_t0):
            findings.append(
                SanFinding(
                    SAN_LEDGER,
                    where,
                    f"t0 {t0} but the earliest span ready time is {d_t0}",
                )
            )
        if _is_number(t1) and not _isclose(float(t1), d_t1):
            findings.append(
                SanFinding(
                    SAN_LEDGER,
                    where,
                    f"t1 {t1} but the latest span end is {d_t1}",
                )
            )
        if isinstance(q.get("n_spans"), int) and q["n_spans"] != d_n:
            findings.append(
                SanFinding(
                    SAN_LEDGER,
                    where,
                    f"n_spans {q['n_spans']} but {d_n} span(s) carry the id",
                )
            )
    return findings


def sanitize_golden_timings(payload: Any) -> list[SanFinding]:
    """Bit-exact conservation over a golden-timings fixture.

    Every pinned ``total_s`` must equal the left-to-right sum of its
    parts in :class:`~repro.sim.schedule.BatchTiming` field order — the
    exact accumulation ``total_s`` performs — with no rounding slack:
    the fixture stores ``float.hex()`` strings precisely so this check
    can be exact.
    """
    findings: list[SanFinding] = []
    if not isinstance(payload, dict):
        return [SanFinding(SAN_SCHEMA, "fixture", "fixture must be a JSON object")]
    for name, entry in payload.items():
        if not isinstance(entry, dict):
            continue
        timing = entry.get("timing")
        if not isinstance(timing, dict):
            continue
        try:
            parts = [float.fromhex(timing[p]) for p in _TIMING_PARTS if p in timing]
            pinned = float.fromhex(timing["total_s"])
        except (KeyError, ValueError, TypeError) as exc:
            findings.append(
                SanFinding(
                    SAN_SCHEMA,
                    f"{name}.timing",
                    f"unreadable hex-float timing entry: {exc}",
                )
            )
            continue
        total = 0.0
        for part in parts:
            total += part
        if total != pinned:
            findings.append(
                SanFinding(
                    SAN_LEDGER,
                    f"{name}.timing.total_s",
                    f"pinned {pinned.hex()} but the parts sum to "
                    f"{total.hex()} (bit-exact check)",
                )
            )
        for part_name in _TIMING_PARTS:
            if part_name in timing:
                value = float.fromhex(timing[part_name])
                if math.isnan(value) or value < 0:
                    findings.append(
                        SanFinding(
                            SAN_LEDGER,
                            f"{name}.timing.{part_name}",
                            f"pinned value {value!r} is not a non-negative "
                            "number of seconds",
                        )
                    )
    return findings


def make_sanitize_record(
    *,
    name: str,
    inputs: list[dict[str, Any]],
    findings: list[SanFinding],
) -> dict[str, Any]:
    """Assemble and validate one ``repro.sanitize/v1`` record."""
    from repro.errors import ConfigError
    from repro.telemetry.schema import validate_sanitize_record

    record = {
        "schema": SANITIZE_SCHEMA,
        "name": name,
        "inputs": [dict(i) for i in inputs],
        "count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    errors = validate_sanitize_record(record)
    if errors:
        raise ConfigError(
            "constructed an invalid sanitize record: " + "; ".join(errors)
        )
    return record
