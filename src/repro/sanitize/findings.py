"""Finding record emitted by the schedule sanitizer ("simsan").

Each defect class has its own code so callers (tests, CI, the engines'
debug hook) can assert *which* invariant broke, not just that something
did:

``SAN-OVERLAP``
    Exclusive-resource double-booking: two spans on the same lane
    (a DPU, the host<->PIM bus, a network link) overlap in time.
``SAN-ORDER``
    Happens-before violation: a DPU executes before its inputs landed,
    aggregation starts before results were gathered, or a retry span is
    not contiguous with the transfer traffic it recovers.
``SAN-NUMERIC``
    Numeric anomaly: NaN/negative/infinite span start or duration
    (zero-duration spans are legal — e.g. an empty result gather — and
    flagged only in strict mode).
``SAN-LEDGER``
    Conservation mismatch: a derived ledger (``BatchTiming``,
    ``StageCycles``, fault retry/attempt charges, record-level sums)
    disagrees with the spans or rows it was derived from.
``SAN-SCHEMA``
    Structural problem in the input itself (malformed trace event,
    span filed under the wrong lane, unrecognized record shape).
``SAN-TRACE``
    Trace-metadata defect: trace ids fail to partition the span set
    (some spans traced, some not), one trace id spans multiple batches,
    duplicate ``(batch, uid)`` span identities, or a negative queue
    wait.
"""

from __future__ import annotations

from dataclasses import dataclass

SAN_OVERLAP = "SAN-OVERLAP"
SAN_ORDER = "SAN-ORDER"
SAN_NUMERIC = "SAN-NUMERIC"
SAN_LEDGER = "SAN-LEDGER"
SAN_SCHEMA = "SAN-SCHEMA"
SAN_TRACE = "SAN-TRACE"

#: Every code the sanitizer can emit, in severity-agnostic render order.
ALL_CODES = (
    SAN_OVERLAP,
    SAN_ORDER,
    SAN_NUMERIC,
    SAN_LEDGER,
    SAN_SCHEMA,
    SAN_TRACE,
)


@dataclass(frozen=True, order=True)
class SanFinding:
    """One violated invariant at one location."""

    code: str
    location: str  # lane/resource, ledger field, or record path
    message: str
    source: str = ""  # optional file the input came from

    def render(self) -> str:
        prefix = f"{self.source}: " if self.source else ""
        return f"{prefix}{self.code} {self.location}: {self.message}"

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "code": self.code,
            "location": self.location,
            "message": self.message,
        }
        if self.source:
            out["source"] = self.source
        return out


def with_source(findings: list[SanFinding], source: str) -> list[SanFinding]:
    """The same findings, stamped with the file they came from."""
    return [
        SanFinding(f.code, f.location, f.message, source) for f in findings
    ]
