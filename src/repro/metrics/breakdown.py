"""Stage-breakdown helpers for the Figure 1/14/19-style exhibits."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hardware.counters import StageCycles

STAGE_LABELS = {
    "cluster_filter": "cluster filtering",
    "lut_construction": "LUT construction",
    "distance_calc": "distance calculation",
    "topk_selection": "top-k selection",
    "other": "other (transfer/host)",
}


def breakdown_percentages(stage: StageCycles) -> dict[str, float]:
    """Stage shares as percentages (sum to 100 for non-empty stages)."""
    total = stage.total
    if total <= 0:
        raise ConfigError("empty stage breakdown")
    return {k: 100.0 * v / total for k, v in stage.as_dict().items()}


def dominant_stage(stage: StageCycles) -> str:
    """Name of the largest stage — what 'the bottleneck' means in Fig 1."""
    shares = stage.as_dict()
    return max(shares, key=shares.get)


def format_breakdown(stage: StageCycles, *, label: str = "") -> str:
    """One-line human-readable breakdown for bench output."""
    pct = breakdown_percentages(stage)
    parts = [
        f"{STAGE_LABELS[k]} {pct[k]:5.1f}%"
        for k in ("cluster_filter", "lut_construction", "distance_calc", "topk_selection", "other")
        if pct[k] > 0.05
    ]
    prefix = f"{label}: " if label else ""
    return prefix + " | ".join(parts)
