"""Stage-breakdown helpers for the Figure 1/14/19-style exhibits."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.hardware.counters import StageCycles

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.schedule import BatchSchedule, BatchTiming

STAGE_LABELS = {
    "cluster_filter": "cluster filtering",
    "lut_construction": "LUT construction",
    "distance_calc": "distance calculation",
    "topk_selection": "top-k selection",
    "other": "other (transfer/host)",
}


def breakdown_percentages(stage: StageCycles) -> dict[str, float]:
    """Stage shares as percentages (sum to 100 for non-empty stages)."""
    total = stage.total
    if total <= 0:
        raise ConfigError("empty stage breakdown")
    return {k: 100.0 * v / total for k, v in stage.as_dict().items()}


def dominant_stage(stage: StageCycles) -> str:
    """Name of the largest stage — what 'the bottleneck' means in Fig 1."""
    shares = stage.as_dict()
    return max(shares, key=shares.get)


def stage_seconds_from_schedule(
    schedule: "BatchSchedule", timing: "BatchTiming | None" = None
) -> StageCycles:
    """Figure 19's per-stage seconds, derived from a recorded schedule.

    Replicates the engines' legacy attribution exactly: the makespan
    DPU's kernel stages converted to seconds, host filtering added to
    the cluster-filter stage, and every orchestration/transfer term
    folded into ``other``.
    """
    if timing is None:
        timing = schedule.derive_batch_timing()
    worst = schedule.worst_dpu_stage_cycles()
    if schedule.dpu_frequency_hz is not None:
        stage_seconds = worst.scaled(1.0 / schedule.dpu_frequency_hz)
    elif worst.total == 0:
        stage_seconds = StageCycles()
    else:
        raise ConfigError("schedule has DPU cycles but no frequency")
    stage_seconds.cluster_filter += timing.host_filter_s
    stage_seconds.other += (
        timing.host_schedule_s
        + timing.transfer_in_s
        + timing.transfer_out_s
        + timing.host_aggregate_s
    )
    return stage_seconds


def format_breakdown(stage: StageCycles, *, label: str = "") -> str:
    """One-line human-readable breakdown for bench output."""
    pct = breakdown_percentages(stage)
    parts = [
        f"{STAGE_LABELS[k]} {pct[k]:5.1f}%"
        for k in ("cluster_filter", "lut_construction", "distance_calc", "topk_selection", "other")
        if pct[k] > 0.05
    ]
    prefix = f"{label}: " if label else ""
    return prefix + " | ".join(parts)
