"""Load-balance metric shared by placement, scheduling and execution.

The paper's Figure 11 reports balance as "the ratio of maximum process
and average process" — max/mean over per-worker load.  Three call sites
used to re-implement it (scheduled workload, measured DPU cycles, DPU
elapsed time); they all route through :func:`max_mean_ratio` now.
"""

from __future__ import annotations

import numpy as np


def max_mean_ratio(values, *, active_only: bool = False) -> float:
    """max/mean over ``values``; 1.0 for empty or all-zero input.

    ``active_only`` restricts the *mean* to strictly-positive entries
    (the engines' measured-cycle convention: idle DPUs do not dilute the
    average), while the max is always taken over every entry.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 1.0
    denom = arr[arr > 0] if active_only else arr
    if denom.size == 0:
        return 1.0
    mean = denom.mean()
    if mean == 0:
        return 1.0
    return float(arr.max() / mean)
