"""Serving-latency statistics over a stream of batches.

Online deployments (the paper's RAG / recommendation targets) care
about tail latency, not just throughput.  :class:`LatencyRecorder`
accumulates modeled batch latencies and reports percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError


@dataclass
class LatencyRecorder:
    """Accumulates (batch_size, batch_seconds) observations."""

    _sizes: list[int] = field(default_factory=list)
    _seconds: list[float] = field(default_factory=list)

    def record(self, batch_size: int, batch_seconds: float) -> None:
        if batch_size < 1 or batch_seconds < 0:
            raise ConfigError("invalid latency observation")
        self._sizes.append(batch_size)
        self._seconds.append(batch_seconds)

    def record_batch_result(self, result) -> None:
        """Record a :class:`~repro.core.engine.BatchResult`-like object."""
        self.record(result.ids.shape[0], result.timing.total_s)

    @property
    def n_batches(self) -> int:
        return len(self._sizes)

    @property
    def total_queries(self) -> int:
        return int(sum(self._sizes))

    def per_query_ms(self) -> np.ndarray:
        """Per-batch per-query latency samples in milliseconds."""
        if not self._sizes:
            raise ConfigError("no observations recorded")
        return np.array(
            [s / n * 1e3 for n, s in zip(self._sizes, self._seconds)]
        )

    def percentile_ms(self, q: float) -> float:
        """q-th percentile of per-query latency (ms), q in [0, 100]."""
        if not 0 <= q <= 100:
            raise ConfigError("percentile must be in [0, 100]")
        return float(np.percentile(self.per_query_ms(), q))

    def mean_qps(self) -> float:
        total_s = sum(self._seconds)
        if total_s <= 0:
            raise ConfigError("no elapsed time recorded")
        return self.total_queries / total_s

    def summary(self) -> dict[str, float]:
        """p50/p95/p99 latency and mean throughput."""
        return {
            "p50_ms": self.percentile_ms(50),
            "p95_ms": self.percentile_ms(95),
            "p99_ms": self.percentile_ms(99),
            "mean_qps": self.mean_qps(),
        }
