"""Throughput metrics and normalization helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


def qps(n_queries: int, seconds: float) -> float:
    """Queries per second."""
    if seconds <= 0:
        raise ConfigError("elapsed time must be positive")
    return n_queries / seconds


def normalize_to(values: dict[str, float], reference_key: str) -> dict[str, float]:
    """Normalize a {label: value} mapping to one entry = 1.0.

    Every figure in the paper's evaluation is normalized to a named
    baseline setting (e.g. "Faiss-CPU @ IVF4096/nprobe256").
    """
    if reference_key not in values:
        raise ConfigError(f"reference {reference_key!r} not among {list(values)}")
    ref = values[reference_key]
    if ref == 0:
        raise ConfigError("reference value is zero")
    return {k: v / ref for k, v in values.items()}


def speedup(fast: float, slow: float) -> float:
    """How many times faster ``fast`` is than ``slow`` (QPS ratio)."""
    if slow <= 0:
        raise ConfigError("baseline QPS must be positive")
    return fast / slow


@dataclass(frozen=True)
class LatencyStats:
    """Per-batch latency summary (Figure 16's y-axis)."""

    batch_size: int
    batch_seconds: float

    @property
    def per_query_ms(self) -> float:
        return self.batch_seconds / self.batch_size * 1e3

    @property
    def qps(self) -> float:
        return self.batch_size / self.batch_seconds


def geometric_mean(values) -> float:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0 or (arr <= 0).any():
        raise ConfigError("geometric mean needs positive values")
    return float(np.exp(np.log(arr).mean()))
