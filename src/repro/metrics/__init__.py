"""Evaluation metrics: QPS, normalization, stage breakdowns."""

from repro.metrics.breakdown import (
    STAGE_LABELS,
    breakdown_percentages,
    dominant_stage,
    format_breakdown,
)
from repro.metrics.latency import LatencyRecorder
from repro.metrics.qps import (
    LatencyStats,
    geometric_mean,
    normalize_to,
    qps,
    speedup,
)

__all__ = [
    "LatencyRecorder",
    "LatencyStats",
    "STAGE_LABELS",
    "breakdown_percentages",
    "dominant_stage",
    "format_breakdown",
    "geometric_mean",
    "normalize_to",
    "qps",
    "speedup",
]
