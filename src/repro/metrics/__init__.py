"""Evaluation metrics: QPS, normalization, stage breakdowns."""

from repro.metrics.balance import max_mean_ratio
from repro.metrics.breakdown import (
    STAGE_LABELS,
    breakdown_percentages,
    dominant_stage,
    format_breakdown,
    stage_seconds_from_schedule,
)
from repro.metrics.latency import LatencyRecorder
from repro.metrics.qps import (
    LatencyStats,
    geometric_mean,
    normalize_to,
    qps,
    speedup,
)

__all__ = [
    "LatencyRecorder",
    "LatencyStats",
    "STAGE_LABELS",
    "breakdown_percentages",
    "dominant_stage",
    "format_breakdown",
    "geometric_mean",
    "max_mean_ratio",
    "normalize_to",
    "qps",
    "speedup",
    "stage_seconds_from_schedule",
]
