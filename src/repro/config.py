"""Configuration dataclasses shared across engines and benches."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hardware.specs import DEFAULT_N_TASKLETS, PimSystemSpec, UPMEM_7_DIMMS


@dataclass(frozen=True)
class IndexConfig:
    """IVFPQ geometry (paper defaults: IVF4096, M per dataset, 8-bit codes)."""

    dim: int
    n_clusters: int = 4096
    m: int = 16
    nbits: int = 8
    train_iters: int = 20

    def __post_init__(self) -> None:
        if self.dim % self.m != 0:
            raise ConfigError(f"dim {self.dim} not divisible by m {self.m}")
        if self.n_clusters < 1:
            raise ConfigError("n_clusters must be >= 1")


@dataclass(frozen=True)
class QueryConfig:
    """Online-phase knobs (paper sweeps nprobe 64-256, k 1-100, BS 10-1000)."""

    nprobe: int = 64
    k: int = 10
    batch_size: int = 1000

    def __post_init__(self) -> None:
        if self.nprobe < 1 or self.k < 1 or self.batch_size < 1:
            raise ConfigError("nprobe, k and batch_size must be >= 1")


@dataclass(frozen=True)
class UpANNSConfig:
    """All UpANNS-specific knobs with the paper's defaults.

    * ``n_tasklets=11``: section 5.3.2 finds QPS saturates at 11;
    * ``mram_read_vectors=16``: section 5.4.2 picks 16 vectors/DMA;
    * ``cae_combos=256`` length-3 combinations per cluster: section 4.3;
    * replication and scheduling per Algorithms 1-2.
    """

    n_tasklets: int = DEFAULT_N_TASKLETS
    mram_read_vectors: int = 16
    enable_placement: bool = True
    enable_cae: bool = True
    enable_topk_pruning: bool = True
    cae_combos: int = 256
    cae_combo_length: int = 3
    placement_threshold_rate: float = 0.02
    replication_headroom: float = 3.0
    max_dpu_vectors: int | None = None  # None = derive from MRAM capacity
    # Functional execution path: "grouped" fuses all (query, cluster)
    # pairs per DPU into vectorized NumPy ops and reuses LUTs across
    # batches; "looped" is the reference per-pair loop.  Both charge the
    # identical modeled cost (golden-pinned).
    kernel_mode: str = "grouped"
    # Cross-batch LUT cache capacity; 0 disables.  Functional-path only:
    # a hit skips host-side recomputation, never the modeled DPU charge.
    # (Coincidentally MRAM-sized; this is host memory, not a DPU limit.)
    lut_cache_bytes: int = 64 * 1024 * 1024  # simlint: ignore[HW001]
    # Cost-aware LUT-cache admission: clusters whose access frequency
    # (from the live workload trace) falls below this floor are computed
    # but not cached, so one-shot tail clusters stop evicting the warm
    # working set.  0.0 (default) admits everything — the golden path.
    lut_admission_floor: float = 0.0

    def __post_init__(self) -> None:
        if self.n_tasklets < 1:
            raise ConfigError("n_tasklets must be >= 1")
        if self.mram_read_vectors < 1:
            raise ConfigError("mram_read_vectors must be >= 1")
        if self.kernel_mode not in ("grouped", "looped"):
            raise ConfigError(
                f"kernel_mode must be 'grouped' or 'looped', got {self.kernel_mode!r}"
            )
        if self.lut_cache_bytes < 0:
            raise ConfigError("lut_cache_bytes must be >= 0 (0 disables)")
        if not 0.0 <= self.lut_admission_floor <= 1.0:
            raise ConfigError(
                "lut_admission_floor is a frequency fraction in [0, 1], "
                f"got {self.lut_admission_floor}"
            )
        if self.cae_combo_length < 2:
            raise ConfigError("co-occurrence combinations need length >= 2")
        if self.placement_threshold_rate <= 0:
            raise ConfigError("placement_threshold_rate must be positive")
        if self.replication_headroom < 1.0:
            raise ConfigError("replication_headroom must be >= 1.0")


@dataclass(frozen=True)
class SystemConfig:
    """Bundle of everything an engine needs to be constructed."""

    index: IndexConfig
    query: QueryConfig = field(default_factory=QueryConfig)
    upanns: UpANNSConfig = field(default_factory=UpANNSConfig)
    pim: PimSystemSpec = UPMEM_7_DIMMS
    # Timing-only extrapolation factor: charge per-point costs as if
    # every inverted list were this many times longer.  Used to study
    # billion-scale behavior on scaled-down functional data (DESIGN.md
    # section 5); 1.0 = charge exactly what is simulated.
    timing_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.timing_scale <= 0:
            raise ConfigError("timing_scale must be positive")
