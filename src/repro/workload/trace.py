"""Cluster access-frequency traces.

UpANNS's offline placement (Algorithm 1) is driven by *historical*
access frequencies f_i.  :class:`AccessTrace` accumulates observations
from executed batches (or from a synthetic prior) and exposes the
frequency vector placement consumes.  It also supports drift detection,
feeding the adaptive re-replication path described in section 4.1.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError


@dataclass
class AccessTrace:
    """Exponentially-decayed cluster access counts."""

    n_clusters: int
    decay: float = 1.0  # 1.0 = plain counting; <1 = recent-weighted
    counts: np.ndarray = field(init=False)
    total_observations: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ConfigError("n_clusters must be >= 1")
        if not 0 < self.decay <= 1.0:
            raise ConfigError("decay must be in (0, 1]")
        self.counts = np.zeros(self.n_clusters, dtype=np.float64)

    def record_batch(self, probes) -> None:
        """Record one batch's probed clusters.

        ``probes`` is either an (nq, nprobe) matrix or a ragged list of
        per-query id arrays (the multi-host path sends each host only
        the clusters it owns).
        """
        if isinstance(probes, (list, tuple)):
            flat = (
                np.concatenate([np.asarray(p).ravel() for p in probes])
                if probes
                else np.empty(0, dtype=np.int64)
            )
        else:
            flat = np.atleast_2d(probes).ravel()
        if flat.size and (flat.min() < 0 or flat.max() >= self.n_clusters):
            raise ConfigError("probe ids out of range")
        if self.decay < 1.0:
            self.counts *= self.decay
        np.add.at(self.counts, flat, 1.0)
        self.total_observations += flat.size

    def frequencies(self, *, smoothing: float = 1.0) -> np.ndarray:
        """Normalized access frequencies with additive smoothing.

        Smoothing keeps never-observed clusters at a small positive
        frequency so placement still assigns them non-zero workload.
        """
        smoothed = self.counts + smoothing
        return smoothed / smoothed.sum()

    def drift_from(self, other: "AccessTrace") -> float:
        """Total-variation distance between two traces' distributions.

        The engine re-replicates when drift exceeds a threshold (minor
        shifts) and fully re-places on large drift (section 4.1.2).
        """
        if other.n_clusters != self.n_clusters:
            raise ConfigError("traces cover different cluster counts")
        p = self.frequencies()
        q = other.frequencies()
        return float(0.5 * np.abs(p - q).sum())

    def snapshot(self) -> "AccessTrace":
        """Frozen copy for later drift comparison."""
        copy = AccessTrace(self.n_clusters, self.decay)
        copy.counts = self.counts.copy()
        copy.total_observations = self.total_observations
        return copy


def synthetic_trace(
    n_clusters: int,
    alpha: float = 1.0,
    observations: int = 100_000,
    rng: np.random.Generator | None = None,
) -> AccessTrace:
    """A trace whose frequencies follow a shuffled Zipf(alpha) profile."""
    from repro.data.skew import zipf_weights

    rng = rng if rng is not None else np.random.default_rng(0)
    weights = zipf_weights(n_clusters, alpha)
    rng.shuffle(weights)
    trace = AccessTrace(n_clusters)
    trace.counts = weights * observations
    trace.total_observations = observations
    return trace
