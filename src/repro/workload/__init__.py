"""Query workload substrate: batches, popularity drift, access traces."""

from repro.workload.batch import BatchGenerator, QueryBatch
from repro.workload.trace import AccessTrace, synthetic_trace

__all__ = ["AccessTrace", "BatchGenerator", "QueryBatch", "synthetic_trace"]
