"""Query batch generation, including popularity drift over time.

The paper processes 1,000 queries at a time (section 5.1) and targets
applications whose query patterns "change regularly (e.g., every few
days) and incrementally" (section 4.1.2).  :class:`BatchGenerator`
produces a stream of batches whose component popularity follows a Zipf
profile that can be rotated or re-drawn to model that drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.data.skew import zipf_weights
from repro.data.synthetic import SyntheticDataset, make_queries


@dataclass
class QueryBatch:
    """One batch of queries plus provenance."""

    queries: np.ndarray  # (b, dim) float32
    batch_index: int

    @property
    def size(self) -> int:
        return int(self.queries.shape[0])


@dataclass
class BatchGenerator:
    """Streams query batches with (optionally drifting) popularity skew."""

    dataset: SyntheticDataset
    batch_size: int = 1000
    zipf_alpha: float = 1.0
    # Fraction of popularity mass that rotates to new components per batch.
    drift_per_batch: float = 0.0
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(7))
    _popularity: np.ndarray = field(init=False)
    _emitted: int = 0
    #: Queries drawn through :meth:`next_queries` (request granularity);
    #: drift fires every ``batch_size`` of these, mirroring the batch path.
    _emitted_queries: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        if not 0.0 <= self.drift_per_batch <= 1.0:
            raise ConfigError("drift_per_batch must be in [0, 1]")
        ncomp = self.dataset.mixture_centers.shape[0]
        weights = zipf_weights(ncomp, self.zipf_alpha)
        self.rng.shuffle(weights)
        self._popularity = weights

    @property
    def popularity(self) -> np.ndarray:
        return self._popularity.copy()

    def _apply_drift(self) -> None:
        if self.drift_per_batch <= 0:
            return
        ncomp = self._popularity.shape[0]
        fresh = zipf_weights(ncomp, self.zipf_alpha)
        self.rng.shuffle(fresh)
        self._popularity = (
            (1.0 - self.drift_per_batch) * self._popularity
            + self.drift_per_batch * fresh
        )
        self._popularity /= self._popularity.sum()

    def next_batch(self) -> QueryBatch:
        """Generate the next batch; drift is applied *between* batches."""
        if self._emitted > 0:
            self._apply_drift()
        queries = make_queries(
            self.dataset,
            self.batch_size,
            popularity=self._popularity,
            rng=self.rng,
        )
        batch = QueryBatch(queries=queries, batch_index=self._emitted)
        self._emitted += 1
        return batch

    def batches(self, n: int):
        """Yield ``n`` successive batches."""
        for _ in range(n):
            yield self.next_batch()

    def next_queries(self, n: int) -> np.ndarray:
        """Draw ``n`` queries at request granularity (``(n, dim)``).

        The serving frontend consumes queries one request at a time
        rather than in fixed batches; drift keeps the batch cadence —
        it is applied once per ``batch_size`` queries emitted, so a
        frontend drawing single queries sees the same popularity
        evolution as a caller consuming :meth:`next_batch`.
        """
        if n < 1:
            raise ConfigError("next_queries needs n >= 1")
        chunks = []
        remaining = n
        while remaining > 0:
            consumed = self._emitted_queries % self.batch_size
            if self._emitted_queries > 0 and consumed == 0:
                self._apply_drift()
            take = min(remaining, self.batch_size - consumed)
            chunks.append(
                make_queries(
                    self.dataset,
                    take,
                    popularity=self._popularity,
                    rng=self.rng,
                )
            )
            self._emitted_queries += take
            remaining -= take
        return np.concatenate(chunks, axis=0) if len(chunks) > 1 else chunks[0]
