"""Per-batch schedules: the collection of resource timelines for one batch.

A :class:`BatchSchedule` owns one :class:`ResourceTimeline` per resource
and exposes the ``record`` API the engines use to emit timed work.  The
legacy additive-scalar view (:class:`BatchTiming`) is *derived* from the
schedule: summing span durations in append order reproduces the old
accumulation bit-for-bit, and the DPU makespan is derived in cycle space
exactly as the engines used to compute it (``max(busy_cycles) / f``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hardware.counters import StageCycles
from repro.sim.span import (
    ResourceTimeline,
    Span,
    SpanTrace,
    dpu_resource,
    is_dpu_resource,
)

#: Stage names with a dedicated field in the derived :class:`BatchTiming`.
STAGE_CLUSTER_FILTER = "cluster_filter"
STAGE_SCHEDULE = "schedule"
STAGE_TRANSFER_IN = "transfer_in"
STAGE_TRANSFER_OUT = "transfer_out"
STAGE_AGGREGATE = "aggregate"
#: Recovery traffic: backoff + re-transmission after a transient
#: transfer fault (``repro.faults``).  Charged on the ``pim_bus`` lane
#: so Chrome traces and utilization reports show the recovery cost.
STAGE_RETRY = "retry"
#: Serving-frontend overload responses (``repro.serving``), charged on
#: the ``host_cpu`` lane so shed/timed-out requests still own a span:
#: ``shed`` is an intake rejection (admission control turned the request
#: away), ``cancel`` is a queued request timed out past its deadline.
#: Neither has a :class:`BatchTiming` field — they are request-plane
#: cost, not batch-pipeline stages.
STAGE_SHED = "shed"
STAGE_CANCEL = "cancel"


@dataclass
class BatchTiming:
    """Where one batch's wall-clock time went (modeled seconds).

    Historically the engines accumulated these six scalars directly;
    they are now derived from a :class:`BatchSchedule` via
    :meth:`BatchSchedule.derive_batch_timing` and kept as the stable
    reporting surface (``total_s`` is the strict-sequential wall time).
    """

    host_filter_s: float = 0.0
    host_schedule_s: float = 0.0
    transfer_in_s: float = 0.0
    dpu_makespan_s: float = 0.0
    transfer_out_s: float = 0.0
    host_aggregate_s: float = 0.0
    # Fault-recovery traffic (retried transfers + backoff).  Strictly
    # zero when no FaultPlan is injected; appended last in total_s so
    # fault-free totals stay bit-identical (x + 0.0 == x).
    retry_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (
            self.host_filter_s
            + self.host_schedule_s
            + self.transfer_in_s
            + self.dpu_makespan_s
            + self.transfer_out_s
            + self.host_aggregate_s
            + self.retry_s
        )


@dataclass
class BatchSchedule:
    """All resource timelines of one simulated batch (or composed run)."""

    dpu_frequency_hz: float | None = None
    timelines: dict[str, ResourceTimeline] = field(default_factory=dict)

    def timeline(self, resource: str) -> ResourceTimeline:
        """The timeline for ``resource``, created on first use."""
        tl = self.timelines.get(resource)
        if tl is None:
            tl = ResourceTimeline(resource)
            self.timelines[resource] = tl
        return tl

    # --- Recording -----------------------------------------------------

    def record(
        self,
        resource: str,
        stage: str,
        duration_s: float,
        *,
        cycles: float | None = None,
        counters: object | None = None,
        trace: SpanTrace | None = None,
    ) -> Span:
        """Append a span at the resource's current end."""
        tl = self.timeline(resource)
        span = Span(
            resource=resource,
            stage=stage,
            t0=tl.end,
            duration=duration_s,
            cycles=cycles,
            counters=counters,
            trace=trace,
        )
        tl.append(span)
        return span

    def record_at(
        self,
        resource: str,
        stage: str,
        start_s: float,
        duration_s: float,
        *,
        cycles: float | None = None,
        counters: object | None = None,
        trace: SpanTrace | None = None,
    ) -> Span:
        """Append a span starting at ``start_s``, or at the resource's
        end if it is still busy then (resource-contention clamp)."""
        tl = self.timeline(resource)
        span = Span(
            resource=resource,
            stage=stage,
            t0=max(start_s, tl.end),
            duration=duration_s,
            cycles=cycles,
            counters=counters,
            trace=trace,
        )
        tl.append(span)
        return span

    def record_dpu_stages(
        self,
        dpu_id: int,
        stage_cycles: StageCycles,
        *,
        start_s: float | None = None,
    ) -> list[Span]:
        """Emit one span per kernel stage onto a DPU's lane.

        Spans carry their cycle charge so derived makespans stay in
        cycle space; they are recorded in :class:`StageCycles` field
        order so the lane's ``busy_cycles`` replicates ``.total``.
        """
        if self.dpu_frequency_hz is None:
            raise ConfigError("schedule has no dpu_frequency_hz for DPU spans")
        resource = dpu_resource(dpu_id)
        first_start = start_s if start_s is not None else self.timeline(resource).end
        spans = []
        for name, cyc in stage_cycles.as_dict().items():
            spans.append(
                self.record_at(
                    resource,
                    name,
                    first_start,
                    cyc / self.dpu_frequency_hz,
                    cycles=cyc,
                    counters=stage_cycles,
                )
            )
        return spans

    # --- Aggregate views -----------------------------------------------

    @property
    def makespan(self) -> float:
        """End of the last span across all resources."""
        ends = [tl.end for tl in self.timelines.values()]
        return max(ends) if ends else 0.0

    def resources(self) -> list[str]:
        return list(self.timelines)

    def dpu_timelines(self) -> list[ResourceTimeline]:
        return [tl for r, tl in self.timelines.items() if is_dpu_resource(r)]

    def stage_seconds(self, stage: str) -> float:
        """Summed duration of ``stage`` spans across all resources."""
        total = 0.0
        for tl in self.timelines.values():
            for span in tl.spans:
                if span.stage == stage:
                    total += span.duration
        return total

    def derive_batch_timing(self) -> BatchTiming:
        """The legacy six-scalar view, bit-identical to the old sums."""
        dpu_cycles = [tl.busy_cycles() for tl in self.dpu_timelines()]
        if dpu_cycles:
            if self.dpu_frequency_hz is None:
                raise ConfigError("schedule has DPU spans but no frequency")
            makespan = max(dpu_cycles) / self.dpu_frequency_hz
        else:
            makespan = 0.0
        return BatchTiming(
            host_filter_s=self.stage_seconds(STAGE_CLUSTER_FILTER),
            host_schedule_s=self.stage_seconds(STAGE_SCHEDULE),
            transfer_in_s=self.stage_seconds(STAGE_TRANSFER_IN),
            dpu_makespan_s=makespan,
            transfer_out_s=self.stage_seconds(STAGE_TRANSFER_OUT),
            host_aggregate_s=self.stage_seconds(STAGE_AGGREGATE),
            retry_s=self.stage_seconds(STAGE_RETRY),
        )

    def worst_dpu_stage_cycles(self) -> StageCycles:
        """Stage cycles of the makespan DPU (first strict max, matching
        the legacy ``np.argmax`` over per-DPU busy cycles)."""
        worst: ResourceTimeline | None = None
        worst_cycles = 0.0
        for tl in self.dpu_timelines():
            busy = tl.busy_cycles()
            if worst is None or busy > worst_cycles:
                worst, worst_cycles = tl, busy
        if worst is None:
            return StageCycles()
        per_stage: dict[str, float] = {}
        for span in worst.spans:
            if span.cycles is not None:
                per_stage[span.stage] = per_stage.get(span.stage, 0.0) + span.cycles
        return StageCycles(**per_stage)

    def to_chrome_trace(self) -> dict:
        """Chrome-trace (Perfetto-loadable) JSON object for this schedule."""
        from repro.sim.trace import chrome_trace

        return chrome_trace(self)
