"""Timeline execution core: spans, per-resource timelines, schedules.

Engines emit timed work as :class:`Span` events onto per-resource
timelines via :meth:`BatchSchedule.record` (or the module-level
:func:`record` convenience).  Everything downstream — the legacy
:class:`BatchTiming` scalars, stage breakdowns, overlap composition,
Chrome-trace export — is derived from the recorded schedule.
"""

from repro.sim.events import (
    SIM_ENGINE_ENV,
    SIM_ENGINES,
    BatchWork,
    EventEngine,
    LaneStats,
    WorkItem,
    execute_stream,
    resolve_sim_engine,
)
from repro.sim.overlap import (
    OVERLAP_MODES,
    compose,
    compose_double_buffer,
    compose_sequential,
    pipeline_wallclock,
)
from repro.sim.schedule import (
    STAGE_AGGREGATE,
    STAGE_CANCEL,
    STAGE_CLUSTER_FILTER,
    STAGE_RETRY,
    STAGE_SCHEDULE,
    STAGE_SHED,
    STAGE_TRANSFER_IN,
    STAGE_TRANSFER_OUT,
    BatchSchedule,
    BatchTiming,
)
from repro.sim.span import (
    HOST_AGG,
    HOST_CPU,
    NETWORK,
    PIM_BUS,
    ResourceTimeline,
    Span,
    SpanTrace,
    dpu_resource,
    is_dpu_resource,
)
from repro.sim.trace import chrome_trace, validate_chrome_trace


def record(
    schedule: BatchSchedule,
    resource: str,
    stage: str,
    duration_s: float,
    *,
    cycles: float | None = None,
    counters: object | None = None,
) -> Span:
    """Record one span of timed work onto ``schedule``.

    This is the sanctioned way for engine code to account wall-clock
    time (simlint rule TIME001 forbids hand-summing ``*_s`` scalars in
    the online pipelines).
    """
    return schedule.record(
        resource, stage, duration_s, cycles=cycles, counters=counters
    )


__all__ = [
    "BatchSchedule",
    "BatchTiming",
    "BatchWork",
    "EventEngine",
    "HOST_AGG",
    "HOST_CPU",
    "LaneStats",
    "NETWORK",
    "OVERLAP_MODES",
    "PIM_BUS",
    "ResourceTimeline",
    "SIM_ENGINES",
    "SIM_ENGINE_ENV",
    "STAGE_AGGREGATE",
    "STAGE_CANCEL",
    "STAGE_CLUSTER_FILTER",
    "STAGE_RETRY",
    "STAGE_SCHEDULE",
    "STAGE_SHED",
    "STAGE_TRANSFER_IN",
    "STAGE_TRANSFER_OUT",
    "Span",
    "SpanTrace",
    "WorkItem",
    "chrome_trace",
    "compose",
    "compose_double_buffer",
    "compose_sequential",
    "dpu_resource",
    "execute_stream",
    "is_dpu_resource",
    "pipeline_wallclock",
    "record",
    "resolve_sim_engine",
    "validate_chrome_trace",
]
