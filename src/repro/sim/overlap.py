"""Multi-batch composition: sequential barriers vs. double buffering.

Composes per-batch :class:`~repro.sim.schedule.BatchSchedule` objects
into one run-level schedule under an overlap policy:

* ``sequential`` — a global barrier between batches: batch i+1's first
  span starts only after every resource of batch i has drained.  This is
  the legacy semantics; the composed makespan equals the sum of the
  per-batch makespans (up to resource-contention clamping ULPs).
* ``double_buffer`` — the paper's batching amortization: while batch i
  executes on the DPUs, batch i+1's host pre-processing and transfer-in
  proceed concurrently (depth-2 pipelining).  The host<->PIM bus stays a
  single serialized resource — transfer-in of batch i+1 and transfer-out
  of batch i contend on it — and aggregation moves to a second host lane
  (the 2x Xeon host has cores to spare for the merge).

Both compositions re-emit spans through the resource-contention clamp,
so per-resource non-overlap holds by construction in the output.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigError
from repro.sim.schedule import (
    STAGE_AGGREGATE,
    STAGE_CLUSTER_FILTER,
    STAGE_RETRY,
    STAGE_SCHEDULE,
    STAGE_TRANSFER_IN,
    STAGE_TRANSFER_OUT,
    BatchSchedule,
)
from repro.sim.span import HOST_AGG, HOST_CPU, PIM_BUS, Span, is_dpu_resource

OVERLAP_MODES = ("sequential", "double_buffer")

_PRE_STAGES = frozenset({STAGE_CLUSTER_FILTER, STAGE_SCHEDULE})


def _new_run_schedule(schedules: Sequence[BatchSchedule]) -> BatchSchedule:
    freq = None
    for sched in schedules:
        if sched.dpu_frequency_hz is not None:
            freq = sched.dpu_frequency_hz
            break
    return BatchSchedule(dpu_frequency_hz=freq)


def _emit(combined: BatchSchedule, spans: Sequence[Span], start: float) -> float:
    """Re-emit ``spans`` onto their own lanes from ``start``; returns the
    end of the last touched lane (or ``start`` for an empty group)."""
    end = start
    for span in spans:
        placed = combined.record_at(
            span.resource,
            span.stage,
            start,
            span.duration,
            cycles=span.cycles,
            counters=span.counters,
            trace=span.trace,
        )
        end = placed.t1
    return end


def compose_sequential(schedules: Sequence[BatchSchedule]) -> BatchSchedule:
    """Chain whole batches behind a global barrier (legacy semantics)."""
    combined = _new_run_schedule(schedules)
    for sched in schedules:
        offset = combined.makespan
        for tl in sched.timelines.values():
            for span in tl.spans:
                combined.record_at(
                    span.resource,
                    span.stage,
                    span.t0 + offset,
                    span.duration,
                    cycles=span.cycles,
                    counters=span.counters,
                    trace=span.trace,
                )
    return combined


def compose_double_buffer(schedules: Sequence[BatchSchedule]) -> BatchSchedule:
    """Pipeline batches: batch i+1's pre-processing and transfer-in run
    while batch i executes on the DPUs (depth-2 double buffering)."""
    combined = _new_run_schedule(schedules)
    n = len(schedules)
    if n == 0:
        return combined

    pre_groups: list[list[Span]] = []
    tin_groups: list[list[Span]] = []
    dpu_groups: list[list[Span]] = []
    tout_groups: list[list[Span]] = []
    agg_groups: list[list[Span]] = []
    other_groups: list[list[Span]] = []
    for sched in schedules:
        pre: list[Span] = []
        tin: list[Span] = []
        dpu: list[Span] = []
        tout: list[Span] = []
        agg: list[Span] = []
        other: list[Span] = []
        for resource, tl in sched.timelines.items():
            for span in tl.spans:
                if span.stage in _PRE_STAGES:
                    pre.append(span)
                elif span.stage in (STAGE_TRANSFER_IN, STAGE_RETRY):
                    # Retries ride with transfer-in: they are bus time
                    # spent re-driving a failed transfer, so they must
                    # stay contiguous with the transfer they extend.
                    tin.append(span)
                elif is_dpu_resource(resource):
                    dpu.append(span)
                elif span.stage == STAGE_TRANSFER_OUT:
                    tout.append(span)
                elif span.stage == STAGE_AGGREGATE:
                    agg.append(span)
                else:
                    other.append(span)
        pre_groups.append(pre)
        tin_groups.append(tin)
        dpu_groups.append(dpu)
        tout_groups.append(tout)
        agg_groups.append(agg)
        other_groups.append(other)

    pre_end = [0.0] * n
    tin_end = [0.0] * n

    def emit_pre(i: int, start: float) -> None:
        spans = [
            Span(
                HOST_CPU, s.stage, s.t0, s.duration, s.cycles, s.counters, s.trace
            )
            for s in pre_groups[i]
        ]
        pre_end[i] = _emit(combined, spans, start)

    def emit_tin(i: int) -> None:
        spans = [
            Span(
                PIM_BUS, s.stage, s.t0, s.duration, s.cycles, s.counters, s.trace
            )
            for s in tin_groups[i]
        ]
        tin_end[i] = _emit(combined, spans, pre_end[i])

    emit_pre(0, 0.0)
    emit_tin(0)
    for i in range(n):
        exec_end = tin_end[i]
        # Per-DPU lanes: each DPU starts once its input is resident and
        # the lane is free from the previous batch.
        for span in dpu_groups[i]:
            placed = combined.record_at(
                span.resource,
                span.stage,
                tin_end[i],
                span.duration,
                cycles=span.cycles,
                counters=span.counters,
                trace=span.trace,
            )
            exec_end = max(exec_end, placed.t1)
        # Pipeline the *next* batch's front end before this batch's
        # transfer-out claims the bus (the double-buffer policy).
        if i + 1 < n:
            emit_pre(i + 1, tin_end[i])
            emit_tin(i + 1)
        tout_spans = [
            Span(
                PIM_BUS, s.stage, s.t0, s.duration, s.cycles, s.counters, s.trace
            )
            for s in tout_groups[i]
        ]
        tout_end = _emit(combined, tout_spans, exec_end)
        agg_spans = [
            Span(
                HOST_AGG, s.stage, s.t0, s.duration, s.cycles, s.counters, s.trace
            )
            for s in agg_groups[i]
        ]
        _emit(combined, agg_spans, tout_end)
        # Anything this composer has no pipeline rule for (e.g. network
        # spans from a multi-host schedule) stays serialized per batch.
        _emit(combined, other_groups[i], tin_end[i])
    return combined


def compose(
    schedules: Sequence[BatchSchedule], overlap: str = "sequential"
) -> BatchSchedule:
    """Compose per-batch schedules under the given overlap mode.

    An empty sequence is rejected: a run-level schedule over zero batches
    has no meaningful makespan, and silently returning an empty schedule
    has historically masked services that never served a batch.  (The
    lower-level ``compose_sequential``/``compose_double_buffer`` builders
    still accept empty input for incremental callers.)
    """
    if not schedules:
        raise ValueError(
            "cannot compose an empty schedule sequence; serve at least "
            "one batch first"
        )
    if overlap == "sequential":
        return compose_sequential(schedules)
    if overlap == "double_buffer":
        return compose_double_buffer(schedules)
    raise ConfigError(
        f"unknown overlap mode {overlap!r}; expected one of {OVERLAP_MODES}"
    )


def pipeline_wallclock(
    schedules: Sequence[BatchSchedule], overlap: str = "sequential"
) -> float:
    """Run-level wall-clock under an overlap mode (composed makespan)."""
    if not schedules:
        raise ValueError(
            "cannot compute pipeline wall-clock over an empty schedule "
            "sequence; serve at least one batch first"
        )
    return compose(schedules, overlap).makespan
