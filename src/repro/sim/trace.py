"""Chrome-trace (Perfetto) export and validation for schedules.

The exported object follows the Trace Event Format: ``X`` (complete)
events with microsecond ``ts``/``dur`` per span, plus ``M`` metadata
events naming one thread per resource.  Load the JSON file in
https://ui.perfetto.dev or ``chrome://tracing`` to inspect a run.

``validate_chrome_trace`` checks the schema plus the simulator's own
invariant — per-resource spans must not overlap — and is runnable on a
file with ``python -m repro.sim.trace <trace.json>`` (used by CI).
"""

from __future__ import annotations

import json
import sys
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.schedule import BatchSchedule

_US_PER_S = 1e6
#: Relative slack for the overlap check: scaling seconds to microseconds
#: rounds ts and dur independently, so adjacent spans may disagree by a
#: few ULPs without any real overlap.
_OVERLAP_RTOL = 1e-9


def chrome_trace(schedule: "BatchSchedule") -> dict[str, Any]:
    """Trace Event Format object for one schedule (one thread/resource).

    Spans carrying trace metadata (:class:`~repro.sim.span.SpanTrace`)
    additionally emit per-query *flow events* (``s``/``t``/``f``) so
    Perfetto draws an arrow chain through every span a query touched,
    and their ``X`` events carry the causal args (``span``, ``parents``,
    ``wait_us``, ``trace_ids``, ``killed``).
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro.sim"},
        }
    ]
    # Per-query flow chains: every (span, tid) a trace id touched, in
    # recorded time order (ties broken by span uid for determinism).
    flows: dict[str, list[tuple[float, int, int, str]]] = {}
    for tid, (resource, tl) in enumerate(schedule.timelines.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": resource},
            }
        )
        for span in tl.spans:
            event: dict[str, Any] = {
                "ph": "X",
                "name": span.stage,
                "cat": "sim",
                "pid": 0,
                "tid": tid,
                "ts": span.t0 * _US_PER_S,
                "dur": span.duration * _US_PER_S,
            }
            args: dict[str, Any] = {}
            if span.cycles is not None:
                args["cycles"] = span.cycles
            if span.trace is not None:
                args["span"] = span.trace.uid
                args["batch"] = span.trace.batch
                if span.trace.parents:
                    args["parents"] = list(span.trace.parents)
                args["wait_us"] = span.trace.wait_s * _US_PER_S
                if span.trace.killed:
                    args["killed"] = True
                if span.trace.trace_ids:
                    args["trace_ids"] = list(span.trace.trace_ids)
                    for qid in span.trace.trace_ids:
                        flows.setdefault(qid, []).append(
                            (span.t0, span.trace.uid, tid, span.stage)
                        )
            if args:
                event["args"] = args
            events.append(event)
    for qid in sorted(flows):
        chain = sorted(flows[qid])
        if len(chain) < 2:
            continue
        last = len(chain) - 1
        for i, (t0, _uid, tid, stage) in enumerate(chain):
            ph = "s" if i == 0 else ("f" if i == last else "t")
            flow: dict[str, Any] = {
                "ph": ph,
                "name": "query",
                "cat": "query",
                "id": qid,
                "pid": 0,
                "tid": tid,
                "ts": t0 * _US_PER_S,
            }
            if ph == "f":
                flow["bp"] = "e"
            events.append(flow)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Any) -> list[str]:
    """Schema + invariant errors for a Trace Event Format object.

    Returns a list of human-readable problems (empty = valid): the
    top-level shape, per-event required fields, and per-lane span
    monotonicity (no ``X`` event may start before the previous one on
    its lane ended).  The actual checking is shared with the simsan
    sanitizer (:mod:`repro.sanitize`) so this module and ``repro.cli
    sanitize`` can never disagree about what a well-formed trace is;
    ``sanitize_chrome_trace`` additionally runs the happens-before
    checks this structural validator deliberately leaves out.
    """
    # Imported lazily: repro.sanitize depends on repro.sim and this
    # module is imported from repro.sim's __init__.
    from repro.sanitize.checks import check_lanes, collect_trace_lanes

    lanes, findings = collect_trace_lanes(payload)
    findings.extend(check_lanes(lanes, rtol=_OVERLAP_RTOL, causality=False))
    return [f"{f.location}: {f.message}" for f in findings]


def main(argv: list[str] | None = None) -> int:
    """Validate a trace file: ``python -m repro.sim.trace <trace.json>``."""
    from repro.telemetry.log import get_logger

    log = get_logger()
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        log.error("trace.usage", usage="python -m repro.sim.trace <trace.json>")
        return 2
    try:
        with open(argv[0]) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        log.error("trace.read_failed", file=argv[0], error=str(exc))
        return 2
    errors = validate_chrome_trace(payload)
    if errors:
        for err in errors:
            log.error("trace.invalid", error=err)
        return 1
    log.info("trace.valid", events=len(payload["traceEvents"]), file=argv[0])
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
