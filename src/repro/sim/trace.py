"""Chrome-trace (Perfetto) export and validation for schedules.

The exported object follows the Trace Event Format: ``X`` (complete)
events with microsecond ``ts``/``dur`` per span, plus ``M`` metadata
events naming one thread per resource.  Load the JSON file in
https://ui.perfetto.dev or ``chrome://tracing`` to inspect a run.

``validate_chrome_trace`` checks the schema plus the simulator's own
invariant — per-resource spans must not overlap — and is runnable on a
file with ``python -m repro.sim.trace <trace.json>`` (used by CI).
"""

from __future__ import annotations

import json
import sys
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.schedule import BatchSchedule

_US_PER_S = 1e6
#: Relative slack for the overlap check: scaling seconds to microseconds
#: rounds ts and dur independently, so adjacent spans may disagree by a
#: few ULPs without any real overlap.
_OVERLAP_RTOL = 1e-9


def chrome_trace(schedule: "BatchSchedule") -> dict[str, Any]:
    """Trace Event Format object for one schedule (one thread/resource)."""
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro.sim"},
        }
    ]
    for tid, (resource, tl) in enumerate(schedule.timelines.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": resource},
            }
        )
        for span in tl.spans:
            event: dict[str, Any] = {
                "ph": "X",
                "name": span.stage,
                "cat": "sim",
                "pid": 0,
                "tid": tid,
                "ts": span.t0 * _US_PER_S,
                "dur": span.duration * _US_PER_S,
            }
            if span.cycles is not None:
                event["args"] = {"cycles": span.cycles}
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Any) -> list[str]:
    """Schema + invariant errors for a Trace Event Format object.

    Returns a list of human-readable problems (empty = valid): the
    top-level shape, per-event required fields, and per-lane span
    monotonicity (no ``X`` event may start before the previous one on
    its lane ended).  The actual checking is shared with the simsan
    sanitizer (:mod:`repro.sanitize`) so this module and ``repro.cli
    sanitize`` can never disagree about what a well-formed trace is;
    ``sanitize_chrome_trace`` additionally runs the happens-before
    checks this structural validator deliberately leaves out.
    """
    # Imported lazily: repro.sanitize depends on repro.sim and this
    # module is imported from repro.sim's __init__.
    from repro.sanitize.checks import check_lanes, collect_trace_lanes

    lanes, findings = collect_trace_lanes(payload)
    findings.extend(check_lanes(lanes, rtol=_OVERLAP_RTOL, causality=False))
    return [f"{f.location}: {f.message}" for f in findings]


def main(argv: list[str] | None = None) -> int:
    """Validate a trace file: ``python -m repro.sim.trace <trace.json>``."""
    from repro.telemetry.log import get_logger

    log = get_logger()
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        log.error("trace.usage", usage="python -m repro.sim.trace <trace.json>")
        return 2
    try:
        with open(argv[0]) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        log.error("trace.read_failed", file=argv[0], error=str(exc))
        return 2
    errors = validate_chrome_trace(payload)
    if errors:
        for err in errors:
            log.error("trace.invalid", error=err)
        return 1
    log.info("trace.valid", events=len(payload["traceEvents"]), file=argv[0])
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
