"""Spans and per-resource timelines: the simulator's event core.

A :class:`Span` is one contiguous interval of modeled work on one
resource (the host CPU, the host<->PIM bus, the network, or a single
DPU).  A :class:`ResourceTimeline` is an append-only, non-overlapping
sequence of spans on one resource.  Timing views (``BatchTiming``,
stage breakdowns, Chrome traces) are all *derived* from these events.

Bit-for-bit note: a span stores its ``duration`` explicitly rather than
deriving it as ``t1 - t0``.  Sums of durations in append order replicate
the legacy scalar accumulation exactly (``0.0 + x == x`` for the first
term), which is what keeps the derived ``BatchTiming`` identical to the
pre-timeline numbers.  DPU spans additionally carry the ``cycles`` they
represent so makespans can be derived in cycle space, where the legacy
code computed them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Canonical resource names used by the engines.
HOST_CPU = "host_cpu"
#: Separate host lane for aggregation in double-buffered composition
#: (the 2x Xeon host has spare cores for the merge while the next
#: batch's pre-processing runs).
HOST_AGG = "host_agg"
PIM_BUS = "pim_bus"
NETWORK = "network"

_DPU_PREFIX = "dpu/"


def dpu_resource(dpu_id: int) -> str:
    """Resource name for one DPU's execution lane."""
    return f"{_DPU_PREFIX}{dpu_id}"


def is_dpu_resource(resource: str) -> bool:
    return resource.startswith(_DPU_PREFIX)


@dataclass(frozen=True)
class SpanTrace:
    """Causal metadata riding alongside a span — never part of timing.

    The execution cores attach one of these when the work item that
    produced the span carried trace ids.  Everything here is *derived
    observability*: span ids and parents mirror the work DAG, the
    queue-wait split is computed from lane occupancy at dispatch time,
    and none of it feeds ``BatchTiming`` or any ledger — golden timings
    stay bit-identical whether tracing metadata is present or not.
    """

    #: Work-item uid within its batch DAG (stable across both cores).
    uid: int
    #: Uids of the work items this span causally depends on.
    parents: tuple[int, ...] = ()
    #: Query trace ids this span did work for (empty = untraced span).
    trace_ids: tuple[str, ...] = ()
    #: Stream batch index (0 for standalone batch execution).
    batch: int = 0
    #: Seconds the item sat ready but queued behind its lane's FIFO
    #: (service time is the span's own ``duration``).
    wait_s: float = 0.0
    #: True when a mid-flight fault fence truncated this span.
    killed: bool = False


@dataclass(frozen=True)
class Span:
    """One contiguous interval of modeled work on one resource."""

    resource: str
    stage: str
    t0: float
    duration: float  # seconds; authoritative (t1 is derived)
    cycles: float | None = None  # DPU spans: the cycles this span models
    counters: object | None = None  # optional ref (e.g. a StageCycles)
    trace: SpanTrace | None = None  # causal/trace metadata (never timing)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigError(
                f"negative span duration {self.duration} on {self.resource}"
            )
        if self.t0 < 0:
            raise ConfigError(f"negative span start {self.t0} on {self.resource}")

    @property
    def t1(self) -> float:
        return self.t0 + self.duration


@dataclass
class ResourceTimeline:
    """Append-only, non-overlapping span sequence on one resource."""

    resource: str
    spans: list[Span] = field(default_factory=list)

    @property
    def end(self) -> float:
        """Time the resource becomes free (0.0 when never used)."""
        return self.spans[-1].t1 if self.spans else 0.0

    def append(self, span: Span) -> None:
        """Append a span; it must start at or after the current end."""
        if span.resource != self.resource:
            raise ConfigError(
                f"span for {span.resource!r} appended to {self.resource!r}"
            )
        if span.t0 < self.end:
            raise ConfigError(
                f"overlapping span on {self.resource}: "
                f"starts {span.t0} before lane end {self.end}"
            )
        self.spans.append(span)

    def busy_seconds(self) -> float:
        """Sum of span durations in append order (legacy accumulation)."""
        total = 0.0
        for span in self.spans:
            total += span.duration
        return total

    def busy_cycles(self) -> float:
        """Sum of span cycle charges in append order (None counts as 0)."""
        total = 0.0
        for span in self.spans:
            if span.cycles is not None:
                total += span.cycles
        return total

    def stage_seconds(self, stage: str) -> float:
        """Summed duration of this lane's spans with the given stage."""
        total = 0.0
        for span in self.spans:
            if span.stage == stage:
                total += span.duration
        return total
