"""Discrete-event simulator core: execute work DAGs into schedules.

The engines no longer ``record()`` analytic sums directly.  They *describe*
a batch as a DAG of :class:`WorkItem` entries in a :class:`BatchWork`
(transfer-in, per-DPU compute chains, result gather, aggregation, ...),
and the description is then executed into a
:class:`~repro.sim.schedule.BatchSchedule` by one of two cores:

* **analytic** (the default) replays the items in emission order, starting
  each at the max of its dependencies' ends and clamping against its
  resource lane — bit-for-bit identical to the historical ``record_at``
  sequence (``tests/sim/golden_timings.json`` pins this).
* **event** runs a discrete-event simulation: an event heap drives a
  simulated clock over exclusive FIFO resources (``host_cpu``,
  ``pim_bus``, ``network``, one lane per ``dpu/<i>``) with
  outstanding-request tracking.  For a single batch the result is the
  same schedule (the DAG admits no contention); across batches
  (:func:`execute_stream`) contention *emerges from queuing*: batch N+1's
  transfer-in waits behind batch N's bus occupancy instead of being
  placed by a composition rule, and faults can interrupt a span
  mid-flight (:meth:`EventEngine kills <EventEngine.run>`).

Determinism: the heap orders events by ``(time, kind, seq)`` where
``kind`` ranks completions before kills before arrivals and ``seq`` is a
monotone push counter, so ties never consult iteration order of a set or
any wall-clock/RNG source (simlint DET001/DET002 apply to this module).

Engine selection: :func:`resolve_sim_engine` reads the explicit setting
(engine/service field or ``--sim-engine``) and falls back to the
``REPRO_SIM_ENGINE`` environment variable, defaulting to ``analytic``.
"""

from __future__ import annotations

import heapq
import math
import os
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.hardware.counters import StageCycles
from repro.sim.schedule import (
    STAGE_AGGREGATE,
    STAGE_RETRY,
    STAGE_TRANSFER_IN,
    BatchSchedule,
)
from repro.sim.span import HOST_AGG, HOST_CPU, PIM_BUS, SpanTrace

#: Environment variable selecting the execution core.
SIM_ENGINE_ENV = "REPRO_SIM_ENGINE"
#: Recognized execution cores.
SIM_ENGINES = ("analytic", "event")

#: Event-kind ranks: completions settle before kills fence a lane, and
#: both precede new arrivals at the same simulated instant.
_COMPLETE, _KILL, _ARRIVE = 0, 1, 2


def resolve_sim_engine(explicit: str | None = None) -> str:
    """The execution core to use: explicit setting > env > analytic."""
    mode = explicit if explicit is not None else os.environ.get(SIM_ENGINE_ENV)
    if mode is None:
        return "analytic"
    if mode not in SIM_ENGINES:
        raise ConfigError(
            f"unknown sim engine {mode!r}; expected one of {SIM_ENGINES}"
        )
    return mode


@dataclass(frozen=True)
class WorkItem:
    """One unit of modeled work on one exclusive resource.

    ``deps`` are uids of items that must finish first; ``pinned`` marks
    an item that must run *immediately* after its dependency on the same
    lane (retry traffic stays contiguous with the transfer it repairs,
    even when another batch's transfer is already queued).
    """

    uid: int
    resource: str
    stage: str
    duration: float
    cycles: float | None = None
    counters: object | None = None
    deps: tuple[int, ...] = ()
    pinned: bool = False
    batch: int = 0
    #: Query trace ids this item does work for (observability only —
    #: never consulted by either execution core's timing arithmetic).
    trace_ids: tuple[str, ...] = ()
    #: Earliest simulated time the item may become ready (arrival-time
    #: work release: a request cannot be processed before it arrives).
    #: 0.0 — the default everywhere outside the serving frontend —
    #: reproduces the historical behavior bit-for-bit.
    earliest: float = 0.0


def _item_trace(
    item: WorkItem, *, wait_s: float, killed: bool = False
) -> SpanTrace:
    """Causal metadata for the span an item produced (rides alongside)."""
    return SpanTrace(
        uid=item.uid,
        parents=item.deps,
        trace_ids=item.trace_ids,
        batch=item.batch,
        wait_s=wait_s,
        killed=killed,
    )


@dataclass
class LaneStats:
    """Outstanding-request bookkeeping for one resource lane."""

    dispatched: int = 0
    #: Peak of in-flight + queued requests observed on the lane.
    peak_outstanding: int = 0
    #: Arrivals that found the lane busy and had to queue.
    queued: int = 0
    #: Items cancelled because the lane was fenced by a fault.
    cancelled: int = 0


@dataclass
class _Lane:
    """Mutable run-time state of one exclusive FIFO resource."""

    name: str
    end: float = 0.0
    busy_uid: int | None = None
    busy_t0: float = 0.0
    #: Queue wait the in-flight item incurred (ready -> dispatch gap),
    #: captured at start() and consumed when its span is recorded.
    busy_wait: float = 0.0
    #: Min-heap of (ready_time, seq, uid) waiting for the lane.
    queue: list[tuple[float, int, int]] = field(default_factory=list)
    dead: bool = False
    stats: LaneStats = field(default_factory=LaneStats)


@dataclass
class BatchWork:
    """A batch's work description: the DAG the execution cores consume."""

    dpu_frequency_hz: float | None = None
    items: list[WorkItem] = field(default_factory=list)
    #: Stream position stamped on every item (trace span ids are scoped
    #: by it).  :func:`execute_stream` re-stamps with the merge order,
    #: which services keep equal to this by appending batches in order.
    batch: int = 0

    def work(
        self,
        resource: str,
        stage: str,
        duration_s: float,
        *,
        cycles: float | None = None,
        counters: object | None = None,
        after: Iterable[int | None] = (),
        pinned: bool = False,
        trace_ids: Iterable[str] = (),
    ) -> int:
        """Append one work item; returns its uid for later ``after=``."""
        deps = tuple(d for d in after if d is not None)
        uid = len(self.items)
        for d in deps:
            if not 0 <= d < uid:
                raise ConfigError(f"work item {uid} depends on unknown item {d}")
        self.items.append(
            WorkItem(
                uid=uid,
                resource=resource,
                stage=stage,
                duration=duration_s,
                cycles=cycles,
                counters=counters,
                deps=deps,
                pinned=pinned,
                batch=self.batch,
                trace_ids=tuple(trace_ids),
            )
        )
        return uid

    def work_dpu_stages(
        self,
        dpu_id: int,
        stage_cycles: StageCycles,
        *,
        after: Iterable[int | None] = (),
        trace_ids: Iterable[str] = (),
    ) -> int:
        """One chained item per kernel stage on a DPU lane.

        Mirrors :meth:`BatchSchedule.record_dpu_stages`: one item per
        :class:`StageCycles` field, durations derived from cycles at the
        configured frequency.  Returns the uid of the chain's last item
        (what downstream work such as the result gather depends on).
        """
        if self.dpu_frequency_hz is None:
            raise ConfigError("work description has no dpu_frequency_hz")
        from repro.sim.span import dpu_resource

        resource = dpu_resource(dpu_id)
        ids = tuple(trace_ids)
        prev: int | None = None
        for name, cyc in stage_cycles.as_dict().items():
            prev = self.work(
                resource,
                name,
                cyc / self.dpu_frequency_hz,
                cycles=cyc,
                counters=stage_cycles,
                after=list(after) if prev is None else (prev,),
                trace_ids=ids,
            )
        if prev is None:
            raise ConfigError("StageCycles produced no stages")
        return prev

    # --- Execution -----------------------------------------------------

    def execute(self, mode: str = "analytic") -> BatchSchedule:
        """Run the description through the selected core."""
        if mode == "analytic":
            return self._execute_analytic()
        if mode == "event":
            engine = EventEngine(dpu_frequency_hz=self.dpu_frequency_hz)
            return engine.run(self.items)
        raise ConfigError(
            f"unknown sim engine {mode!r}; expected one of {SIM_ENGINES}"
        )

    def _execute_analytic(self) -> BatchSchedule:
        """Emission-order replay (bit-identical to the legacy records).

        Each item starts at the max of its dependencies' span ends, and
        ``record_at`` clamps against the lane — exactly the arithmetic
        the engines used to spell inline (``max(start_s, tl.end)``).
        """
        schedule = BatchSchedule(dpu_frequency_hz=self.dpu_frequency_hz)
        ends: dict[int, float] = {}
        for item in self.items:
            start = item.earliest
            for dep in item.deps:
                if ends[dep] > start:
                    start = ends[dep]
            # The lane clamp (max(start, lane end)) is queue wait: the
            # item was ready at its dep-max start but the lane was busy.
            lane_end = schedule.timeline(item.resource).end
            wait = lane_end - start if lane_end > start else 0.0
            span = schedule.record_at(
                item.resource,
                item.stage,
                start,
                item.duration,
                cycles=item.cycles,
                counters=item.counters,
                trace=_item_trace(item, wait_s=wait),
            )
            ends[item.uid] = span.t1
        return schedule


@dataclass
class EventEngine:
    """Heap-driven discrete-event executor over exclusive FIFO lanes.

    After :meth:`run`, ``lane_stats`` holds per-resource
    outstanding-request counters (dispatches, peak queue depth, waits,
    fault cancellations).
    """

    dpu_frequency_hz: float | None = None
    lane_stats: dict[str, LaneStats] = field(default_factory=dict)

    def run(
        self,
        items: Sequence[WorkItem],
        *,
        kills_at: Sequence[tuple[str, float]] = (),
        kills_on_batch: Mapping[int, Sequence[str]] | None = None,
    ) -> BatchSchedule:
        """Execute ``items`` and return the resulting schedule.

        ``kills_at`` fences resources at absolute simulated times;
        ``kills_on_batch`` maps a batch index to resources that die when
        that batch's first ``pim_bus`` item starts (the host discovers a
        dead device when it next drives the bus).  A kill truncates the
        victim's in-flight span — the truncated duration is re-derived
        from whole cycles at the configured frequency so cycle
        conservation (simsan SAN-LEDGER) holds — and cancels everything
        queued or later arriving on the lane; dependents of cancelled
        work proceed at the fence time (graceful degradation, not
        deadlock).
        """
        by_uid: dict[int, WorkItem] = {}
        for item in items:
            if item.uid in by_uid:
                raise ConfigError(f"duplicate work item uid {item.uid}")
            by_uid[item.uid] = item

        schedule = BatchSchedule(dpu_frequency_hz=self.dpu_frequency_hz)
        # Create lanes in emission order: downstream views iterate
        # timelines in insertion order, and the analytic replay's
        # first-use order is the emission order.
        for item in items:
            schedule.timeline(item.resource)

        remaining: dict[int, int] = {u: 0 for u in by_uid}
        dependents: dict[int, list[int]] = {u: [] for u in by_uid}
        for item in items:
            for dep in item.deps:
                if dep not in by_uid:
                    raise ConfigError(
                        f"work item {item.uid} depends on unknown item {dep}"
                    )
                remaining[item.uid] += 1
                dependents[dep].append(item.uid)
        # An item is ready no earlier than its release time (arrival-time
        # work release); dependency completions only push this later.
        ready_time: dict[int, float] = {
            u: by_uid[u].earliest for u in by_uid
        }

        lanes: dict[str, _Lane] = {}

        def lane(name: str) -> _Lane:
            ln = lanes.get(name)
            if ln is None:
                ln = _Lane(name)
                lanes[name] = ln
            return ln

        heap: list[tuple[float, int, int, object]] = []
        seq = 0

        def push(time: float, kind: int, payload: object) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, kind, seq, payload))
            seq += 1

        # Batch-start triggers: the trigger item is the batch's first
        # pim_bus item (fall back to its first item of any kind).
        triggers: dict[int, list[str]] = {}
        if kills_on_batch:
            for b in sorted(kills_on_batch):
                batch_uids = [it.uid for it in items if it.batch == b]
                if not batch_uids:
                    continue
                bus_uids = [
                    u for u in batch_uids if by_uid[u].resource == PIM_BUS
                ]
                pick = min(bus_uids) if bus_uids else min(batch_uids)
                triggers.setdefault(pick, []).extend(kills_on_batch[b])

        done: set[int] = set()
        finished = 0

        def finalize(uid: int, t: float) -> list[int]:
            """Mark ``uid`` complete at ``t``; return newly-ready uids."""
            nonlocal finished
            done.add(uid)
            finished += 1
            newly: list[int] = []
            for dep_uid in dependents[uid]:
                remaining[dep_uid] -= 1
                if ready_time[dep_uid] < t:
                    ready_time[dep_uid] = t
                if remaining[dep_uid] == 0:
                    newly.append(dep_uid)
            return newly

        def settle(uid: int, t: float) -> None:
            """Finalize a cancelled item and queue its dependents."""
            for dep_uid in finalize(uid, t):
                push(ready_time[dep_uid], _ARRIVE, dep_uid)

        def start(uid: int, ready: float) -> None:
            item = by_uid[uid]
            ln = lane(item.resource)
            t0 = max(ready, ln.end)
            ln.busy_uid = uid
            ln.busy_t0 = t0
            ln.busy_wait = t0 - ready
            ln.end = t0 + item.duration
            ln.stats.dispatched += 1
            push(ln.end, _COMPLETE, uid)
            fences = triggers.pop(uid, None)
            if fences:
                for resource in fences:
                    kill(resource, t0)

        def kill(resource: str, at_s: float) -> None:
            ln = lane(resource)
            if ln.dead:
                return
            ln.dead = True
            busy = ln.busy_uid
            if busy is not None and at_s < ln.end:
                item = by_uid[busy]
                t0 = ln.busy_t0
                freq = self.dpu_frequency_hz
                if item.cycles is not None and freq:
                    # Whole cycles retired before the fence; duration is
                    # re-derived from them so duration == cycles / freq
                    # holds exactly on the truncated span.
                    cut = float(
                        min(max(math.floor((at_s - t0) * freq), 0), item.cycles)
                    )
                    if cut > 0.0:
                        schedule.record_at(
                            item.resource,
                            item.stage,
                            t0,
                            cut / freq,
                            cycles=cut,
                            counters=item.counters,
                            trace=_item_trace(
                                item, wait_s=ln.busy_wait, killed=True
                            ),
                        )
                else:
                    cut_s = at_s - t0
                    if cut_s > 0.0:
                        schedule.record_at(
                            item.resource,
                            item.stage,
                            t0,
                            cut_s,
                            counters=item.counters,
                            trace=_item_trace(
                                item, wait_s=ln.busy_wait, killed=True
                            ),
                        )
                ln.busy_uid = None
                ln.end = at_s
                ln.stats.cancelled += 1
                settle(busy, at_s)
            while ln.queue:
                _r, _s, quid = heapq.heappop(ln.queue)
                ln.stats.cancelled += 1
                settle(quid, at_s)

        for item in items:
            if remaining[item.uid] == 0:
                push(item.earliest, _ARRIVE, item.uid)
        for resource, at_s in kills_at:
            push(at_s, _KILL, resource)

        while heap:
            now, kind, _s, payload = heapq.heappop(heap)
            if kind == _KILL:
                assert isinstance(payload, str)
                kill(payload, now)
                continue
            uid = payload
            assert isinstance(uid, int)
            if uid in done:
                continue
            if kind == _ARRIVE:
                item = by_uid[uid]
                ln = lane(item.resource)
                if ln.dead:
                    ln.stats.cancelled += 1
                    settle(uid, now)
                    continue
                outstanding = len(ln.queue) + (1 if ln.busy_uid is not None else 0) + 1
                if outstanding > ln.stats.peak_outstanding:
                    ln.stats.peak_outstanding = outstanding
                if ln.busy_uid is None:
                    start(uid, now)
                else:
                    ln.stats.queued += 1
                    heapq.heappush(ln.queue, (now, seq, uid))
                continue
            # _COMPLETE: record the span (per-lane completion order is
            # start order, so appends never violate the lane clamp).
            item = by_uid[uid]
            ln = lane(item.resource)
            schedule.record_at(
                item.resource,
                item.stage,
                ln.busy_t0,
                item.duration,
                cycles=item.cycles,
                counters=item.counters,
                trace=_item_trace(item, wait_s=ln.busy_wait),
            )
            ln.busy_uid = None
            newly = finalize(uid, now)
            pinned = [
                d
                for d in newly
                if by_uid[d].pinned and by_uid[d].resource == item.resource
            ]
            started_pinned = False
            for d in newly:
                if not started_pinned and pinned and d == min(pinned) and not ln.dead:
                    # Contiguity bundle: the pinned successor preempts
                    # anything queued (retries ride with their transfer).
                    start(d, ready_time[d])
                    started_pinned = True
                else:
                    push(ready_time[d], _ARRIVE, d)
            if not started_pinned and not ln.dead and ln.queue:
                r, _s2, quid = heapq.heappop(ln.queue)
                start(quid, r)

        if finished != len(by_uid):
            stuck = sorted(u for u in by_uid if u not in done)
            raise ConfigError(
                f"event engine deadlock: items {stuck[:8]} never became "
                "ready (dependency cycle?)"
            )
        self.lane_stats = {name: ln.stats for name, ln in lanes.items()}
        return schedule


def execute_stream(
    works: Sequence[BatchWork],
    *,
    overlap: str = "double_buffer",
    kills: Mapping[str, int] | None = None,
    dpu_frequency_hz: float | None = None,
    engine: EventEngine | None = None,
    releases: Sequence[float] | None = None,
) -> BatchSchedule:
    """Execute a stream of batch descriptions through one event engine.

    This is the event-core replacement for the span-composition rules in
    :mod:`repro.sim.overlap`: instead of re-emitting recorded spans under
    a policy, all batches' DAGs run in a single simulation and cross-batch
    contention emerges from lane queuing.

    * ``sequential`` — batch i's roots depend on every sink of batch
      i-1 (a true barrier; matches ``compose_sequential`` makespans).
    * ``double_buffer`` — batch i's roots depend only on batch i-1's
      last inbound bus item (transfer-in + retries), so host prep and
      the next transfer-in overlap DPU execution and queue behind
      genuine bus occupancy.  Aggregation moves to the ``host_agg``
      lane, mirroring ``compose_double_buffer``.

    ``kills`` maps a resource (e.g. ``dpu/3``) to the batch index at
    whose first bus activity it dies — the mid-flight fault injection
    point used by :class:`repro.faults.FaultState` deaths.

    ``releases`` optionally supplies one release time per batch
    (arrival-time work release, used by the serving frontend): no item
    of batch ``b`` may become ready before ``releases[b]``, so a batch
    submitted at simulated time *t* starts no earlier than *t* even on
    an idle pipeline, and queue-wait beyond that point emerges from
    genuine lane contention.  Release times must be non-negative,
    finite and non-decreasing (batches close in time order).

    Pass an ``engine`` to keep a handle on the run's
    :attr:`EventEngine.lane_stats` (queue-depth telemetry) after the
    schedule is returned; by default a throwaway engine is used.
    """
    if not works:
        raise ValueError(
            "cannot execute an empty work-description stream; serve at "
            "least one batch first"
        )
    from repro.sim.overlap import OVERLAP_MODES

    if overlap not in OVERLAP_MODES:
        raise ConfigError(
            f"unknown overlap mode {overlap!r}; expected one of {OVERLAP_MODES}"
        )
    freq = dpu_frequency_hz
    if freq is None:
        for w in works:
            if w.dpu_frequency_hz is not None:
                freq = w.dpu_frequency_hz
                break
    if releases is not None:
        if len(releases) != len(works):
            raise ConfigError(
                f"got {len(releases)} release times for {len(works)} batches"
            )
        prev = 0.0
        for b, t in enumerate(releases):
            if not math.isfinite(t) or t < 0.0:
                raise ConfigError(
                    f"release time for batch {b} must be finite and >= 0, "
                    f"got {t!r}"
                )
            if t < prev:
                raise ConfigError(
                    f"release times must be non-decreasing; batch {b} "
                    f"releases at {t} after {prev}"
                )
            prev = t

    merged: list[WorkItem] = []
    gate: tuple[int, ...] = ()
    for b, w in enumerate(works):
        offset = len(merged)
        release = releases[b] if releases is not None else 0.0
        depended = [False] * len(w.items)
        last_bus: int | None = None
        for item in w.items:
            for d in item.deps:
                depended[d] = True
        for item in w.items:
            deps = tuple(d + offset for d in item.deps)
            if not deps and gate:
                deps = gate
            resource = item.resource
            if (
                overlap == "double_buffer"
                and item.stage == STAGE_AGGREGATE
                and resource == HOST_CPU
            ):
                resource = HOST_AGG
            merged.append(
                replace(
                    item,
                    uid=item.uid + offset,
                    resource=resource,
                    deps=deps,
                    batch=b,
                    earliest=max(item.earliest, release),
                )
            )
            if item.resource == PIM_BUS and item.stage in (
                STAGE_TRANSFER_IN,
                STAGE_RETRY,
            ):
                last_bus = item.uid + offset
        if overlap == "double_buffer" and last_bus is not None:
            gate = (last_bus,)
        else:
            gate = tuple(
                item.uid + offset
                for i, item in enumerate(w.items)
                if not depended[i]
            )

    kills_on_batch: dict[int, list[str]] = {}
    if kills:
        for resource, b in sorted(kills.items()):
            kills_on_batch.setdefault(b, []).append(resource)

    if engine is None:
        engine = EventEngine(dpu_frequency_hz=freq)
    elif engine.dpu_frequency_hz is None:
        engine.dpu_frequency_hz = freq
    return engine.run(merged, kills_on_batch=kills_on_batch)
