"""simlint: AST-based static invariant checks for the PIM simulator.

The credibility of this reproduction rests on the cost model's
*structure* — event counts x the UPMEM latency curves.  A violated
hardware invariant (a DMA chunk over 2048 B, a drifting copy of a spec
constant, cycles added to bytes, a WRAM layout that silently exceeds
64 KB) corrupts every figure without failing a functional test.  simlint
encodes those invariants as source-level rules:

========  ==============================================================
HW001     hardware magic constants re-declared outside the spec modules
DMA001    literal DMA chunk sizes bypassing ``round_up_dma``/validation
COST001   ``charge_instructions`` without a ``compute_cycles`` charge
UNIT001   mixed unit suffixes (``_bytes`` vs ``_cycles`` ...) in +/-
WRAM001   declared WRAM layouts proven to fit with no overlap
========  ==============================================================

Run ``python -m repro.lint [paths]`` (text or ``--format json``),
suppress per line with ``# simlint: ignore[RULE]``, configure under
``[tool.simlint]`` in pyproject.toml.  The test suite runs the full rule
set over ``src/repro`` so the tree stays permanently lint-clean.
"""

from __future__ import annotations

from repro.lint.config import SimlintConfig, load_config
from repro.lint.engine import iter_python_files, lint_source, run
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, register, resolve_rules

__all__ = [
    "Finding",
    "Rule",
    "SimlintConfig",
    "all_rules",
    "iter_python_files",
    "lint_source",
    "load_config",
    "register",
    "resolve_rules",
    "run",
]
