"""Finding record emitted by simlint rules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
