"""``[tool.simlint]`` configuration loaded from pyproject.toml."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

try:  # Python >= 3.11; gracefully degrade to defaults on 3.10.
    import tomllib
except ImportError:  # pragma: no cover - depends on interpreter
    tomllib = None  # type: ignore[assignment]

#: Modules allowed to spell hardware magic constants literally — the
#: canonical definition sites.  Matched as path suffixes.
DEFAULT_HW_ALLOWED = ("hardware/specs.py", "hardware/mram.py")

#: Path fragments under the determinism contract (DET001/DET002): the
#: simulator core plus everything whose output feeds a timeline or
#: ledger.  ``repro/perf.py`` is deliberately absent — it is the one
#: module that measures real wall-clock — as is ``cli.py``.
DEFAULT_DET_SCOPED = (
    "repro/sim/",
    "repro/core/",
    "repro/hardware/",
    "repro/faults.py",
    "repro/data/",
    "repro/workload/",
)

#: Variable names that conventionally hold *sets* of resources/DPU ids
#: in this codebase; iterating them unsorted is a DET002 finding even
#: where the static type is unknown.
DEFAULT_DET_SET_NAMES = (
    "dead",
    "dead_units",
    "exclude_dpus",
    "rerouted_clusters",
)

#: Path fragments allowed to construct ``Span`` objects or append to a
#: timeline's span list directly (SCHED001); everything else must go
#: through ``BatchSchedule.record*``.
DEFAULT_SCHED_ALLOWED = ("repro/sim/",)

#: Modules imported inside process-pool workers (PAR001): module-level
#: mutable containers here become silent fork-state.  Matched as path
#: fragments, like the determinism scope.
DEFAULT_PAR_SCOPED = (
    "repro/core/kernel.py",
    "repro/core/lut_cache.py",
    "repro/parallel/worker.py",
)


@dataclass
class SimlintConfig:
    """Resolved configuration for one lint run."""

    paths: list[str] = field(default_factory=list)
    select: list[str] = field(default_factory=list)
    ignore: list[str] = field(default_factory=list)
    exclude: list[str] = field(default_factory=list)
    hw_allowed_modules: tuple[str, ...] = DEFAULT_HW_ALLOWED
    wram_capacity: int | None = None  # None = DpuSpec().wram_bytes
    det_scoped_paths: tuple[str, ...] = DEFAULT_DET_SCOPED
    det_set_names: tuple[str, ...] = DEFAULT_DET_SET_NAMES
    sched_allowed_paths: tuple[str, ...] = DEFAULT_SCHED_ALLOWED
    par_scoped_paths: tuple[str, ...] = DEFAULT_PAR_SCOPED

    def is_hw_definition_site(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return normalized.endswith(self.hw_allowed_modules)

    def in_det_scope(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return any(fragment in normalized for fragment in self.det_scoped_paths)

    def is_sched_recorder_site(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return any(
            fragment in normalized for fragment in self.sched_allowed_paths
        )

    def in_par_scope(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return any(fragment in normalized for fragment in self.par_scoped_paths)


def find_pyproject(start: Path) -> Path | None:
    """Walk upward from ``start`` looking for a pyproject.toml."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Path | None = None) -> SimlintConfig:
    """Load ``[tool.simlint]`` from the nearest pyproject.toml.

    Missing file, missing table or a 3.10 interpreter without tomllib
    all fall back to defaults — configuration is strictly optional.
    """
    config = SimlintConfig()
    if tomllib is None:
        return config
    pyproject = find_pyproject(start if start is not None else Path.cwd())
    if pyproject is None:
        return config
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError):
        return config
    table = data.get("tool", {}).get("simlint", {})
    if not isinstance(table, dict):
        return config
    config.paths = [str(p) for p in table.get("paths", [])]
    config.select = [str(r) for r in table.get("select", [])]
    config.ignore = [str(r) for r in table.get("ignore", [])]
    config.exclude = [str(p) for p in table.get("exclude", [])]
    allowed = table.get("hw-allowed-modules")
    if allowed:
        config.hw_allowed_modules = tuple(str(m) for m in allowed)
    capacity = table.get("wram-capacity")
    if isinstance(capacity, int) and not isinstance(capacity, bool):
        config.wram_capacity = capacity
    det_paths = table.get("det-scoped-paths")
    if det_paths:
        config.det_scoped_paths = tuple(str(p) for p in det_paths)
    det_names = table.get("det-set-names")
    if det_names:
        config.det_set_names = tuple(str(n) for n in det_names)
    sched_paths = table.get("sched-allowed-paths")
    if sched_paths:
        config.sched_allowed_paths = tuple(str(p) for p in sched_paths)
    par_paths = table.get("par-scoped-paths")
    if par_paths:
        config.par_scoped_paths = tuple(str(p) for p in par_paths)
    return config
