"""File discovery and rule execution."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.lint.config import SimlintConfig
from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, resolve_rules

_ALWAYS_EXCLUDED = ("__pycache__",)


def iter_python_files(
    paths: Sequence[str | Path], exclude: Iterable[str] = ()
) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    exclusions = tuple(exclude) + _ALWAYS_EXCLUDED
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        candidates = (
            sorted(path.rglob("*.py")) if path.is_dir() else [path]
        )
        for candidate in candidates:
            text = str(candidate)
            if any(pattern in text for pattern in exclusions):
                continue
            found.add(candidate)
    return sorted(found)


def lint_source(
    source: str,
    path: str = "<string>",
    config: SimlintConfig | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one in-memory source blob (the unit-test entry point)."""
    config = config if config is not None else SimlintConfig()
    if rules is None:
        rules = resolve_rules(config.select, config.ignore)
    try:
        ctx = FileContext.build(source, path, config)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id="PARSE",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    if ctx.skip_file:
        return []
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding):
                findings.append(finding)
    return sorted(findings)


def run(paths: Sequence[str | Path], config: SimlintConfig) -> list[Finding]:
    """Lint every Python file reachable from ``paths``."""
    rules = resolve_rules(config.select, config.ignore)
    findings: list[Finding] = []
    for path in iter_python_files(paths, config.exclude):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding(
                    path=str(path),
                    line=1,
                    col=1,
                    rule_id="IO",
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, str(path), config, rules))
    return sorted(findings)
