"""Text and JSON rendering of lint results."""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.lint.findings import Finding
from repro.lint.registry import all_rules

SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    if findings:
        rules = sorted({finding.rule_id for finding in findings})
        lines.append(
            f"simlint: {len(findings)} finding(s) [{', '.join(rules)}]"
        )
    else:
        lines.append("simlint: clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        {
            "version": SCHEMA_VERSION,
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        },
        indent=2,
    )


def render_rule_list() -> str:
    rules = all_rules()
    width = max(len(rule_id) for rule_id in rules)
    return "\n".join(
        f"{rule_id:<{width}}  {rule.summary}"
        for rule_id, rule in sorted(rules.items())
    )
