"""Constant folding over small AST expression trees.

Two folding modes back the rules:

* :func:`fold_literal` — pure numeric literals and arithmetic on them
  only.  Used where a *name* is the desired fix (HW001, DMA001): a raw
  ``64 * 1024`` folds, an imported ``MAX_DMA_BYTES`` deliberately does
  not.
* :func:`fold_symbolic` — additionally resolves names through a symbol
  table (module-level constants plus the canonical hardware symbols).
  Used by WRAM001, which must evaluate declared layout sizes written in
  terms of named constants.
"""

from __future__ import annotations

import ast
from collections.abc import Mapping

Num = int | float

_BIN_OPS: dict[type[ast.operator], object] = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a**b,
}


def _fold(node: ast.expr, names: Mapping[str, Num] | None) -> Num | None:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
            return None
        return node.value
    if isinstance(node, ast.Name) and names is not None:
        value = names.get(node.id)
        return value if isinstance(value, (int, float)) else None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _fold(node.operand, names)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.BinOp):
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            return None
        left = _fold(node.left, names)
        right = _fold(node.right, names)
        if left is None or right is None:
            return None
        try:
            return op(left, right)  # type: ignore[operator]
        except (ZeroDivisionError, OverflowError, ValueError):
            return None
    return None


def fold_literal(node: ast.expr) -> Num | None:
    """Fold an expression built purely from numeric literals, else None."""
    return _fold(node, None)


def fold_symbolic(node: ast.expr, names: Mapping[str, Num]) -> Num | None:
    """Fold literals *and* names resolvable through ``names``, else None."""
    return _fold(node, names)
