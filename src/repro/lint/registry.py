"""Rule base class and registry.

A rule is a stateless object with a ``rule_id``, a one-line ``summary``
and a ``check(ctx)`` generator.  Importing :mod:`repro.lint.rules` is
what populates the registry (each rule module registers itself at import
time), mirroring how pluggable checkers register in larger linters.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding


class Rule:
    """Base class for simlint rules."""

    rule_id: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index the rule by its id."""
    rule = rule_cls()
    if not rule.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    """Registered rules, keyed by id (import side effect: load them)."""
    import repro.lint.rules  # noqa: F401  (registers on import)

    return dict(_REGISTRY)


def resolve_rules(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> list[Rule]:
    """Return the active rule set after select/ignore filtering.

    Unknown rule ids raise ``ValueError`` so typos fail loudly.
    """
    rules = all_rules()
    chosen = set(rules)
    if select:
        wanted = {r.upper() for r in select}
        unknown = wanted - set(rules)
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        chosen = wanted
    if ignore:
        dropped = {r.upper() for r in ignore}
        unknown = dropped - set(rules)
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        chosen -= dropped
    return [rules[r] for r in sorted(chosen)]
