"""Per-file analysis context shared by every rule.

A :class:`FileContext` is built once per file: parsed tree, suppression
table (``# simlint: ignore[...]`` comments), and a symbol table of
module-level constants folded together with the canonical hardware
symbols — so rules never re-derive any of it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.lint.config import SimlintConfig
from repro.lint.evaluate import Num, fold_symbolic
from repro.lint.findings import Finding

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*simlint:\s*skip-file")

#: Canonical hardware symbols rules may resolve by name.  Built from the
#: live spec modules so the linter never duplicates a magic constant.
def hardware_symbols() -> dict[str, Num]:
    from repro.hardware import mram, specs, wram

    dpu = specs.DpuSpec()
    return {
        "MIN_DMA_BYTES": mram.MIN_DMA_BYTES,
        "MAX_DMA_BYTES": mram.MAX_DMA_BYTES,
        "DMA_ALIGN": mram.DMA_ALIGN,
        "WRAM_ALIGN": wram.WRAM_ALIGN,
        "DEFAULT_N_TASKLETS": specs.DEFAULT_N_TASKLETS,
        "KiB": specs.KiB,
        "MiB": specs.MiB,
        "GiB": specs.GiB,
        "GB": specs.GB,
        "WRAM_BYTES": dpu.wram_bytes,
        "MRAM_BYTES": dpu.mram_bytes,
    }


@dataclass
class FileContext:
    """Everything a rule needs to analyze one source file."""

    path: str
    source: str
    tree: ast.Module
    #: line -> suppressed rule ids; empty frozenset = every rule.
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    #: module-level names with statically known numeric values.
    constants: dict[str, Num] = field(default_factory=dict)
    config: SimlintConfig = field(default_factory=SimlintConfig)
    skip_file: bool = False

    @classmethod
    def build(
        cls, source: str, path: str, config: SimlintConfig | None = None
    ) -> "FileContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, source=source, tree=tree)
        if config is not None:
            ctx.config = config
        ctx._scan_suppressions()
        ctx._fold_module_constants()
        return ctx

    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            if lineno <= 5 and _SKIP_FILE_RE.search(line):
                self.skip_file = True
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = match.group(1)
            if rules is None:
                self.suppressions[lineno] = frozenset()
            else:
                ids = frozenset(r.strip().upper() for r in rules.split(",") if r.strip())
                self.suppressions[lineno] = self.suppressions.get(lineno, ids) | ids

    def _fold_module_constants(self) -> None:
        table: dict[str, Num] = dict(hardware_symbols())
        for stmt in self.tree.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            folded = fold_symbolic(value, table)
            if folded is not None:
                table[target.id] = folded
                self.constants[target.id] = folded

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if rules is None:
            return False
        return not rules or finding.rule_id.upper() in rules

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
        )
