"""TIME001 — engines must not hand-sum seconds into timing fields.

The timeline refactor moved all online-pipeline time accounting into
``repro.sim.record`` / ``BatchSchedule``: timed work becomes a span on a
resource lane, and the legacy additive scalars (``BatchTiming`` et al.)
are *derived* from the spans.  Writing ``something.foo_s = ...`` (or
``+=``) inside an engine module reintroduces the ad-hoc scalar
accounting the refactor removed — the written value bypasses the
schedule, so it never shows up in traces and can silently disagree with
the derived views.

The rule is path-scoped to the online pipelines (``core/engine.py``,
``core/flat_engine.py``, ``core/multihost.py``, ``core/service.py`` and
``baselines/``); cost models and metrics modules legitimately build
``*_s`` values and are not checked.  ``repro/perf.py`` is likewise out
of scope by design: it is the one module that *measures host
wall-clock* (looped-vs-grouped kernel microbenchmarks), so its
``*_s`` values are real seconds, not modeled ones.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Path fragments identifying the modules under the span-only contract.
_SCOPED_PATHS = (
    "core/engine.py",
    "core/flat_engine.py",
    "core/multihost.py",
    "core/service.py",
    "baselines/",
)


def _in_scope(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in _SCOPED_PATHS)


@register
class TimingAssignmentRule(Rule):
    rule_id = "TIME001"
    summary = (
        "engine modules must route timed work through repro.sim.record, "
        "not hand-summed *_s attribute assignments"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_scope(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr.endswith("_s"):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"assignment to timing field .{target.attr} in an engine "
                        "module — emit a span via repro.sim.record() on a "
                        "BatchSchedule instead of hand-summing seconds",
                    )
