"""DMA001 — DMA chunk sizes must be derived, not spelled as literals.

Every MRAM<->WRAM transfer in the simulator flows through a ``chunk``
argument (``charge_mram_read/write``, ``bulk_transfer_cycles``,
``transactions_for``).  UPMEM hardware only accepts 8-byte-aligned
transfers in [8, 2048]; the blessed way to obtain a chunk size is
``round_up_dma()`` or a named constant such as ``MAX_DMA_BYTES``.  A
literal chunk bypasses that validation path — and even a *currently*
legal literal is a latent bug, because nothing re-checks it when the
payload geometry changes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.evaluate import fold_literal
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_CHUNK_METHODS = frozenset(
    {"charge_mram_read", "charge_mram_write", "bulk_transfer_cycles",
     "transactions_for"}
)


def _chunk_argument(call: ast.Call) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == "chunk_bytes":
            return kw.value
    if len(call.args) >= 2:
        return call.args[1]
    return None


@register
class DmaChunkRule(Rule):
    rule_id = "DMA001"
    summary = (
        "DMA chunk sizes passed to charge_mram_read/write must come from "
        "round_up_dma() or a named DMA constant, never a literal"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        from repro.hardware.mram import DMA_ALIGN, MAX_DMA_BYTES, MIN_DMA_BYTES

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in _CHUNK_METHODS):
                continue
            chunk = _chunk_argument(node)
            if chunk is None:
                continue
            folded = fold_literal(chunk)
            if folded is None:
                continue
            message = (
                f"literal DMA chunk size {folded!r} passed to {func.attr}(); "
                "derive it with round_up_dma() or import a named constant "
                "from repro.hardware.mram"
            )
            size = int(folded)
            if (
                folded != size
                or size < MIN_DMA_BYTES
                or size > MAX_DMA_BYTES
                or size % DMA_ALIGN != 0
            ):
                message += (
                    f" — and {folded!r} is not even a legal DMA size "
                    f"({DMA_ALIGN}-byte aligned in "
                    f"[{MIN_DMA_BYTES}, {MAX_DMA_BYTES}])"
                )
            yield ctx.finding(self.rule_id, chunk, message)
