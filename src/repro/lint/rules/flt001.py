"""FLT001 — fault-handling code must catch the taxonomy, not Exception.

The fault-injection plane (``repro.faults``) gives every failure mode a
typed exception rooted at ``ReproError`` (``DpuFailedError``,
``TransferFaultError``, ``SchedulingError``, ...).  A ``try`` block that
catches bare ``Exception`` (or a naked ``except:``) inside the serving
stack swallows the taxonomy: fault-plane errors, programming bugs and
``KeyboardInterrupt``-adjacent conditions all collapse into one handler,
and the failover logic can no longer distinguish "re-route to a replica"
from "the simulator itself is broken".

The rule is path-scoped to ``src/repro/core`` and ``src/repro/hardware``
— the layers that sit on the failure path.  CLI entry points and test
helpers may legitimately catch broadly for reporting and are out of
scope.  A deliberate broad handler (e.g. a last-resort boundary) can be
suppressed with ``# simlint: ignore[FLT001]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Path fragments identifying the modules on the failure path.
_SCOPED_PATHS = (
    "repro/core/",
    "repro/hardware/",
)


def _in_scope(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in _SCOPED_PATHS)


def _names(expr: ast.expr | None) -> Iterator[ast.expr]:
    """Flatten ``except (A, B)`` tuples into individual name nodes."""
    if expr is None:
        return
    if isinstance(expr, ast.Tuple):
        yield from expr.elts
    else:
        yield expr


@register
class BroadExceptRule(Rule):
    rule_id = "FLT001"
    summary = (
        "failure-path modules must catch typed repro errors, "
        "not bare/broad Exception handlers"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_scope(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "bare `except:` on the failure path — catch a typed "
                    "error from repro.errors so failover logic can tell "
                    "fault-plane failures from bugs",
                )
                continue
            for name in _names(node.type):
                if isinstance(name, ast.Name) and name.id in (
                    "Exception",
                    "BaseException",
                ):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"`except {name.id}` on the failure path — catch a "
                        "typed error from repro.errors so failover logic "
                        "can tell fault-plane failures from bugs",
                    )
