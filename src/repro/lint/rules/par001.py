"""PAR001 — no module-level mutable state in worker-reachable modules.

The process-pool executor (:mod:`repro.parallel`) imports the kernel and
LUT-cache modules inside worker processes.  Module-level mutable
containers in those modules are silent fork-state: a fork-started worker
inherits whatever the parent accumulated before the pool spun up, a
spawn-started worker gets a fresh copy — and either way writes from the
parent after the fork never reach the workers, so results quietly depend
on *when* the pool was created.  The convention is that worker-reachable
modules keep all mutable state behind an explicit init hook (the
worker's ``_STATE`` slot, initialized by ``init_worker``) or inside
objects shipped per task.

This rule flags, in the parallel scope (``par-scoped-paths``),
module-level bindings of obviously mutable containers:

* list / dict / set displays and comprehensions,
* calls to ``list`` / ``dict`` / ``set`` / ``bytearray`` / ``deque`` /
  ``defaultdict`` / ``OrderedDict`` / ``Counter``,
* any module-level augmented assignment (mutating module state at
  import time).

``__all__`` is exempt (an import-protocol constant that is never
mutated after import).  Immutable bindings — numbers, strings, tuples,
``None`` sentinels, type aliases — are fine, as are class and function
bodies: only the module's own top-level namespace is checked.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Constructor names whose call result is a mutable container.
_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "deque",
        "defaultdict",
        "OrderedDict",
        "Counter",
    }
)

#: Names exempt from the rule (import-protocol constants).
_EXEMPT_NAMES = frozenset({"__all__"})


def _mutable_rhs(node: ast.expr) -> str | None:
    """Describe why ``node`` builds a mutable container, or None."""
    if isinstance(node, ast.List):
        return "a list display"
    if isinstance(node, ast.Dict):
        return "a dict display"
    if isinstance(node, ast.Set):
        return "a set display"
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
        return "a comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _MUTABLE_CALLS:
            return f"a {name}(...) call"
    return None


def _target_names(node: ast.stmt) -> list[str]:
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    names = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                e.id for e in target.elts if isinstance(e, ast.Name)
            )
    return names


def _module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level statements, descending through module-level if/try
    blocks (``TYPE_CHECKING`` guards and import fallbacks) but never
    into function or class bodies."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.If):
            stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
            for handler in node.handlers:
                stack.extend(handler.body)


@register
class WorkerModuleStateRule(Rule):
    rule_id = "PAR001"
    summary = (
        "worker-reachable modules must not bind module-level mutable "
        "containers"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.in_par_scope(ctx.path):
            return
        for node in _module_level_statements(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            names = _target_names(node)
            if names and all(n in _EXEMPT_NAMES for n in names):
                continue
            if isinstance(node, ast.AugAssign):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "module-level augmented assignment mutates import-time "
                    "state — pool workers inherit a stale copy (fork) or "
                    "none at all (spawn); move it behind the worker init "
                    "hook",
                )
                continue
            value = node.value
            if value is None:  # bare annotation: `x: list` declares nothing
                continue
            why = _mutable_rhs(value)
            if why is not None:
                label = ", ".join(names) if names else "<target>"
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"module-level binding of {why} ({label}) is silent "
                    "fork-state: parent writes after the pool starts never "
                    "reach workers — keep mutable state in the worker's "
                    "init-hook state object or ship it per task",
                )
