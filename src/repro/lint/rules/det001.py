"""DET001 — no wall-clock or unseeded randomness in the simulator core.

The simulator's whole value is that the same config and seed reproduce
the same timeline bit-for-bit (the golden-equivalence suite pins
``float.hex`` timings).  One ``time.time()`` or unseeded RNG call inside
the modeled path silently turns a deterministic model into a flaky one.
This rule bans, inside the determinism scope (``det-scoped-paths`` in
``[tool.simlint]``):

* ``numpy.random.default_rng()`` / ``RandomState()`` with no seed
  argument — entropy-seeded generators;
* the legacy numpy global-RNG surface (``np.random.rand`` et al.),
  seeded or not — global RNG state is shared mutable state;
* the stdlib ``random`` module's module-level functions (``random.Random(seed)``
  instances are fine);
* wall-clock reads: ``time.time``/``time_ns``/``perf_counter``/
  ``monotonic`` (+ ``_ns`` variants), ``datetime.now``/``utcnow``/
  ``today``.

``repro/perf.py`` (real microbenchmarks) and ``cli.py`` are outside the
default scope by design.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Legacy numpy global-RNG entry points (module-level, shared state).
_NP_GLOBAL_FNS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "seed",
        "bytes",
    }
)

#: ``time`` module functions that read a real clock.
_WALL_CLOCK_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: ``datetime``-family constructors that embed "now".
_DATETIME_NOW_FNS = frozenset({"now", "utcnow", "today"})


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully qualified module/object path for imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _dotted_name(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve a call target to a dotted path through the import table."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _has_seed_argument(call: ast.Call) -> bool:
    if call.args:
        return True
    return any(kw.arg in ("seed", "rng") or kw.arg is None for kw in call.keywords)


@register
class DeterminismRule(Rule):
    rule_id = "DET001"
    summary = (
        "simulator-scope modules must not read wall clocks or unseeded "
        "global RNGs"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.in_det_scope(ctx.path):
            return
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            full = _dotted_name(node.func, aliases)
            if full is None:
                continue
            finding = self._classify(full, node)
            if finding is not None:
                yield ctx.finding(self.rule_id, node, finding)

    def _classify(self, full: str, call: ast.Call) -> str | None:
        leaf = full.rsplit(".", 1)[-1]
        if full in ("numpy.random.default_rng", "numpy.random.RandomState"):
            if not _has_seed_argument(call):
                return (
                    f"{leaf}() without a seed draws OS entropy — thread the "
                    "run seed through (e.g. default_rng(seed)) so timelines "
                    "replay bit-for-bit"
                )
            return None
        if full.startswith("numpy.random.") and leaf in _NP_GLOBAL_FNS:
            return (
                f"numpy.random.{leaf}() uses the shared global RNG — use a "
                "seeded numpy.random.default_rng(seed) generator instead"
            )
        if full == "random" or (
            full.startswith("random.") and leaf[:1].islower()
        ):
            return (
                f"stdlib random.{leaf}() uses hidden global state — use a "
                "seeded random.Random(seed) or numpy default_rng(seed)"
            )
        if full.startswith("time.") and leaf in _WALL_CLOCK_FNS:
            return (
                f"time.{leaf}() reads a real clock inside the simulator "
                "scope — modeled time must come from the cost model / "
                "schedule, never the host clock"
            )
        if leaf in _DATETIME_NOW_FNS and (
            full.startswith("datetime.") or ".datetime." in full or ".date." in full
        ):
            return (
                f"{leaf}() embeds wall-clock 'now' inside the simulator "
                "scope — pass timestamps in explicitly"
            )
        return None
