"""WRAM001 — statically prove declared WRAM layouts fit and never overlap.

UPMEM DPUs address their 64 KB WRAM physically, with no MMU to catch a
bad layout at runtime (paper challenge 2).  The dynamic checks in
:mod:`repro.hardware.wram` catch violations *when a kernel runs*; this
rule proves them *before* anything runs, from the source alone:

* **declared layouts** — module-level ``*WRAM_LAYOUT*`` constants of the
  form ``(("phase", (("region", SIZE), ...)), ...)`` (an optional third
  element fixes a region's physical offset).  Sizes are const-evaluated
  from module constants and the canonical hardware symbols; each phase
  is packed with the same 8-byte-aligned first-fit the real allocator
  uses and must fit in ``DpuSpec.wram_bytes``; a region appearing in
  several phases must keep one size (it survives in place, Figure 6);
* **alloc/free sequences** — straight-line functions whose
  ``allocator.alloc(name, size)`` / ``allocator.free(name)`` calls all
  have statically evaluable arguments are replayed against a real
  :class:`~repro.hardware.wram.WramAllocator`, so double-alloc,
  double-free and capacity overflow are compile-time findings.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.evaluate import Num, fold_symbolic
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Simulated allocation event: ("alloc", name, size) or ("free", name, 0).
Event = tuple[str, str, int]


def _wram_capacity(configured: int | None) -> int:
    if configured is not None:
        return configured
    from repro.hardware.specs import DpuSpec

    return DpuSpec().wram_bytes


def simulate_events(events: list[Event], capacity: int) -> list[str]:
    """Replay alloc/free events on a real allocator; return problems.

    This is the shared engine behind the static rule and the history-log
    tests: the same first-fit semantics the runtime uses decide whether
    a statically-declared sequence can ever fit.
    """
    from repro.errors import WramOverflowError
    from repro.hardware.wram import WramAllocator

    allocator = WramAllocator(capacity=capacity)
    problems: list[str] = []
    for op, name, size in events:
        try:
            if op == "alloc":
                allocator.alloc(name, size)
            elif op == "free":
                allocator.free(name)
            else:
                problems.append(f"unknown WRAM event {op!r}")
        except WramOverflowError as exc:
            problems.append(str(exc))
    return problems


@register
class WramLayoutRule(Rule):
    rule_id = "WRAM001"
    summary = (
        "declared WRAM layouts must fit DpuSpec.wram_bytes with no two "
        "simultaneously-live regions overlapping"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        capacity = _wram_capacity(ctx.config.wram_capacity)
        names = dict(ctx.constants)
        from repro.lint.context import hardware_symbols

        names.update({k: v for k, v in hardware_symbols().items() if k not in names})

        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and "WRAM_LAYOUT" in target.id:
                    yield from self._check_layout(
                        ctx, target.id, stmt.value, names, capacity
                    )
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_alloc_sequence(ctx, node, names, capacity)

    # --- declared layout constants -------------------------------------

    def _check_layout(
        self,
        ctx: FileContext,
        layout_name: str,
        node: ast.expr,
        names: dict[str, Num],
        capacity: int,
    ) -> Iterator[Finding]:
        phases = self._eval_layout(node, names)
        if phases is None:
            yield ctx.finding(
                self.rule_id,
                node,
                f"{layout_name} is not statically evaluable — a WRAM layout "
                "must be a tuple of (phase, ((region, size[, offset]), ...)) "
                "with const-foldable sizes, or it proves nothing",
            )
            return
        sizes_seen: dict[str, int] = {}
        for phase, regions in phases:
            yield from self._check_phase(
                ctx, node, layout_name, phase, regions, capacity
            )
            for region, size, _offset in regions:
                previous = sizes_seen.setdefault(region, size)
                if previous != size:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{layout_name}: region {region!r} changes size "
                        f"across phases ({previous} B vs {size} B) — a "
                        "surviving region must keep its footprint",
                    )

    def _check_phase(
        self,
        ctx: FileContext,
        node: ast.expr,
        layout_name: str,
        phase: str,
        regions: list[tuple[str, int, int | None]],
        capacity: int,
    ) -> Iterator[Finding]:
        from repro.hardware.wram import WRAM_ALIGN, WramRegion

        def aligned(size: int) -> int:
            return (size + WRAM_ALIGN - 1) // WRAM_ALIGN * WRAM_ALIGN

        seen: set[str] = set()
        placed: list[WramRegion] = []
        for name, size, offset in regions:
            where = f"{layout_name} phase {phase!r}"
            if name in seen:
                yield ctx.finding(
                    self.rule_id, node, f"{where}: duplicate region {name!r}"
                )
                continue
            seen.add(name)
            if size <= 0:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"{where}: region {name!r} has non-positive size {size}",
                )
                continue
            size = aligned(size)
            if offset is not None and offset % WRAM_ALIGN != 0:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"{where}: region {name!r} offset {offset} is not "
                    f"{WRAM_ALIGN}-byte aligned",
                )
                continue
            if offset is None:
                offset = self._first_fit(placed, size, capacity)
                if offset is None:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{where}: region {name!r} ({size} B) does not fit — "
                        f"{sum(r.size for r in placed)} B of {capacity} B "
                        "already live",
                    )
                    continue
            region = WramRegion(name, offset, size)
            for other in placed:
                if region.overlaps(other):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{where}: regions {name!r} and {other.name!r} overlap "
                        f"([{region.offset}, {region.end}) vs "
                        f"[{other.offset}, {other.end}))",
                    )
            if region.end > capacity:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"{where}: region {name!r} ends at {region.end} B, past "
                    f"the {capacity} B WRAM capacity",
                )
            placed.append(region)

    @staticmethod
    def _first_fit(placed: list, size: int, capacity: int) -> int | None:
        cursor = 0
        for region in sorted(placed, key=lambda r: r.offset):
            if region.offset - cursor >= size:
                return cursor
            cursor = max(cursor, region.end)
        if capacity - cursor >= size:
            return cursor
        return None

    def _eval_layout(
        self, node: ast.expr, names: dict[str, Num]
    ) -> list[tuple[str, list[tuple[str, int, int | None]]]] | None:
        if not isinstance(node, (ast.Tuple, ast.List)):
            return None
        phases: list[tuple[str, list[tuple[str, int, int | None]]]] = []
        for element in node.elts:
            if not isinstance(element, (ast.Tuple, ast.List)):
                return None
            if len(element.elts) != 2:
                return None
            phase_node, regions_node = element.elts
            if not (
                isinstance(phase_node, ast.Constant)
                and isinstance(phase_node.value, str)
            ):
                return None
            if not isinstance(regions_node, (ast.Tuple, ast.List)):
                return None
            regions: list[tuple[str, int, int | None]] = []
            for region_node in regions_node.elts:
                if not isinstance(region_node, (ast.Tuple, ast.List)):
                    return None
                elts = region_node.elts
                if len(elts) not in (2, 3):
                    return None
                name_node = elts[0]
                if not (
                    isinstance(name_node, ast.Constant)
                    and isinstance(name_node.value, str)
                ):
                    return None
                size = fold_symbolic(elts[1], names)
                if size is None or size != int(size):
                    return None
                offset: int | None = None
                if len(elts) == 3:
                    folded = fold_symbolic(elts[2], names)
                    if folded is None or folded != int(folded):
                        return None
                    offset = int(folded)
                regions.append((name_node.value, int(size), offset))
            phases.append((phase_node.value, regions))
        return phases

    # --- straight-line alloc/free sequences -----------------------------

    @staticmethod
    def _is_wram_receiver(node: ast.expr) -> bool:
        """True when the call receiver looks like a WRAM allocator."""
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return False
        lowered = name.lower()
        return "wram" in lowered or "alloc" in lowered

    def _check_alloc_sequence(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        names: dict[str, Num],
        capacity: int,
    ) -> Iterator[Finding]:
        events: list[tuple[ast.Call, Event]] = []
        for stmt in func.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.For, ast.While, ast.If,
                                     ast.FunctionDef, ast.AsyncFunctionDef)):
                    return  # control flow: leave it to the dynamic checks
                if not isinstance(node, ast.Call):
                    continue
                call_func = node.func
                if not (
                    isinstance(call_func, ast.Attribute)
                    and call_func.attr in ("alloc", "free")
                    and self._is_wram_receiver(call_func.value)
                ):
                    continue
                if not node.args or not (
                    isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    return
                region = node.args[0].value
                if call_func.attr == "free":
                    events.append((node, ("free", region, 0)))
                    continue
                if len(node.args) < 2:
                    return
                size = fold_symbolic(node.args[1], names)
                if size is None or size != int(size):
                    return  # dynamic size: not statically provable
                events.append((node, ("alloc", region, int(size))))
        if not events:
            return
        for problem in simulate_events([event for _, event in events], capacity):
            yield ctx.finding(
                self.rule_id,
                events[0][0],
                f"static replay of {func.name}()'s WRAM plan fails: {problem}",
            )
