"""UNIT001 — unit-suffixed quantities must not mix in +/- arithmetic.

The codebase's naming convention carries units in identifier suffixes
(``_bytes``, ``_cycles``, ``_s``, ``_us``, ``_hz``, ``_w``, and rate
forms like ``_bytes_per_s``).  Adding or subtracting two quantities of
*different* units is a dimensional error — the classic simulator bug of
adding cycles to bytes — while multiplying/dividing is how units legally
convert, so only ``+``/``-`` (including ``+=``/``-=`` and comparisons)
between two recognizably-united simple operands are checked.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_UNIT_TOKENS = frozenset(
    {"bytes", "cycles", "s", "us", "ns", "ms", "hz", "w", "usd"}
)


def unit_of(name: str) -> str | None:
    """Extract the unit suffix of an identifier, or None.

    ``setup_cycles`` -> ``cycles``; ``bandwidth_bytes_per_s`` ->
    ``bytes_per_s``; ``offset`` -> None.  A trailing ``per`` run with no
    unit on its left is treated as unclassifiable.
    """
    tokens = name.lower().strip("_").split("_")
    run: list[str] = []
    for token in reversed(tokens):
        if token in _UNIT_TOKENS or token == "per":
            run.insert(0, token)
        else:
            break
    while run and run[0] == "per":
        run.pop(0)
    if not run or all(t == "per" for t in run):
        return None
    if len(run) == len(tokens):
        return None  # the whole name is a unit ("s", "bytes") — no signal
    return "_".join(run)


def _operand_unit(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return unit_of(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of(node.attr)
    return None


@register
class UnitMixRule(Rule):
    rule_id = "UNIT001"
    summary = (
        "quantities with different unit suffixes must not be added, "
        "subtracted or compared without an explicit conversion"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(ctx, node, node.left, node.right)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(ctx, node, node.target, node.value)
            elif isinstance(node, ast.Compare) and len(node.comparators) == 1:
                yield from self._check_pair(
                    ctx, node, node.left, node.comparators[0]
                )

    def _check_pair(
        self, ctx: FileContext, node: ast.AST, left: ast.expr, right: ast.expr
    ) -> Iterator[Finding]:
        left_unit = _operand_unit(left)
        right_unit = _operand_unit(right)
        if left_unit is None or right_unit is None or left_unit == right_unit:
            return
        yield ctx.finding(
            self.rule_id,
            node,
            f"mixing units without conversion: "
            f"{ast.unparse(left)} [{left_unit}] vs "
            f"{ast.unparse(right)} [{right_unit}]",
        )
