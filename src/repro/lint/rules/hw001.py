"""HW001 — hardware magic constants must come from the spec modules.

The UPMEM invariants (2048 B max DMA, 64 KiB WRAM, 64 MiB MRAM, 350 MHz,
24 tasklets, ...) have exactly one definition site each:
``repro/hardware/specs.py`` and ``repro/hardware/mram.py``.  A literal
``2048`` or ``64 * 1024`` anywhere else is a silently-drifting copy: if
a spec changes, the copy does not, and every figure the cost model
produces is corrupted without a test failing.

Two sub-checks:

* **value check** — any literal (or literal arithmetic folding to) one
  of the canonical big constants, anywhere outside the spec modules;
* **context check** — the small pipeline constants (11, 14, 24) are too
  common to flag bare, so they are flagged only when bound to a name
  that marks them as hardware-meaning: assignments, annotated defaults
  or keyword arguments whose name mentions a tasklet/pipeline concept.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.evaluate import fold_literal
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_CONTEXT_NAME_PARTS = ("tasklet", "pipeline", "reissue")


def _value_table() -> dict[float, str]:
    """Canonical constant -> symbol to import, built from the live specs."""
    from repro.hardware import mram, specs

    dpu = specs.DpuSpec()
    pim = specs.PimSystemSpec()
    return {
        float(mram.MAX_DMA_BYTES): "repro.hardware.mram.MAX_DMA_BYTES",
        float(dpu.wram_bytes): "DpuSpec.wram_bytes (repro.hardware.specs)",
        float(dpu.mram_bytes): "DpuSpec.mram_bytes (repro.hardware.specs)",
        float(dpu.iram_bytes): "DpuSpec.iram_bytes (repro.hardware.specs)",
        float(dpu.frequency_hz): "DpuSpec.frequency_hz (repro.hardware.specs)",
        float(pim.n_dpus): "PimSystemSpec.n_dpus (repro.hardware.specs)",
        float(pim.dimm_peak_power_w): (
            "PimSystemSpec.dimm_peak_power_w (repro.hardware.specs)"
        ),
    }


def _context_table() -> dict[float, str]:
    from repro.hardware import specs

    dpu = specs.DpuSpec()
    return {
        float(dpu.pipeline_reissue_cycles): (
            "DpuSpec.pipeline_reissue_cycles / DEFAULT_N_TASKLETS "
            "(repro.hardware.specs)"
        ),
        float(dpu.pipeline_stages): "DpuSpec.pipeline_stages (repro.hardware.specs)",
        float(dpu.max_tasklets): "DpuSpec.max_tasklets (repro.hardware.specs)",
    }


def _is_hw_context_name(name: str) -> bool:
    lowered = name.lower()
    return any(part in lowered for part in _CONTEXT_NAME_PARTS)


@register
class HardwareConstantRule(Rule):
    rule_id = "HW001"
    summary = (
        "hardware magic constants must be imported from "
        "repro.hardware.specs / repro.hardware.mram, not re-declared"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.config.is_hw_definition_site(ctx.path):
            return
        values = _value_table()
        contexts = _context_table()
        yield from self._check_values(ctx, ctx.tree, values)
        yield from self._check_contexts(ctx, contexts)

    # --- value check ---------------------------------------------------

    def _check_values(
        self, ctx: FileContext, node: ast.AST, values: dict[float, str]
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                folded = fold_literal(child)
                if folded is not None:
                    symbol = values.get(float(folded))
                    if symbol is not None:
                        yield ctx.finding(
                            self.rule_id,
                            child,
                            f"hardware constant {folded!r} re-declared; "
                            f"import {symbol} instead",
                        )
                        continue  # don't flag the pieces again
            yield from self._check_values(ctx, child, values)

    # --- context check -------------------------------------------------

    def _check_contexts(
        self, ctx: FileContext, contexts: dict[float, str]
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            for name, value in self._bindings(node):
                folded = fold_literal(value)
                if folded is None or not _is_hw_context_name(name):
                    continue
                symbol = contexts.get(float(folded))
                if symbol is not None:
                    yield ctx.finding(
                        self.rule_id,
                        value,
                        f"pipeline constant {folded!r} bound to {name!r}; "
                        f"derive it from {symbol} instead",
                    )

    @staticmethod
    def _bindings(node: ast.AST) -> Iterator[tuple[str, ast.expr]]:
        """(name, value-expr) pairs for every name-binding construct."""
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    yield target.id, node.value
                elif isinstance(target, ast.Attribute):
                    yield target.attr, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                yield node.target.id, node.value
            elif isinstance(node.target, ast.Attribute):
                yield node.target.attr, node.value
        elif isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg is not None:
                    yield kw.arg, kw.value
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            positional = args.posonlyargs + args.args
            for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                    args.defaults):
                yield arg.arg, default
            for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
                if kw_default is not None:
                    yield arg.arg, kw_default
