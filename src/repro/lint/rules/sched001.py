"""SCHED001 — spans enter timelines only via ``BatchSchedule.record*``.

``BatchSchedule.record`` / ``record_at`` / ``record_dpu_stages`` are the
only constructors that keep the simulator's invariants: they clamp
starts against per-resource lane ends (no double-booking by
construction), derive DPU durations from cycles at the configured
frequency, and keep the derived ledgers (``BatchTiming``,
``StageCycles``) consistent with the spans.  A hand-built
``Span(...)`` appended to a timeline outside :mod:`repro.sim` bypasses
all of that — it is exactly the class of bug the simsan dynamic checker
(:mod:`repro.sanitize`) exists to catch at runtime; this rule catches
it at lint time.

Flagged outside ``sched-allowed-paths`` (default ``repro/sim/``):

* any call spelled ``Span(...)`` (bare name or ``span.Span`` /
  ``sim.Span`` attribute);
* any ``<expr>.spans.append(...)`` / ``.extend(...)`` / ``.insert(...)``
  — mutating a timeline's span list directly.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_MUTATORS = frozenset({"append", "extend", "insert"})


def _is_span_constructor(func: ast.expr) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "Span"
    if isinstance(func, ast.Attribute):
        return func.attr == "Span"
    return False


def _is_spans_mutation(func: ast.expr) -> bool:
    return (
        isinstance(func, ast.Attribute)
        and func.attr in _MUTATORS
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "spans"
    )


@register
class SpanRecordingRule(Rule):
    rule_id = "SCHED001"
    summary = (
        "spans must be recorded via BatchSchedule.record*, not "
        "hand-constructed outside repro.sim"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.config.is_sched_recorder_site(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_span_constructor(node.func):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "hand-constructed Span outside repro.sim — record it "
                    "with BatchSchedule.record()/record_at()/"
                    "record_dpu_stages() so lane clamping and derived "
                    "ledgers stay correct",
                )
            elif _is_spans_mutation(node.func):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "direct mutation of a timeline's .spans list bypasses "
                    "the non-overlap clamp — use BatchSchedule.record* "
                    "(or build the timeline inside repro.sim)",
                )
