"""COST001 — instruction charges must be converted into time.

``DPU.charge_instructions`` only increments an event counter; it adds no
cycles.  Every kernel that charges instructions must also charge the
time those instructions take via ``pipeline.compute_cycles`` (or fold
the whole ledger with ``elapsed_cycles``) *in the same function* —
otherwise the work is counted but free, and the stage breakdown the
paper's figures are built from silently loses a term.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

_CHARGE = "charge_instructions"
_DISCHARGERS = frozenset({"compute_cycles", "elapsed_cycles", "elapsed_seconds"})

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def _own_calls(func: _FunctionNode) -> Iterator[ast.Call]:
    """Calls in ``func``'s body, excluding nested function bodies."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested scope owns its own pairing obligation
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class CostPairingRule(Rule):
    rule_id = "COST001"
    summary = (
        "charge_instructions must be paired with a pipeline.compute_cycles "
        "charge in the same function"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            charges: list[ast.Call] = []
            discharged = False
            for call in _own_calls(node):
                if isinstance(call.func, ast.Attribute):
                    if call.func.attr == _CHARGE:
                        charges.append(call)
                    elif call.func.attr in _DISCHARGERS:
                        discharged = True
            if discharged:
                continue
            for call in charges:
                yield ctx.finding(
                    self.rule_id,
                    call,
                    f"{_CHARGE}() in {node.name}() has no matching "
                    "pipeline.compute_cycles charge in the same function — "
                    "instructions are counted but cost no time",
                )
