"""OBS001 — library code must not ``print()``; use the structured logger.

The telemetry layer gives every module a levelled, deterministic,
stderr-bound logger (``repro.telemetry.log.get_logger``).  A raw
``print()`` inside ``src/repro`` bypasses the ``--verbose``/``--quiet``
controls, lands on stdout where it corrupts machine-readable output
(``metrics --json`` records, Chrome traces piped to files), and cannot
be filtered by level.

Exempt by basename: ``cli.py`` (its stdout *is* the user-facing result
surface) and ``__main__.py`` entry shims.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Files whose stdout is the product, not diagnostics.
_EXEMPT_BASENAMES = ("cli.py", "__main__.py")


def _exempt(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return normalized.rsplit("/", 1)[-1] in _EXEMPT_BASENAMES


@register
class PrintCallRule(Rule):
    rule_id = "OBS001"
    summary = (
        "library modules must log through repro.telemetry.log, "
        "not raw print() calls"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if _exempt(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "raw print() in library code — route diagnostics through "
                    "repro.telemetry.log.get_logger() so they are levelled, "
                    "stderr-bound and controllable via --verbose/--quiet",
                )
