"""Rule modules — importing this package registers every rule."""

from __future__ import annotations

from repro.lint.rules import (
    cost001,
    det001,
    det002,
    dma001,
    flt001,
    hw001,
    obs001,
    par001,
    sched001,
    time001,
    unit001,
    wram001,
)

__all__ = [
    "cost001",
    "det001",
    "det002",
    "dma001",
    "flt001",
    "hw001",
    "obs001",
    "par001",
    "sched001",
    "time001",
    "unit001",
    "wram001",
]
