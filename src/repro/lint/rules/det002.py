"""DET002 — don't iterate sets where the order can reach a timeline.

``set`` iteration order in CPython depends on insertion history and hash
randomization of the element type; two runs of the same config can visit
DPU ids in different orders, and any loop that appends spans, charges a
ledger or emits rows in that order produces a different-but-"valid"
timeline each run.  The convention in this codebase is ``for u in
sorted(the_set)`` everywhere order is observable.

This rule flags, inside the determinism scope (``det-scoped-paths``):

* ``for``-loops and comprehensions iterating directly over a set
  display, a ``set(...)``/``frozenset(...)`` call, or a set union /
  intersection / difference expression;
* iteration over names (or attributes) from ``det-set-names`` — the
  codebase's conventional set-valued fault registries (``dead_units``,
  ``exclude_dpus``, ...) whose static type the linter cannot see.

Wrapping the iterable in ``sorted(...)`` (or any other call) is the fix
and silences the rule by construction.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Binary set operators whose result is a set when operands are sets.
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Set-returning method names on set objects.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


def _is_set_expr(node: ast.expr, set_names: tuple[str, ...]) -> str | None:
    """Describe why ``node`` is set-valued, or None if it is not."""
    if isinstance(node, ast.Set):
        return "a set display"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"a {func.id}(...) call"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _is_set_expr(func.value, set_names) is not None
        ):
            return f"a set .{func.attr}(...) result"
        return None
    if isinstance(node, ast.Name) and node.id in set_names:
        return f"the set-valued name {node.id!r}"
    if isinstance(node, ast.Attribute) and node.attr in set_names:
        return f"the set-valued attribute .{node.attr}"
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        left = _is_set_expr(node.left, set_names)
        right = _is_set_expr(node.right, set_names)
        if left is not None or right is not None:
            return "a set-operator expression"
    return None


@register
class SetIterationRule(Rule):
    rule_id = "DET002"
    summary = (
        "simulator-scope loops must not iterate unsorted sets of "
        "resources/DPU ids"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.config.in_det_scope(ctx.path):
            return
        set_names = ctx.config.det_set_names
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                why = _is_set_expr(it, set_names)
                if why is not None:
                    yield ctx.finding(
                        self.rule_id,
                        it,
                        f"iterating {why} — set order is nondeterministic; "
                        "wrap the iterable in sorted(...) so the visit order "
                        "(and any spans/ledgers it feeds) replays identically",
                    )
