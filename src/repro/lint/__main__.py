"""``python -m repro.lint`` — run the simulator invariant checker.

Exit codes: 0 = clean, 1 = findings reported, 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.config import load_config
from repro.lint.engine import run
from repro.lint.report import render_json, render_rule_list, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "simlint: static invariant checks for the PIM simulator "
            "(hardware constants, DMA sizes, cost pairing, unit suffixes, "
            "WRAM layouts).  Suppress per line with '# simlint: "
            "ignore[RULE]'; configure via [tool.simlint] in pyproject.toml."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.simlint] paths, "
        "else src/repro, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE",
        help="run only these rules (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULE",
        help="skip these rules (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.simlint] in pyproject.toml",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return 0

    if args.no_config:
        from repro.lint.config import SimlintConfig

        config = SimlintConfig()
    else:
        start = Path(args.paths[0]) if args.paths else Path.cwd()
        config = load_config(start)
    if args.select is not None:
        config.select = args.select
    if args.ignore is not None:
        config.ignore = args.ignore

    paths = args.paths or config.paths
    if not paths:
        fallback = Path("src/repro")
        paths = [str(fallback)] if fallback.is_dir() else ["."]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"simlint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        findings = run(paths, config)
    except ValueError as exc:  # unknown rule ids from select/ignore
        print(f"simlint: {exc}", file=sys.stderr)
        return 2

    render = render_json if args.format == "json" else render_text
    print(render(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
