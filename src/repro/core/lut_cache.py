"""Cross-batch LUT cache for the online pipeline (functional-path only).

Steady-state service traffic repeats queries and hot clusters, yet the
engine used to rebuild every (query, cluster) lookup table from scratch
each batch.  This byte-bounded LRU keeps the *functional* tables — the
(m, ksub) LUT for plain clusters, the flat [LUT | partial sums] table
for CAE clusters — across batches, keyed by

    (query digest, cluster id, codebook version)

so a repeated query skips the residual/LUT/partial-sum recomputation
entirely.  The cache never touches modeled time: each DPU is still
charged the full LUT-construction cost on every visit (the golden-timing
contract), exactly as the real hardware would rebuild its WRAM copy.

Invalidation: the engine bumps its codebook version (making every old
key unreachable) and calls :meth:`LutCache.clear` whenever the index or
the placement changes — ``build()`` and ``refresh_placement()``.

Hit/miss totals are exposed through :mod:`repro.telemetry` as
``repro_lut_cache_hits_total`` / ``repro_lut_cache_misses_total``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.errors import ConfigError
from repro.telemetry.registry import MetricsRegistry, get_registry

#: Cache key: (query digest, cluster id, codebook version).
CacheKey = tuple[bytes, int, int]


def query_digest(query: np.ndarray) -> bytes:
    """Stable 16-byte digest of a query vector's float32 contents."""
    data = np.ascontiguousarray(query, dtype=np.float32)
    return hashlib.blake2b(data.tobytes(), digest_size=16).digest()


class LutCache:
    """Byte-capacity LRU over per-(query, cluster) lookup tables.

    Entries are immutable NumPy arrays; eviction is by total stored
    bytes, least-recently-used first.  A capacity of 0 (or less)
    disables the cache: every lookup misses and nothing is retained.
    """

    def __init__(
        self, capacity_bytes: int, *, registry: MetricsRegistry | None = None
    ):
        self.capacity_bytes = int(capacity_bytes)
        self._registry = registry
        self._entries: OrderedDict[CacheKey, np.ndarray] = OrderedDict()
        self._bytes = 0
        # Cost-aware admission (off by default): per-cluster access
        # frequencies and the floor below which puts are skipped.
        self._admission_freq: np.ndarray | None = None
        self._admission_floor = 0.0
        self._admission_skips = 0

    @property
    def enabled(self) -> bool:
        return self.capacity_bytes > 0

    @property
    def nbytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def _counters(self):
        reg = self._registry if self._registry is not None else get_registry()
        return reg.cached(
            "lut_cache_counters",
            lambda: (
                reg.counter(
                    "repro_lut_cache_hits_total",
                    "cross-batch LUT cache hits",
                ),
                reg.counter(
                    "repro_lut_cache_misses_total",
                    "cross-batch LUT cache misses",
                ),
            ),
        )

    def get(self, key: CacheKey) -> np.ndarray | None:
        """The cached table, refreshed as most-recently-used; None on miss."""
        hits, misses = self._counters()
        entry = self._entries.get(key)
        if entry is None:
            misses.inc()
            return None
        self._entries.move_to_end(key)
        hits.inc()
        return entry

    def get_many(self, keys: list[CacheKey]) -> list[np.ndarray | None]:
        """Batched :meth:`get`: one entry per key, None on miss.

        Counter updates are coalesced into a single hit and a single
        miss increment, which keeps the per-(query, cluster) lookup cost
        out of the grouped engine's hot path.
        """
        hits, misses = self._counters()
        entries = self._entries
        out: list[np.ndarray | None] = []
        n_hits = 0
        for key in keys:
            entry = entries.get(key)
            if entry is not None:
                entries.move_to_end(key)
                n_hits += 1
            out.append(entry)
        if n_hits:
            hits.inc(n_hits)
        if len(out) > n_hits:
            misses.inc(len(out) - n_hits)
        return out

    def set_admission(
        self, frequencies: np.ndarray | None, floor: float = 0.0
    ) -> None:
        """Arm (or disarm) frequency-floor admission.

        ``frequencies`` is the per-cluster access distribution (summing
        to 1, e.g. :meth:`repro.workload.trace.AccessTrace.frequencies`);
        a :meth:`put` for a cluster whose frequency is below ``floor``
        is silently skipped, so one-shot tail clusters never evict the
        warm working set.  ``None`` or a floor of 0 admits everything.
        Functional no-op either way: admission only changes what is
        *retained*, never any computed value.
        """
        if frequencies is None or floor <= 0.0:
            self._admission_freq = None
            self._admission_floor = 0.0
            return
        self._admission_freq = np.asarray(frequencies, dtype=np.float64)
        self._admission_floor = float(floor)

    def _admits(self, cluster: int) -> bool:
        freq = self._admission_freq
        if freq is None or not 0 <= cluster < freq.shape[0]:
            return True
        return bool(freq[cluster] >= self._admission_floor)

    def put(self, key: CacheKey, table: np.ndarray) -> None:
        """Insert (or refresh) one table, evicting LRU entries to fit.

        A table larger than the whole capacity is simply not retained —
        the caller keeps its own reference for the current batch.  With
        admission armed, tables of below-floor clusters are skipped and
        counted in ``repro_lut_cache_admission_skips_total``.
        """
        if not self.enabled:
            return
        if table.nbytes > self.capacity_bytes:
            return
        if not self._admits(key[1]):
            self._admission_skips += 1
            reg = self._registry if self._registry is not None else get_registry()
            reg.counter(
                "repro_lut_cache_admission_skips_total",
                "LUT-cache puts skipped by the frequency-floor admission policy",
            ).inc()
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._entries[key] = table
        self._bytes += table.nbytes
        while self._bytes > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes

    def clear(self) -> None:
        """Drop every entry (codebook or placement changed)."""
        self._entries.clear()
        self._bytes = 0

    def stats(self) -> dict[str, int]:
        """Current occupancy (counts are in the telemetry registry)."""
        return {
            "entries": len(self._entries),
            "bytes": self._bytes,
            "capacity_bytes": self.capacity_bytes,
            "admission_skips": self._admission_skips,
        }


def check_capacity(capacity_bytes: int) -> int:
    """Validate a configured capacity (negative = configuration error)."""
    if capacity_bytes < 0:
        raise ConfigError(
            f"lut_cache_bytes must be >= 0 (0 disables), got {capacity_bytes}"
        )
    return capacity_bytes
