"""Opt3, offline half: mining co-occurring code combinations (section 4.3).

Encoded points are codebook indices in [0, 255], so real datasets repeat
element combinations — the paper observes the triplet (1, 15, 26) in
5.7 % of SIFT1B vectors.  UpANNS mines, per cluster, the top-m most
frequent *position-anchored* combinations of length 3 (positions matter:
the cached partial sum of (1, 15, 26) at columns (0, 1, 2) is only valid
there).  Each selected combination is assigned a cache slot whose
partial sum is computed once per (query, cluster) after LUT
construction and reused by every vector containing the combination.

The paper describes the mining through an Element Co-occurrence Graph
(ECG): nodes are (position, code) elements, edge weights count
co-occurrences.  :func:`build_ecg` constructs that graph (via networkx)
for analysis; the production miner :func:`mine_combinations` counts
contiguous position-anchored triples directly with vectorized hashing,
which finds exactly the frequent length-3 paths of the ECG restricted to
adjacent positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class Combination:
    """One mined combination: codes anchored at consecutive positions."""

    start_pos: int
    codes: tuple[int, ...]
    count: int
    slot: int  # cache-slot index assigned by the miner

    @property
    def length(self) -> int:
        return len(self.codes)

    @property
    def positions(self) -> tuple[int, ...]:
        return tuple(range(self.start_pos, self.start_pos + len(self.codes)))


@dataclass
class CooccurrenceModel:
    """The mined combinations of one cluster, slot-indexed."""

    m: int  # sub-quantizer count of the underlying PQ
    combos: list[Combination]
    # Lazily packed (positions, codes, slots) index matrices for the
    # vectorized partial-sum gather; rebuilt only if combos change.
    _packed: tuple[np.ndarray, np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_slots(self) -> int:
        return len(self.combos)

    @property
    def combo_length(self) -> int:
        """Uniform length of the mined combinations (0 if none)."""
        if not self.combos:
            return 0
        lengths = {c.length for c in self.combos}
        if len(lengths) != 1:
            raise ConfigError("mixed combination lengths in one model")
        return next(iter(lengths))

    def lookup_tables(self) -> dict[int, dict[tuple[int, ...], int]]:
        """start_pos -> {codes tuple -> slot} for the encoder."""
        tables: dict[int, dict[tuple[int, ...], int]] = {}
        for combo in self.combos:
            tables.setdefault(combo.start_pos, {})[combo.codes] = combo.slot
        return tables

    def _packed_indices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(positions, codes, slots) matrices for the gather form of
        :meth:`partial_sums`; combos all share one length, so the rows
        pack into dense (n_slots, length) matrices."""
        if self._packed is None:
            length = self.combo_length
            pos = np.empty((self.n_slots, length), dtype=np.int64)
            codes = np.empty((self.n_slots, length), dtype=np.int64)
            slots = np.empty(self.n_slots, dtype=np.int64)
            for row, combo in enumerate(self.combos):
                pos[row] = np.arange(
                    combo.start_pos, combo.start_pos + length, dtype=np.int64
                )
                codes[row] = combo.codes
                slots[row] = combo.slot
            self._packed = (pos, codes, slots)
        return self._packed

    def partial_sums(self, lut: np.ndarray) -> np.ndarray:
        """Per-slot partial sums from a freshly built LUT (online step).

        ``lut`` is the (m, ksub) table; slot j caches
        ``sum_i lut[pos_i, code_i]`` for combination j — what the DPU
        stores in its reserved WRAM buffer after Barrier 1.

        Vectorized as one fancy-index gather plus a row sum in float64
        (bit-identical to the scalar loop it replaced: Python-float
        accumulation over <= MAX_COMBO_LENGTH float32 values is the same
        left-to-right float64 chain NumPy uses for short rows).
        """
        if lut.shape[0] != self.m:
            raise ConfigError(f"LUT rows {lut.shape[0]} != m {self.m}")
        if not self.combos:
            return np.zeros(0, dtype=np.float32)
        pos, codes, slots = self._packed_indices()
        return partial_sums_from_packed(lut, pos, codes, slots, self.n_slots)


def partial_sums_from_packed(
    lut: np.ndarray,
    pos: np.ndarray,
    codes: np.ndarray,
    slots: np.ndarray,
    n_slots: int,
) -> np.ndarray:
    """Per-slot partial sums from pre-packed index matrices.

    The functional core of :meth:`CooccurrenceModel.partial_sums`,
    callable from contexts that hold only the packed ``(pos, codes,
    slots)`` arrays — the ``repro.parallel`` workers rebuild flat tables
    from shared-memory views of exactly these matrices.  Bit-identical
    to the method: same gather, same float64 row sum, same cast.
    """
    sums = np.zeros(n_slots, dtype=np.float32)
    if n_slots == 0 or pos.shape[0] == 0:
        return sums
    vals = lut[pos, codes]
    sums[slots] = vals.sum(axis=1, dtype=np.float64).astype(np.float32)
    return sums


MAX_COMBO_LENGTH = 7  # packing limit: 7 uint8 codes per int64 key


def _pack_run(codes: np.ndarray, p: int, length: int) -> np.ndarray:
    """Pack codes[:, p:p+length] into one int64 key per row."""
    c = codes.astype(np.int64)
    key = c[:, p]
    for offset in range(1, length):
        key = (key << 8) | c[:, p + offset]
    return key


def _unpack_run(packed: int, length: int) -> tuple[int, ...]:
    return tuple((packed >> (8 * (length - 1 - i))) & 0xFF for i in range(length))


def _pack_triples(codes: np.ndarray, p: int) -> np.ndarray:
    """Pack codes[:, p:p+3] into a single key per row (length-3 case)."""
    return _pack_run(codes, p, 3)


def mine_combinations(
    codes: np.ndarray,
    *,
    top_m: int = 256,
    combo_length: int = 3,
    min_count: int = 2,
) -> CooccurrenceModel:
    """Select the top-m most frequent contiguous code runs in a cluster.

    Counting is fully vectorized: for each anchor position the run is
    packed into one integer and tallied with ``np.unique``.  The paper's
    default is length 3; longer combinations trade more WRAM cache per
    slot for a larger per-hit reduction ("longer combinations can be
    selected if a larger cache size is available", section 4.3).
    """
    if not 2 <= combo_length <= MAX_COMBO_LENGTH:
        raise ConfigError(
            f"combo_length must be in [2, {MAX_COMBO_LENGTH}], got {combo_length}"
        )
    codes = np.atleast_2d(codes)
    n, m = codes.shape
    if m < combo_length or n == 0:
        return CooccurrenceModel(m=m, combos=[])

    candidates: list[tuple[int, int, int]] = []  # (count, start_pos, packed)
    for p in range(m - combo_length + 1):
        packed = _pack_run(codes, p, combo_length)
        values, counts = np.unique(packed, return_counts=True)
        keep = counts >= min_count
        for v, c in zip(values[keep], counts[keep]):
            candidates.append((int(c), p, int(v)))

    # Highest count first; deterministic tie-break on (pos, packed).
    candidates.sort(key=lambda t: (-t[0], t[1], t[2]))
    combos: list[Combination] = []
    for slot, (count, p, packed) in enumerate(candidates[:top_m]):
        combos.append(
            Combination(
                start_pos=p,
                codes=_unpack_run(packed, combo_length),
                count=count,
                slot=slot,
            )
        )
    return CooccurrenceModel(m=m, combos=combos)


def build_ecg(codes: np.ndarray):
    """Element Co-occurrence Graph over (position, code) nodes.

    Edges connect elements at adjacent positions with co-occurrence
    counts as weights — the paper's Figure 8 (top).  Returned as a
    ``networkx.Graph`` for inspection; used by tests to cross-validate
    the fast miner.
    """
    import networkx as nx

    codes = np.atleast_2d(codes)
    _, m = codes.shape
    graph = nx.Graph()
    for p in range(m - 1):
        pairs = codes[:, p].astype(np.int64) * 256 + codes[:, p + 1].astype(np.int64)
        values, counts = np.unique(pairs, return_counts=True)
        for v, c in zip(values, counts):
            a = (p, int(v) // 256)
            b = (p + 1, int(v) % 256)
            if graph.has_edge(a, b):
                graph[a][b]["weight"] += int(c)
            else:
                graph.add_edge(a, b, weight=int(c))
    return graph


def combination_coverage(codes: np.ndarray, model: CooccurrenceModel) -> float:
    """Fraction of vectors containing at least one mined combination."""
    codes = np.atleast_2d(codes)
    n = codes.shape[0]
    if n == 0 or not model.combos:
        return 0.0
    length = model.combo_length
    covered = np.zeros(n, dtype=bool)
    by_pos: dict[int, set[int]] = {}
    for combo in model.combos:
        packed = 0
        for code in combo.codes:
            packed = (packed << 8) | code
        by_pos.setdefault(combo.start_pos, set()).add(packed)
    for p, packs in by_pos.items():
        packed = _pack_run(codes, p, length)
        covered |= np.isin(packed, np.fromiter(packs, dtype=np.int64))
    return float(covered.mean())
