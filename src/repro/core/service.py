"""Online serving loop: batches in, results + adaptation out.

Packages the paper's deployment story into one object: an
:class:`OnlineService` owns an engine, a latency recorder and the
section-4.1.2 adaptive policy.  Each submitted batch is searched,
latency is recorded, drift against the placement-time traffic snapshot
is measured, and — when the policy asks — the placement is refreshed
from the live access trace.

The recommendation/RAG examples use this loop; tests drive it through
drift scenarios and assert both adaptation and exactness.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import BatchResult, UpANNSEngine
from repro.core.scheduling import AdaptivePolicy
from repro.core.validation import validate_queries
from repro.errors import ConfigError, NotTrainedError
from repro.metrics.latency import LatencyRecorder
from repro.sanitize.hook import debug_sanitize_schedule
from repro.sim import (
    OVERLAP_MODES,
    BatchSchedule,
    BatchWork,
    EventEngine,
    compose,
    dpu_resource,
    execute_stream,
    resolve_sim_engine,
)
from repro.telemetry.pipeline import observe_lane_stats, observe_query_latencies
from repro.telemetry.registry import get_registry
from repro.tracing.context import TraceContext
from repro.tracing.record import query_latencies
from repro.workload.trace import AccessTrace

logger = logging.getLogger(__name__)


@dataclass
class ServiceReport:
    """One serving step's outcome.

    The tail-latency fields are running per-query percentiles over every
    batch the service has served *up to and including* this one, in
    milliseconds — what an operator dashboard would show after the step.
    """

    result: BatchResult
    drift: float
    action: str
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    #: True when the batch lost probed clusters to dead DPUs (its
    #: per-query coverage is in ``result.degraded``).
    degraded: bool = False
    #: Worst per-query served-cluster fraction for this batch.
    coverage_floor: float = 1.0
    #: Modeled time spent re-placing around dead DPUs after this batch
    #: (0.0 when no recovery ran).
    recovery_s: float = 0.0


@dataclass
class OnlineService:
    """Engine + latency accounting + adaptive placement maintenance."""

    engine: UpANNSEngine
    policy: AdaptivePolicy = field(default_factory=AdaptivePolicy)
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    # How consecutive batches share the pipeline: "sequential" (each
    # batch fully drains before the next starts — the paper's default
    # accounting) or "double_buffer" (batch N+1's host prep and inbound
    # transfer run during batch N's DPU execution).
    overlap: str = "sequential"
    # Refresh placement at most once every this many batches (a real
    # deployment re-places 'every few days', not per batch).
    min_batches_between_refreshes: int = 1
    # Execution core for the combined run-level schedule: "analytic"
    # composes the recorded per-batch spans under the overlap policy;
    # "event" re-executes the retained work descriptions through one
    # discrete-event simulation, so cross-batch contention (batch N+1's
    # transfer-in queuing behind batch N's bus occupancy) and mid-flight
    # fault interruption emerge from queuing.  None defers to the
    # REPRO_SIM_ENGINE environment variable.
    sim_engine: str | None = None
    schedules: list[BatchSchedule] = field(default_factory=list)
    works: list[BatchWork] = field(default_factory=list)
    _snapshot: AccessTrace | None = None
    _batches_since_refresh: int = 0
    refresh_count: int = 0
    recovery_count: int = 0
    #: Dead-DPU set already recovered around; recovery re-runs only
    #: when new deaths appear.
    _recovered_dead: set[int] = field(default_factory=set)
    #: Next query ordinal: trace ids are assigned at intake and stay
    #: unique across every batch this service ever serves.
    _next_query: int = 0
    #: Event engine retained by the last event-core combined run, so
    #: its ``lane_stats`` survive for telemetry export.
    last_event_engine: EventEngine | None = None

    def __post_init__(self) -> None:
        if self.overlap not in OVERLAP_MODES:
            raise ConfigError(
                f"unknown overlap mode {self.overlap!r}; expected one of {OVERLAP_MODES}"
            )
        if self.engine.trace is None:
            raise NotTrainedError("the engine must be built before serving")
        self._snapshot = self.engine.trace.snapshot()

    def submit(
        self,
        queries: np.ndarray,
        *,
        k: int | None = None,
        trace: TraceContext | None = None,
        nprobe: int | None = None,
    ) -> ServiceReport:
        """Serve one batch; adapt the placement if traffic drifted.

        ``trace`` lets a frontend that assigned request ids at intake
        (``repro.serving``) carry them through; by default the service
        mints a fresh sequential context.  ``nprobe`` shrinks cluster
        probing below the configured value for this batch only (the
        frontend's degrade response under overload).
        """
        queries = validate_queries(queries, dim=self.engine.config.index.dim)
        nq = int(queries.shape[0])
        if trace is None:
            # Trace intake: every query gets a service-unique id here, and
            # the batch index is the stream position the event core will
            # re-stamp anyway — so span identities agree across both cores.
            ctx = TraceContext.for_batch(
                nq, batch=len(self.works), start=self._next_query
            )
            self._next_query += nq
        else:
            if trace.batch != len(self.works):
                raise ConfigError(
                    f"trace batch {trace.batch} does not match stream "
                    f"position {len(self.works)}"
                )
            if len(trace.trace_ids) != nq:
                raise ConfigError(
                    f"trace carries {len(trace.trace_ids)} ids for {nq} queries"
                )
            ctx = trace
        result = self.engine.search_batch(queries, k=k, trace=ctx, nprobe=nprobe)
        if result.schedule is not None:
            self.schedules.append(result.schedule)
        if result.work is not None:
            self.works.append(result.work)
        self.latency.record_batch_result(result)
        if result.schedule is not None:
            observe_query_latencies(query_latencies(result.schedule))
        assert self.engine.trace is not None and self._snapshot is not None
        drift = self.engine.trace.drift_from(self._snapshot)
        action = self.policy.decide(drift)
        self._batches_since_refresh += 1

        # Health takes precedence over drift cadence: the first batch
        # that observes a new DPU death triggers an immediate placement
        # refresh over the survivors, re-replicating orphaned clusters.
        recovery_seconds = 0.0
        state = self.engine.fault_state
        if state is not None and state.dead and set(state.dead) != self._recovered_dead:
            dead = frozenset(state.dead)
            recovery_seconds = self.engine.refresh_placement(exclude_dpus=dead)
            self._recovered_dead = set(dead)
            self._snapshot = self.engine.trace.snapshot()
            self._batches_since_refresh = 0
            self.recovery_count += 1
            logger.info(
                "recovered around %d dead DPUs in %.3f ms (modeled reload)",
                len(dead),
                recovery_seconds * 1e3,
            )
            get_registry().counter(
                "repro_service_recoveries_total",
                "placement refreshes triggered by DPU death",
            ).inc()

        if (
            action != "keep"
            and self._batches_since_refresh >= self.min_batches_between_refreshes
        ):
            logger.info("traffic drift %.3f -> %s: refreshing placement", drift, action)
            # A drift refresh must not resurrect dead DPUs: keep excluding
            # every death recovered around, or the new placement would
            # route clusters onto corpses and recovery would never re-fire
            # (the dead set is unchanged, so the health check above stays
            # satisfied while coverage silently degrades).
            self.engine.refresh_placement(
                exclude_dpus=frozenset(state.dead) if state is not None else frozenset()
            )
            self._snapshot = self.engine.trace.snapshot()
            self._batches_since_refresh = 0
            self.refresh_count += 1
            get_registry().counter(
                "repro_service_refreshes_total", "adaptive placement refreshes"
            ).inc()
        reg = get_registry()
        reg.counter("repro_service_batches_total", "batches accepted by the service").inc()
        reg.gauge(
            "repro_service_queue_depth",
            "schedules retained for overlap composition",
        ).set(len(self.schedules))
        return ServiceReport(
            result=result,
            drift=drift,
            action=action,
            p50_ms=self.latency.percentile_ms(50),
            p95_ms=self.latency.percentile_ms(95),
            p99_ms=self.latency.percentile_ms(99),
            degraded=result.degraded.is_degraded if result.degraded else False,
            coverage_floor=(
                result.degraded.coverage_floor if result.degraded else 1.0
            ),
            recovery_s=recovery_seconds,
        )

    def serve(self, batches, *, k: int | None = None) -> list[ServiceReport]:
        """Serve an iterable of query batches (arrays or QueryBatch)."""
        reports = []
        for batch in batches:
            queries = getattr(batch, "queries", batch)
            reports.append(self.submit(queries, k=k))
        return reports

    def combined_schedule(self) -> BatchSchedule:
        """All served batches as one run-level schedule.

        Analytic core: the recorded per-batch spans are composed under
        this service's overlap policy.  Event core: the retained work
        descriptions re-execute through one discrete-event run, where
        the overlap policy only sets the cross-batch dependency shape
        and the actual interleaving (bus queuing, mid-flight DPU-death
        interruption at the recorded death batches) emerges from the
        simulation.
        """
        if (
            resolve_sim_engine(self.sim_engine) == "event"
            and self.works
            and len(self.works) == len(self.schedules)
        ):
            engine = EventEngine()
            combined = execute_stream(
                self.works,
                overlap=self.overlap,
                kills=self._stream_kills(),
                engine=engine,
            )
            self.last_event_engine = engine
            observe_lane_stats(engine.lane_stats, schedule=combined)
            debug_sanitize_schedule(
                combined, label=f"event stream {self.overlap} run"
            )
            return combined
        combined = compose(self.schedules, self.overlap)
        # Per-batch schedules are sanitized inside the engine; this
        # covers what composition itself can break (lane clamping,
        # cross-batch ordering).  No-op unless REPRO_SANITIZE is set.
        debug_sanitize_schedule(combined, label=f"composed {self.overlap} run")
        return combined

    def _stream_kills(self) -> dict[str, int]:
        """DPU lanes to fence mid-run, from the fault plane's ledger."""
        state = self.engine.fault_state
        if state is None:
            return {}
        n = len(self.works)
        return {
            dpu_resource(u): b
            for u, b in sorted(state.death_batches.items())
            if 0 <= b < n
        }

    def wallclock_seconds(self) -> float:
        """Modeled wall-clock for everything served so far.

        Under ``sequential`` this equals the sum of per-batch totals;
        under ``double_buffer`` it is strictly lower whenever batches
        have nonzero inbound-transfer time to hide.
        """
        return self.combined_schedule().makespan

    def summary(self) -> dict[str, float]:
        """Latency percentiles, throughput and adaptation activity."""
        out = dict(self.latency.summary())
        out["refreshes"] = float(self.refresh_count)
        out["recoveries"] = float(self.recovery_count)
        out["batches"] = float(self.latency.n_batches)
        if self.schedules:
            out["wallclock_s"] = self.wallclock_seconds()
        return out
