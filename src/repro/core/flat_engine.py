"""IVFFlat on PIM: the transferability demonstration.

The paper's conclusion: "the core techniques, namely workload
distribution, resource management, and top-k pruning, are transferable"
beyond IVFPQ.  This engine reuses Algorithm 1 placement, Algorithm 2
scheduling, the WRAM/MRAM models and the Opt4 pruned top-k over an
:class:`~repro.ivfpq.ivfflat.IVFFlatIndex` — no LUTs, no CAE (there are
no codes to re-encode), raw L2 on the DPU.

The per-point costs differ sharply from IVFPQ: a raw 128-d float vector
is 512 B of MRAM traffic (vs 16-32 B of codes), so the flat engine is
even more memory-bound — exactly why the paper's billion-scale focus is
compression-based methods.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.core.engine import (
    BatchResult,
    _degraded_result,
    _retry_work,
    _unit_trace_ids,
)
from repro.sanitize.hook import debug_sanitize_schedule
from repro.faults import FaultPlan, FaultState, restrict_placement
from repro.core.kernel import (
    INSTR_PER_HEAP_COMPARISON,
    INSTR_PER_HEAP_INSERTION,
    INSTR_PER_VECTOR_OVERHEAD,
)
from repro.core.memory_plan import HEAP_ENTRY_BYTES
from repro.core.placement import Placement, place_clusters, random_placement
from repro.core.scheduling import schedule_batch
from repro.core.topk import (
    HeapStats,
    estimate_scan_stats,
    scan_topk_fast,
    scan_topk_fast_batch,
)
from repro.errors import ConfigError, NotTrainedError
from repro.hardware.counters import StageCycles
from repro.hardware.host import HostModel
from repro.hardware.mram import MAX_DMA_BYTES, round_up_dma
from repro.hardware.rank import PimSystem
from repro.ivfpq.adc import topk_from_distances
from repro.ivfpq.ivfflat import IVFFlatIndex
from repro.ivfpq.kmeans import squared_distances
from repro.metrics.balance import max_mean_ratio
from repro.metrics.breakdown import stage_seconds_from_schedule
from repro.telemetry.pipeline import observe_batch
from repro.tracing.context import TraceContext
from repro.sim import (
    HOST_CPU,
    STAGE_AGGREGATE,
    STAGE_CLUSTER_FILTER,
    STAGE_SCHEDULE,
    STAGE_TRANSFER_IN,
    STAGE_TRANSFER_OUT,
    BatchWork,
    resolve_sim_engine,
)

logger = logging.getLogger(__name__)

# One fused multiply-add per dimension, two instructions on the
# FPU-less DPU (fixed-point mul + add).
INSTR_PER_DIM = 2.0


@dataclass
class IVFFlatPimEngine:
    """UpANNS's Opt1/Opt2/Opt4 applied to IVFFlat."""

    config: SystemConfig
    index: IVFFlatIndex = field(init=False)
    pim: PimSystem = field(init=False)
    host: HostModel = field(default_factory=HostModel)
    placement: Placement | None = None
    _built: bool = False
    fault_state: FaultState | None = None
    #: Execution core (``"analytic"``/``"event"``/None -> env default).
    sim_engine: str | None = None

    def __post_init__(self) -> None:
        ic = self.config.index
        self.index = IVFFlatIndex(ic.dim, ic.n_clusters)

    def inject(self, plan: FaultPlan) -> FaultState:
        """Arm a fault plan (same granularity mapping as the PQ engine)."""
        for event in plan.events:
            if event.kind == "host":
                raise ConfigError(
                    f"fault event {event} targets a host, but this engine "
                    "injects at DPU granularity; host faults belong on the "
                    "coordinator (MultiHostEngine.inject)"
                )
        spec = self.config.pim
        dimm = spec.chips_per_dimm * spec.dpus_per_chip
        self.fault_state = plan.state(
            n_units=spec.n_dpus,
            rank_size=max(1, dimm // 2),
            dimm_size=dimm,
        )
        return self.fault_state

    def clear_faults(self) -> None:
        self.fault_state = None

    def build(
        self,
        vectors: np.ndarray,
        *,
        frequencies: np.ndarray | None = None,
        history_queries: np.ndarray | None = None,
        prebuilt_index: IVFFlatIndex | None = None,
        rng: np.random.Generator | None = None,
    ) -> "IVFFlatPimEngine":
        ic, uc = self.config.index, self.config.upanns
        rng = rng if rng is not None else np.random.default_rng(0)
        if prebuilt_index is not None:
            if not prebuilt_index.is_trained or prebuilt_index.ntotal == 0:
                raise NotTrainedError("prebuilt_index must be trained and populated")
            self.index = prebuilt_index
        else:
            vectors = np.ascontiguousarray(np.atleast_2d(vectors), dtype=np.float32)
            self.index.train(vectors, n_iter=ic.train_iters, rng=rng)
            self.index.add(vectors)

        sizes = self.index.cluster_sizes()
        if frequencies is None and history_queries is not None:
            probes = self.index.ivf.search_clusters(
                np.atleast_2d(history_queries), self.config.query.nprobe
            )
            frequencies = (
                np.bincount(probes.ravel(), minlength=ic.n_clusters) + 1.0
            )
        if frequencies is None:
            frequencies = np.full(ic.n_clusters, 1.0)
        frequencies = np.asarray(frequencies, dtype=np.float64)
        frequencies = frequencies / frequencies.sum()

        # Raw vectors are dim*4 B each — MRAM capacity binds much
        # earlier than with PQ codes.
        per_vector = ic.dim * 4 + 8
        max_vec = int(self.config.pim.dpu.mram_bytes // per_vector)
        if uc.enable_placement:
            self.placement = place_clusters(
                sizes,
                frequencies,
                self.config.pim.n_dpus,
                max_dpu_vectors=max_vec,
                centroids=self.index.ivf.centroids,
                replication_headroom=uc.replication_headroom,
            )
        else:
            self.placement = random_placement(
                sizes, self.config.pim.n_dpus, max_dpu_vectors=max_vec, rng=rng
            )
        self.pim = PimSystem(self.config.pim, n_tasklets=uc.n_tasklets)
        for c, cl in enumerate(self.index.lists):
            if cl.size == 0:
                continue
            blob = np.empty(cl.nbytes, dtype=np.uint8)
            for d in self.placement.replicas[c]:
                self.pim.dpu(d).mram_store(f"cluster_{c}", blob)
        self._built = True
        logger.info(
            "built IVFFlat-PIM: %d clusters on %d DPUs (%.0f MB raw vectors)",
            ic.n_clusters,
            self.config.pim.n_dpus,
            self.index.memory_bytes() / 1e6,
        )
        return self

    def _read_chunk_bytes(self) -> int:
        """Per-DMA chunk: as many raw vectors as fit in 2 KB."""
        vec_bytes = self.config.index.dim * 4
        per_read = max(1, min(self.config.upanns.mram_read_vectors, MAX_DMA_BYTES // vec_bytes))
        return round_up_dma(min(per_read * vec_bytes, MAX_DMA_BYTES))

    def _charge_scan(self, dpu, stage: StageCycles, cluster, chunk: int) -> None:
        """Charge one cluster's raw-vector scan (DMA + distance FMAs)."""
        ic = self.config.index
        scale = self.config.timing_scale
        scan_bytes = int(cluster.vectors.nbytes * scale)
        dma = dpu.charge_mram_read(scan_bytes, chunk)
        instr = scale * cluster.size * (
            ic.dim * INSTR_PER_DIM + INSTR_PER_VECTOR_OVERHEAD
        )
        dpu.charge_instructions(instr)
        compute = dpu.pipeline.compute_cycles(instr, dpu.n_tasklets)
        stage.distance_calc += dpu.combine_cycles(compute, dma)
        stage.distance_calc += dpu.charge_barrier()

    def _charge_topk(
        self,
        dpu,
        stage: StageCycles,
        total_candidates: int,
        stats: HeapStats,
        result_len: int,
        k: int,
        chunk: int,
    ) -> None:
        """Charge one group's pruned top-k scan + result write-back."""
        scale = self.config.timing_scale
        comps, ins = estimate_scan_stats(
            total_candidates * scale, k, dpu.n_tasklets
        )
        topk_instr = (
            comps * INSTR_PER_HEAP_COMPARISON
            + ins * INSTR_PER_HEAP_INSERTION
            + stats.merge_comparisons * INSTR_PER_HEAP_COMPARISON
        )
        dpu.charge_instructions(topk_instr)
        stage.topk_selection += dpu.pipeline.compute_cycles(
            topk_instr, dpu.n_tasklets
        )
        stage.topk_selection += dpu.charge_mram_write(
            max(8, result_len * HEAP_ENTRY_BYTES), chunk
        )

    def search_batch(
        self,
        queries: np.ndarray,
        *,
        k: int | None = None,
        trace: TraceContext | None = None,
    ) -> BatchResult:
        """Filter -> schedule -> per-DPU raw-L2 scan -> pruned top-k."""
        if not self._built or self.placement is None:
            raise NotTrainedError("build() must be called before search_batch()")
        qc, ic, uc = self.config.query, self.config.index, self.config.upanns
        k = k if k is not None else qc.k
        queries = np.ascontiguousarray(np.atleast_2d(queries), dtype=np.float32)
        nq = queries.shape[0]
        sizes = self.index.cluster_sizes()
        ctx = trace if trace is not None else TraceContext.for_batch(nq)
        if len(ctx) != nq:
            raise ConfigError(
                f"trace context carries {len(ctx)} ids for a batch of {nq}"
            )

        work = BatchWork(
            dpu_frequency_hz=self.config.pim.dpu.frequency_hz, batch=ctx.batch
        )
        probes = self.index.ivf.search_clusters(queries, qc.nprobe)
        host_prep = work.work(
            HOST_CPU,
            STAGE_CLUSTER_FILTER,
            self.host.cluster_filter_seconds(nq, ic.n_clusters, ic.dim),
            trace_ids=ctx.all_ids(),
        )
        # Fault plane (see UpANNSEngine.search_batch): faults apply
        # before scheduling so routing already avoids dead DPUs.
        state = self.fault_state
        faults = state.begin_batch() if state is not None else None
        exec_placement = self.placement
        rerouted_clusters: frozenset[int] = frozenset()
        if state is not None:
            exec_placement, rerouted_clusters, _ = restrict_placement(
                self.placement, state.dead
            )
        assignment = schedule_batch(
            probes,
            sizes,
            exec_placement,
            on_missing="drop" if state is not None else "raise",
        )
        host_prep = work.work(
            HOST_CPU,
            STAGE_SCHEDULE,
            self.host.scheduling_seconds_for_pairs(assignment.total_pairs()),
            after=(host_prep,),
            trace_ids=ctx.all_ids(),
        )
        last_bus = self.pim.work_broadcast(
            work,
            nq * ic.dim * 4,
            stage=STAGE_TRANSFER_IN,
            after=(host_prep,),
            trace_ids=ctx.all_ids(),
        )
        if faults is not None and (faults.transient or faults.escalated):
            last_bus = _retry_work(
                work, faults, state,
                [len(p) * 8 for p in assignment.per_dpu],
                self.config.pim.host_transfer_bytes_per_s,
                after=last_bus,
                trace_ids_by_unit=_unit_trace_ids(assignment, ctx),
            )

        chunk = self._read_chunk_bytes()
        partials: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {
            q: [] for q in range(nq)
        }
        heap_total = HeapStats()
        busy = np.zeros(self.pim.n_dpus)
        stage_by_dpu = [StageCycles() for _ in range(self.pim.n_dpus)]
        results_returned = [0] * self.pim.n_dpus
        self.pim.reset_counters()
        for d, pairs in enumerate(assignment.per_dpu):
            if not pairs:
                continue
            dpu = self.pim.dpu(d)
            by_query: dict[int, list[int]] = {}
            for qi, c in pairs:
                if self.index.lists[c].size:
                    by_query.setdefault(qi, []).append(c)
            if not by_query:
                continue
            stage = stage_by_dpu[d]
            if uc.kernel_mode == "grouped":
                # Fused top-k: the distance scans stay per (query,
                # cluster) — concatenating clusters into one GEMM is NOT
                # bit-safe (BLAS blocking varies with the operand shape)
                # — but every group's selection runs as one batched
                # call, and charges replay afterwards in the per-pair
                # loop's exact per-stage order.
                groups = list(by_query.items())
                values_list: list[np.ndarray] = []
                ids_list: list[np.ndarray] = []
                for qi, clusters in groups:
                    parts = [
                        squared_distances(
                            queries[qi : qi + 1], self.index.lists[c].vectors
                        )[0].astype(np.float32)
                        for c in clusters
                    ]
                    values_list.append(np.concatenate(parts))
                    ids_list.append(
                        np.concatenate(
                            [self.index.lists[c].ids for c in clusters]
                        )
                    )
                topk = scan_topk_fast_batch(
                    values_list, ids_list, k, dpu.n_tasklets,
                    prune=uc.enable_topk_pruning,
                )
                for (qi, clusters), (out_v, out_ids, stats), vals in zip(
                    groups, topk, values_list
                ):
                    for c in clusters:
                        self._charge_scan(dpu, stage, self.index.lists[c], chunk)
                    heap_total.merge(stats)
                    self._charge_topk(
                        dpu, stage, vals.shape[0], stats, out_v.shape[0], k, chunk
                    )
                    partials[qi].append((out_ids, out_v))
                    results_returned[d] += out_v.shape[0]
            else:
                for qi, clusters in by_query.items():
                    all_ids, all_d = [], []
                    for c in clusters:
                        cl = self.index.lists[c]
                        d2 = squared_distances(queries[qi : qi + 1], cl.vectors)[0]
                        all_ids.append(cl.ids)
                        all_d.append(d2.astype(np.float32))
                        self._charge_scan(dpu, stage, cl, chunk)
                    ids = np.concatenate(all_ids)
                    dists = np.concatenate(all_d)
                    out_v, out_ids, stats = scan_topk_fast(
                        dists, ids, k, dpu.n_tasklets, prune=uc.enable_topk_pruning
                    )
                    heap_total.merge(stats)
                    self._charge_topk(
                        dpu, stage, ids.shape[0], stats, out_v.shape[0], k, chunk
                    )
                    partials[qi].append((out_ids, out_v))
                    results_returned[d] += out_v.shape[0]
            busy[d] = stage_by_dpu[d].total

        freq = self.config.pim.dpu.frequency_hz
        dpu_tail: list[int] = []
        for d, stage in enumerate(stage_by_dpu):
            if stage.total > 0:
                dpu_tail.append(
                    work.work_dpu_stages(
                        d,
                        stage,
                        after=(last_bus,),
                        trace_ids=ctx.ids_for(
                            qi for qi, _c in assignment.per_dpu[d]
                        ),
                    )
                )
        # Size the result gather by what each DPU actually produced — a
        # group over small clusters can return fewer than k candidates.
        result_sizes = [n * 8 for n in results_returned]
        if uc.enable_placement and any(result_sizes):
            result_sizes = [max(result_sizes)] * len(result_sizes)
        gather = self.pim.work_gather(
            work,
            result_sizes,
            stage=STAGE_TRANSFER_OUT,
            after=tuple(dpu_tail) if dpu_tail else (last_bus,),
            trace_ids=ctx.all_ids(),
        )

        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        out_i = np.full((nq, k), -1, dtype=np.int64)
        n_partials = 0
        for qi, parts in partials.items():
            if not parts:
                continue
            n_partials += len(parts)
            ids = np.concatenate([p[0] for p in parts])
            dists = np.concatenate([p[1] for p in parts])
            top_i, top_d = topk_from_distances(ids, dists, k)
            out_i[qi, : top_i.shape[0]] = top_i
            out_d[qi, : top_d.shape[0]] = top_d
        work.work(
            HOST_CPU,
            STAGE_AGGREGATE,
            self.host.aggregate_seconds(nq, k, max(1, n_partials // max(nq, 1))),
            after=(gather,),
            trace_ids=ctx.all_ids(),
        )

        schedule = work.execute(resolve_sim_engine(self.sim_engine))
        timing = schedule.derive_batch_timing()
        stage_seconds = stage_seconds_from_schedule(schedule, timing)
        observe_batch(
            "ivfflat_pim",
            nq,
            timing,
            busy_cycles=float(busy.sum()),
            active_dpus=int((busy > 0).sum()),
            n_tasklets=self.pim.dpus[0].n_tasklets,
        )
        degraded = None
        if state is not None and faults is not None:
            degraded = _degraded_result(
                "ivfflat_pim", nq, probes, assignment, faults, state,
                rerouted_clusters, timing.retry_s,
            )
        debug_sanitize_schedule(
            schedule,
            timing=timing,
            stage_seconds=stage_seconds,
            degraded=degraded,
            label="ivfflat_pim batch",
        )
        return BatchResult(
            ids=out_i,
            distances=out_d,
            timing=timing,
            stage_seconds=stage_seconds,
            assignment=assignment,
            heap_stats=heap_total,
            cycle_load_ratio=max_mean_ratio(busy, active_only=True),
            dpu_busy_seconds=busy / freq,
            schedule=schedule,
            degraded=degraded,
            work=work,
        )


def make_flat_engine(
    dim: int,
    *,
    n_clusters: int,
    nprobe: int,
    k: int = 10,
    pim_spec=None,
    upanns: UpANNSConfig | None = None,
    timing_scale: float = 1.0,
    train_iters: int = 8,
) -> IVFFlatPimEngine:
    """Convenience constructor mirroring :func:`make_engine`."""
    from repro.hardware.specs import UPMEM_7_DIMMS

    if dim % 4:
        raise ConfigError("dim must be a multiple of 4 for DMA alignment")
    cfg = SystemConfig(
        index=IndexConfig(dim=dim, n_clusters=n_clusters, m=4, train_iters=train_iters),
        query=QueryConfig(nprobe=nprobe, k=k),
        upanns=upanns if upanns is not None else UpANNSConfig(enable_cae=False),
        pim=pim_spec if pim_spec is not None else UPMEM_7_DIMMS,
        timing_scale=timing_scale,
    )
    return IVFFlatPimEngine(cfg)
