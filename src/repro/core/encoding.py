"""Opt3, encoding half: direct-address re-encoding (section 4.3, Figure 8).

After mining, every vector in a cluster is re-encoded as a sequence of
*direct addresses* into a flat runtime table laid out as::

    [ LUT entries, row-major: pos * 256 + code | cached partial sums ]
      addresses 0 .. 256*M-1                     addresses 256*M ..

* an original code ``c`` at position ``p`` becomes address ``256*p + c``
  (pre-multiplied offline — the paper does this to avoid the DPU's slow
  multiply);
* a mined combination becomes a single address ``256*M + slot`` pointing
  at its cached partial sum.

The re-encoded vector is therefore *shorter* wherever combinations hit:
the paper's example compresses 16 codes to 12 tokens (25 % reduction),
and Figure 14 correlates this length-reduction rate with speedup.

The on-device format additionally stores the shortened length in-band in
the second digit (kept <= 255 to be distinguishable from direct
addresses, which are >= 256 from position 1 onward); helpers
:func:`pack_device_rows` / :func:`unpack_device_rows` implement that
wire format faithfully, while the simulator's hot path uses the
equivalent padded (addresses, lengths) arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.core.cooccurrence import CooccurrenceModel


@dataclass
class EncodedCluster:
    """CAE output for one cluster."""

    addresses: np.ndarray  # (s, m) int32, -1 padded past each row's length
    lengths: np.ndarray  # (s,) int16 live prefix lengths
    m: int  # original code length
    n_slots: int  # combination slots used by this cluster

    @property
    def size(self) -> int:
        return int(self.addresses.shape[0])

    @property
    def table_size(self) -> int:
        """Entries in the runtime flat table: LUT block + combo slots."""
        return 256 * self.m + self.n_slots

    def length_reduction_rate(self) -> float:
        """1 - mean(encoded length) / m — the Figure 14 x-axis."""
        if self.size == 0:
            return 0.0
        return float(1.0 - self.lengths.mean() / self.m)

    @property
    def nbytes(self) -> int:
        """MRAM footprint: 2 bytes per token plus a 2-byte length."""
        return int(2 * self.lengths.sum() + 2 * self.size)


def encode_cluster(codes: np.ndarray, model: CooccurrenceModel) -> EncodedCluster:
    """Greedy left-to-right re-encoding of a cluster's PQ codes.

    At each position, if the upcoming run is a mined combination we emit
    its combo address and skip the combination's length, else we emit
    the original code's direct address and advance 1.  Vectorized across
    rows: a per-row cursor advances through at most M iterations.
    Supports any (uniform) mined combination length.
    """
    codes = np.atleast_2d(codes)
    n, m = codes.shape
    if n == 0:
        return EncodedCluster(
            addresses=np.empty((0, m), dtype=np.int32),
            lengths=np.empty(0, dtype=np.int16),
            m=m,
            n_slots=model.n_slots,
        )
    if model.m != m:
        raise ConfigError(f"model covers m={model.m}, codes have m={m}")

    lut_block = 256 * m
    combo_len = model.combo_length

    # Per anchor position: sorted packed runs and their slots.
    n_anchors = max(m - combo_len + 1, 0) if combo_len else 0
    match_slot = np.full((n, max(n_anchors, 1)), -1, dtype=np.int32)
    if combo_len:
        from repro.core.cooccurrence import _pack_run

        by_pos: dict[int, list[tuple[int, int]]] = {}
        for combo in model.combos:
            packed = 0
            for code in combo.codes:
                packed = (packed << 8) | code
            by_pos.setdefault(combo.start_pos, []).append((packed, combo.slot))
        for p, entries in by_pos.items():
            entries.sort()
            keys = np.array([e[0] for e in entries], dtype=np.int64)
            slots = np.array([e[1] for e in entries], dtype=np.int32)
            packed = _pack_run(codes, p, combo_len)
            pos_idx = np.searchsorted(keys, packed)
            pos_idx = np.clip(pos_idx, 0, keys.size - 1)
            hit = keys[pos_idx] == packed
            match_slot[hit, p] = slots[pos_idx[hit]]

    addresses = np.full((n, m), -1, dtype=np.int32)
    lengths = np.zeros(n, dtype=np.int64)
    cursor = np.zeros(n, dtype=np.int64)  # next input position per row
    rows = np.arange(n)
    for p in range(m):
        at_p = cursor == p
        if not at_p.any():
            continue
        if combo_len and p <= m - combo_len:
            slot_here = match_slot[:, p]
            combo_rows = at_p & (slot_here >= 0)
        else:
            combo_rows = np.zeros(n, dtype=bool)
        plain_rows = at_p & ~combo_rows

        if combo_rows.any():
            r = rows[combo_rows]
            addresses[r, lengths[r]] = lut_block + slot_here[combo_rows]
            lengths[r] += 1
            cursor[r] += combo_len
        if plain_rows.any():
            r = rows[plain_rows]
            addresses[r, lengths[r]] = 256 * p + codes[plain_rows, p].astype(np.int32)
            lengths[r] += 1
            cursor[r] += 1

    return EncodedCluster(
        addresses=addresses,
        lengths=lengths.astype(np.int16),
        m=m,
        n_slots=model.n_slots,
    )


def build_flat_table(lut: np.ndarray, model: CooccurrenceModel) -> np.ndarray:
    """Runtime flat table = flattened LUT ++ cached partial sums.

    Built once per (query, cluster) after LUT construction; the direct
    addresses of :func:`encode_cluster` index straight into it.
    """
    m, ksub = lut.shape
    if ksub != 256:
        raise ConfigError("direct addressing assumes 256-entry codebooks")
    sums = model.partial_sums(lut)
    return np.concatenate([lut.reshape(-1).astype(np.float32), sums])


def decode_distances(encoded: EncodedCluster, flat_table: np.ndarray) -> np.ndarray:
    """ADC distances from the re-encoded form (must equal plain ADC)."""
    from repro.ivfpq.adc import adc_distances_direct

    if flat_table.shape[0] != encoded.table_size:
        raise ConfigError(
            f"flat table has {flat_table.shape[0]} entries, "
            f"expected {encoded.table_size}"
        )
    return adc_distances_direct(
        encoded.addresses, flat_table, encoded.lengths.astype(np.int64)
    )


# --- In-band wire format (paper Figure 8, bottom) --------------------------


def pack_device_rows(encoded: EncodedCluster) -> list[np.ndarray]:
    """Pack rows into the paper's on-device layout.

    Rows that contain at least one combination store their shortened
    length in the *second* slot (a value < 256, distinguishable because
    every direct address from position 1 onward is >= 256); full-length
    rows are stored verbatim.  Position-0 addresses are < 256 too, so the
    first token is always unambiguous.
    """
    out: list[np.ndarray] = []
    for row, length in zip(encoded.addresses, encoded.lengths):
        live = row[: int(length)].astype(np.int32)
        if int(length) == encoded.m:
            out.append(live)
        else:
            packed = np.empty(int(length) + 1, dtype=np.int32)
            packed[0] = live[0]
            packed[1] = int(length)
            packed[2:] = live[1:]
            out.append(packed)
    return out


def unpack_device_rows(rows: list[np.ndarray], m: int) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`pack_device_rows` -> padded (addresses, lengths)."""
    n = len(rows)
    addresses = np.full((n, m), -1, dtype=np.int32)
    lengths = np.zeros(n, dtype=np.int16)
    for i, packed in enumerate(rows):
        if packed.shape[0] >= 2 and 0 <= int(packed[1]) < 256:
            length = int(packed[1])
            addresses[i, 0] = packed[0]
            addresses[i, 1:length] = packed[2:]
            lengths[i] = length
        else:
            length = packed.shape[0]
            addresses[i, :length] = packed
            lengths[i] = length
    return addresses, lengths
