"""UpANNS core: the paper's four optimizations plus the engine facade."""

from repro.core.cooccurrence import (
    Combination,
    CooccurrenceModel,
    build_ecg,
    combination_coverage,
    mine_combinations,
)
from repro.core.encoding import (
    EncodedCluster,
    build_flat_table,
    decode_distances,
    encode_cluster,
    pack_device_rows,
    unpack_device_rows,
)
from repro.core.flat_engine import IVFFlatPimEngine, make_flat_engine
from repro.core.engine import (
    PIM_NAIVE_CONFIG,
    BatchResult,
    BatchTiming,
    UpANNSEngine,
    make_engine,
)
from repro.core.kernel import (
    ClusterPayload,
    KernelConfig,
    PairCharges,
    plan_pair_charges,
    run_batch_on_dpu,
    run_query_on_dpu,
)
from repro.core.lut_cache import LutCache, query_digest
from repro.core.memory_plan import WramPlan, apply_plan, plan_wram, release_plan
from repro.core.multihost import (
    MultiHostBatchResult,
    MultiHostEngine,
    NetworkModel,
)
from repro.core.placement import Placement, place_clusters, random_placement
from repro.core.scheduling import AdaptivePolicy, Assignment, schedule_batch
from repro.core.service import OnlineService, ServiceReport
from repro.core.topk import (
    BoundedMaxHeap,
    HeapStats,
    merge_heaps_naive,
    merge_heaps_pruned,
    scan_topk_fast,
    scan_topk_fast_batch,
    scan_topk_threaded,
)

__all__ = [
    "AdaptivePolicy",
    "MultiHostBatchResult",
    "MultiHostEngine",
    "IVFFlatPimEngine",
    "NetworkModel",
    "OnlineService",
    "make_flat_engine",
    "ServiceReport",
    "Assignment",
    "BatchResult",
    "BatchTiming",
    "BoundedMaxHeap",
    "ClusterPayload",
    "Combination",
    "CooccurrenceModel",
    "EncodedCluster",
    "HeapStats",
    "KernelConfig",
    "LutCache",
    "PIM_NAIVE_CONFIG",
    "PairCharges",
    "Placement",
    "UpANNSEngine",
    "WramPlan",
    "apply_plan",
    "build_ecg",
    "build_flat_table",
    "combination_coverage",
    "decode_distances",
    "encode_cluster",
    "make_engine",
    "merge_heaps_naive",
    "merge_heaps_pruned",
    "mine_combinations",
    "pack_device_rows",
    "place_clusters",
    "plan_pair_charges",
    "plan_wram",
    "query_digest",
    "random_placement",
    "release_plan",
    "run_batch_on_dpu",
    "run_query_on_dpu",
    "scan_topk_fast",
    "scan_topk_fast_batch",
    "scan_topk_threaded",
    "schedule_batch",
    "unpack_device_rows",
]
