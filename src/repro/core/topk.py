"""Opt4: top-k selection with thread-local heaps and pruning (section 4.4).

Each tasklet maintains a bounded *max*-heap of its local best k while
scanning distances.  At Barrier 3 the local heaps are merged into the
DPU-global top-k: each local heap is converted to a *min*-heap (i.e.
drained in ascending order) and its elements inserted under a semaphore
into the global max-heap — but as soon as a local heap's smallest
remaining value is no better than the global k-th best, the whole
remainder of that heap is pruned (Figure 9, grey nodes).

The paper reports this skips 68 % of redundant comparisons and speeds
the stage 3.1x.  All heaps count comparisons so benches can report the
same statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass
class HeapStats:
    """Work accounting for the top-k stage.

    ``merge_comparisons`` isolates the cross-tasklet merge's share of
    ``comparisons`` — the part Opt4's pruning reduces.
    """

    comparisons: int = 0
    insertions: int = 0
    pruned: int = 0
    merge_comparisons: int = 0

    def merge(self, other: "HeapStats") -> None:
        self.comparisons += other.comparisons
        self.insertions += other.insertions
        self.pruned += other.pruned
        self.merge_comparisons += other.merge_comparisons


class BoundedMaxHeap:
    """Array-based max-heap holding the k smallest values seen so far.

    The root is the *largest* retained value, so a new candidate only
    enters (evicting the root) when it beats the current k-th best —
    exactly the thread-local PQ of Figure 6.
    """

    __slots__ = ("k", "size", "values", "ids", "stats")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ConfigError("heap capacity must be >= 1")
        self.k = k
        self.size = 0
        self.values = np.empty(k, dtype=np.float32)
        self.ids = np.empty(k, dtype=np.int64)
        self.stats = HeapStats()

    @property
    def root(self) -> float:
        """Current k-th best (worst retained) value; inf when not full."""
        if self.size < self.k:
            return float("inf")
        return float(self.values[0])

    def push(self, value: float, ident: int) -> bool:
        """Offer a candidate; returns True if it was retained."""
        if self.size < self.k:
            i = self.size
            self.values[i] = value
            self.ids[i] = ident
            self.size += 1
            self._sift_up(i)
            self.stats.insertions += 1
            return True
        self.stats.comparisons += 1
        if value >= self.values[0]:
            return False
        self.values[0] = value
        self.ids[0] = ident
        self._sift_down(0)
        self.stats.insertions += 1
        return True

    def push_many(self, values: np.ndarray, ids: np.ndarray) -> None:
        """Bulk push preserving scan order (same result as a loop)."""
        for v, i in zip(values.tolist(), ids.tolist()):
            self.push(v, i)

    def _sift_up(self, i: int) -> None:
        values, ids = self.values, self.ids
        while i > 0:
            parent = (i - 1) >> 1
            self.stats.comparisons += 1
            if values[i] <= values[parent]:
                break
            values[i], values[parent] = values[parent], values[i]
            ids[i], ids[parent] = ids[parent], ids[i]
            i = parent

    def _sift_down(self, i: int) -> None:
        values, ids = self.values, self.ids
        n = self.size
        while True:
            left = 2 * i + 1
            right = left + 1
            largest = i
            if left < n:
                self.stats.comparisons += 1
                if values[left] > values[largest]:
                    largest = left
            if right < n:
                self.stats.comparisons += 1
                if values[right] > values[largest]:
                    largest = right
            if largest == i:
                return
            values[i], values[largest] = values[largest], values[i]
            ids[i], ids[largest] = ids[largest], ids[i]
            i = largest

    def sorted_ascending(self) -> tuple[np.ndarray, np.ndarray]:
        """Drain as a min-heap: (values, ids) in ascending value order.

        This is the "convert the thread-local max heaps into min heaps"
        step of section 4.4 — ascending order is what enables pruning.
        """
        order = np.argsort(self.values[: self.size], kind="stable")
        return self.values[order].copy(), self.ids[order].copy()


def merge_heaps_pruned(
    local_heaps: list[BoundedMaxHeap], k: int
) -> tuple[np.ndarray, np.ndarray, HeapStats]:
    """Pruned merge of thread-local heaps into the DPU-global top-k.

    Local heaps are drained ascending (min-heap order); the first value
    of a heap that fails to beat the global root proves every later
    value fails too, so the rest is pruned (counted in ``stats.pruned``).
    Returns (values, ids) ascending plus merged work stats.
    """
    total = BoundedMaxHeap(k)
    stats = HeapStats()
    for heap in local_heaps:
        stats.merge(heap.stats)
        values, ids = heap.sorted_ascending()
        for pos, (v, i) in enumerate(zip(values.tolist(), ids.tolist())):
            stats.comparisons += 1
            if total.size >= k and v >= total.root:
                stats.pruned += values.shape[0] - pos
                break
            total.push(v, i)
    stats.merge(total.stats)
    out_v, out_i = total.sorted_ascending()
    return out_v, out_i, stats


def merge_heaps_naive(
    local_heaps: list[BoundedMaxHeap], k: int
) -> tuple[np.ndarray, np.ndarray, HeapStats]:
    """Baseline merge: every local element is offered to the global heap.

    This is what PIM-naive does, and what Figure 15 compares against.
    """
    total = BoundedMaxHeap(k)
    stats = HeapStats()
    for heap in local_heaps:
        stats.merge(heap.stats)
        values, ids = heap.sorted_ascending()
        for v, i in zip(values.tolist(), ids.tolist()):
            total.push(v, i)
    stats.merge(total.stats)
    out_v, out_i = total.sorted_ascending()
    return out_v, out_i, stats


def scan_topk_fast(
    distances: np.ndarray,
    ids: np.ndarray,
    k: int,
    n_tasklets: int,
    *,
    prune: bool = True,
) -> tuple[np.ndarray, np.ndarray, HeapStats]:
    """Vectorized equivalent of :func:`scan_topk_threaded`.

    The thread strides are packed into one padded (tasklets, stride)
    matrix so the per-stride local top-k is a single row-wise stable
    argsort — no Python-level per-tasklet loop on the kernel hot path.
    Work statistics are analytic (a bounded max-heap scanning n
    random-order elements performs ~n root comparisons plus
    ~k(1 + ln(n/k)) successful insertions costing log2(k) sift
    comparisons each), computed with the exact same float64 expression
    per stride as the scalar form so the charged cycles they feed are
    reproduced bit-for-bit.

    Ties are broken stably by scan position: the result is always
    identical to ``np.argsort(distances, kind="stable")[:k]``, for any
    tasklet count — a uniquely defined output, so the vectorized and
    reference paths cannot drift apart on duplicate distances.
    """
    if n_tasklets < 1:
        raise ConfigError("need at least one tasklet")
    distances = np.asarray(distances, dtype=np.float32)
    ids = np.asarray(ids, dtype=np.int64)
    stats = HeapStats()
    n = distances.shape[0]
    if n == 0:
        return distances[:0], ids[:0], stats
    t = n_tasklets
    stride = -(-n // t)  # ceil: max elements any tasklet scans
    # Column j of the (stride, t) layout is tasklet j's stride; pad with
    # +inf so short strides sort their live prefix first (stable sort
    # keeps any real +inf ahead of padding — padding sits at larger
    # scan positions).
    pad = stride * t - n
    mat_v = np.concatenate(
        [distances, np.full(pad, np.inf, dtype=np.float32)]
    ).reshape(stride, t).T  # (t, stride): row i = distances[i::t]
    mat_p = np.arange(stride * t, dtype=np.int64).reshape(stride, t).T
    stride_len = np.full(t, n // t, dtype=np.int64)
    stride_len[: n % t] += 1
    k_local = np.minimum(k, stride_len)  # per-stride retained count

    kk = min(k, stride)
    order = np.argsort(mat_v, axis=1, kind="stable")[:, :kk]
    top_v = np.take_along_axis(mat_v, order, axis=1)
    top_p = np.take_along_axis(mat_p, order, axis=1)
    valid = np.arange(kk, dtype=np.int64)[None, :] < k_local[:, None]

    # Analytic local-scan work, per stride (same float64 chain as the
    # scalar formula; int truncation per stride, then summed).
    live = stride_len > 0
    n_f = stride_len.astype(np.float64)
    k_f = k_local.astype(np.float64)
    ratio = np.divide(n_f, k_f, out=np.ones_like(n_f), where=live)
    exp_ins = k_f * (1.0 + np.maximum(0.0, np.log(ratio, where=live, out=np.zeros_like(ratio))))
    comps = (
        n_f + exp_ins * np.maximum(1.0, np.log2(np.maximum(k_f, 2.0)))
    ).astype(np.int64)
    stats.comparisons += int(comps[live].sum())
    stats.insertions += int(k_local.sum())

    # Global merge: concatenate the ascending local lists in tasklet
    # order (the order the semaphore-guarded merge of section 4.4
    # consumes them), then select the k best by (value, scan position).
    flat_valid = valid.ravel()
    cat_v = top_v.ravel()[flat_valid]
    cat_p = top_p.ravel()[flat_valid]
    k_eff = min(k, cat_v.shape[0])
    if k_eff == 0:
        return cat_v[:0], ids[:0], stats
    sel = np.lexsort((cat_p, cat_v))[:k_eff]
    out_v = cat_v[sel].copy()
    out_i = ids[cat_p[sel]]
    threshold = out_v[-1]

    # Pruning statistic, recovered exactly from each ascending local
    # list: once a value fails against the final k-th best, everything
    # after it would have been pruned (Figure 9, grey nodes).
    merge_log_k = max(1.0, np.log2(max(k_eff, 2)))
    accepted = ((top_v < threshold) & valid).sum(axis=1)
    if prune:
        offered = np.minimum(accepted + 1, k_local)  # +1 failing probe
        stats.pruned += int((k_local - offered).sum())
    else:
        offered = k_local
    merge_work = int(
        (offered + (accepted * merge_log_k).astype(np.int64)).sum()
    )
    stats.comparisons += merge_work
    stats.merge_comparisons += merge_work
    stats.insertions += int(accepted.sum())
    return out_v, out_i, stats


def _sortable_u32(values: np.ndarray) -> np.ndarray:
    """Order-preserving float32 -> uint32 bijection (IEEE-754 trick).

    Lets a plain integer sort implement the exact (value, position)
    lexicographic order without a slow ``np.lexsort`` per group.
    """
    u = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
    neg = (u & np.uint32(0x80000000)) != 0
    return np.where(neg, ~u, u | np.uint32(0x80000000))


def scan_topk_fast_batch(
    values_list: list[np.ndarray],
    ids_list: list[np.ndarray],
    k: int,
    n_tasklets: int,
    *,
    prune: bool = True,
) -> list[tuple[np.ndarray, np.ndarray, HeapStats]]:
    """:func:`scan_topk_fast` over many independent candidate groups.

    The grouped kernel calls this once per batch with one group per
    (DPU, query) pair, replacing thousands of small NumPy dispatches
    with a handful of fused ones.  Guaranteed result- and
    stats-identical to calling :func:`scan_topk_fast` per group: the
    padded layout only adds +inf entries past every stride's live
    prefix, the work statistics are computed with the same float64
    expressions from the true lengths, and the merge selects by the
    same (value, scan position) key.
    """
    if len(values_list) == 0:
        return []
    n_arr = np.array([v.shape[0] for v in values_list], dtype=np.int64)
    if int(n_arr.sum()) == 0:
        flat_v = np.empty(0, dtype=np.float32)
        flat_i = np.empty(0, dtype=np.int64)
    else:
        flat_v = np.concatenate(
            [np.asarray(v, dtype=np.float32) for v in values_list]
        )
        flat_i = np.concatenate([np.asarray(i, dtype=np.int64) for i in ids_list])
    return scan_topk_fast_batch_flat(
        flat_v, flat_i, n_arr, k, n_tasklets, prune=prune
    )


#: Padding key for the bucketed group selection: strictly greater than
#: any real packed (value, position) key — the position half of a real
#: key is a within-group offset, far below 2**32 - 1, so even a NaN
#: distance (value half 0xFFFFFFFF) packs strictly below this.
_PAD_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)


def _select_group_topk_keys(
    keys: np.ndarray,
    starts: np.ndarray,
    n_arr: np.ndarray,
    k_eff: np.ndarray,
    offs: np.ndarray,
    out: np.ndarray,
    k: int,
) -> None:
    """Per-group sorted k-smallest keys, written into ``out`` segments.

    Equivalent to ``sorted(partition(keys[s:e], ke))[:ke]`` per group,
    but batched: groups are bucketed by padded length class (next power
    of two) so each class runs one 2-D ``np.partition`` + ``np.sort``
    over a padded matrix instead of one small NumPy dispatch per group.
    Padding slots hold :data:`_PAD_KEY`, which is strictly greater than
    every real key, so they never enter a row's selected prefix; the
    selected keys per group are therefore *identical* to the per-group
    form (keys are unique (value, position) packs — the k smallest of a
    multiset with unique members is a uniquely defined set).
    """
    n_groups = int(n_arr.shape[0])
    live = n_arr > 0
    if not live.any():
        return
    # Length class = smallest power of two >= n (exact integer search,
    # no float log rounding).
    pows = np.int64(1) << np.arange(40, dtype=np.int64)
    cls = np.searchsorted(pows, n_arr, side="left")
    cls[~live] = -1
    for c in np.unique(cls[live]).tolist():
        rows = np.flatnonzero(cls == c)
        lens = n_arr[rows]
        pad_len = int(pows[c])
        n_rows = rows.shape[0]
        total_in = int(lens.sum())
        # Scatter each row's live keys into a PAD-filled (rows, pad_len)
        # matrix: one vectorized pass over the class's elements.
        row_of = np.repeat(np.arange(n_rows, dtype=np.int64), lens)
        local_j = (
            np.arange(total_in, dtype=np.int64)
            - np.repeat(np.cumsum(lens) - lens, lens)
        )
        src = np.repeat(starts[rows], lens) + local_j
        padded = np.full(n_rows * pad_len, _PAD_KEY, dtype=np.uint64)
        padded[row_of * pad_len + local_j] = keys[src]
        padded = padded.reshape(n_rows, pad_len)
        width = min(k, pad_len)
        if width < pad_len:
            padded = np.partition(padded, width - 1, axis=1)[:, :width]
        sel = np.sort(padded, axis=1)
        # Extract each row's first k_eff entries into its out segment.
        ke_rows = k_eff[rows]
        total_out = int(ke_rows.sum())
        loc_out = (
            np.arange(total_out, dtype=np.int64)
            - np.repeat(np.cumsum(ke_rows) - ke_rows, ke_rows)
        )
        dst = np.repeat(offs[rows], ke_rows) + loc_out
        keep = np.arange(width, dtype=np.int64)[None, :] < ke_rows[:, None]
        out[dst] = sel[keep]


def scan_topk_fast_batch_flat(
    flat_v: np.ndarray,
    flat_i: np.ndarray,
    n_arr: np.ndarray,
    k: int,
    n_tasklets: int,
    *,
    prune: bool = True,
) -> list[tuple[np.ndarray, np.ndarray, HeapStats]]:
    """:func:`scan_topk_fast_batch` over pre-concatenated candidates.

    ``flat_v`` / ``flat_i`` hold every group's candidates back to back
    and ``n_arr`` gives the per-group lengths; callers that already own
    contiguous per-group slices (the grouped kernel) avoid a second
    concatenation pass.
    """
    if n_tasklets < 1:
        raise ConfigError("need at least one tasklet")
    t = n_tasklets
    n_arr = np.asarray(n_arr, dtype=np.int64)
    n_groups = int(n_arr.shape[0])
    if n_groups == 0:
        return []
    total = int(n_arr.sum())
    if total == 0:
        return [
            (np.empty(0, dtype=np.float32), np.empty(0, dtype=np.int64), HeapStats())
            for _ in range(n_groups)
        ]
    flat_v = np.ascontiguousarray(flat_v, dtype=np.float32)
    flat_i = np.asarray(flat_i, dtype=np.int64)
    starts = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(n_arr, out=starts[1:])
    gidx = np.repeat(np.arange(n_groups, dtype=np.int64), n_arr)
    j = np.arange(total, dtype=np.int64) - starts[gidx]

    # Per-group top-k by packed (value, position) key: one O(n)
    # partition + O(k log k) sort per group, no padding waste.  The
    # union of per-stride local top-k lists always contains the global
    # (value, position)-smallest k, so selecting directly over the raw
    # group is result-identical to local-select-then-merge.
    keys = (_sortable_u32(flat_v).astype(np.uint64) << np.uint64(32)) | (
        j.astype(np.uint64)
    )
    mask32 = np.uint64(0xFFFFFFFF)
    k_eff_arr = np.minimum(k, n_arr)
    offs = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(k_eff_arr, out=offs[1:])
    all_sel = np.empty(int(offs[-1]), dtype=np.uint64)
    offs_l = offs.tolist()
    _select_group_topk_keys(keys, starts, n_arr, k_eff_arr, offs, all_sel, k)
    pos = (all_sel & mask32).astype(np.int64) + np.repeat(starts[:-1], k_eff_arr)
    # Per-group selection threshold = last (largest) selected value;
    # empty groups keep +inf (they contribute no candidates anyway).
    th_v = np.where(
        k_eff_arr > 0,
        flat_v[pos[np.maximum(offs[1:] - 1, 0)]],
        np.float32(np.inf),
    ).astype(np.float32)

    # Analytic local-scan work — the same per-stride float64 chain as
    # scan_topk_fast, truncated per stride before summing.
    stride_len = (n_arr[:, None] // t) + (
        np.arange(t, dtype=np.int64)[None, :] < (n_arr[:, None] % t)
    )
    k_local = np.minimum(k, stride_len)
    live = stride_len > 0
    n_f = stride_len.astype(np.float64)
    k_f = k_local.astype(np.float64)
    ratio = np.divide(n_f, k_f, out=np.ones_like(n_f), where=live)
    logr = np.log(ratio, out=np.zeros_like(ratio), where=live)
    exp_ins = k_f * (1.0 + np.maximum(0.0, logr))
    comps = (
        n_f + exp_ins * np.maximum(1.0, np.log2(np.maximum(k_f, 2.0)))
    ).astype(np.int64)
    comps_g = np.where(live, comps, 0).sum(axis=1)
    ins_local_g = k_local.sum(axis=1)

    # Merge statistics.  A stride's accepted count — how many of its
    # ascending local list beat the final threshold — equals its raw
    # count of elements strictly below the threshold: at most
    # min(k, n) - 1 elements lie below it globally, so no stride can
    # hold more than its own local-top capacity of them.
    below = flat_v < th_v[gidx]
    accepted = np.bincount(
        (gidx * t + (j % t))[below], minlength=n_groups * t
    ).reshape(n_groups, t)
    k_eff_g = np.minimum(k, n_arr)
    merge_log_k = np.maximum(1.0, np.log2(np.maximum(k_eff_g, 2)))
    if prune:
        offered = np.minimum(accepted + 1, k_local)
        pruned_g = (k_local - offered).sum(axis=1)
    else:
        offered = k_local
        pruned_g = np.zeros(n_groups, dtype=np.int64)
    merge_g = (
        offered + (accepted * merge_log_k[:, None]).astype(np.int64)
    ).sum(axis=1)
    accepted_g = accepted.sum(axis=1)

    out_v_all = flat_v[pos]
    out_i_all = flat_i[pos]
    out: list[tuple[np.ndarray, np.ndarray, HeapStats]] = []
    for g in range(n_groups):
        o0, o1 = offs_l[g], offs_l[g + 1]
        stats = HeapStats(
            comparisons=int(comps_g[g] + merge_g[g]),
            insertions=int(ins_local_g[g] + accepted_g[g]),
            pruned=int(pruned_g[g]),
            merge_comparisons=int(merge_g[g]),
        )
        out.append((out_v_all[o0:o1], out_i_all[o0:o1], stats))
    return out


def estimate_scan_stats(n_points: float, k: int, n_tasklets: int) -> tuple[float, float]:
    """Analytic (comparisons, insertions) for a thread-striped scan.

    Used by the DPU charge model when the simulated list stands in for a
    ``workload_scale``-times longer one: a bounded heap's insertion count
    grows only logarithmically with the list length, so simulated counts
    cannot simply be multiplied by the scale factor.
    """
    if n_points <= 0:
        return 0.0, 0.0
    per_stride = max(1.0, n_points / n_tasklets)
    k_eff = min(k, per_stride)
    insertions_per_stride = k_eff * (1.0 + max(0.0, np.log(per_stride / k_eff)))
    insertions = n_tasklets * insertions_per_stride
    comparisons = n_points + insertions * max(1.0, np.log2(max(k_eff, 2)))
    return comparisons, insertions


def scan_topk_threaded(
    distances: np.ndarray,
    ids: np.ndarray,
    k: int,
    n_tasklets: int,
    *,
    prune: bool = True,
) -> tuple[np.ndarray, np.ndarray, HeapStats]:
    """Full Opt4 pipeline over one cluster's distances.

    Points are strided across ``n_tasklets`` thread-local heaps exactly
    as the DPU kernel distributes read chunks, then merged (pruned or
    naive).  Functionally equivalent to an exact top-k.
    """
    if n_tasklets < 1:
        raise ConfigError("need at least one tasklet")
    distances = np.asarray(distances, dtype=np.float32)
    ids = np.asarray(ids, dtype=np.int64)
    heaps = [BoundedMaxHeap(k) for _ in range(n_tasklets)]
    for t in range(n_tasklets):
        heaps[t].push_many(distances[t::n_tasklets], ids[t::n_tasklets])
    if prune:
        return merge_heaps_pruned(heaps, k)
    return merge_heaps_naive(heaps, k)
