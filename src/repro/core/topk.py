"""Opt4: top-k selection with thread-local heaps and pruning (section 4.4).

Each tasklet maintains a bounded *max*-heap of its local best k while
scanning distances.  At Barrier 3 the local heaps are merged into the
DPU-global top-k: each local heap is converted to a *min*-heap (i.e.
drained in ascending order) and its elements inserted under a semaphore
into the global max-heap — but as soon as a local heap's smallest
remaining value is no better than the global k-th best, the whole
remainder of that heap is pruned (Figure 9, grey nodes).

The paper reports this skips 68 % of redundant comparisons and speeds
the stage 3.1x.  All heaps count comparisons so benches can report the
same statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass
class HeapStats:
    """Work accounting for the top-k stage.

    ``merge_comparisons`` isolates the cross-tasklet merge's share of
    ``comparisons`` — the part Opt4's pruning reduces.
    """

    comparisons: int = 0
    insertions: int = 0
    pruned: int = 0
    merge_comparisons: int = 0

    def merge(self, other: "HeapStats") -> None:
        self.comparisons += other.comparisons
        self.insertions += other.insertions
        self.pruned += other.pruned
        self.merge_comparisons += other.merge_comparisons


class BoundedMaxHeap:
    """Array-based max-heap holding the k smallest values seen so far.

    The root is the *largest* retained value, so a new candidate only
    enters (evicting the root) when it beats the current k-th best —
    exactly the thread-local PQ of Figure 6.
    """

    __slots__ = ("k", "size", "values", "ids", "stats")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ConfigError("heap capacity must be >= 1")
        self.k = k
        self.size = 0
        self.values = np.empty(k, dtype=np.float32)
        self.ids = np.empty(k, dtype=np.int64)
        self.stats = HeapStats()

    @property
    def root(self) -> float:
        """Current k-th best (worst retained) value; inf when not full."""
        if self.size < self.k:
            return float("inf")
        return float(self.values[0])

    def push(self, value: float, ident: int) -> bool:
        """Offer a candidate; returns True if it was retained."""
        if self.size < self.k:
            i = self.size
            self.values[i] = value
            self.ids[i] = ident
            self.size += 1
            self._sift_up(i)
            self.stats.insertions += 1
            return True
        self.stats.comparisons += 1
        if value >= self.values[0]:
            return False
        self.values[0] = value
        self.ids[0] = ident
        self._sift_down(0)
        self.stats.insertions += 1
        return True

    def push_many(self, values: np.ndarray, ids: np.ndarray) -> None:
        """Bulk push preserving scan order (same result as a loop)."""
        for v, i in zip(values.tolist(), ids.tolist()):
            self.push(v, i)

    def _sift_up(self, i: int) -> None:
        values, ids = self.values, self.ids
        while i > 0:
            parent = (i - 1) >> 1
            self.stats.comparisons += 1
            if values[i] <= values[parent]:
                break
            values[i], values[parent] = values[parent], values[i]
            ids[i], ids[parent] = ids[parent], ids[i]
            i = parent

    def _sift_down(self, i: int) -> None:
        values, ids = self.values, self.ids
        n = self.size
        while True:
            left = 2 * i + 1
            right = left + 1
            largest = i
            if left < n:
                self.stats.comparisons += 1
                if values[left] > values[largest]:
                    largest = left
            if right < n:
                self.stats.comparisons += 1
                if values[right] > values[largest]:
                    largest = right
            if largest == i:
                return
            values[i], values[largest] = values[largest], values[i]
            ids[i], ids[largest] = ids[largest], ids[i]
            i = largest

    def sorted_ascending(self) -> tuple[np.ndarray, np.ndarray]:
        """Drain as a min-heap: (values, ids) in ascending value order.

        This is the "convert the thread-local max heaps into min heaps"
        step of section 4.4 — ascending order is what enables pruning.
        """
        order = np.argsort(self.values[: self.size], kind="stable")
        return self.values[order].copy(), self.ids[order].copy()


def merge_heaps_pruned(
    local_heaps: list[BoundedMaxHeap], k: int
) -> tuple[np.ndarray, np.ndarray, HeapStats]:
    """Pruned merge of thread-local heaps into the DPU-global top-k.

    Local heaps are drained ascending (min-heap order); the first value
    of a heap that fails to beat the global root proves every later
    value fails too, so the rest is pruned (counted in ``stats.pruned``).
    Returns (values, ids) ascending plus merged work stats.
    """
    total = BoundedMaxHeap(k)
    stats = HeapStats()
    for heap in local_heaps:
        stats.merge(heap.stats)
        values, ids = heap.sorted_ascending()
        for pos, (v, i) in enumerate(zip(values.tolist(), ids.tolist())):
            stats.comparisons += 1
            if total.size >= k and v >= total.root:
                stats.pruned += values.shape[0] - pos
                break
            total.push(v, i)
    stats.merge(total.stats)
    out_v, out_i = total.sorted_ascending()
    return out_v, out_i, stats


def merge_heaps_naive(
    local_heaps: list[BoundedMaxHeap], k: int
) -> tuple[np.ndarray, np.ndarray, HeapStats]:
    """Baseline merge: every local element is offered to the global heap.

    This is what PIM-naive does, and what Figure 15 compares against.
    """
    total = BoundedMaxHeap(k)
    stats = HeapStats()
    for heap in local_heaps:
        stats.merge(heap.stats)
        values, ids = heap.sorted_ascending()
        for v, i in zip(values.tolist(), ids.tolist()):
            total.push(v, i)
    stats.merge(total.stats)
    out_v, out_i = total.sorted_ascending()
    return out_v, out_i, stats


def _local_topk_vectorized(
    values: np.ndarray, ids: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Exact k smallest of one stride + analytic scan comparison count.

    A bounded max-heap scanning n random-order elements performs ~n root
    comparisons plus ~k(1 + ln(n/k)) successful insertions costing
    log2(k) sift comparisons each; we count that analytically instead of
    looping in Python (the DPU charge model needs counts, not a replay).
    """
    n = values.shape[0]
    if n == 0:
        return values[:0], ids[:0], 0
    k_eff = min(k, n)
    part = np.argpartition(values, k_eff - 1)[:k_eff]
    order = part[np.argsort(values[part], kind="stable")]
    expected_insertions = k_eff * (1.0 + max(0.0, np.log(max(n, 1) / k_eff)))
    comparisons = int(n + expected_insertions * max(1.0, np.log2(max(k_eff, 2))))
    return values[order], ids[order], comparisons


def scan_topk_fast(
    distances: np.ndarray,
    ids: np.ndarray,
    k: int,
    n_tasklets: int,
    *,
    prune: bool = True,
) -> tuple[np.ndarray, np.ndarray, HeapStats]:
    """Vectorized equivalent of :func:`scan_topk_threaded`.

    Identical results (up to ties); the per-element scan is NumPy, and
    only the small T*k merge replays the exact pruned/naive insertion
    logic so the pruning statistics stay faithful.  This is what the
    DPU kernel simulation calls on its hot path.
    """
    if n_tasklets < 1:
        raise ConfigError("need at least one tasklet")
    distances = np.asarray(distances, dtype=np.float32)
    ids = np.asarray(ids, dtype=np.int64)
    stats = HeapStats()
    local_v: list[np.ndarray] = []
    local_i: list[np.ndarray] = []
    for t in range(n_tasklets):
        v, i, comps = _local_topk_vectorized(
            distances[t::n_tasklets], ids[t::n_tasklets], k
        )
        stats.comparisons += comps
        stats.insertions += v.shape[0]
        local_v.append(v)
        local_i.append(i)

    # Global merge, vectorized: the final top-k over all local lists is
    # the same set a heap merge produces; the pruning statistic is
    # recovered exactly from each ascending local list — once a value
    # fails against the final k-th best, everything after it would have
    # been pruned by the semaphore-guarded merge of section 4.4.
    cat_v = np.concatenate(local_v)
    cat_i = np.concatenate(local_i)
    k_eff = min(k, cat_v.shape[0])
    if k_eff == 0:
        return cat_v[:0], cat_i[:0], stats
    part = np.argpartition(cat_v, k_eff - 1)[:k_eff]
    order = part[np.argsort(cat_v[part], kind="stable")]
    out_v, out_i = cat_v[order].copy(), cat_i[order].copy()
    threshold = out_v[-1]
    merge_log_k = max(1.0, np.log2(max(k_eff, 2)))
    for v in local_v:
        if v.shape[0] == 0:
            continue
        if prune:
            accepted = int(np.searchsorted(v, threshold, side="left"))
            offered = min(accepted + 1, v.shape[0])  # +1 failing probe
            stats.pruned += v.shape[0] - offered
        else:
            offered = v.shape[0]
            accepted = int(np.searchsorted(v, threshold, side="left"))
        merge_work = offered + int(accepted * merge_log_k)
        stats.comparisons += merge_work
        stats.merge_comparisons += merge_work
        stats.insertions += accepted
    return out_v, out_i, stats


def estimate_scan_stats(n_points: float, k: int, n_tasklets: int) -> tuple[float, float]:
    """Analytic (comparisons, insertions) for a thread-striped scan.

    Used by the DPU charge model when the simulated list stands in for a
    ``workload_scale``-times longer one: a bounded heap's insertion count
    grows only logarithmically with the list length, so simulated counts
    cannot simply be multiplied by the scale factor.
    """
    if n_points <= 0:
        return 0.0, 0.0
    per_stride = max(1.0, n_points / n_tasklets)
    k_eff = min(k, per_stride)
    insertions_per_stride = k_eff * (1.0 + max(0.0, np.log(per_stride / k_eff)))
    insertions = n_tasklets * insertions_per_stride
    comparisons = n_points + insertions * max(1.0, np.log2(max(k_eff, 2)))
    return comparisons, insertions


def scan_topk_threaded(
    distances: np.ndarray,
    ids: np.ndarray,
    k: int,
    n_tasklets: int,
    *,
    prune: bool = True,
) -> tuple[np.ndarray, np.ndarray, HeapStats]:
    """Full Opt4 pipeline over one cluster's distances.

    Points are strided across ``n_tasklets`` thread-local heaps exactly
    as the DPU kernel distributes read chunks, then merged (pruned or
    naive).  Functionally equivalent to an exact top-k.
    """
    if n_tasklets < 1:
        raise ConfigError("need at least one tasklet")
    distances = np.asarray(distances, dtype=np.float32)
    ids = np.asarray(ids, dtype=np.int64)
    heaps = [BoundedMaxHeap(k) for _ in range(n_tasklets)]
    for t in range(n_tasklets):
        heaps[t].push_many(distances[t::n_tasklets], ids[t::n_tasklets])
    if prune:
        return merge_heaps_pruned(heaps, k)
    return merge_heaps_naive(heaps, k)
