"""Opt1 offline half: PIM-aware cluster placement (paper Algorithm 1).

Three insights drive the strategy (section 4.1.1):

1. whole clusters live on a single DPU (partial results never cross the
   slow host path);
2. high-demand clusters are replicated — ``ncpy = ceil(s_i * f_i / W̄)``
   copies spread over distinct DPUs;
3. spatially proximate clusters are co-located, enabling local top-k
   aggregation for multi-cluster queries.

Replicas are assigned to DPUs with the least residual capacity first,
relaxing the workload threshold ``thld`` by ``rate`` whenever a full
round-robin scan finds no feasible DPU (paper lines 5-12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, PlacementError


@dataclass
class Placement:
    """Output of placement: replica map plus per-DPU accounting."""

    n_dpus: int
    replicas: list[list[int]]  # cluster -> list of DPU ids (len == ncpy)
    dpu_workload: np.ndarray  # (n_dpus,) estimated workload W[d]
    dpu_vectors: np.ndarray  # (n_dpus,) vectors stored S[d]
    mean_workload: float

    def dpus_for(self, cluster: int) -> list[int]:
        if not 0 <= cluster < len(self.replicas):
            raise PlacementError(
                f"cluster {cluster} is not in this placement "
                f"(have {len(self.replicas)} clusters)"
            )
        return self.replicas[cluster]

    def n_replicas(self, cluster: int) -> int:
        return len(self.replicas[cluster])

    def clusters_on(self, dpu: int) -> list[int]:
        return [c for c, dpus in enumerate(self.replicas) if dpu in dpus]

    def load_ratio(self) -> float:
        """max/mean estimated workload (lower is better; 1.0 = perfect)."""
        mean = float(self.dpu_workload.mean())
        if mean == 0:
            return 1.0
        return float(self.dpu_workload.max()) / mean

    def check_complete(self) -> None:
        """Every cluster must have at least one replica.

        Build functions call this so a hole surfaces as a
        :class:`PlacementError` naming the cluster, not as a downstream
        ``IndexError``/empty-argmin inside the scheduler.  A *restricted*
        placement (``repro.faults.restrict_placement``) is exempt: empty
        replica lists there mean "cluster lost", handled by the
        scheduler's drop path.
        """
        for c, dpus in enumerate(self.replicas):
            if not dpus:
                raise PlacementError(f"cluster {c} has no replica")

    def validate(self, sizes: np.ndarray, max_dpu_vectors: int) -> None:
        """Re-check the invariants the algorithm is supposed to maintain."""
        for c, dpus in enumerate(self.replicas):
            if not dpus:
                raise PlacementError(f"cluster {c} has no replica")
            if len(set(dpus)) != len(dpus):
                raise PlacementError(f"cluster {c} replicated twice onto one DPU")
            for d in dpus:
                if not 0 <= d < self.n_dpus:
                    raise PlacementError(f"cluster {c} on invalid DPU {d}")
        stored = np.zeros(self.n_dpus, dtype=np.int64)
        for c, dpus in enumerate(self.replicas):
            for d in dpus:
                stored[d] += int(sizes[c])
        if (stored > max_dpu_vectors).any():
            raise PlacementError("a DPU exceeds its vector capacity")


def _locality_order(centroids: np.ndarray | None, workloads: np.ndarray) -> np.ndarray:
    """Order clusters for placement.

    Heaviest-first gives the balancer its hardest items early (classic
    LPT scheduling); ties between similar workloads are broken by
    spatial order along the first principal axis of the centroids so
    neighboring clusters are placed consecutively and tend to land on
    the same DPU (insight 3).
    """
    heavy_rank = np.argsort(workloads)[::-1]
    if centroids is None:
        return heavy_rank
    centered = centroids - centroids.mean(axis=0, keepdims=True)
    # Power iteration for the first principal axis (cheap, deterministic).
    v = np.ones(centroids.shape[1], dtype=np.float64)
    for _ in range(16):
        v = centered.T @ (centered @ v)
        norm = np.linalg.norm(v)
        if norm == 0:
            return heavy_rank
        v /= norm
    projection = centered @ v
    # Coarse workload bands (log2) keep heavy-first, spatial order inside.
    with np.errstate(divide="ignore"):
        bands = np.floor(np.log2(np.maximum(workloads, 1e-300))).astype(np.int64)
    order = np.lexsort((projection, -bands))
    return order


def place_clusters(
    sizes: np.ndarray,
    frequencies: np.ndarray,
    n_dpus: int,
    *,
    max_dpu_vectors: int,
    centroids: np.ndarray | None = None,
    threshold_rate: float = 0.02,
    replication_headroom: float = 3.0,
) -> Placement:
    """Algorithm 1 over all clusters.

    ``sizes``: s_i, vectors per cluster; ``frequencies``: f_i, historical
    access frequency; ``max_dpu_vectors``: MAX_DPU_SIZE.  Returns the
    cluster -> DPU replica map.

    ``replication_headroom`` scales the replica count above the paper's
    exact ``ceil(s_i * f_i / W̄)``: historical frequencies are sampled
    estimates, so a hot cluster whose live demand exceeds its history
    would otherwise bottleneck a single replica.  1.0 reproduces the
    pseudocode verbatim; the default absorbs sampling noise (see the
    placement ablation bench).
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    frequencies = np.asarray(frequencies, dtype=np.float64)
    m = sizes.shape[0]
    if frequencies.shape[0] != m:
        raise ConfigError("sizes and frequencies must align")
    if n_dpus < 1:
        raise ConfigError("need at least one DPU")
    if (sizes > max_dpu_vectors).any():
        raise PlacementError(
            "a single cluster exceeds per-DPU capacity; increase "
            "MAX_DPU_SIZE or the cluster count"
        )

    workloads = sizes * frequencies
    mean_w = float(workloads.sum()) / n_dpus

    dpu_w = np.zeros(n_dpus, dtype=np.float64)
    dpu_s = np.zeros(n_dpus, dtype=np.int64)
    replicas: list[list[int]] = [[] for _ in range(m)]

    order = _locality_order(centroids, workloads)
    d_id = 0
    for c in order:
        w_total = workloads[c]
        if mean_w > 0:
            ncpy = max(1, int(np.ceil(replication_headroom * w_total / mean_w)))
        else:
            ncpy = 1
        ncpy = min(ncpy, n_dpus)  # a cluster cannot have two copies per DPU
        w_per = w_total / ncpy
        thld = 1.0
        placed: list[int] = []
        # Replica 0 follows the locality cursor (co-locating spatially
        # proximate clusters, insight 3); further replicas start at
        # stride offsets so a hot cluster's copies — and therefore the
        # bands of co-hot neighboring clusters — scatter across the
        # machine instead of saturating consecutive DPUs.
        stride = max(1, n_dpus // ncpy)
        base = d_id
        for j in range(ncpy):
            cursor = (base + j * stride) % n_dpus
            count = 0
            while True:
                feasible = (
                    dpu_w[cursor] + w_per <= mean_w * thld
                    and dpu_s[cursor] + sizes[c] <= max_dpu_vectors
                    and cursor not in placed
                )
                if feasible:
                    placed.append(cursor)
                    dpu_w[cursor] += w_per
                    dpu_s[cursor] += int(sizes[c])
                    break
                count += 1
                cursor = (cursor + 1) % n_dpus
                if count == n_dpus:
                    thld += threshold_rate
                    count = 0
                    if thld > 1e6:  # capacity, not balance, is infeasible
                        raise PlacementError(
                            f"cannot place cluster {c}: all DPUs at capacity"
                        )
        d_id = (base + 1) % n_dpus
        replicas[c] = placed

    placement = Placement(
        n_dpus=n_dpus,
        replicas=replicas,
        dpu_workload=dpu_w,
        dpu_vectors=dpu_s,
        mean_workload=mean_w,
    )
    placement.check_complete()
    return placement


def random_placement(
    sizes: np.ndarray,
    n_dpus: int,
    *,
    max_dpu_vectors: int,
    rng: np.random.Generator | None = None,
) -> Placement:
    """The PIM-naive strategy: each cluster on one random DPU, no replicas.

    Used as the ablation baseline in Figure 11 ("the naive distribution
    strategy that assigns clusters randomly to DPUs").
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    sizes = np.asarray(sizes, dtype=np.float64)
    m = sizes.shape[0]
    dpu_s = np.zeros(n_dpus, dtype=np.int64)
    replicas: list[list[int]] = [[] for _ in range(m)]
    order = rng.permutation(m)
    for c in order:
        choices = rng.permutation(n_dpus)
        for d in choices:
            if dpu_s[d] + sizes[c] <= max_dpu_vectors:
                replicas[c] = [int(d)]
                dpu_s[d] += int(sizes[c])
                break
        else:
            raise PlacementError(f"cannot place cluster {c}: all DPUs at capacity")
    placement = Placement(
        n_dpus=n_dpus,
        replicas=replicas,
        dpu_workload=dpu_s.astype(np.float64),
        dpu_vectors=dpu_s,
        mean_workload=float(sizes.sum()) / n_dpus,
    )
    placement.check_complete()
    return placement
