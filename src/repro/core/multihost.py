"""Multi-host UpANNS (paper section 5.5).

"UpANNS can be easily extended to multi-host configurations.  Only
query distribution and result aggregation require cross-host
communication.  The core memory-intensive search operations remain
local to each host."

This module implements that extension: a coordinator owns the trained
coarse quantizer and shards the cluster set across hosts with the same
Algorithm-1 machinery used inside a host (hot clusters may be
replicated on several hosts).  Per batch, the coordinator filters
clusters once, routes each (query, cluster) pair to a host holding a
replica (Algorithm 2 at host granularity), and merges the per-host
top-k — paying network distribution/aggregation costs modeled by
:class:`NetworkModel`.  Each host runs a full single-host
:class:`~repro.core.engine.UpANNSEngine` over its owned clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import SystemConfig
from repro.core.engine import UpANNSEngine, _degraded_result
from repro.core.placement import Placement, place_clusters
from repro.core.scheduling import schedule_batch
from repro.errors import ConfigError, DpuFailedError, NotTrainedError
from repro.sanitize.hook import debug_sanitize_schedule
from repro.faults import (
    DegradedResult,
    FaultPlan,
    FaultState,
    restrict_placement,
)
from repro.hardware.host import HostModel
from repro.ivfpq.adc import topk_from_distances
from repro.ivfpq.index import IVFPQIndex
from repro.tracing.context import TraceContext
from repro.sim import (
    HOST_CPU,
    NETWORK,
    STAGE_AGGREGATE,
    STAGE_CLUSTER_FILTER,
    STAGE_SCHEDULE,
    STAGE_TRANSFER_IN,
    STAGE_TRANSFER_OUT,
    BatchSchedule,
    BatchWork,
    resolve_sim_engine,
)
from repro.telemetry.registry import get_registry

# Stage label for one host's local search window on its ``host/{h}`` lane.
STAGE_HOST_SEARCH = "host_search"


@dataclass(frozen=True)
class NetworkModel:
    """Cross-host link: bandwidth + per-message latency (e.g. 10 GbE)."""

    bandwidth_bytes_per_s: float = 1.25e9
    latency_s: float = 50e-6

    def transfer_seconds(self, bytes_per_host: list[float]) -> float:
        """Hosts sit behind one switch: transfers overlap, the largest
        per-host payload plus one message latency sets the wall time."""
        if not bytes_per_host:
            return 0.0
        return max(bytes_per_host) / self.bandwidth_bytes_per_s + self.latency_s


@dataclass
class MultiHostBatchResult:
    """Merged results plus the multi-host timing decomposition."""

    ids: np.ndarray
    distances: np.ndarray
    coordinator_filter_s: float
    route_s: float
    distribute_s: float
    host_makespan_s: float
    gather_s: float
    merge_s: float
    per_host_qps: list[float]
    schedule: BatchSchedule | None = None  # per-resource event timelines
    #: Fault-plane outcome at host granularity; ``None`` when fault-free.
    degraded: DegradedResult | None = None
    #: Coordinator-level work description ``schedule`` was executed from.
    work: BatchWork | None = None

    @property
    def total_s(self) -> float:
        return (
            self.coordinator_filter_s
            + self.route_s
            + self.distribute_s
            + self.host_makespan_s
            + self.gather_s
            + self.merge_s
        )

    @property
    def qps(self) -> float:
        return self.ids.shape[0] / self.total_s if self.total_s > 0 else float("inf")


@dataclass
class MultiHostEngine:
    """Coordinator + N single-host UpANNS engines over a sharded index."""

    host_configs: list[SystemConfig]
    network: NetworkModel = field(default_factory=NetworkModel)
    coordinator: HostModel = field(default_factory=HostModel)
    # Hot clusters may be replicated on this many hosts at most.
    max_host_replicas: int = 2
    index: IVFPQIndex | None = None
    hosts: "list[UpANNSEngine | None]" = field(default_factory=list)
    host_placement: Placement | None = None
    _sizes: np.ndarray | None = None
    _built: bool = False
    fault_state: FaultState | None = None
    #: Execution core (``"analytic"``/``"event"``/None -> env default);
    #: propagated to every member host engine at build/reshard time.
    sim_engine: str | None = None
    # Retained build inputs so reshard() can rebuild surviving hosts.
    _vectors: np.ndarray | None = None
    _freqs: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not self.host_configs:
            raise ConfigError("need at least one host")
        first = self.host_configs[0].index
        for cfg in self.host_configs[1:]:
            if cfg.index != first:
                raise ConfigError("all hosts must share the index geometry")

    @property
    def n_hosts(self) -> int:
        return len(self.host_configs)

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------

    def build(
        self,
        vectors: np.ndarray,
        *,
        history_queries: np.ndarray | None = None,
        prebuilt_index: IVFPQIndex | None = None,
        rng: np.random.Generator | None = None,
    ) -> "MultiHostEngine":
        """Train once, shard clusters across hosts, build each host."""
        rng = rng if rng is not None else np.random.default_rng(0)
        ic = self.host_configs[0].index
        vectors = np.ascontiguousarray(np.atleast_2d(vectors), dtype=np.float32)
        self._vectors = vectors
        if prebuilt_index is not None:
            self.index = prebuilt_index
        else:
            self.index = IVFPQIndex(ic.dim, ic.n_clusters, ic.m, ic.nbits)
            self.index.train(vectors, n_iter=ic.train_iters, rng=rng)
            self.index.add(vectors)

        sizes = self.index.ivf.cluster_sizes()
        self._sizes = sizes
        if history_queries is not None:
            probes = self.index.ivf.search_clusters(
                np.atleast_2d(history_queries), self.host_configs[0].query.nprobe
            )
            freqs = np.bincount(probes.ravel(), minlength=ic.n_clusters) + 1.0
            freqs = freqs / freqs.sum()
        else:
            freqs = np.full(ic.n_clusters, 1.0 / ic.n_clusters)
        self._freqs = freqs

        self._shard_and_build(rng)
        self._built = True
        return self

    def _shard_and_build(
        self, rng: np.random.Generator, *, exclude_hosts: frozenset[int] = frozenset()
    ) -> None:
        """Shard clusters across the (surviving) hosts and build each.

        Algorithm 1 at host granularity: shard (and replicate hot)
        clusters across hosts, balancing expected workload.  With
        ``exclude_hosts``, the shard map is computed over live hosts
        only — the fault-recovery reshard path.
        """
        assert self.index is not None and self._sizes is not None
        assert self._vectors is not None and self._freqs is not None
        ic = self.host_configs[0].index
        sizes, freqs = self._sizes, self._freqs
        live = [h for h in range(self.n_hosts) if h not in exclude_hosts]
        if not live:
            raise DpuFailedError("cannot reshard: every host is excluded as dead")
        sub = place_clusters(
            sizes,
            freqs,
            len(live),
            max_dpu_vectors=int(sizes.sum()) + 1,
            centroids=self.index.ivf.centroids,
            replication_headroom=1.0,
        )
        replicas = [[live[h] for h in reps] for reps in sub.replicas]
        host_w = np.zeros(self.n_hosts, dtype=sub.dpu_workload.dtype)
        host_w[live] = sub.dpu_workload
        host_v = np.zeros(self.n_hosts, dtype=sub.dpu_vectors.dtype)
        host_v[live] = sub.dpu_vectors
        self.host_placement = Placement(
            n_dpus=self.n_hosts,
            replicas=replicas,
            dpu_workload=host_w,
            dpu_vectors=host_v,
            mean_workload=sub.mean_workload,
        )
        for c in range(ic.n_clusters):
            reps = self.host_placement.replicas[c]
            if len(reps) > self.max_host_replicas:
                self.host_placement.replicas[c] = reps[: self.max_host_replicas]

        self.hosts = []
        for h, cfg in enumerate(self.host_configs):
            if h not in live:
                # A dead host keeps its slot (lane/id alignment) but is
                # never built or routed to again.
                self.hosts.append(None)
                continue
            owned = np.array(
                [
                    c
                    for c in range(ic.n_clusters)
                    if h in self.host_placement.replicas[c]
                ],
                dtype=np.int64,
            )
            engine = UpANNSEngine(cfg)
            engine.sim_engine = self.sim_engine
            engine.build(
                self._vectors,
                frequencies=freqs,
                prebuilt_index=self.index,
                cluster_subset=owned,
                rng=rng,
            )
            self.hosts.append(engine)

    # ------------------------------------------------------------------
    # Fault injection (repro.faults)
    # ------------------------------------------------------------------

    def inject(self, plan: FaultPlan) -> FaultState:
        """Arm a host-granularity fault plan on the coordinator.

        Only ``host`` events make sense here; DPU-level granularities
        belong on the individual host engines (``hosts[h].inject``).
        """
        for event in plan.events:
            if event.kind != "host":
                raise ConfigError(
                    f"multihost coordinator only injects 'host' faults, got {event.kind!r}"
                )
        self.fault_state = plan.state(n_units=self.n_hosts)
        return self.fault_state

    def reshard(self, *, rng: np.random.Generator | None = None) -> float:
        """Re-shard clusters over the surviving hosts after host loss.

        Returns the modeled recovery time: the slowest surviving host's
        host->MRAM reload of its new shard (hosts reload in parallel).
        """
        if not self._built:
            raise NotTrainedError("build() must be called before reshard()")
        rng = rng if rng is not None else np.random.default_rng(0)
        dead = frozenset(self.fault_state.dead) if self.fault_state else frozenset()
        self._shard_and_build(rng, exclude_hosts=dead)
        return max(
            (
                e.offline.mram_load_seconds
                for e in self.hosts
                if e is not None and e.offline is not None
            ),
            default=0.0,
        )

    # ------------------------------------------------------------------
    # Online phase
    # ------------------------------------------------------------------

    def search_batch(
        self,
        queries: np.ndarray,
        *,
        k: int | None = None,
        trace: TraceContext | None = None,
    ) -> MultiHostBatchResult:
        """Coordinator-filter -> route -> per-host search -> merge."""
        if not self._built or self.index is None:
            raise NotTrainedError("build() must be called before search_batch()")
        qc = self.host_configs[0].query
        ic = self.host_configs[0].index
        k = k if k is not None else qc.k
        queries = np.ascontiguousarray(np.atleast_2d(queries), dtype=np.float32)
        nq = queries.shape[0]
        sizes = self._sizes
        assert sizes is not None and self.host_placement is not None
        ctx = trace if trace is not None else TraceContext.for_batch(nq)
        if len(ctx) != nq:
            raise ConfigError(
                f"trace context carries {len(ctx)} ids for a batch of {nq}"
            )

        work = BatchWork(batch=ctx.batch)

        # Coordinator: one global cluster-filtering pass.
        probes = self.index.ivf.search_clusters(queries, qc.nprobe)
        filter_s = self.coordinator.cluster_filter_seconds(nq, ic.n_clusters, ic.dim)
        filter_item = work.work(
            HOST_CPU, STAGE_CLUSTER_FILTER, filter_s, trace_ids=ctx.all_ids()
        )

        # Fault plane at host granularity: a lost host disappears from
        # the routing map before any pair is assigned; clusters sharded
        # only onto dead hosts drop (coverage < 1 until reshard()).
        state = self.fault_state
        faults = state.begin_batch() if state is not None else None
        exec_placement = self.host_placement
        rerouted_clusters: frozenset[int] = frozenset()
        if state is not None:
            exec_placement, rerouted_clusters, _ = restrict_placement(
                self.host_placement, state.dead
            )

        # Route every (query, cluster) pair to a replica-holding host
        # (Algorithm 2 at host granularity) — charged like any other
        # scheduling pass, at the coordinator's per-decision cost.
        routing = schedule_batch(
            probes,
            sizes,
            exec_placement,
            on_missing="drop" if state is not None else "raise",
        )
        route_s = self.coordinator.scheduling_seconds_for_pairs(routing.total_pairs())
        route_item = work.work(
            HOST_CPU,
            STAGE_SCHEDULE,
            route_s,
            after=(filter_item,),
            trace_ids=ctx.all_ids(),
        )
        per_host_probes: list[list[list[int]]] = [
            [[] for _ in range(nq)] for _ in range(self.n_hosts)
        ]
        for h in range(self.n_hosts):
            for qi, c in routing.per_dpu[h]:
                per_host_probes[h][qi].append(c)

        # Cross-host distribution: each host receives the queries it
        # participates in plus its schedule.
        distribute_bytes = []
        for h in range(self.n_hosts):
            participating = sum(1 for row in per_host_probes[h] if row)
            pairs = sum(len(row) for row in per_host_probes[h])
            distribute_bytes.append(participating * ic.dim * 4 + pairs * 8)
        distribute_s = self.network.transfer_seconds(distribute_bytes)
        distribute_item = work.work(
            NETWORK,
            STAGE_TRANSFER_IN,
            distribute_s,
            after=(route_item,),
            trace_ids=ctx.all_ids(),
        )

        # Local searches (memory-intensive work stays on each host).
        host_results = []
        host_seconds = []
        host_items: list[int] = []
        for h, engine in enumerate(self.hosts):
            ragged = [
                np.asarray(row, dtype=np.int64) for row in per_host_probes[h]
            ]
            if engine is None or not any(r.size for r in ragged):
                host_results.append(None)
                host_seconds.append(0.0)
                continue
            res = engine.search_batch(queries, k=k, probes=ragged)
            host_results.append(res)
            host_seconds.append(res.timing.total_s)
            host_items.append(
                work.work(
                    f"host/{h}",
                    STAGE_HOST_SEARCH,
                    res.timing.total_s,
                    after=(distribute_item,),
                    trace_ids=ctx.ids_for(
                        qi for qi, row in enumerate(per_host_probes[h]) if row
                    ),
                )
            )
        host_makespan_s = max(host_seconds) if host_seconds else 0.0

        # Gather per-host top-k and merge at the coordinator.
        gather_bytes = [
            (0 if r is None else int((r.ids >= 0).sum()) * 12) for r in host_results
        ]
        gather_s = self.network.transfer_seconds(gather_bytes)
        gather_item = work.work(
            NETWORK,
            STAGE_TRANSFER_OUT,
            gather_s,
            after=tuple(host_items) if host_items else (distribute_item,),
            trace_ids=ctx.all_ids(),
        )

        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        out_i = np.full((nq, k), -1, dtype=np.int64)
        for qi in range(nq):
            cand_i, cand_d = [], []
            for r in host_results:
                if r is None:
                    continue
                mask = r.ids[qi] >= 0
                cand_i.append(r.ids[qi][mask])
                cand_d.append(r.distances[qi][mask])
            if not cand_i:
                continue
            ids, dists = topk_from_distances(
                np.concatenate(cand_i), np.concatenate(cand_d), k
            )
            out_i[qi, : ids.shape[0]] = ids
            out_d[qi, : dists.shape[0]] = dists
        merge_s = self.coordinator.aggregate_seconds(nq, k, self.n_hosts)
        work.work(
            HOST_CPU,
            STAGE_AGGREGATE,
            merge_s,
            after=(gather_item,),
            trace_ids=ctx.all_ids(),
        )
        schedule = work.execute(resolve_sim_engine(self.sim_engine))

        reg = get_registry()
        reg.counter(
            "repro_multihost_queries_total", "queries served by the coordinator"
        ).inc(nq)
        pairs_counter = reg.counter(
            "repro_multihost_routed_pairs_total",
            "(query, cluster) pairs routed to each host",
            ("host",),
        )
        for h in range(self.n_hosts):
            routed = sum(len(row) for row in per_host_probes[h])
            if routed:
                pairs_counter.labels(host=str(h)).inc(routed)
        net_counter = reg.counter(
            "repro_multihost_network_bytes_total",
            "cross-host bytes moved per direction",
            ("direction",),
        )
        net_counter.labels(direction="distribute").inc(sum(distribute_bytes))
        net_counter.labels(direction="gather").inc(sum(gather_bytes))
        stage_counter = reg.counter(
            "repro_stage_seconds_total",
            "modeled seconds per pipeline stage",
            ("engine", "stage"),
        )
        for stage, seconds in (
            ("cluster_filter", filter_s),
            ("schedule", route_s),
            ("transfer_in", distribute_s),
            ("host_search", host_makespan_s),
            ("transfer_out", gather_s),
            ("aggregate", merge_s),
        ):
            stage_counter.labels(engine="multihost", stage=stage).inc(seconds)

        degraded = None
        if state is not None and faults is not None:
            degraded = _degraded_result(
                "multihost", nq, probes, routing, faults, state,
                rerouted_clusters, 0.0,
            )
        # Lane checks only: the coordinator's scalar fields are not a
        # BatchTiming, and retries are charged on the member engines.
        debug_sanitize_schedule(schedule, label="multihost batch")
        return MultiHostBatchResult(
            ids=out_i,
            distances=out_d,
            coordinator_filter_s=filter_s,
            route_s=route_s,
            distribute_s=distribute_s,
            host_makespan_s=host_makespan_s,
            gather_s=gather_s,
            merge_s=merge_s,
            per_host_qps=[
                (0.0 if r is None else nq / r.timing.total_s) for r in host_results
            ],
            schedule=schedule,
            degraded=degraded,
            work=work,
        )

    def cluster_ownership(self) -> list[int]:
        """#clusters owned per host (balance introspection)."""
        counts = [0] * self.n_hosts
        assert self.host_placement is not None
        for reps in self.host_placement.replicas:
            for h in reps:
                counts[h] += 1
        return counts
