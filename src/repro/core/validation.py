"""Intake validation for query arrays.

The serving surfaces (:meth:`OnlineService.submit
<repro.core.service.OnlineService.submit>` and the ``repro.serving``
frontend) funnel every externally supplied query array through
:func:`validate_queries` before it reaches the engine, so malformed
input fails with a typed :class:`~repro.errors.InvalidQueryError` at
the door instead of a numpy traceback from deep inside the pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidQueryError


def validate_queries(queries: object, *, dim: int) -> np.ndarray:
    """Canonicalize ``queries`` to a contiguous float32 ``(n, dim)`` array.

    Raises :class:`InvalidQueryError` when the input is empty, not
    2-D after promoting a single vector, has the wrong dimensionality,
    or contains non-finite values (NaN/inf poison distance kernels
    silently — every downstream comparison involving them is False).
    """
    try:
        arr = np.ascontiguousarray(np.atleast_2d(queries), dtype=np.float32)
    except (TypeError, ValueError) as exc:
        raise InvalidQueryError(f"queries are not a numeric array: {exc}") from exc
    if arr.ndim != 2:
        raise InvalidQueryError(
            f"queries must be a vector or a 2-D batch, got ndim={arr.ndim}"
        )
    if arr.shape[0] == 0:
        raise InvalidQueryError("queries are empty (no rows)")
    if arr.shape[1] != dim:
        raise InvalidQueryError(
            f"query dimension mismatch: got {arr.shape[1]}, index has {dim}"
        )
    if not np.isfinite(arr).all():
        bad = int(np.flatnonzero(~np.isfinite(arr).all(axis=1))[0])
        raise InvalidQueryError(
            f"queries contain non-finite values (first bad row: {bad})"
        )
    return arr
