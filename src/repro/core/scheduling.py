"""Opt1 online half: greedy query scheduling (paper Algorithm 2).

At runtime the host maps each query's filtered clusters to DPUs holding
a replica, balancing load dynamically:

* clusters with a single replica have no choice — assign them first and
  charge their size to the owning DPU (lines 4-7);
* clusters with multiple replicas are processed in descending size so
  the big items are balanced before the small ones fill gaps, each
  going to the currently least-loaded replica holder (lines 8-14).

Complexity O(|Q| x nprobe), negligible next to the search itself.
"""

from __future__ import annotations

from bisect import insort_right
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchedulingError
from repro.core.placement import Placement


@dataclass
class Assignment:
    """Scheduling result: per-DPU worklists of (query, cluster) pairs."""

    n_dpus: int
    per_dpu: list[list[tuple[int, int]]]  # dpu -> [(query_idx, cluster_id)]
    dpu_workload: np.ndarray  # (n_dpus,) scheduled vector-scan counts
    #: (query_idx, cluster_id) pairs that could not be scheduled because
    #: the cluster had no live replica (``on_missing="drop"``).  Empty
    #: on the fault-free path.
    dropped: list[tuple[int, int]] = field(default_factory=list)

    def pairs_on(self, dpu: int) -> list[tuple[int, int]]:
        return self.per_dpu[dpu]

    def total_pairs(self) -> int:
        return sum(len(p) for p in self.per_dpu)

    def load_ratio(self) -> float:
        """max/mean scheduled workload across all DPUs.

        Matches Figure 11's "ratio of maximum process and average
        process": 1.0 means perfectly even work.
        """
        from repro.metrics.balance import max_mean_ratio

        return max_mean_ratio(self.dpu_workload)

    def queries_per_dpu(self) -> np.ndarray:
        """Distinct queries each DPU serves (LUT build cost driver)."""
        out = np.zeros(self.n_dpus, dtype=np.int64)
        for d, pairs in enumerate(self.per_dpu):
            out[d] = len({q for q, _ in pairs})
        return out


def schedule_batch(
    probes: np.ndarray,
    sizes: np.ndarray,
    placement: Placement,
    *,
    refine: bool = True,
    on_missing: str = "raise",
) -> Assignment:
    """Algorithm 2 over a batch.

    ``probes``: filtered cluster ids per query — an (nq, nprobe) matrix
    or a ragged list of per-query id arrays (multi-host shards send each
    host only its owned clusters); ``sizes``: s_i per cluster;
    ``placement``: Algorithm 1's replica map.

    ``refine`` adds a bounded local-search pass after the greedy
    assignment: pairs are moved off the most-loaded DPU onto less-loaded
    replica holders while that reduces the makespan.  Plain greedy over
    replica-restricted items stalls noticeably above the lower bound
    when hot clusters share holders; the refinement recovers the
    near-1.0 max/avg ratios the paper reports in Figure 11.

    ``on_missing`` controls what happens when a probed cluster has no
    replica: ``"raise"`` (default, fault-free invariant) raises
    :class:`~repro.errors.SchedulingError`; ``"drop"`` records the pair
    in :attr:`Assignment.dropped` and degrades gracefully — used when
    scheduling over a fault-restricted placement where a cluster may
    have lost every live holder.
    """
    if on_missing not in ("raise", "drop"):
        raise SchedulingError(f"on_missing must be 'raise' or 'drop', got {on_missing!r}")
    if not isinstance(probes, (list, tuple)):
        probes = np.atleast_2d(probes)
    sizes = np.asarray(sizes, dtype=np.int64)
    n_dpus = placement.n_dpus
    workload = np.zeros(n_dpus, dtype=np.float64)
    per_dpu: list[list[tuple[int, int]]] = [[] for _ in range(n_dpus)]

    # Pass 1: single-replica clusters are forced moves (lines 4-7).
    multi: list[tuple[int, int]] = []  # (cluster, query) pairs still open
    dropped: list[tuple[int, int]] = []
    for qi in range(len(probes)):
        for c in probes[qi]:
            c = int(c)
            dpus = placement.replicas[c]
            if not dpus:
                if on_missing == "drop":
                    dropped.append((qi, c))
                    continue
                raise SchedulingError(f"cluster {c} has no replica")
            if len(dpus) == 1:
                d = dpus[0]
                per_dpu[d].append((qi, c))
                workload[d] += sizes[c]
            else:
                multi.append((c, qi))

    # Pass 2: replicated clusters, largest first, to least-loaded holder
    # (lines 8-14).  The (-size, cluster, query) key is a total order,
    # so the vectorized lexsort reproduces the tuple-key sort exactly.
    if multi:
        carr = np.fromiter((c for c, _ in multi), np.int64, len(multi))
        qarr = np.fromiter((q for _, q in multi), np.int64, len(multi))
        order = np.lexsort((qarr, carr, -sizes[carr]))
        multi = [multi[int(j)] for j in order]
    for c, qi in multi:
        dpus = placement.replicas[c]
        # First-minimum holder, like np.argmin, without the per-pair
        # array dispatch (replica lists are tiny).
        d = dpus[0]
        best_load = workload[d]
        for cand in dpus[1:]:
            if workload[cand] < best_load:
                d = cand
                best_load = workload[cand]
        per_dpu[d].append((qi, c))
        workload[d] += sizes[c]

    assignment = Assignment(
        n_dpus=n_dpus, per_dpu=per_dpu, dpu_workload=workload, dropped=dropped
    )
    if refine:
        _refine_assignment(assignment, sizes, placement)
    return assignment


def _refine_assignment(
    assignment: Assignment,
    sizes: np.ndarray,
    placement: Placement,
    max_rounds: int | None = None,
) -> None:
    """Local search: shed load from the most-loaded DPU onto other
    replica holders as long as the makespan shrinks.  In-place."""
    workload = assignment.dpu_workload
    per_dpu = assignment.per_dpu
    if max_rounds is None:
        max_rounds = 8 * assignment.n_dpus
    # Per-DPU descending-size views, built lazily and maintained
    # incrementally across rounds: a stable sort order survives removing
    # one element, and a pair appended to a worklist sorts after every
    # existing equal-size pair — exactly where insort_right puts it.
    # Each round therefore scans the same sequence the per-round stable
    # sort produced before, without re-sorting ~unchanged lists.
    sorted_cache: dict[int, list[tuple[int, int]]] = {}

    def sorted_pairs(d: int) -> list[tuple[int, int]]:
        pairs = sorted_cache.get(d)
        if pairs is None:
            dp = per_dpu[d]
            csizes = sizes[np.fromiter((c for _, c in dp), np.int64, len(dp))]
            pairs = [dp[int(j)] for j in np.argsort(-csizes, kind="stable")]
            sorted_cache[d] = pairs
        return pairs

    for _ in range(max_rounds):
        src = int(np.argmax(workload))
        moved = False
        # Try to move the source's largest movable pairs first (stable
        # argsort == the stable Python sort on -size it replaces).
        for qi, c in sorted_pairs(src):
            s = sizes[c]
            holders = placement.replicas[c]
            if len(holders) < 2:
                continue
            # A move helps iff the destination ends up below the source's
            # current load (the global max); pick the least-loaded such
            # holder.
            best = -1
            for d in holders:
                if d != src and workload[d] + s < workload[src] - 1e-9:
                    if best < 0 or workload[d] < workload[best]:
                        best = d
            if best >= 0:
                per_dpu[src].remove((qi, c))
                per_dpu[best].append((qi, c))
                sorted_cache[src].remove((qi, c))
                if best in sorted_cache:
                    insort_right(
                        sorted_cache[best], (qi, c), key=lambda p: -sizes[p[1]]
                    )
                workload[src] -= s
                workload[best] += s
                moved = True
                break
        if not moved:
            return


@dataclass
class AdaptivePolicy:
    """Section 4.1.2's two-level response to query-pattern change.

    Minor drift (total variation below ``relocate_threshold``) only
    adjusts replica counts; beyond it, a full re-placement is requested.
    """

    replicate_threshold: float = 0.05
    relocate_threshold: float = 0.25
    _actions: list[str] = field(default_factory=list)

    def decide(self, drift: float) -> str:
        """'keep' | 'rereplicate' | 'relocate' for an observed drift."""
        if drift < self.replicate_threshold:
            action = "keep"
        elif drift < self.relocate_threshold:
            action = "rereplicate"
        else:
            action = "relocate"
        self._actions.append(action)
        return action

    def history(self) -> list[str]:
        return list(self._actions)
