"""The per-DPU IVFPQ kernel: functional execution + cycle charging.

This module simulates what the UpANNS DPU program does for one query on
one DPU (paper Figure 6): for each assigned cluster, build the LUT from
the codebook (threads share the work), compute the co-occurrence partial
sums, stream encoded points from MRAM and accumulate distances, feeding
thread-local top-k heaps; after the last cluster, merge the local heaps
into the DPU top-k with pruning (Opt4).  Four barriers separate the
stages.

Every functional step charges the DPU's ledger with the instruction and
DMA-traffic counts a real 350 MHz DPU would incur, using the per-token
cost constants below.  The constants are order-of-magnitude calibrated
against the UPMEM characterization literature; the *structure* (what
scales with M, cluster size, token count, read size, tasklets) is what
reproduces the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.core.encoding import EncodedCluster, build_flat_table
from repro.core.cooccurrence import CooccurrenceModel
from repro.core.topk import (
    HeapStats,
    estimate_scan_stats,
    scan_topk_fast,
    scan_topk_fast_batch_flat,
)
from repro.hardware.counters import StageCycles
from repro.hardware.dpu import DPU
from repro.hardware.mram import MAX_DMA_BYTES, round_up_dma
from repro.hardware.specs import DEFAULT_N_TASKLETS
from repro.ivfpq.adc import adc_distances, adc_distances_direct
from repro.ivfpq.lut import build_lut
from repro.ivfpq.pq import ProductQuantizer
from repro.telemetry.pipeline import (
    dma_observations,
    observe_dma,
    observe_dma_batch,
)

# --- Instruction cost constants (per element) -------------------------------
INSTR_PER_LUT_ENTRY_PER_DIM = 3.0  # load codeword elem, sub/mul, accumulate
# Per cached partial sum: one LUT load + add per combination element,
# plus store/bookkeeping.  (= 8 instructions at the default length 3.)
INSTR_PER_COMBO_ELEMENT = 2.0
INSTR_PER_COMBO_OVERHEAD = 2.0
# The ADC inner loop is tight on a DPU: a 32-bit WRAM load covers two
# uint16 tokens and the add dual-issues with the index increment, so the
# amortized cost is close to one instruction per token.  This makes the
# distance stage DMA-bound at small MRAM read sizes — the regime the
# paper's Figure 17 sweep exposes.
INSTR_PER_TOKEN = 1.2
INSTR_PER_VECTOR_OVERHEAD = 3.0  # id fetch + heap root compare + branch
INSTR_PER_HEAP_COMPARISON = 2.0
INSTR_PER_HEAP_INSERTION = 6.0
# The codebook is streamed at the maximum legal DMA size; imported from
# the spec module so the chunk tracks the hardware constraint.
CODEBOOK_CHUNK_BYTES = MAX_DMA_BYTES

# One 0.0 slot appended after each flat table in fused CAE gathers;
# dead addresses resolve here instead of being masked out per batch.
_SENTINEL_ZERO = np.zeros(1, dtype=np.float32)


@dataclass
class ClusterPayload:
    """What one cluster replica stores in a DPU's MRAM.

    Plain form keeps raw PQ codes; CAE form keeps the direct-address
    re-encoding.  ``nbytes`` is the on-device footprint used for both
    MRAM capacity checks and DMA traffic charging.
    """

    cluster_id: int
    ids: np.ndarray
    codes: np.ndarray | None = None  # (s, m) uint8, plain path
    encoded: EncodedCluster | None = None  # CAE path
    cooc: CooccurrenceModel | None = None
    # Lazily precomputed ADC gather indices (the payload's codes and
    # slot masks never change once placed, so the grouped kernel reuses
    # these across batches).  Host-side acceleration state only.
    _gather_idx: np.ndarray | None = field(default=None, repr=False, compare=False)
    _safe_addr: np.ndarray | None = field(default=None, repr=False, compare=False)
    _safe_table_len: int = field(default=-1, repr=False, compare=False)

    def __post_init__(self) -> None:
        if (self.codes is None) == (self.encoded is None):
            raise ConfigError("payload must be exactly one of plain / CAE")

    def adc_gather_indices(self, ksub: int) -> np.ndarray:
        """Flat-LUT gather offsets (codes + per-subspace strides), int32."""
        if self._gather_idx is None:
            assert self.codes is not None
            offsets = np.arange(self.codes.shape[1], dtype=np.int32) * ksub
            self._gather_idx = self.codes.astype(np.int32) + offsets[None, :]
        return self._gather_idx

    def adc_safe_addresses(self, table_len: int) -> np.ndarray:
        """Slot addresses with dead (past-length) slots redirected to a
        zero sentinel appended after the flat table, int32.

        Gathering through these indices yields the exact value sequence
        ``np.where(mask, table[addr], 0.0)`` produces, without building
        the mask per batch.
        """
        if self._safe_addr is None or self._safe_table_len != table_len:
            assert self.encoded is not None
            enc = self.encoded
            width = enc.addresses.shape[1]
            mask = np.arange(width)[None, :] < enc.lengths[:, None]
            self._safe_addr = np.where(mask, enc.addresses, table_len).astype(
                np.int32
            )
            self._safe_table_len = table_len
        return self._safe_addr

    @property
    def size(self) -> int:
        return int(self.ids.shape[0])

    @property
    def is_cae(self) -> bool:
        return self.encoded is not None

    @property
    def nbytes(self) -> int:
        if self.codes is not None:
            return int(self.ids.nbytes + self.codes.nbytes)
        assert self.encoded is not None
        return int(self.ids.nbytes + self.encoded.nbytes)

    @property
    def token_count(self) -> int:
        """Total ADC tokens the distance stage must consume."""
        if self.codes is not None:
            return int(self.codes.shape[0] * self.codes.shape[1])
        assert self.encoded is not None
        return int(self.encoded.lengths.sum())

    @property
    def scan_bytes(self) -> int:
        """Bytes streamed from MRAM during the distance stage."""
        if self.codes is not None:
            return int(self.codes.nbytes)
        assert self.encoded is not None
        return int(2 * self.encoded.lengths.sum())


@dataclass(frozen=True)
class KernelConfig:
    """Knobs the ablations sweep."""

    k: int = 10
    n_tasklets: int = DEFAULT_N_TASKLETS
    read_vectors: int = 16
    prune_topk: bool = True
    lut_entry_bytes: int = 2
    codebook_entry_bytes: int = 1
    # Timing-only extrapolation: multiply every per-point charge (scan
    # traffic, distance instructions, heap scan comparisons) by this
    # factor to model the paper's billion-scale list lengths while
    # computing functionally on scaled-down lists.  1.0 = no scaling.
    workload_scale: float = 1.0


@dataclass
class QueryKernelOutput:
    """One query's result on one DPU."""

    ids: np.ndarray  # ascending-distance local top-k
    distances: np.ndarray
    stage: StageCycles  # (compute+dma) cycles already combined per stage
    heap_stats: HeapStats


def _read_chunk_bytes(payload: ClusterPayload, cfg: KernelConfig) -> int:
    """DMA chunk size for scanning this cluster's encoded points."""
    if payload.codes is not None:
        per_vec = payload.codes.shape[1]
    else:
        assert payload.encoded is not None
        per_vec = 2 * payload.encoded.m  # worst-case tokens, 2 B each
    chunk = min(cfg.read_vectors * per_vec, MAX_DMA_BYTES)
    return round_up_dma(chunk)


def run_query_on_dpu(
    dpu: DPU,
    pq: ProductQuantizer,
    centroids: np.ndarray,
    payloads: list[ClusterPayload],
    query: np.ndarray,
    cfg: KernelConfig,
    luts: dict[int, np.ndarray] | None = None,
) -> QueryKernelOutput:
    """Execute one query over its clusters assigned to ``dpu``.

    Functional result: the exact local top-k over all assigned clusters.
    Timing result: per-stage cycles charged to the DPU ledger and
    returned in ``stage`` (DMA overlap already applied per stage).
    ``luts`` optionally supplies precomputed per-cluster LUTs (the engine
    batches their computation per query); the DPU is charged for
    building them either way.
    """
    if not payloads:
        raise ConfigError("no clusters assigned for this query on this DPU")
    stage = StageCycles()
    all_ids: list[np.ndarray] = []
    all_d: list[np.ndarray] = []
    tasklets = dpu.n_tasklets

    for payload in payloads:
        centroid = centroids[payload.cluster_id]
        # --- Stage b: LUT construction (threads share the codebook scan).
        if luts is not None and payload.cluster_id in luts:
            lut = luts[payload.cluster_id]
        else:
            lut = build_lut(pq, query, centroid)
        codebook_bytes = pq.dim * 256 * cfg.codebook_entry_bytes
        dma = dpu.charge_mram_read(codebook_bytes, CODEBOOK_CHUNK_BYTES)
        instr = pq.m * pq.ksub * pq.dsub * INSTR_PER_LUT_ENTRY_PER_DIM
        dpu.charge_instructions(instr)
        compute = dpu.pipeline.compute_cycles(instr, tasklets)
        stage.lut_construction += dpu.combine_cycles(compute, dma)
        stage.lut_construction += dpu.charge_barrier()  # Barrier 1

        # --- Stage b': co-occurrence partial sums (Opt3, still "LUT" time:
        # the paper attributes the slight LUT-stage increase to this step).
        if payload.is_cae and payload.cooc is not None:
            flat_table = build_flat_table(lut, payload.cooc)
            instr = payload.cooc.n_slots * (
                INSTR_PER_COMBO_OVERHEAD
                + INSTR_PER_COMBO_ELEMENT * max(payload.cooc.combo_length, 1)
            )
            dpu.charge_instructions(instr)
            stage.lut_construction += dpu.pipeline.compute_cycles(instr, tasklets)
        else:
            flat_table = None
        stage.lut_construction += dpu.charge_barrier()  # Barrier 2

        # --- Stage c: distance calculation (memory-bound scan).
        if payload.is_cae:
            assert payload.encoded is not None and flat_table is not None
            dists = adc_distances_direct(
                payload.encoded.addresses,
                flat_table,
                payload.encoded.lengths.astype(np.int64),
            )
        else:
            assert payload.codes is not None
            dists = adc_distances(payload.codes, lut)

        chunk = _read_chunk_bytes(payload, cfg)
        scale = cfg.workload_scale
        dma = dpu.charge_mram_read(int(payload.scan_bytes * scale), chunk)
        instr = scale * (
            payload.token_count * INSTR_PER_TOKEN
            + payload.size * INSTR_PER_VECTOR_OVERHEAD
        )
        dpu.charge_instructions(instr)
        compute = dpu.pipeline.compute_cycles(instr, tasklets)
        stage.distance_calc += dpu.combine_cycles(compute, dma)
        stage.distance_calc += dpu.charge_barrier()  # Barrier 0 (next iter safety)

        all_ids.append(payload.ids)
        all_d.append(dists)

    # --- Stage d: top-k with thread-local heaps + pruned merge (Opt4).
    ids = np.concatenate(all_ids)
    dists = np.concatenate(all_d)
    out_v, out_i, heap_stats = scan_topk_fast(
        dists, ids, cfg.k, tasklets, prune=cfg.prune_topk
    )
    dpu.counters.heap_comparisons += heap_stats.comparisons
    dpu.counters.pruned_insertions += heap_stats.pruned
    # Charge the scan analytically at the *scaled* list length — heap
    # insertions grow logarithmically, so simulated counts cannot be
    # linearly rescaled.  The merge term keeps the simulated pruned /
    # naive split: its cost ratio is what Opt4 changes.
    scan_comps, scan_ins = estimate_scan_stats(
        ids.shape[0] * cfg.workload_scale, cfg.k, tasklets
    )
    instr = (
        scan_comps * INSTR_PER_HEAP_COMPARISON
        + scan_ins * INSTR_PER_HEAP_INSERTION
        + heap_stats.merge_comparisons * INSTR_PER_HEAP_COMPARISON
    )
    dpu.charge_instructions(instr)
    stage.topk_selection += dpu.pipeline.compute_cycles(instr, tasklets)
    stage.topk_selection += dpu.charge_barrier()  # Barrier 3
    # Result write-back to MRAM for the host to gather.
    stage.topk_selection += dpu.charge_mram_write(
        max(8, out_v.shape[0] * 8), CODEBOOK_CHUNK_BYTES
    )

    return QueryKernelOutput(
        ids=out_i, distances=out_v, stage=stage, heap_stats=heap_stats
    )


@dataclass
class DpuWorkLog:
    """Accumulated work of one DPU over a batch."""

    stage: StageCycles = field(default_factory=StageCycles)
    queries_served: int = 0
    pairs_served: int = 0
    # Top-k candidates actually produced (may be < queries_served * k on
    # small clusters); the result-gather transfer is sized from this.
    results_returned: int = 0

    @property
    def total_cycles(self) -> float:
        return self.stage.total


# --- Grouped (vectorized) execution path ------------------------------------
#
# The functions below reproduce run_query_on_dpu's *charges* float-for-
# float while fusing its *functional* work across every (query, cluster)
# pair assigned to one DPU.  The contract is strict: for any worklist,
# the grouped path must leave the DPU ledger, the per-stage cycle sums
# and the top-k outputs bit-identical to the per-pair loop (pinned by
# tests/sim/golden_timings.json and the grouped-equivalence tests).


@dataclass(frozen=True)
class PairCharges:
    """Precomputed cost of visiting one cluster payload for one query.

    Every term a (query, cluster) visit adds to the DPU ledger is a pure
    function of (payload, kernel config, tasklet count) — queries only
    change the *data*, never the modeled cost.  Planning the charges
    once per cluster and replaying them per visit is therefore exact:
    integer counter deltas add associatively, and the per-stage float
    terms are applied in the same order as the per-pair loop.
    """

    instructions: int  # sum of the per-charge int() truncations
    mram_read_bytes: int
    dma_transactions: int
    dma_cycles: int
    lut_combined: float  # combine_cycles(LUT compute, codebook DMA)
    is_cae: bool
    combo_compute: float  # partial-sum compute cycles (0.0 when plain)
    dist_combined: float  # combine_cycles(scan compute, scan DMA)
    # (total_bytes, chunk_bytes) of the two MRAM read streams, replayed
    # into telemetry per visit.
    dma_reads: tuple[tuple[int, int], ...]
    # The same streams pre-aggregated as (transfer size, count) pairs,
    # so batched replay skips the per-visit divmod/rounding.
    dma_read_observations: tuple[tuple[int, int], ...]


def plan_pair_charges(
    dpu: DPU, pq: ProductQuantizer, payload: ClusterPayload, cfg: KernelConfig
) -> PairCharges:
    """Plan one payload's visit charges without touching the ledger."""
    t = dpu.n_tasklets
    codebook_bytes = pq.dim * 256 * cfg.codebook_entry_bytes
    cb_dma = dpu.mram_model.bulk_transfer_cycles(codebook_bytes, CODEBOOK_CHUNK_BYTES)
    cb_tx = dpu.mram_model.transactions_for(codebook_bytes, CODEBOOK_CHUNK_BYTES)
    lut_instr = pq.m * pq.ksub * pq.dsub * INSTR_PER_LUT_ENTRY_PER_DIM
    lut_combined = dpu.combine_cycles(
        dpu.pipeline.compute_cycles(lut_instr, t), cb_dma
    )

    is_cae = payload.is_cae and payload.cooc is not None
    if is_cae:
        assert payload.cooc is not None
        combo_instr = payload.cooc.n_slots * (
            INSTR_PER_COMBO_OVERHEAD
            + INSTR_PER_COMBO_ELEMENT * max(payload.cooc.combo_length, 1)
        )
        combo_compute = dpu.pipeline.compute_cycles(combo_instr, t)
    else:
        combo_instr = 0.0
        combo_compute = 0.0

    chunk = _read_chunk_bytes(payload, cfg)
    scale = cfg.workload_scale
    scan_bytes = int(payload.scan_bytes * scale)
    scan_dma = dpu.mram_model.bulk_transfer_cycles(scan_bytes, chunk)
    scan_tx = dpu.mram_model.transactions_for(scan_bytes, chunk)
    dist_instr = scale * (
        payload.token_count * INSTR_PER_TOKEN
        + payload.size * INSTR_PER_VECTOR_OVERHEAD
    )
    dist_combined = dpu.combine_cycles(
        dpu.pipeline.compute_cycles(dist_instr, t), scan_dma
    )

    return PairCharges(
        instructions=int(lut_instr) + int(combo_instr) + int(dist_instr),
        mram_read_bytes=codebook_bytes + scan_bytes,
        dma_transactions=cb_tx + scan_tx,
        dma_cycles=int(cb_dma) + int(scan_dma),
        lut_combined=lut_combined,
        is_cae=is_cae,
        combo_compute=combo_compute,
        dist_combined=dist_combined,
        dma_reads=((codebook_bytes, CODEBOOK_CHUNK_BYTES), (scan_bytes, chunk)),
        dma_read_observations=dma_observations(codebook_bytes, CODEBOOK_CHUNK_BYTES)
        + dma_observations(scan_bytes, chunk),
    )


def apply_pair_charges(dpu: DPU, pc: PairCharges, stage: StageCycles) -> None:
    """Replay one visit's charges: ledger deltas + ordered stage floats."""
    counters = dpu.counters
    counters.instructions += pc.instructions
    counters.mram_read_bytes += pc.mram_read_bytes
    counters.dma_transactions += pc.dma_transactions
    counters.dma_cycles += pc.dma_cycles
    counters.barriers += 3  # Barriers 1, 2 and 0 of the per-pair loop
    for total_bytes, chunk in pc.dma_reads:
        observe_dma("read", total_bytes, chunk)
    barrier = dpu.barrier_model.barrier_cycles(dpu.n_tasklets)
    stage.lut_construction += pc.lut_combined
    stage.lut_construction += barrier
    if pc.is_cae:
        stage.lut_construction += pc.combo_compute
    stage.lut_construction += barrier
    stage.distance_calc += pc.dist_combined
    stage.distance_calc += barrier


def apply_topk_charges(
    dpu: DPU,
    stage: StageCycles,
    heap_stats: HeapStats,
    total_candidates: int,
    result_len: int,
    cfg: KernelConfig,
) -> None:
    """Charge the top-k stage exactly as run_query_on_dpu's stage d."""
    t = dpu.n_tasklets
    dpu.counters.heap_comparisons += heap_stats.comparisons
    dpu.counters.pruned_insertions += heap_stats.pruned
    scan_comps, scan_ins = estimate_scan_stats(
        total_candidates * cfg.workload_scale, cfg.k, t
    )
    instr = (
        scan_comps * INSTR_PER_HEAP_COMPARISON
        + scan_ins * INSTR_PER_HEAP_INSERTION
        + heap_stats.merge_comparisons * INSTR_PER_HEAP_COMPARISON
    )
    dpu.charge_instructions(instr)
    stage.topk_selection += dpu.pipeline.compute_cycles(instr, t)
    stage.topk_selection += dpu.charge_barrier()  # Barrier 3
    stage.topk_selection += dpu.charge_mram_write(
        max(8, result_len * 8), CODEBOOK_CHUNK_BYTES
    )


#: Row-chunk length for the fused ADC gather: bounds the (rows, m)
#: intermediate at a couple of MB so it stays cache-friendly instead
#: of materializing hundreds of MB for a large worklist (measured ~3x
#: faster than the one-shot gather at 20M rows).
_GATHER_CHUNK_ROWS = 1 << 16


def _gather_sum(table: np.ndarray, gidx: np.ndarray, base: np.ndarray) -> np.ndarray:
    """``table[gidx + base[:, None]].sum(axis=1)`` in row chunks.

    Rows reduce independently (the axis-1 sum of an 8-ish-wide float32
    row is sequential), so chunking over rows is bit-identical to the
    one-shot expression while keeping the gathered intermediate small.
    """
    n = gidx.shape[0]
    m = gidx.shape[1]
    dists = np.empty(n, dtype=np.float32)
    # One reused pair of chunk buffers: freshly mapped multi-MB
    # temporaries per chunk otherwise spend real time in page faults.
    rows = min(n, _GATHER_CHUNK_ROWS)
    idx = np.empty((rows, m), dtype=gidx.dtype)
    val = np.empty((rows, m), dtype=np.float32)
    for s in range(0, n, _GATHER_CHUNK_ROWS):
        e = min(n, s + _GATHER_CHUNK_ROWS)
        c = e - s
        np.add(gidx[s:e], base[s:e, None], out=idx[:c])
        np.take(table, idx[:c], out=val[:c])
        np.add.reduce(val[:c], axis=1, dtype=np.float32, out=dists[s:e])
    return dists


class GatherPlanCache:
    """Byte-bounded memo of worklist gather plans (functional-path only).

    The fused ADC gathers of :func:`compute_pair_distances` concatenate
    per-payload index arrays (gather offsets / safe addresses) and base
    offsets whose values depend only on the *payloads* in worklist
    order, never on the queries — so repeat traffic over a stable
    placement rebuilds identical multi-hundred-MB index concatenations
    every batch.  This cache keys them by (encoding kind, row width,
    ordered cluster-id tuple) and replays them.

    Insertion-only with a byte cap: worklists are stable across repeat
    traffic, so eviction churn would only add nondeterministic memory
    pressure — once full, new plans are simply not retained.  Cleared
    alongside the LUT cache (placement/index changes invalidate the
    payload arrays the plans index into).
    """

    def __init__(self, capacity_bytes: int = 1 << 30):
        self.capacity_bytes = int(capacity_bytes)
        self._plans: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def get(self, key: tuple) -> tuple[np.ndarray, np.ndarray] | None:
        return self._plans.get(key)

    def put(self, key: tuple, plan: tuple[np.ndarray, np.ndarray]) -> None:
        size = sum(int(a.nbytes) for a in plan)
        if self._bytes + size > self.capacity_bytes:
            return
        self._plans[key] = plan
        self._bytes += size

    def clear(self) -> None:
        self._plans.clear()
        self._bytes = 0


def compute_pair_distances(
    pairs: list[tuple[ClusterPayload, np.ndarray]],
    plan_cache: GatherPlanCache | None = None,
) -> list[np.ndarray]:
    """Fused ADC over many (payload, table) pairs.

    ``table`` is the (m, ksub) LUT for a plain payload or the flat
    [LUT | partial sums] table for a CAE payload.  Pairs are grouped by
    encoding and padded row width, so each row's gather and axis-1
    reduction run over exactly the same element sequence as the
    per-pair :func:`adc_distances` / :func:`adc_distances_direct` call
    — the outputs are bit-identical.

    ``plan_cache`` optionally memoizes the query-independent halves of
    each fused gather (concatenated index arrays + base offsets) across
    batches; the table values themselves are rebuilt every call.
    """
    out: list[np.ndarray] = [None] * len(pairs)  # type: ignore[list-item]
    groups: dict[tuple[str, int], list[int]] = {}
    for i, (payload, _) in enumerate(pairs):
        if payload.is_cae:
            assert payload.encoded is not None
            key = ("cae", payload.encoded.addresses.shape[1])
        else:
            assert payload.codes is not None
            key = ("plain", payload.codes.shape[1])
        groups.setdefault(key, []).append(i)

    for (kind, width), idxs in groups.items():
        if len(idxs) == 1:
            payload, table = pairs[idxs[0]]
            if kind == "plain":
                out[idxs[0]] = adc_distances(payload.codes, table)
            else:
                assert payload.encoded is not None
                out[idxs[0]] = adc_distances_direct(
                    payload.encoded.addresses,
                    table,
                    payload.encoded.lengths.astype(np.int64),
                )
            continue
        sizes = [pairs[i][0].size for i in idxs]
        plan_key: tuple | None = None
        plan = None
        if plan_cache is not None:
            plan_key = (kind, width, tuple(pairs[i][0].cluster_id for i in idxs))
            plan = plan_cache.get(plan_key)
        if kind == "plain":
            ksub = pairs[idxs[0]][1].shape[1]
            m = pairs[idxs[0]][0].codes.shape[1]
            if plan is None:
                gidx = np.concatenate(
                    [pairs[i][0].adc_gather_indices(ksub) for i in idxs]
                )
                base = np.repeat(
                    np.arange(len(idxs), dtype=np.int32) * np.int32(m * ksub),
                    sizes,
                )
                if plan_cache is not None and plan_key is not None:
                    plan_cache.put(plan_key, (gidx, base))
            else:
                gidx, base = plan
            flat = np.concatenate([pairs[i][1].reshape(-1) for i in idxs])
            dists = _gather_sum(flat, gidx, base)
        else:
            # Each pair's flat table is followed by one 0.0 sentinel
            # slot its dead addresses point at, so a single gather+sum
            # reproduces the masked per-pair reduction exactly.
            parts: list[np.ndarray] = []
            for i in idxs:
                parts.append(pairs[i][1])
                parts.append(_SENTINEL_ZERO)
            tables = np.concatenate(parts)
            if plan is None:
                # Table lengths are payload-determined (m * ksub plus
                # the cluster's slot count), so the base offsets are
                # query-independent and cacheable with the addresses.
                safes: list[np.ndarray] = []
                table_lens = np.empty(len(idxs), dtype=np.int64)
                for j, i in enumerate(idxs):
                    payload, table = pairs[i]
                    table_lens[j] = table.shape[0]
                    safes.append(payload.adc_safe_addresses(table.shape[0]))
                starts = np.zeros(len(idxs), dtype=np.int64)
                np.cumsum(table_lens[:-1] + 1, out=starts[1:])
                base = np.repeat(starts.astype(np.int32), sizes)
                gidx = np.concatenate(safes)
                if plan_cache is not None and plan_key is not None:
                    plan_cache.put(plan_key, (gidx, base))
            else:
                gidx, base = plan
            dists = _gather_sum(tables, gidx, base)
        start = 0
        for i, size in zip(idxs, sizes):
            out[i] = dists[start : start + size]
            start += size
    return out


def compute_groups_functional(
    groups: list[tuple[int, list[ClusterPayload]]],
    tables: dict[int, dict[int, np.ndarray]],
    k: int,
    n_tasklets: int,
    *,
    prune: bool = True,
    plan_cache: GatherPlanCache | None = None,
) -> tuple[list[tuple[np.ndarray, np.ndarray, HeapStats]], np.ndarray]:
    """Pure functional half of the grouped kernel: distances + top-k.

    Touches no ledger, no telemetry and no module state, so it is safe
    to run in a forked worker process (the ``repro.parallel`` executor
    ships exactly this computation out of process).  Returns the
    per-group ``(values, ids, HeapStats)`` triples in ``groups`` order
    plus the per-group candidate counts the charge replay needs.
    """
    pair_list: list[tuple[ClusterPayload, np.ndarray]] = []
    all_payloads: list[ClusterPayload] = []
    for qi, payloads in groups:
        if not payloads:
            raise ConfigError("no clusters assigned for this query on this DPU")
        for payload in payloads:
            pair_list.append((payload, tables[qi][payload.cluster_id]))
            all_payloads.append(payload)
    dists = compute_pair_distances(pair_list, plan_cache=plan_cache)

    # Pairs are already laid out in group order, so the per-group
    # candidate slices are just contiguous runs of one flat array.
    flat_v = dists[0] if len(dists) == 1 else np.concatenate(dists)
    flat_i = (
        all_payloads[0].ids
        if len(all_payloads) == 1
        else np.concatenate([p.ids for p in all_payloads])
    )
    pair_sizes = np.fromiter(
        (d.shape[0] for d in dists), np.int64, len(dists)
    )
    counts = np.fromiter((len(p) for _qi, p in groups), np.int64, len(groups))
    bounds = np.zeros(len(groups), dtype=np.int64)
    np.cumsum(counts[:-1], out=bounds[1:])
    group_sizes = np.add.reduceat(pair_sizes, bounds)
    topk = scan_topk_fast_batch_flat(
        flat_v, flat_i, group_sizes, k, n_tasklets, prune=prune
    )
    return topk, group_sizes


def run_batch_on_dpu(
    dpu: DPU,
    pq: ProductQuantizer,
    groups: list[tuple[int, list[ClusterPayload]]],
    cfg: KernelConfig,
    tables: dict[int, dict[int, np.ndarray]],
    charge_cache: dict[tuple[int, int], PairCharges] | None = None,
    plan_cache: GatherPlanCache | None = None,
) -> list[QueryKernelOutput]:
    """Grouped entry point: all (query, cluster) pairs of one DPU at once.

    ``groups`` lists (query index, payloads) in the scheduling order;
    ``tables[qi][cluster_id]`` supplies the precomputed functional table
    for each pair (from the engine's cross-batch LUT cache).  Distances
    are computed in fused gathers across the whole worklist and the
    per-query top-k selections run as one batched call
    (:func:`compute_groups_functional`); charges are then replayed per
    pair in the per-pair loop's exact order
    (:func:`replay_batch_charges`), so ledger and stage cycles match
    :func:`run_query_on_dpu` bit-for-bit.

    ``charge_cache`` optionally memoizes charge computations across
    calls (and batches): :class:`PairCharges` keyed by (cluster id,
    tasklet count), plus whole-group aggregates keyed by the group's
    ordered cluster-id tuple so repeat traffic replays a query's charges
    with one dict lookup.  ``plan_cache`` memoizes the worklists' fused
    gather plans the same way.
    """
    if not groups:
        return []
    topk, group_sizes = compute_groups_functional(
        groups,
        tables,
        cfg.k,
        dpu.n_tasklets,
        prune=cfg.prune_topk,
        plan_cache=plan_cache,
    )
    return replay_batch_charges(
        dpu, pq, groups, topk, group_sizes, cfg, charge_cache=charge_cache
    )


def replay_batch_charges(
    dpu: DPU,
    pq: ProductQuantizer,
    groups: list[tuple[int, list[ClusterPayload]]],
    topk: list[tuple[np.ndarray, np.ndarray, HeapStats]],
    group_sizes: np.ndarray,
    cfg: KernelConfig,
    charge_cache: dict[tuple[int, int], PairCharges] | None = None,
) -> list[QueryKernelOutput]:
    """Ledger half of the grouped kernel: replay every visit's charges.

    Consumes the functional results of :func:`compute_groups_functional`
    (wherever they were computed — inline or in a worker process) and
    charges the DPU ledger, stage cycles and DMA telemetry exactly as
    the per-pair reference loop would.  Must run in the parent process:
    this is the only half that mutates shared simulator state.
    """
    # Charge replay, batched.  Integer ledger deltas and DMA telemetry
    # increments add associatively, so they are accumulated locally and
    # flushed once; the per-stage cycle floats are the only
    # order-sensitive terms and are added in the per-pair loop's exact
    # sequence (each group's StageCycles starts from 0.0 as before).
    t = dpu.n_tasklets
    barrier = dpu.barrier_model.barrier_cycles(t)
    scale = cfg.workload_scale
    if charge_cache is None:
        charge_cache = {}
    instr_acc = read_bytes_acc = write_bytes_acc = 0
    tx_acc = dmac_acc = barriers_acc = 0
    heap_comp_acc = pruned_acc = 0
    read_obs: dict[int, int] = {}
    write_obs: dict[int, int] = {}

    outputs: list[QueryKernelOutput] = []
    for (_qi, payloads), (out_v, out_i, heap_stats), total in zip(
        groups, topk, group_sizes
    ):
        # Group-level memo: for a fixed tasklet count the whole group's
        # aggregated charges are determined by its ordered cluster-id
        # tuple — the stage floats are order-sensitive but deterministic,
        # so storing the summed result is bit-identical to re-summing.
        # Repeat traffic (the warm service path) hits this directly.
        gkey = ("group", tuple(p.cluster_id for p in payloads), t)
        agg = charge_cache.get(gkey)
        if agg is None:
            g_instr = g_read = g_tx = g_dmac = 0
            g_obs: dict[int, int] = {}
            lut_c = 0.0
            dist_c = 0.0
            for payload in payloads:
                key = (payload.cluster_id, t)
                pc = charge_cache.get(key)
                if pc is None:
                    pc = plan_pair_charges(dpu, pq, payload, cfg)
                    charge_cache[key] = pc
                g_instr += pc.instructions
                g_read += pc.mram_read_bytes
                g_tx += pc.dma_transactions
                g_dmac += pc.dma_cycles
                for size, count in pc.dma_read_observations:
                    g_obs[size] = g_obs.get(size, 0) + count
                lut_c += pc.lut_combined
                lut_c += barrier
                if pc.is_cae:
                    lut_c += pc.combo_compute
                lut_c += barrier
                dist_c += pc.dist_combined
                dist_c += barrier
            agg = (
                g_instr,
                g_read,
                g_tx,
                g_dmac,
                tuple(g_obs.items()),
                lut_c,
                dist_c,
                len(payloads),
            )
            charge_cache[gkey] = agg
        g_instr, g_read, g_tx, g_dmac, g_obs_items, lut_c, dist_c, n_pairs = agg
        instr_acc += g_instr
        read_bytes_acc += g_read
        tx_acc += g_tx
        dmac_acc += g_dmac
        barriers_acc += 3 * n_pairs  # Barriers 1, 2 and 0 per pair
        for size, count in g_obs_items:
            read_obs[size] = read_obs.get(size, 0) + count

        # Top-k stage, exactly as run_query_on_dpu's stage d.
        heap_comp_acc += heap_stats.comparisons
        pruned_acc += heap_stats.pruned
        skey = ("scan", int(total), t)
        scan = charge_cache.get(skey)
        if scan is None:
            scan = estimate_scan_stats(int(total) * scale, cfg.k, t)
            charge_cache[skey] = scan
        scan_comps, scan_ins = scan
        instr = (
            scan_comps * INSTR_PER_HEAP_COMPARISON
            + scan_ins * INSTR_PER_HEAP_INSERTION
            + heap_stats.merge_comparisons * INSTR_PER_HEAP_COMPARISON
        )
        instr_acc += int(instr)
        topk_c = dpu.pipeline.compute_cycles(instr, t)
        topk_c += barrier  # Barrier 3
        barriers_acc += 1
        wkey = ("write", out_v.shape[0], t)
        write = charge_cache.get(wkey)
        if write is None:
            nbytes = max(8, out_v.shape[0] * 8)
            cycles = dpu.mram_model.bulk_transfer_cycles(
                nbytes, CODEBOOK_CHUNK_BYTES
            )
            write = (
                cycles,
                nbytes,
                dpu.mram_model.transactions_for(nbytes, CODEBOOK_CHUNK_BYTES),
                int(cycles),
                dma_observations(nbytes, CODEBOOK_CHUNK_BYTES),
            )
            charge_cache[wkey] = write
        w_cycles, w_bytes, w_tx, w_dmac, w_observations = write
        write_bytes_acc += w_bytes
        tx_acc += w_tx
        dmac_acc += w_dmac
        for size, count in w_observations:
            write_obs[size] = write_obs.get(size, 0) + count
        topk_c += w_cycles

        outputs.append(
            QueryKernelOutput(
                ids=out_i,
                distances=out_v,
                stage=StageCycles(
                    lut_construction=lut_c,
                    distance_calc=dist_c,
                    topk_selection=topk_c,
                ),
                heap_stats=heap_stats,
            )
        )

    counters = dpu.counters
    counters.instructions += instr_acc
    counters.mram_read_bytes += read_bytes_acc
    counters.mram_write_bytes += write_bytes_acc
    counters.dma_transactions += tx_acc
    counters.dma_cycles += dmac_acc
    counters.barriers += barriers_acc
    counters.heap_comparisons += heap_comp_acc
    counters.pruned_insertions += pruned_acc
    observe_dma_batch("read", read_bytes_acc, read_obs)
    observe_dma_batch("write", write_bytes_acc, write_obs)
    return outputs
