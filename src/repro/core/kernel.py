"""The per-DPU IVFPQ kernel: functional execution + cycle charging.

This module simulates what the UpANNS DPU program does for one query on
one DPU (paper Figure 6): for each assigned cluster, build the LUT from
the codebook (threads share the work), compute the co-occurrence partial
sums, stream encoded points from MRAM and accumulate distances, feeding
thread-local top-k heaps; after the last cluster, merge the local heaps
into the DPU top-k with pruning (Opt4).  Four barriers separate the
stages.

Every functional step charges the DPU's ledger with the instruction and
DMA-traffic counts a real 350 MHz DPU would incur, using the per-token
cost constants below.  The constants are order-of-magnitude calibrated
against the UPMEM characterization literature; the *structure* (what
scales with M, cluster size, token count, read size, tasklets) is what
reproduces the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.core.encoding import EncodedCluster, build_flat_table
from repro.core.cooccurrence import CooccurrenceModel
from repro.core.topk import HeapStats, estimate_scan_stats, scan_topk_fast
from repro.hardware.counters import StageCycles
from repro.hardware.dpu import DPU
from repro.hardware.mram import MAX_DMA_BYTES, round_up_dma
from repro.hardware.specs import DEFAULT_N_TASKLETS
from repro.ivfpq.adc import adc_distances, adc_distances_direct
from repro.ivfpq.lut import build_lut
from repro.ivfpq.pq import ProductQuantizer

# --- Instruction cost constants (per element) -------------------------------
INSTR_PER_LUT_ENTRY_PER_DIM = 3.0  # load codeword elem, sub/mul, accumulate
# Per cached partial sum: one LUT load + add per combination element,
# plus store/bookkeeping.  (= 8 instructions at the default length 3.)
INSTR_PER_COMBO_ELEMENT = 2.0
INSTR_PER_COMBO_OVERHEAD = 2.0
# The ADC inner loop is tight on a DPU: a 32-bit WRAM load covers two
# uint16 tokens and the add dual-issues with the index increment, so the
# amortized cost is close to one instruction per token.  This makes the
# distance stage DMA-bound at small MRAM read sizes — the regime the
# paper's Figure 17 sweep exposes.
INSTR_PER_TOKEN = 1.2
INSTR_PER_VECTOR_OVERHEAD = 3.0  # id fetch + heap root compare + branch
INSTR_PER_HEAP_COMPARISON = 2.0
INSTR_PER_HEAP_INSERTION = 6.0
# The codebook is streamed at the maximum legal DMA size; imported from
# the spec module so the chunk tracks the hardware constraint.
CODEBOOK_CHUNK_BYTES = MAX_DMA_BYTES


@dataclass
class ClusterPayload:
    """What one cluster replica stores in a DPU's MRAM.

    Plain form keeps raw PQ codes; CAE form keeps the direct-address
    re-encoding.  ``nbytes`` is the on-device footprint used for both
    MRAM capacity checks and DMA traffic charging.
    """

    cluster_id: int
    ids: np.ndarray
    codes: np.ndarray | None = None  # (s, m) uint8, plain path
    encoded: EncodedCluster | None = None  # CAE path
    cooc: CooccurrenceModel | None = None

    def __post_init__(self) -> None:
        if (self.codes is None) == (self.encoded is None):
            raise ConfigError("payload must be exactly one of plain / CAE")

    @property
    def size(self) -> int:
        return int(self.ids.shape[0])

    @property
    def is_cae(self) -> bool:
        return self.encoded is not None

    @property
    def nbytes(self) -> int:
        if self.codes is not None:
            return int(self.ids.nbytes + self.codes.nbytes)
        assert self.encoded is not None
        return int(self.ids.nbytes + self.encoded.nbytes)

    @property
    def token_count(self) -> int:
        """Total ADC tokens the distance stage must consume."""
        if self.codes is not None:
            return int(self.codes.shape[0] * self.codes.shape[1])
        assert self.encoded is not None
        return int(self.encoded.lengths.sum())

    @property
    def scan_bytes(self) -> int:
        """Bytes streamed from MRAM during the distance stage."""
        if self.codes is not None:
            return int(self.codes.nbytes)
        assert self.encoded is not None
        return int(2 * self.encoded.lengths.sum())


@dataclass(frozen=True)
class KernelConfig:
    """Knobs the ablations sweep."""

    k: int = 10
    n_tasklets: int = DEFAULT_N_TASKLETS
    read_vectors: int = 16
    prune_topk: bool = True
    lut_entry_bytes: int = 2
    codebook_entry_bytes: int = 1
    # Timing-only extrapolation: multiply every per-point charge (scan
    # traffic, distance instructions, heap scan comparisons) by this
    # factor to model the paper's billion-scale list lengths while
    # computing functionally on scaled-down lists.  1.0 = no scaling.
    workload_scale: float = 1.0


@dataclass
class QueryKernelOutput:
    """One query's result on one DPU."""

    ids: np.ndarray  # ascending-distance local top-k
    distances: np.ndarray
    stage: StageCycles  # (compute+dma) cycles already combined per stage
    heap_stats: HeapStats


def _read_chunk_bytes(payload: ClusterPayload, cfg: KernelConfig) -> int:
    """DMA chunk size for scanning this cluster's encoded points."""
    if payload.codes is not None:
        per_vec = payload.codes.shape[1]
    else:
        assert payload.encoded is not None
        per_vec = 2 * payload.encoded.m  # worst-case tokens, 2 B each
    chunk = min(cfg.read_vectors * per_vec, MAX_DMA_BYTES)
    return round_up_dma(chunk)


def run_query_on_dpu(
    dpu: DPU,
    pq: ProductQuantizer,
    centroids: np.ndarray,
    payloads: list[ClusterPayload],
    query: np.ndarray,
    cfg: KernelConfig,
    luts: dict[int, np.ndarray] | None = None,
) -> QueryKernelOutput:
    """Execute one query over its clusters assigned to ``dpu``.

    Functional result: the exact local top-k over all assigned clusters.
    Timing result: per-stage cycles charged to the DPU ledger and
    returned in ``stage`` (DMA overlap already applied per stage).
    ``luts`` optionally supplies precomputed per-cluster LUTs (the engine
    batches their computation per query); the DPU is charged for
    building them either way.
    """
    if not payloads:
        raise ConfigError("no clusters assigned for this query on this DPU")
    stage = StageCycles()
    all_ids: list[np.ndarray] = []
    all_d: list[np.ndarray] = []
    tasklets = dpu.n_tasklets

    for payload in payloads:
        centroid = centroids[payload.cluster_id]
        # --- Stage b: LUT construction (threads share the codebook scan).
        if luts is not None and payload.cluster_id in luts:
            lut = luts[payload.cluster_id]
        else:
            lut = build_lut(pq, query, centroid)
        codebook_bytes = pq.dim * 256 * cfg.codebook_entry_bytes
        dma = dpu.charge_mram_read(codebook_bytes, CODEBOOK_CHUNK_BYTES)
        instr = pq.m * pq.ksub * pq.dsub * INSTR_PER_LUT_ENTRY_PER_DIM
        dpu.charge_instructions(instr)
        compute = dpu.pipeline.compute_cycles(instr, tasklets)
        stage.lut_construction += dpu.combine_cycles(compute, dma)
        stage.lut_construction += dpu.charge_barrier()  # Barrier 1

        # --- Stage b': co-occurrence partial sums (Opt3, still "LUT" time:
        # the paper attributes the slight LUT-stage increase to this step).
        if payload.is_cae and payload.cooc is not None:
            flat_table = build_flat_table(lut, payload.cooc)
            instr = payload.cooc.n_slots * (
                INSTR_PER_COMBO_OVERHEAD
                + INSTR_PER_COMBO_ELEMENT * max(payload.cooc.combo_length, 1)
            )
            dpu.charge_instructions(instr)
            stage.lut_construction += dpu.pipeline.compute_cycles(instr, tasklets)
        else:
            flat_table = None
        stage.lut_construction += dpu.charge_barrier()  # Barrier 2

        # --- Stage c: distance calculation (memory-bound scan).
        if payload.is_cae:
            assert payload.encoded is not None and flat_table is not None
            dists = adc_distances_direct(
                payload.encoded.addresses,
                flat_table,
                payload.encoded.lengths.astype(np.int64),
            )
        else:
            assert payload.codes is not None
            dists = adc_distances(payload.codes, lut)

        chunk = _read_chunk_bytes(payload, cfg)
        scale = cfg.workload_scale
        dma = dpu.charge_mram_read(int(payload.scan_bytes * scale), chunk)
        instr = scale * (
            payload.token_count * INSTR_PER_TOKEN
            + payload.size * INSTR_PER_VECTOR_OVERHEAD
        )
        dpu.charge_instructions(instr)
        compute = dpu.pipeline.compute_cycles(instr, tasklets)
        stage.distance_calc += dpu.combine_cycles(compute, dma)
        stage.distance_calc += dpu.charge_barrier()  # Barrier 0 (next iter safety)

        all_ids.append(payload.ids)
        all_d.append(dists)

    # --- Stage d: top-k with thread-local heaps + pruned merge (Opt4).
    ids = np.concatenate(all_ids)
    dists = np.concatenate(all_d)
    out_v, out_i, heap_stats = scan_topk_fast(
        dists, ids, cfg.k, tasklets, prune=cfg.prune_topk
    )
    dpu.counters.heap_comparisons += heap_stats.comparisons
    dpu.counters.pruned_insertions += heap_stats.pruned
    # Charge the scan analytically at the *scaled* list length — heap
    # insertions grow logarithmically, so simulated counts cannot be
    # linearly rescaled.  The merge term keeps the simulated pruned /
    # naive split: its cost ratio is what Opt4 changes.
    scan_comps, scan_ins = estimate_scan_stats(
        ids.shape[0] * cfg.workload_scale, cfg.k, tasklets
    )
    instr = (
        scan_comps * INSTR_PER_HEAP_COMPARISON
        + scan_ins * INSTR_PER_HEAP_INSERTION
        + heap_stats.merge_comparisons * INSTR_PER_HEAP_COMPARISON
    )
    dpu.charge_instructions(instr)
    stage.topk_selection += dpu.pipeline.compute_cycles(instr, tasklets)
    stage.topk_selection += dpu.charge_barrier()  # Barrier 3
    # Result write-back to MRAM for the host to gather.
    stage.topk_selection += dpu.charge_mram_write(
        max(8, out_v.shape[0] * 8), CODEBOOK_CHUNK_BYTES
    )

    return QueryKernelOutput(
        ids=out_i, distances=out_v, stage=stage, heap_stats=heap_stats
    )


@dataclass
class DpuWorkLog:
    """Accumulated work of one DPU over a batch."""

    stage: StageCycles = field(default_factory=StageCycles)
    queries_served: int = 0
    pairs_served: int = 0

    @property
    def total_cycles(self) -> float:
        return self.stage.total
