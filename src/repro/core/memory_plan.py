"""Opt2, memory half: static WRAM reuse planning (section 4.2.2, Figure 6).

The DPU has 64 KB of physically-addressed WRAM and no MMU, so UpANNS
plans the layout offline and *reuses* regions across pipeline stages:

* stage 1 (LUT build): codebooks + LUT are resident;
* stage 2 (combo sums): partial-sum buffer is carved out; the LUT and
  sums stay resident for the remainder of the query;
* stage 3 (distance calc): the codebook region is dead — its space is
  recycled into per-tasklet MRAM read buffers and thread-local heaps,
  which is what lets 16 threads load encoded points concurrently in the
  paper's SIFT example.

:func:`plan_wram` computes the layout and the maximum tasklet count the
leftover space supports; :func:`apply_plan` replays it against a real
:class:`~repro.hardware.wram.WramAllocator` so tests can prove the plan
never overlaps live buffers or exceeds capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, WramOverflowError
from repro.hardware.mram import MAX_DMA_BYTES, round_up_dma
from repro.hardware.specs import DEFAULT_N_TASKLETS, DpuSpec
from repro.hardware.wram import WramAllocator

LUT_ENTRY_BYTES = 2  # uint16 on-device (paper: M x 256 x sizeof(uint16))
CODEBOOK_ENTRY_BYTES = 1  # uint8 codebook elements (paper: D x 256 = 32 KB)
COMBO_SUM_BYTES = 2
HEAP_ENTRY_BYTES = 8  # 4 B distance + 4 B id per retained candidate

# --- Declarative layout for the paper-default geometry ----------------------
# SIFT-style geometry: D=128, M=16, k=10, 256 length-3 combo slots,
# 16-byte codes read 16 vectors per DMA, 11 resident tasklets.
_PAPER_DIM = 128
_PAPER_M = 16
_PAPER_K = 10
_PAPER_COMBO_SLOTS = 256
_PAPER_READ_BUFFER_BYTES = 256  # round_up_dma(16 vectors x 16 B codes)

#: Static WRAM plan for the per-DPU kernel, phase by phase (Figure 6):
#: the codebook region is live only until the LUT is built, then its
#: space is recycled into per-tasklet read buffers and heaps.  simlint's
#: WRAM001 rule const-evaluates this structure and proves — before any
#: kernel runs — that every phase fits in ``DpuSpec.wram_bytes`` with no
#: two simultaneously-live regions overlapping, complementing the
#: dynamic checks :func:`apply_plan` performs at runtime.
KERNEL_WRAM_LAYOUT = (
    (
        "lut_build",
        (
            ("codebook", _PAPER_DIM * 256 * CODEBOOK_ENTRY_BYTES),
            ("lut", _PAPER_M * 256 * LUT_ENTRY_BYTES),
        ),
    ),
    (
        "combo_sums",
        (
            ("codebook", _PAPER_DIM * 256 * CODEBOOK_ENTRY_BYTES),
            ("lut", _PAPER_M * 256 * LUT_ENTRY_BYTES),
            ("combo_sums", _PAPER_COMBO_SLOTS * COMBO_SUM_BYTES),
        ),
    ),
    (
        "distance_scan",
        (
            ("lut", _PAPER_M * 256 * LUT_ENTRY_BYTES),
            ("combo_sums", _PAPER_COMBO_SLOTS * COMBO_SUM_BYTES),
            ("read_buffers", DEFAULT_N_TASKLETS * _PAPER_READ_BUFFER_BYTES),
            ("heaps", DEFAULT_N_TASKLETS * _PAPER_K * HEAP_ENTRY_BYTES),
        ),
    ),
)


@dataclass(frozen=True)
class WramPlan:
    """Computed WRAM budget for one (query, cluster) kernel."""

    codebook_bytes: int
    lut_bytes: int
    combo_sum_bytes: int
    read_buffer_bytes: int  # per tasklet, DMA-aligned
    heap_bytes: int  # per tasklet
    max_tasklets: int
    wram_capacity: int

    @property
    def stage1_resident(self) -> int:
        """Bytes live while building the LUT (codebook + LUT)."""
        return self.codebook_bytes + self.lut_bytes

    @property
    def stage3_resident(self) -> int:
        """Bytes live during distance calc (LUT + sums + per-tasklet)."""
        return (
            self.lut_bytes
            + self.combo_sum_bytes
            + self.max_tasklets * (self.read_buffer_bytes + self.heap_bytes)
        )

    def tasklets_supported(self, requested: int) -> int:
        """Clamp a requested tasklet count to what WRAM can feed."""
        return max(1, min(requested, self.max_tasklets))


def plan_wram(
    spec: DpuSpec,
    *,
    dim: int,
    m: int,
    k: int,
    n_combo_slots: int,
    vector_bytes: int,
    read_vectors: int,
    requested_tasklets: int,
) -> WramPlan:
    """Compute the reuse plan for the given index geometry.

    ``vector_bytes`` is the MRAM footprint of one encoded vector
    (M bytes plain, 2 x tokens for CAE); ``read_vectors`` is the number
    of vectors fetched per DMA (paper default 16, Figure 17).
    """
    if read_vectors < 1 or requested_tasklets < 1:
        raise ConfigError("read_vectors and tasklets must be >= 1")
    codebook = dim * 256 * CODEBOOK_ENTRY_BYTES
    lut = m * 256 * LUT_ENTRY_BYTES
    combo = n_combo_slots * COMBO_SUM_BYTES
    if codebook + lut + combo > spec.wram_bytes:
        raise WramOverflowError(
            f"codebook ({codebook} B) + LUT ({lut} B) + combo sums "
            f"({combo} B) exceed WRAM ({spec.wram_bytes} B); reduce D or M"
        )
    payload = read_vectors * vector_bytes
    if payload > MAX_DMA_BYTES:
        raise ConfigError(
            f"{read_vectors} vectors x {vector_bytes} B = {payload} B "
            f"exceeds the {MAX_DMA_BYTES} B DMA limit"
        )
    read_buffer = round_up_dma(payload)
    heap = k * HEAP_ENTRY_BYTES

    # Stage 3 reuses the codebook's space: resident = LUT + sums +
    # T * (read buffer + heap)  <= capacity.
    available = spec.wram_bytes - lut - combo
    per_tasklet = read_buffer + heap
    max_tasklets = min(available // per_tasklet, spec.max_tasklets)
    if max_tasklets < 1:
        raise WramOverflowError(
            f"per-tasklet footprint {per_tasklet} B does not fit in the "
            f"{available} B left after LUT and combo sums"
        )
    return WramPlan(
        codebook_bytes=codebook,
        lut_bytes=lut,
        combo_sum_bytes=combo,
        read_buffer_bytes=read_buffer,
        heap_bytes=heap,
        max_tasklets=int(max_tasklets),
        wram_capacity=spec.wram_bytes,
    )


def apply_plan(plan: WramPlan, allocator: WramAllocator, n_tasklets: int) -> None:
    """Replay the plan's alloc/free sequence on a real allocator.

    Raises :class:`~repro.errors.WramOverflowError` if the plan lied
    about fitting — this is the executable proof of Figure 6's reuse
    story, exercised by unit and property tests.
    """
    n_tasklets = plan.tasklets_supported(n_tasklets)
    # Stage 1: LUT construction.
    allocator.alloc("codebook", plan.codebook_bytes)
    allocator.alloc("lut", plan.lut_bytes)
    # Stage 2: combination partial sums (codebook still resident while
    # threads finish reading it; sums fit beside it by construction).
    if plan.combo_sum_bytes:
        allocator.alloc("combo_sums", plan.combo_sum_bytes)
    # Stage 3: the codebook region is recycled for read buffers + heaps.
    allocator.free("codebook")
    for t in range(n_tasklets):
        allocator.alloc(f"read_buffer_{t}", plan.read_buffer_bytes)
        allocator.alloc(f"heap_{t}", plan.heap_bytes)
    allocator.verify_no_overlap()


def release_plan(plan: WramPlan, allocator: WramAllocator, n_tasklets: int) -> None:
    """Free everything :func:`apply_plan` allocated (end of query)."""
    n_tasklets = plan.tasklets_supported(n_tasklets)
    allocator.free("lut")
    if plan.combo_sum_bytes:
        allocator.free("combo_sums")
    for t in range(n_tasklets):
        allocator.free(f"read_buffer_{t}")
        allocator.free(f"heap_{t}")
