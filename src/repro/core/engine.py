"""The UpANNS engine: offline build + online batch search (paper section 3).

Offline: train IVFPQ, mine co-occurrences and re-encode clusters (Opt3),
place cluster replicas across DPUs from the access trace (Opt1), load
MRAM and plan WRAM (Opt2).  Online: host-side cluster filtering and
greedy scheduling (Opt1), per-DPU kernel execution (Opt2/3/4), host-side
aggregation.  Functional results are exact IVFPQ results; timing comes
from the hardware models.

Setting ``enable_placement/enable_cae/enable_topk_pruning`` to False
turns the engine into the paper's PIM-naive baseline (same resource
management, none of the UpANNS optimizations).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace

import numpy as np

from repro.config import IndexConfig, QueryConfig, SystemConfig, UpANNSConfig
from repro.errors import ConfigError, DpuFailedError, NotTrainedError
from repro.faults import (
    DegradedResult,
    FaultPlan,
    FaultState,
    coverage_fractions,
    restrict_placement,
)
from repro.core.cooccurrence import mine_combinations
from repro.core.encoding import build_flat_table, encode_cluster
from repro.core.kernel import (
    ClusterPayload,
    DpuWorkLog,
    GatherPlanCache,
    KernelConfig,
    replay_batch_charges,
    run_batch_on_dpu,
    run_query_on_dpu,
)
from repro.core.lut_cache import LutCache, query_digest
from repro.core.memory_plan import WramPlan, plan_wram
from repro.core.placement import Placement, place_clusters, random_placement
from repro.core.scheduling import Assignment, schedule_batch
from repro.core.topk import HeapStats
from repro.hardware.counters import StageCycles
from repro.hardware.host import HostModel
from repro.hardware.rank import PimSystem
from repro.ivfpq.adc import topk_from_distances
from repro.ivfpq.index import IVFPQIndex
from repro.metrics.balance import max_mean_ratio
from repro.metrics.breakdown import stage_seconds_from_schedule
from repro.sanitize.hook import debug_sanitize_schedule
from repro.telemetry.pipeline import observe_batch, observe_faults
from repro.sim import (
    HOST_CPU,
    PIM_BUS,
    STAGE_AGGREGATE,
    STAGE_CLUSTER_FILTER,
    STAGE_RETRY,
    STAGE_SCHEDULE,
    STAGE_TRANSFER_IN,
    STAGE_TRANSFER_OUT,
    BatchSchedule,
    BatchTiming,
    BatchWork,
    resolve_sim_engine,
)
from repro.tracing.context import TraceContext
from repro.workload.trace import AccessTrace

logger = logging.getLogger(__name__)


@dataclass
class OfflineStats:
    """What the offline phase cost and produced (reported by build()).

    ``mram_load_seconds`` models pushing every cluster replica from the
    host into MRAM.  Per-DPU payloads are naturally non-uniform, so the
    transfer serializes (paper section 2.2) — a one-time cost the online
    phase then amortizes.
    """

    mram_load_seconds: float = 0.0
    mram_load_parallel: bool = False
    total_payload_bytes: int = 0
    replication_overhead: float = 1.0  # stored bytes / unique bytes

    def amortized_over(self, n_queries: int, batch_qps: float) -> float:
        """Fraction of total serving time the load cost represents after
        ``n_queries`` have been served at ``batch_qps``."""
        if n_queries <= 0 or batch_qps <= 0:
            raise ConfigError("need positive query volume and QPS")
        serve_s = n_queries / batch_qps
        return self.mram_load_seconds / (self.mram_load_seconds + serve_s)


@dataclass
class BatchResult:
    """Functional + modeled-timing outcome of one batch."""

    ids: np.ndarray  # (nq, k) int64, -1 padded
    distances: np.ndarray  # (nq, k) float32, inf padded
    timing: BatchTiming
    stage_seconds: StageCycles  # breakdown incl. host filter (Figure 19)
    assignment: Assignment
    heap_stats: HeapStats
    cycle_load_ratio: float  # measured max/mean DPU busy cycles
    dpu_busy_seconds: np.ndarray = field(default_factory=lambda: np.zeros(0))
    schedule: BatchSchedule | None = None  # per-resource event timelines
    #: Fault-plane outcome; ``None`` on the fault-free path.
    degraded: DegradedResult | None = None
    #: The batch's work description (the DAG ``schedule`` was executed
    #: from) — what cross-batch stream execution re-runs under queuing.
    work: BatchWork | None = None

    @property
    def qps(self) -> float:
        n = self.ids.shape[0]
        total = self.timing.total_s
        return n / total if total > 0 else float("inf")

    def energy_report(self, pim_spec) -> dict[str, float]:
        """Activity-based energy accounting for this batch (J, J/query,
        idle-energy share) next to the paper's peak-power figure."""
        from repro.hardware.energy import batch_energy_report

        return batch_energy_report(
            pim_spec,
            self.dpu_busy_seconds,
            self.timing.dpu_makespan_s,
            self.ids.shape[0],
        )


@dataclass
class UpANNSEngine:
    """Facade over the full UpANNS system."""

    config: SystemConfig
    index: IVFPQIndex = field(init=False)
    pim: PimSystem = field(init=False)
    host: HostModel = field(default_factory=HostModel)
    placement: Placement | None = None
    wram_plan: WramPlan | None = None
    trace: AccessTrace | None = None
    offline: OfflineStats | None = None
    lut_cache: LutCache | None = None
    _payloads: list[ClusterPayload] = field(default_factory=list)
    _sizes: np.ndarray | None = None
    _owned: np.ndarray | None = None
    _built: bool = False
    _codebook_version: int = 0
    #: Live fault runtime; ``None`` keeps the engine on the exact
    #: fault-free code path (golden-pinned).
    fault_state: FaultState | None = None
    #: Execution core for batch schedules: ``"analytic"``/``"event"``,
    #: or ``None`` to defer to the ``REPRO_SIM_ENGINE`` environment
    #: variable (default analytic; see repro.sim.events).
    sim_engine: str | None = None
    #: Functional-path executor for the grouped kernel: ``"serial"``
    #: (inline, the default), ``"process"`` / ``"process:N"`` (DPU
    #: groups fan out over N worker processes attached to shared-memory
    #: views of the index), or ``None`` to defer to the
    #: ``REPRO_EXECUTOR`` environment variable.  Results are
    #: bit-identical across backends; only host wall-clock changes.
    executor: str | None = None
    # Memoized per-cluster visit charges for the grouped kernel, keyed
    # (cluster_id, n_tasklets); cleared with the LUT cache.
    _pair_charges: dict = field(default_factory=dict)
    # Memoized fused-gather plans for the grouped kernel (cross-batch,
    # query-independent); cleared with the LUT cache.
    _gather_plans: GatherPlanCache = field(default_factory=GatherPlanCache)
    # Monotonic epoch for worker-side caches: bumped whenever the
    # cross-batch caches are cleared so pool workers drop theirs too.
    _cache_epoch: int = 0
    # Live process-pool runtime (repro.parallel); built lazily on the
    # first parallel batch, torn down on index/placement changes.
    _executor_runtime: object | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        ic = self.config.index
        self.index = IVFPQIndex(ic.dim, ic.n_clusters, ic.m, ic.nbits)

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------

    def build(
        self,
        vectors: np.ndarray,
        *,
        frequencies: np.ndarray | None = None,
        history_queries: np.ndarray | None = None,
        train_vectors: np.ndarray | None = None,
        prebuilt_index: IVFPQIndex | None = None,
        cluster_subset: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> "UpANNSEngine":
        """Run the complete offline pipeline of Figure 5 (top).

        Cluster access frequencies for Algorithm 1 come from, in order of
        preference: an explicit ``frequencies`` vector, a sample of
        ``history_queries`` (filtered through the freshly-trained coarse
        quantizer, mirroring how the paper derives f_i from historical
        access patterns), or a uniform prior.

        ``cluster_subset`` restricts which clusters this engine owns
        (places in MRAM) — the multi-host extension of paper section 5.5
        shards the global cluster set across hosts this way.  Queries
        must then arrive with externally computed ``probes`` limited to
        owned clusters.
        """
        ic, uc = self.config.index, self.config.upanns
        rng = rng if rng is not None else np.random.default_rng(0)
        vectors = np.ascontiguousarray(np.atleast_2d(vectors), dtype=np.float32)

        if prebuilt_index is not None:
            if not prebuilt_index.is_trained or prebuilt_index.ntotal == 0:
                raise NotTrainedError("prebuilt_index must be trained and populated")
            if (prebuilt_index.dim, prebuilt_index.n_clusters, prebuilt_index.m) != (
                ic.dim,
                ic.n_clusters,
                ic.m,
            ):
                raise ConfigError("prebuilt_index geometry does not match config")
            self.index = prebuilt_index
        else:
            train = train_vectors if train_vectors is not None else vectors
            self.index.train(train, n_iter=ic.train_iters, rng=rng)
            self.index.add(vectors)

        sizes = self.index.ivf.cluster_sizes()
        self._sizes = sizes
        self.trace = AccessTrace(ic.n_clusters)
        if frequencies is None and history_queries is not None:
            hist_probes = self.index.ivf.search_clusters(
                np.atleast_2d(history_queries), self.config.query.nprobe
            )
            self.trace.record_batch(hist_probes)
            frequencies = self.trace.frequencies()
        elif frequencies is None:
            frequencies = np.full(ic.n_clusters, 1.0 / ic.n_clusters)
        else:
            frequencies = np.asarray(frequencies, dtype=np.float64)
            frequencies = frequencies / frequencies.sum()

        if cluster_subset is not None:
            owned = np.zeros(ic.n_clusters, dtype=bool)
            owned[np.asarray(cluster_subset, dtype=np.int64)] = True
        else:
            owned = np.ones(ic.n_clusters, dtype=bool)
        self._owned = owned

        self._payloads = self._encode_payloads()
        self._place_and_load(frequencies, rng)
        self.wram_plan = self._plan_wram()
        self.offline = self._offline_stats()
        self._invalidate_caches()
        self._built = True
        logger.info(
            "built UpANNS: %d clusters on %d DPUs, %.2f replicas/cluster, "
            "CAE length reduction %.1f%%, %d tasklets/DPU",
            int(owned.sum()),
            self.config.pim.n_dpus,
            self.replication_factor(),
            self.length_reduction_rate() * 100,
            self.pim.dpus[0].n_tasklets,
        )
        return self

    def _encode_payloads(self) -> list[ClusterPayload]:
        """Opt3 per cluster: mine combinations and re-encode, or keep plain."""
        uc = self.config.upanns
        payloads: list[ClusterPayload] = []
        for cl in self.index.ivf.lists:
            if uc.enable_cae and cl.size > 0:
                model = mine_combinations(
                    cl.codes,
                    top_m=uc.cae_combos,
                    combo_length=uc.cae_combo_length,
                )
                encoded = encode_cluster(cl.codes, model)
                payloads.append(
                    ClusterPayload(
                        cluster_id=cl.cluster_id,
                        ids=cl.ids,
                        encoded=encoded,
                        cooc=model,
                    )
                )
            else:
                payloads.append(
                    ClusterPayload(cluster_id=cl.cluster_id, ids=cl.ids, codes=cl.codes)
                )
        return payloads

    def _max_dpu_vectors(self) -> int:
        uc, ic = self.config.upanns, self.config.index
        if uc.max_dpu_vectors is not None:
            return uc.max_dpu_vectors
        # Worst-case on-device bytes per vector: 2 B/token x m tokens + id.
        per_vector = 2 * ic.m + 8
        return int(self.config.pim.dpu.mram_bytes // per_vector)

    def _place_and_load(
        self,
        frequencies: np.ndarray,
        rng: np.random.Generator,
        *,
        exclude_dpus: frozenset[int] = frozenset(),
    ) -> None:
        uc = self.config.upanns
        sizes = self._sizes
        assert sizes is not None
        owned = (
            self._owned
            if self._owned is not None
            else np.ones(sizes.shape[0], dtype=bool)
        )
        owned_ids = np.flatnonzero(owned)
        max_vec = self._max_dpu_vectors()
        n_dpus = self.config.pim.n_dpus
        # Recovery placements run over the surviving DPUs only: the
        # sub-placement sees a dense id space of live DPUs and is mapped
        # back to global ids afterwards, so dead devices hold nothing.
        live = [d for d in range(n_dpus) if d not in exclude_dpus]
        if not live:
            raise DpuFailedError("cannot place: every DPU is excluded as dead")
        if uc.enable_placement:
            sub_placement = place_clusters(
                sizes[owned_ids],
                frequencies[owned_ids],
                len(live),
                max_dpu_vectors=max_vec,
                centroids=self.index.ivf.centroids[owned_ids],
                threshold_rate=uc.placement_threshold_rate,
                replication_headroom=uc.replication_headroom,
            )
        else:
            sub_placement = random_placement(
                sizes[owned_ids],
                len(live),
                max_dpu_vectors=max_vec,
                rng=rng,
            )
        # Map the owned-subset placement back onto global cluster ids;
        # unowned clusters keep empty replica lists (scheduling to them
        # is a SchedulingError, by design).
        replicas: list[list[int]] = [[] for _ in range(sizes.shape[0])]
        for local, global_id in enumerate(owned_ids):
            replicas[int(global_id)] = [live[d] for d in sub_placement.replicas[local]]
        dpu_w = np.zeros(n_dpus, dtype=sub_placement.dpu_workload.dtype)
        dpu_w[live] = sub_placement.dpu_workload
        dpu_s = np.zeros(n_dpus, dtype=sub_placement.dpu_vectors.dtype)
        dpu_s[live] = sub_placement.dpu_vectors
        self.placement = Placement(
            n_dpus=n_dpus,
            replicas=replicas,
            dpu_workload=dpu_w,
            dpu_vectors=dpu_s,
            mean_workload=sub_placement.mean_workload,
        )
        self.pim = PimSystem(self.config.pim, n_tasklets=uc.n_tasklets)
        for c, payload in enumerate(self._payloads):
            if payload.size == 0 or not owned[c]:
                continue
            # MRAM capacity accounting per replica; arrays are shared
            # (zero-copy) between replicas — only the byte ledger differs.
            blob = np.empty(payload.nbytes, dtype=np.uint8)
            for d in self.placement.replicas[c]:
                self.pim.dpu(d).mram_store(f"cluster_{c}", blob)

    def _offline_stats(self) -> OfflineStats:
        """Model the one-time host->MRAM index load (section 2.2)."""
        per_dpu_bytes = [d.mram_used_bytes for d in self.pim.dpus]
        transfer = self.pim.host_transfer_seconds(per_dpu_bytes)
        unique = sum(p.nbytes for p in self._payloads if p.size > 0)
        stored = sum(per_dpu_bytes)
        return OfflineStats(
            mram_load_seconds=transfer.seconds,
            mram_load_parallel=transfer.parallel,
            total_payload_bytes=stored,
            replication_overhead=stored / unique if unique else 1.0,
        )

    def _invalidate_caches(self) -> None:
        """Drop cross-batch state after an index/placement change.

        The codebook version bump makes every existing LUT-cache key
        unreachable; the explicit clear releases the bytes immediately.
        The process-pool runtime (if any) is torn down too — its workers
        hold shared-memory views of the *old* payload arrays.
        """
        self._codebook_version += 1
        if self.lut_cache is None:
            self.lut_cache = LutCache(self.config.upanns.lut_cache_bytes)
        self._shutdown_executor()
        self.clear_runtime_caches()

    def clear_runtime_caches(self) -> None:
        """Empty the cross-batch caches without touching the placement.

        Used by ``repro.perf`` to measure a cold batch on a built
        engine; functionally a no-op (the caches only skip recompute).
        The epoch bump tells pool workers to drop their local table
        memos on the next task, so "cold" stays cold under every
        executor backend.
        """
        if self.lut_cache is not None:
            self.lut_cache.clear()
        self._pair_charges.clear()
        self._gather_plans.clear()
        self._cache_epoch += 1

    def close(self) -> None:
        """Release process-pool workers and shared-memory segments.

        Safe to call repeatedly; a serial engine makes this a no-op.
        """
        self._shutdown_executor()

    def _shutdown_executor(self) -> None:
        runtime = self._executor_runtime
        self._executor_runtime = None
        if runtime is not None:
            runtime.shutdown()  # type: ignore[attr-defined]

    def _resolve_executor_runtime(self):
        """The live parallel runtime for this batch, or None for serial.

        Resolution order: the ``executor`` field if set, else the
        ``REPRO_EXECUTOR`` environment variable, else serial.  The pool
        (and its shared-memory index views) is built on first use and
        reused across batches until the spec changes or the index /
        placement is invalidated.
        """
        import os

        from repro.parallel import ProcessExecutor, parse_executor_spec

        spec = parse_executor_spec(
            self.executor
            if self.executor is not None
            else os.environ.get("REPRO_EXECUTOR", "serial")
        )
        if spec.kind == "serial":
            self._shutdown_executor()
            return None
        runtime = self._executor_runtime
        if runtime is not None and runtime.n_workers != spec.workers:  # type: ignore[attr-defined]
            self._shutdown_executor()
            runtime = None
        if runtime is None:
            runtime = ProcessExecutor(spec.workers)
            runtime.start(self._payloads, self.index.pq, self.index.ivf.centroids,
                          lut_cache_bytes=self.config.upanns.lut_cache_bytes)
            self._executor_runtime = runtime
        return runtime

    def _plan_wram(self) -> WramPlan:
        ic, uc, qc = self.config.index, self.config.upanns, self.config.query
        n_slots = uc.cae_combos if uc.enable_cae else 0
        vector_bytes = 2 * ic.m if uc.enable_cae else ic.m
        plan = plan_wram(
            self.config.pim.dpu,
            dim=ic.dim,
            m=ic.m,
            k=qc.k,
            n_combo_slots=n_slots,
            vector_bytes=vector_bytes,
            read_vectors=uc.mram_read_vectors,
            requested_tasklets=uc.n_tasklets,
        )
        effective = plan.tasklets_supported(uc.n_tasklets)
        for d in self.pim.dpus:
            d.n_tasklets = effective
        # Modeled residency peak: stage 2 (codebook + LUT + combo sums)
        # vs stage 3 (LUT + sums + per-tasklet buffers after reuse).
        from repro.telemetry.pipeline import observe_wram_peak

        observe_wram_peak(
            max(
                plan.stage1_resident + plan.combo_sum_bytes,
                plan.lut_bytes
                + plan.combo_sum_bytes
                + effective * (plan.read_buffer_bytes + plan.heap_bytes),
            )
        )
        return plan

    # ------------------------------------------------------------------
    # Online phase
    # ------------------------------------------------------------------

    def search_batch(
        self,
        queries: np.ndarray,
        *,
        k: int | None = None,
        probes: list[np.ndarray] | np.ndarray | None = None,
        trace: TraceContext | None = None,
        nprobe: int | None = None,
    ) -> BatchResult:
        """Process one batch through the Figure 5 online pipeline.

        ``probes`` optionally supplies externally computed per-query
        cluster lists (2-D matrix or ragged list of id arrays).  Used by
        the multi-host coordinator, which runs cluster filtering once
        and ships each host only the clusters it owns; the host-side
        filtering cost is then charged by the coordinator, not here.

        ``trace`` carries the batch's per-query trace ids (assigned at
        service intake); standalone calls get a batch-local default so
        every emitted span is attributable either way.

        ``nprobe`` shrinks this batch's cluster probing below the
        configured ``QueryConfig.nprobe`` (the serving frontend's
        degrade response under overload).  The result carries a
        :class:`DegradedResult` whose coverage is scaled by
        ``nprobe / configured`` so callers see the intentional recall
        sacrifice through the same surface as fault degradation.
        """
        if not self._built:
            raise NotTrainedError("build() must be called before search_batch()")
        qc, ic, uc = self.config.query, self.config.index, self.config.upanns
        k = k if k is not None else qc.k
        if nprobe is not None:
            if isinstance(nprobe, bool) or not isinstance(nprobe, int):
                raise ConfigError(f"nprobe override must be an integer, got {nprobe!r}")
            if not 1 <= nprobe <= qc.nprobe:
                raise ConfigError(
                    f"nprobe override {nprobe} outside [1, {qc.nprobe}] "
                    "(it can only shrink probing, never widen it)"
                )
            if probes is not None:
                raise ConfigError(
                    "nprobe override conflicts with precomputed probes"
                )
        eff_nprobe = nprobe if nprobe is not None else qc.nprobe
        queries = np.ascontiguousarray(np.atleast_2d(queries), dtype=np.float32)
        nq = queries.shape[0]
        sizes = self._sizes
        assert sizes is not None and self.placement is not None
        ctx = trace if trace is not None else TraceContext.for_batch(nq)
        if len(ctx) != nq:
            raise ConfigError(
                f"trace context carries {len(ctx)} ids for a batch of {nq}"
            )

        work = BatchWork(
            dpu_frequency_hz=self.config.pim.dpu.frequency_hz, batch=ctx.batch
        )
        host_prep: int | None = None

        # (a) Cluster filtering on the host (skipped when the probes
        # arrive pre-computed from a coordinator).
        if probes is None:
            probes = self.index.ivf.search_clusters(queries, eff_nprobe)
            host_prep = work.work(
                HOST_CPU,
                STAGE_CLUSTER_FILTER,
                self.host.cluster_filter_seconds(nq, ic.n_clusters, ic.dim),
                trace_ids=ctx.all_ids(),
            )
        elif not isinstance(probes, (list, tuple)):
            probes = np.atleast_2d(np.asarray(probes, dtype=np.int64))
        if isinstance(probes, (list, tuple)) and len(probes) != nq:
            raise ConfigError("probes must supply one cluster list per query")
        assert self.trace is not None
        self.trace.record_batch(probes)
        if uc.lut_admission_floor > 0.0 and self.lut_cache is not None:
            # Cost-aware admission: refresh the per-cluster frequency
            # view so below-floor (one-shot tail) clusters are computed
            # but not retained.  Purely a retention policy — table
            # values and modeled charges are untouched.
            self.lut_cache.set_admission(
                self.trace.frequencies(), uc.lut_admission_floor
            )

        # Empty probed clusters contribute no candidates; drop the dead
        # (query, cluster) pairs before scheduling and LUT construction.
        probes_exec = _live_probes(probes, sizes)

        # Fault plane: everything due this batch is applied *before*
        # scheduling, so dead DPUs are already excluded from routing and
        # this batch's transient transfer faults are known up front.
        # With no injected plan this whole path is skipped and the
        # engine runs the exact golden-pinned code.
        state = self.fault_state
        faults = state.begin_batch() if state is not None else None
        exec_placement = self.placement
        rerouted_clusters: frozenset[int] = frozenset()
        if state is not None:
            exec_placement, rerouted_clusters, _ = restrict_placement(
                self.placement, state.dead
            )

        # Opt1: greedy scheduling (over the fault-restricted replica map
        # when a plan is active; lost clusters drop instead of raising).
        assignment = schedule_batch(
            probes_exec,
            sizes,
            exec_placement,
            on_missing="drop" if state is not None else "raise",
        )
        host_prep = work.work(
            HOST_CPU,
            STAGE_SCHEDULE,
            self.host.scheduling_seconds_for_pairs(assignment.total_pairs()),
            after=(host_prep,),
            trace_ids=ctx.all_ids(),
        )

        # Host -> DPU: queries broadcast + per-DPU worklists.  UpANNS pads
        # worklists to a uniform size so the transfer parallelizes; the
        # naive path ships exact (non-uniform) sizes and serializes.
        query_bytes = nq * ic.dim * 4
        last_bus = self.pim.work_broadcast(
            work,
            query_bytes,
            stage=STAGE_TRANSFER_IN,
            after=(host_prep,),
            trace_ids=ctx.all_ids(),
        )
        pair_counts = [len(p) for p in assignment.per_dpu]
        if uc.enable_placement:
            pad = max(pair_counts) if pair_counts else 0
            meta_sizes = [pad * 8] * self.pim.n_dpus
        else:
            meta_sizes = [c * 8 for c in pair_counts]
        last_bus = self.pim.work_transfer(
            work,
            meta_sizes,
            stage=STAGE_TRANSFER_IN,
            after=(last_bus,),
            trace_ids=ctx.all_ids(),
        )
        if faults is not None and (faults.transient or faults.escalated):
            last_bus = _retry_work(
                work, faults, state, meta_sizes,
                self.config.pim.host_transfer_bytes_per_s,
                after=last_bus,
                trace_ids_by_unit=_unit_trace_ids(assignment, ctx),
            )

        # Per-DPU kernel execution.
        kernel_cfg = KernelConfig(
            k=k,
            n_tasklets=self.pim.dpus[0].n_tasklets,
            read_vectors=uc.mram_read_vectors,
            prune_topk=uc.enable_topk_pruning,
            workload_scale=self.config.timing_scale,
        )
        partials: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {
            q: [] for q in range(nq)
        }
        heap_total = HeapStats()
        logs = [DpuWorkLog() for _ in range(self.pim.n_dpus)]
        centroids = self.index.ivf.centroids
        self.pim.reset_counters()
        if uc.kernel_mode == "grouped":
            # Vectorized path: per-(query, cluster) functional tables
            # come from the cross-batch LUT cache, then each DPU's whole
            # worklist executes in fused NumPy ops.  Charges are
            # replayed pair-by-pair, so the ledger matches the loop.
            # The table build runs in the parent under every executor
            # backend, so LUT-cache state (hits, misses, eviction order)
            # is identical whether workers recompute tables or not.
            tables = self._build_tables(queries, probes_exec, centroids)
            dpu_groups: list[tuple[int, list[tuple[int, list[ClusterPayload]]]]] = []
            for d, pairs in enumerate(assignment.per_dpu):
                if not pairs:
                    continue
                by_query: dict[int, list[ClusterPayload]] = {}
                for qi, c in pairs:
                    if self._payloads[c].size == 0:
                        continue
                    by_query.setdefault(qi, []).append(self._payloads[c])
                if by_query:
                    dpu_groups.append((d, list(by_query.items())))
            runtime = self._resolve_executor_runtime()
            if runtime is not None and dpu_groups:
                # Parallel functional execution: workers compute each
                # DPU's distances + top-k from shared-memory index views
                # and rebuilt tables; the parent replays every charge in
                # ascending DPU order, exactly as the serial loop below.
                try:
                    functional = runtime.compute(
                        dpu_groups,
                        queries,
                        probes_exec,
                        k=kernel_cfg.k,
                        n_tasklets=kernel_cfg.n_tasklets,
                        prune=kernel_cfg.prune_topk,
                        version=self._codebook_version,
                        epoch=self._cache_epoch,
                    )
                # Cleanup-and-reraise, not failure handling: whatever
                # escaped (ExecutorError, a worker-raised bug, a pickling
                # error) the pool must be torn down before propagating so
                # the next batch rebuilds it cleanly.
                except Exception:  # simlint: ignore[FLT001]
                    self._shutdown_executor()
                    raise
            else:
                functional = None
            for d, groups in dpu_groups:
                if functional is not None:
                    topk, group_sizes = functional[d]
                    outs = replay_batch_charges(
                        self.pim.dpu(d),
                        self.index.pq,
                        groups,
                        topk,
                        group_sizes,
                        kernel_cfg,
                        charge_cache=self._pair_charges,
                    )
                else:
                    outs = run_batch_on_dpu(
                        self.pim.dpu(d),
                        self.index.pq,
                        groups,
                        kernel_cfg,
                        tables,
                        charge_cache=self._pair_charges,
                        plan_cache=self._gather_plans,
                    )
                for (qi, payloads), out in zip(groups, outs):
                    partials[qi].append((out.ids, out.distances))
                    logs[d].stage += out.stage
                    logs[d].queries_served += 1
                    logs[d].pairs_served += len(payloads)
                    logs[d].results_returned += out.ids.shape[0]
                    heap_total.merge(out.heap_stats)
        else:
            # Reference per-pair loop (the perf baseline).  Per-query
            # LUTs are still precomputed in one vectorized batch
            # (functional shortcut only — each DPU is charged for
            # building its own copies inside the kernel).
            from repro.ivfpq.lut import build_luts_for_probes

            luts_by_query: list[dict[int, np.ndarray]] = []
            for qi in range(nq):
                probe_ids = np.asarray(probes_exec[qi], dtype=np.int64)
                if probe_ids.size == 0:
                    luts_by_query.append({})
                    continue
                luts = build_luts_for_probes(
                    self.index.pq, queries[qi], centroids, probe_ids
                )
                luts_by_query.append(
                    {int(c): luts[j] for j, c in enumerate(probe_ids)}
                )
            for d, pairs in enumerate(assignment.per_dpu):
                if not pairs:
                    continue
                by_query = {}
                for qi, c in pairs:
                    if self._payloads[c].size == 0:
                        continue
                    by_query.setdefault(qi, []).append(self._payloads[c])
                dpu = self.pim.dpu(d)
                for qi, payloads in by_query.items():
                    out = run_query_on_dpu(
                        dpu,
                        self.index.pq,
                        centroids,
                        payloads,
                        queries[qi],
                        kernel_cfg,
                        luts=luts_by_query[qi],
                    )
                    partials[qi].append((out.ids, out.distances))
                    logs[d].stage += out.stage
                    logs[d].queries_served += 1
                    logs[d].pairs_served += len(payloads)
                    logs[d].results_returned += out.ids.shape[0]
                    heap_total.merge(out.heap_stats)

        # Batch time on PIM = slowest DPU (paper section 5.3.1); every
        # active DPU gets its own resource lane starting when the
        # inbound transfer completes.
        busy = np.array([log.total_cycles for log in logs])
        freq = self.config.pim.dpu.frequency_hz
        dpu_tail: list[int] = []
        for d, log in enumerate(logs):
            if log.total_cycles > 0:
                dpu_tail.append(
                    work.work_dpu_stages(
                        d,
                        log.stage,
                        after=(last_bus,),
                        trace_ids=ctx.ids_for(
                            qi for qi, _c in assignment.per_dpu[d]
                        ),
                    )
                )
        cycle_ratio = max_mean_ratio(busy, active_only=True)

        # DPU -> host result gather (uniform when padded).  Sized from
        # the candidates actually produced: a DPU whose clusters held
        # fewer than k points returns fewer than k entries per query.
        result_sizes = [log.results_returned * 8 for log in logs]
        if uc.enable_placement and any(result_sizes):
            pad = max(result_sizes)
            result_sizes = [pad] * len(result_sizes)
        gather = self.pim.work_gather(
            work,
            result_sizes,
            stage=STAGE_TRANSFER_OUT,
            after=tuple(dpu_tail) if dpu_tail else (last_bus,),
            trace_ids=ctx.all_ids(),
        )

        # Host-side final aggregation across DPUs.
        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        out_i = np.full((nq, k), -1, dtype=np.int64)
        n_partials = 0
        for qi, parts in partials.items():
            if not parts:
                continue
            n_partials += len(parts)
            ids = np.concatenate([p[0] for p in parts])
            dists = np.concatenate([p[1] for p in parts])
            top_i, top_d = topk_from_distances(ids, dists, k)
            out_i[qi, : top_i.shape[0]] = top_i
            out_d[qi, : top_d.shape[0]] = top_d
        work.work(
            HOST_CPU,
            STAGE_AGGREGATE,
            self.host.aggregate_seconds(nq, k, max(1, n_partials // max(nq, 1))),
            after=(gather,),
            trace_ids=ctx.all_ids(),
        )

        # Execute the work description through the selected core.  The
        # analytic replay reproduces the historical record_at sequence
        # bit-for-bit; the event core runs the same DAG through the
        # discrete-event engine (identical here — a single batch's DAG
        # admits no lane contention).
        schedule = work.execute(resolve_sim_engine(self.sim_engine))

        # Derived views: the legacy additive scalars and the Figure 19
        # stage breakdown (makespan DPU's stages + host-side stages) now
        # both come from the recorded spans.
        timing = schedule.derive_batch_timing()
        stage_seconds = stage_seconds_from_schedule(schedule, timing)

        logger.debug(
            "batch of %d queries: %.3f ms modeled (%d pairs, max/avg %.2f)",
            nq,
            timing.total_s * 1e3,
            assignment.total_pairs(),
            cycle_ratio,
        )
        observe_batch(
            "upanns",
            nq,
            timing,
            busy_cycles=float(busy.sum()),
            active_dpus=int((busy > 0).sum()),
            n_tasklets=self.pim.dpus[0].n_tasklets,
        )
        degraded = None
        if state is not None and faults is not None:
            degraded = _degraded_result(
                "upanns", nq, probes_exec, assignment, faults, state,
                rerouted_clusters, timing.retry_s,
            )
        if nprobe is not None and nprobe < qc.nprobe:
            # An intentional probe cut is a coverage sacrifice too:
            # scale (or synthesize) the coverage record by the fraction
            # of the configured probing this batch actually ran, so
            # degrade-mode recall loss is visible through the same
            # DegradedResult surface as fault-induced loss.
            frac = nprobe / qc.nprobe
            if degraded is None:
                degraded = DegradedResult(coverage=np.full(nq, frac))
            else:
                degraded = replace(degraded, coverage=degraded.coverage * frac)
        debug_sanitize_schedule(
            schedule,
            timing=timing,
            stage_seconds=stage_seconds,
            degraded=degraded,
            label="upanns batch",
        )
        return BatchResult(
            ids=out_i,
            distances=out_d,
            timing=timing,
            stage_seconds=stage_seconds,
            assignment=assignment,
            heap_stats=heap_total,
            cycle_load_ratio=cycle_ratio,
            dpu_busy_seconds=busy / freq,
            schedule=schedule,
            degraded=degraded,
            work=work,
        )

    def _build_tables(
        self,
        queries: np.ndarray,
        probes_exec,
        centroids: np.ndarray,
    ) -> dict[int, dict[int, np.ndarray]]:
        """Per-(query, cluster) functional tables via the LUT cache.

        The table is what the distance stage consumes: the (m, ksub) LUT
        for a plain cluster, the flat [LUT | partial sums] table for a
        CAE cluster.  Hits reuse the bytes computed in an earlier batch;
        misses are built in one vectorized ``compute_luts`` call per
        query and written through.  Modeled DPU cost is unaffected — the
        kernel charges full LUT construction on every visit.
        """
        from repro.ivfpq.lut import build_luts_for_probes

        cache = self.lut_cache
        version = self._codebook_version
        use_cache = cache is not None and cache.enabled
        tables: dict[int, dict[int, np.ndarray]] = {}
        for qi in range(queries.shape[0]):
            probe_ids = np.asarray(probes_exec[qi], dtype=np.int64)
            per_q: dict[int, np.ndarray] = {}
            tables[qi] = per_q
            if probe_ids.size == 0:
                continue
            digest = None
            if use_cache:
                assert cache is not None
                digest = query_digest(queries[qi])
                probe_list = [int(c) for c in probe_ids]
                cached = cache.get_many(
                    [(digest, c, version) for c in probe_list]
                )
                missing = []
                for c, hit in zip(probe_list, cached):
                    if hit is not None:
                        per_q[c] = hit
                    else:
                        missing.append(c)
            else:
                missing = [int(c) for c in probe_ids]
            if not missing:
                continue
            luts = build_luts_for_probes(
                self.index.pq,
                queries[qi],
                centroids,
                np.asarray(missing, dtype=np.int64),
            )
            for j, c in enumerate(missing):
                payload = self._payloads[c]
                if payload.is_cae and payload.cooc is not None:
                    table = build_flat_table(luts[j], payload.cooc)
                else:
                    table = luts[j]
                per_q[c] = table
                if digest is not None:
                    assert cache is not None
                    cache.put((digest, c, version), table)
        return tables

    # ------------------------------------------------------------------
    # Fault injection (repro.faults)
    # ------------------------------------------------------------------

    def inject(self, plan: FaultPlan) -> FaultState:
        """Arm a fault plan on this engine's DPU pool.

        Rank/DIMM granularities map onto contiguous DPU-id ranges from
        the PIM topology: a DIMM is ``chips_per_dimm * dpus_per_chip``
        DPUs, a rank is half a DIMM (UPMEM DIMMs carry two ranks).
        Injecting ``None``-equivalent empty plans is legal and leaves
        behavior observationally identical to no plan.
        """
        for event in plan.events:
            if event.kind == "host":
                raise ConfigError(
                    f"fault event {event} targets a host, but this engine "
                    "injects at DPU granularity; host faults belong on the "
                    "coordinator (MultiHostEngine.inject) and DPU-level "
                    "plans on its members (hosts[h].inject)"
                )
        spec = self.config.pim
        dimm = spec.chips_per_dimm * spec.dpus_per_chip
        self.fault_state = plan.state(
            n_units=spec.n_dpus,
            rank_size=max(1, dimm // 2),
            dimm_size=dimm,
        )
        return self.fault_state

    def clear_faults(self) -> None:
        """Disarm the fault plane (back to the golden fault-free path)."""
        self.fault_state = None

    # ------------------------------------------------------------------
    # Adaptivity (paper section 4.1.2)
    # ------------------------------------------------------------------

    def refresh_placement(
        self,
        *,
        rng: np.random.Generator | None = None,
        exclude_dpus: "frozenset[int] | set[int]" = frozenset(),
    ) -> float:
        """Re-place clusters using the access trace accumulated online.

        Implements the paper's adaptive response to query-pattern change:
        replica counts and locations are recomputed from the live f_i.
        Call after :class:`~repro.core.scheduling.AdaptivePolicy`
        requests 'rereplicate' or 'relocate'.

        ``exclude_dpus`` supports fault recovery: the new placement uses
        only the surviving DPUs, re-replicating clusters orphaned by the
        dead ones.  Returns the modeled recovery time — the host->MRAM
        reload of the new placement (also stored in ``offline``).
        """
        if not self._built or self.trace is None:
            raise NotTrainedError("engine must be built before refresh_placement()")
        rng = rng if rng is not None else np.random.default_rng(0)
        self._place_and_load(
            self.trace.frequencies(), rng, exclude_dpus=frozenset(exclude_dpus)
        )
        self.wram_plan = self._plan_wram()
        self.offline = self._offline_stats()
        self._invalidate_caches()
        return self.offline.mram_load_seconds

    # ------------------------------------------------------------------
    # Introspection used by benches
    # ------------------------------------------------------------------

    def length_reduction_rate(self) -> float:
        """Mean CAE length reduction across non-empty clusters (Fig 14)."""
        rates = [
            p.encoded.length_reduction_rate()
            for p in self._payloads
            if p.is_cae and p.size > 0 and p.encoded is not None
        ]
        return float(np.mean(rates)) if rates else 0.0

    def replication_factor(self) -> float:
        """Mean replicas per cluster created by Algorithm 1."""
        if self.placement is None:
            return 1.0
        return float(np.mean([len(r) for r in self.placement.replicas]))


def _live_probes(probes, sizes: np.ndarray):
    """Probe lists with empty clusters removed (dead-pair filtering).

    Returns the input unchanged (same object) when every probed cluster
    is non-empty — the common case — so the matrix fast path survives.
    """
    if not isinstance(probes, (list, tuple)):
        mat = np.atleast_2d(probes)
        if mat.size == 0 or bool((sizes[mat] > 0).all()):
            return probes
        probes = list(mat)
    out = []
    for p in probes:
        ids_q = np.asarray(p, dtype=np.int64)
        out.append(ids_q[sizes[ids_q] > 0])
    return out


def _unit_trace_ids(
    assignment: Assignment, ctx: TraceContext
) -> dict[int, tuple[str, ...]]:
    """Trace ids of the queries each DPU's worklist serves.

    Retry traffic is charged per victim unit; tagging each retry with
    the victim's queries lets ``repro.cli explain`` attribute recovery
    cost to exactly the queries whose worklist was re-driven.
    """
    return {
        d: ctx.ids_for(qi for qi, _c in pairs)
        for d, pairs in enumerate(assignment.per_dpu)
        if pairs
    }


def _retry_work(
    work: BatchWork,
    faults,
    state: FaultState,
    meta_sizes: list[int],
    bus_bytes_per_s: float,
    *,
    after: int,
    trace_ids_by_unit: dict[int, tuple[str, ...]] | None = None,
) -> int:
    """Describe this batch's transient-fault recovery on the bus lane.

    Each failed attempt costs its backoff plus re-transmitting the
    victim DPU's worklist buffer.  The retry items chain off the
    transfer they repair and are *pinned*: under cross-batch stream
    execution the event engine runs them immediately after that
    transfer, ahead of any other batch's queued bus traffic, so retries
    stay contiguous with their transfer-in (simsan SAN-ORDER).  DPU
    work depends on the last retry, so kernels launch after recovery
    and the cost is visible end-to-end (Chrome trace, utilization
    report, ``BatchTiming.retry_s``).  Units that escalated to death
    this batch are charged too: their retries all happened before the
    driver gave up on the device.  Returns the last retry's uid.
    """
    last = after
    attempts_by_unit = faults.attempts_by_unit()
    for u in sorted(attempts_by_unit):
        retrans = meta_sizes[u] if u < len(meta_sizes) else 0
        ids = (trace_ids_by_unit or {}).get(u, ())
        for attempt in range(1, attempts_by_unit[u] + 1):
            last = work.work(
                PIM_BUS,
                STAGE_RETRY,
                state.backoff_s(attempt) + retrans / bus_bytes_per_s,
                after=(last,),
                pinned=True,
                trace_ids=ids,
            )
    return last


def _degraded_result(
    engine_label: str,
    nq: int,
    probes_exec,
    assignment: Assignment,
    faults,
    state: FaultState,
    rerouted_clusters: frozenset,
    retry_s: float,
) -> DegradedResult:
    """Assemble the batch's degradation record and emit fault metrics."""
    coverage = coverage_fractions(nq, probes_exec, assignment.dropped)
    rerouted = sum(
        1 for pairs in assignment.per_dpu for _, c in pairs if c in rerouted_clusters
    )
    state.total_rerouted_pairs += rerouted
    state.total_dropped_pairs += len(assignment.dropped)
    degraded = DegradedResult(
        coverage=coverage,
        rerouted_pairs=rerouted,
        dropped_pairs=len(assignment.dropped),
        retries=faults.total_attempts(),
        retry_s=retry_s,
        dead_units=state.dead_units,
        events=faults.events,
    )
    observe_faults(
        engine_label,
        injected=len(faults.events),
        retries=degraded.retries,
        rerouted_pairs=rerouted,
        dropped_pairs=degraded.dropped_pairs,
        dead_units=len(state.dead),
        coverage_floor=degraded.coverage_floor,
    )
    return degraded


def make_engine(
    dim: int,
    *,
    n_clusters: int,
    m: int,
    nprobe: int,
    k: int = 10,
    pim_spec=None,
    upanns: UpANNSConfig | None = None,
    batch_size: int = 1000,
    train_iters: int = 8,
    timing_scale: float = 1.0,
) -> UpANNSEngine:
    """Convenience constructor used by examples and benches."""
    from repro.hardware.specs import UPMEM_7_DIMMS

    cfg = SystemConfig(
        index=IndexConfig(dim=dim, n_clusters=n_clusters, m=m, train_iters=train_iters),
        query=QueryConfig(nprobe=nprobe, k=k, batch_size=batch_size),
        upanns=upanns if upanns is not None else UpANNSConfig(),
        pim=pim_spec if pim_spec is not None else UPMEM_7_DIMMS,
        timing_scale=timing_scale,
    )
    return UpANNSEngine(cfg)


PIM_NAIVE_CONFIG = UpANNSConfig(
    enable_placement=False,
    enable_cae=False,
    enable_topk_pruning=False,
)
