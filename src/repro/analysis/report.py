"""ASCII table / series rendering shared by every bench harness.

Each bench regenerates a paper exhibit as rows or series printed to
stdout; these helpers keep the output format consistent and readable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConfigError


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
    float_fmt: str = "{:.3g}",
) -> str:
    """Render a fixed-width table with per-column alignment."""
    rendered_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigError("row width does not match headers")
        rendered_rows.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(h), *(len(r[i]) for r in rendered_rows)) if rendered_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered_rows:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    float_fmt: str = "{:.3g}",
) -> str:
    """Render one x-column plus one column per named series.

    This is the textual equivalent of a line plot: each paper figure's
    series becomes a column so trends and crossovers are readable.
    """
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        row: list[object] = [x]
        for name, values in series.items():
            if len(values) != len(xs):
                raise ConfigError(f"series {name!r} length mismatch")
            row.append(float(values[i]))
        rows.append(row)
    return render_table(headers, rows, title=title, float_fmt=float_fmt)


def render_bar(value: float, max_value: float, width: int = 40) -> str:
    """A proportional ASCII bar for breakdown visualizations."""
    if max_value <= 0:
        raise ConfigError("max_value must be positive")
    filled = int(round(width * min(value, max_value) / max_value))
    return "#" * filled + "." * (width - filled)
