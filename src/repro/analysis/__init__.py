"""Analysis helpers: scalability regression, reporting, sweeps."""

from repro.analysis.regression import ScalingFit, fit_scaling
from repro.analysis.report import render_bar, render_series, render_table
from repro.analysis.sweep import Sweep, SweepResult

__all__ = [
    "ScalingFit",
    "Sweep",
    "SweepResult",
    "fit_scaling",
    "render_bar",
    "render_series",
    "render_table",
]
