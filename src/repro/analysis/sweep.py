"""Parameter-sweep harness shared by the benchmark scripts."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Iterable


@dataclass
class SweepResult:
    """One point of a sweep: the parameters plus measured outputs."""

    params: dict[str, Any]
    outputs: dict[str, float]

    def __getitem__(self, key: str) -> Any:
        if key in self.params:
            return self.params[key]
        return self.outputs[key]


@dataclass
class Sweep:
    """Cartesian-product sweep runner with labeled axes.

    ``run`` calls ``fn(**params)`` for every combination; ``fn`` returns
    a dict of measured outputs.  Results are kept in declaration order
    so benches can group/pivot deterministically.
    """

    axes: dict[str, Iterable[Any]]
    results: list[SweepResult] = field(default_factory=list)

    def run(self, fn: Callable[..., dict[str, float]]) -> list[SweepResult]:
        keys = list(self.axes)
        for values in product(*(list(self.axes[k]) for k in keys)):
            params = dict(zip(keys, values))
            outputs = fn(**params)
            self.results.append(SweepResult(params=params, outputs=outputs))
        return self.results

    def where(self, **conditions: Any) -> list[SweepResult]:
        """Filter results by exact parameter matches."""
        out = []
        for r in self.results:
            if all(r.params.get(k) == v for k, v in conditions.items()):
                out.append(r)
        return out

    def column(self, output_key: str, **conditions: Any) -> list[float]:
        """Extract one output across the filtered results, in order."""
        return [r.outputs[output_key] for r in self.where(**conditions)]
