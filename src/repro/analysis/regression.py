"""Scalability regression (paper Figure 20).

The paper measures QPS at 500-900 DPUs and fits a regression to predict
throughput up to the 2560-DPU maximum a host can hold, then reads off
the GPU-crossover point and the iso-power (300 W = 1654 DPUs)
comparison.  :class:`ScalingFit` reproduces that methodology: an affine
least-squares fit with an R^2 quality check and prediction helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ScalingFit:
    """Affine fit qps ≈ slope * n_dpus + intercept."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, n_dpus) -> np.ndarray:
        n = np.asarray(n_dpus, dtype=np.float64)
        return self.slope * n + self.intercept

    def crossover(self, target_qps: float) -> float:
        """DPU count at which predicted QPS reaches ``target_qps``."""
        if self.slope <= 0:
            raise ConfigError("non-positive slope: no crossover exists")
        return (target_qps - self.intercept) / self.slope


def fit_scaling(n_dpus: np.ndarray, qps: np.ndarray) -> ScalingFit:
    """Least-squares affine fit of QPS against DPU count."""
    n = np.asarray(n_dpus, dtype=np.float64)
    q = np.asarray(qps, dtype=np.float64)
    if n.shape != q.shape or n.size < 2:
        raise ConfigError("need >= 2 aligned (n_dpus, qps) samples")
    slope, intercept = np.polyfit(n, q, 1)
    pred = slope * n + intercept
    ss_res = float(((q - pred) ** 2).sum())
    ss_tot = float(((q - q.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ScalingFit(slope=float(slope), intercept=float(intercept), r_squared=r2)
