"""Codecs for the standard ANN benchmark file formats.

``.fvecs`` / ``.ivecs`` / ``.bvecs``: each vector is stored as a
little-endian int32 dimension header followed by ``dim`` elements of
float32 / int32 / uint8 respectively.  These are the formats SIFT1B,
DEEP1B and SPACEV1B ship in, so a user with the real corpora can load
them straight into this library.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ConfigError

_ELEMENT_DTYPES = {
    ".fvecs": np.dtype("<f4"),
    ".ivecs": np.dtype("<i4"),
    ".bvecs": np.dtype("<u1"),
}


def _dtype_for(path: Path) -> np.dtype:
    try:
        return _ELEMENT_DTYPES[path.suffix]
    except KeyError:
        raise ConfigError(f"unknown vector-file suffix {path.suffix!r}") from None


def read_vecs(path: str | Path, *, max_vectors: int | None = None) -> np.ndarray:
    """Read an fvecs/ivecs/bvecs file into an (n, dim) array."""
    path = Path(path)
    dtype = _dtype_for(path)
    raw = np.fromfile(path, dtype=np.uint8)
    if raw.size == 0:
        return np.empty((0, 0), dtype=dtype)
    dim = int(np.frombuffer(raw[:4].tobytes(), dtype="<i4")[0])
    if dim <= 0:
        raise ConfigError(f"{path}: invalid dimension header {dim}")
    record_bytes = 4 + dim * dtype.itemsize
    if raw.size % record_bytes != 0:
        raise ConfigError(f"{path}: file size is not a multiple of the record size")
    n = raw.size // record_bytes
    if max_vectors is not None:
        n = min(n, max_vectors)
    records = raw[: n * record_bytes].reshape(n, record_bytes)
    dims = records[:, :4].copy().view("<i4").ravel()
    if not np.all(dims == dim):
        raise ConfigError(f"{path}: inconsistent dimension headers")
    body = records[:, 4:].copy().view(dtype)
    return body.reshape(n, dim)


def write_vecs(path: str | Path, vectors: np.ndarray) -> None:
    """Write an (n, dim) array in the format implied by the suffix."""
    path = Path(path)
    dtype = _dtype_for(path)
    vectors = np.ascontiguousarray(np.atleast_2d(vectors), dtype=dtype)
    n, dim = vectors.shape
    if dim == 0:
        raise ConfigError("cannot write zero-dimensional vectors")
    record_bytes = 4 + dim * dtype.itemsize
    out = np.empty((n, record_bytes), dtype=np.uint8)
    out[:, :4] = np.frombuffer(
        np.full(n, dim, dtype="<i4").tobytes(), dtype=np.uint8
    ).reshape(n, 4)
    out[:, 4:] = vectors.view(np.uint8).reshape(n, dim * dtype.itemsize)
    out.tofile(path)
