"""Skew machinery: Zipf popularity and heavy-tailed cluster masses.

The paper's Figure 4 (SPACEV1B) motivates everything in Opt1: cluster
*access frequencies* span ~500x and cluster *sizes* span up to ~10^6x.
These helpers generate and measure such distributions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def zipf_weights(n: int, alpha: float = 1.0) -> np.ndarray:
    """Normalized Zipf weights: w_i ∝ 1 / rank^alpha."""
    if n < 1:
        raise ConfigError("n must be >= 1")
    if alpha < 0:
        raise ConfigError("alpha must be non-negative")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks**-alpha
    return w / w.sum()


def lognormal_sizes(
    n: int, total: int, sigma: float = 1.5, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Heavy-tailed cluster sizes summing exactly to ``total``.

    Lognormal masses reproduce the multi-decade size spread of
    Figure 4b; largest-remainder rounding keeps the exact total.
    """
    if n < 1 or total < n:
        raise ConfigError(f"cannot split {total} points into {n} non-empty clusters")
    rng = rng if rng is not None else np.random.default_rng(0)
    masses = rng.lognormal(mean=0.0, sigma=sigma, size=n)
    fractions = masses / masses.sum()
    # Guarantee every cluster at least one point, then distribute the rest.
    sizes = np.ones(n, dtype=np.int64)
    remaining = total - n
    raw = fractions * remaining
    sizes += raw.astype(np.int64)
    shortfall = total - int(sizes.sum())
    if shortfall > 0:
        order = np.argsort(raw - raw.astype(np.int64))[::-1]
        sizes[order[:shortfall]] += 1
    return sizes


def sample_categories(
    weights: np.ndarray, n_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw category indices according to ``weights``."""
    return rng.choice(len(weights), size=n_samples, p=weights)


def skew_ratio(values: np.ndarray) -> float:
    """max / min over positive entries — the Figure 4 '500x' statistic."""
    values = np.asarray(values, dtype=np.float64)
    positive = values[values > 0]
    if positive.size == 0:
        raise ConfigError("no positive values to measure skew")
    return float(positive.max() / positive.min())


def gini(values: np.ndarray) -> float:
    """Gini coefficient in [0, 1): 0 = perfectly balanced."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0 or v.sum() == 0:
        return 0.0
    n = v.size
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)
