"""Exact ground-truth computation and caching for recall evaluation."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ConfigError
from repro.ivfpq.flat import FlatIndex


def compute_groundtruth(
    base: np.ndarray, queries: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact (distances, ids) of the true top-k for each query."""
    base = np.atleast_2d(base)
    queries = np.atleast_2d(queries)
    if base.shape[1] != queries.shape[1]:
        raise ConfigError("base and query dimensions differ")
    index = FlatIndex(base.shape[1])
    index.add(base)
    return index.search(queries, k)


def save_groundtruth(path: str | Path, distances: np.ndarray, ids: np.ndarray) -> None:
    """Persist ground truth as a compressed npz bundle."""
    np.savez_compressed(Path(path), distances=distances, ids=ids)


def load_groundtruth(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    with np.load(Path(path)) as data:
        return data["distances"], data["ids"]


def groundtruth_for(
    base: np.ndarray,
    queries: np.ndarray,
    k: int,
    cache_path: str | Path | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute ground truth, consulting/producing an npz cache if given."""
    if cache_path is not None:
        path = Path(cache_path)
        if path.exists():
            distances, ids = load_groundtruth(path)
            if ids.shape[0] == np.atleast_2d(queries).shape[0] and ids.shape[1] >= k:
                return distances[:, :k], ids[:, :k]
    distances, ids = compute_groundtruth(base, queries, k)
    if cache_path is not None:
        save_groundtruth(cache_path, distances, ids)
    return distances, ids
