"""Synthetic stand-ins for the paper's three billion-scale datasets.

We cannot ship SIFT1B/DEEP1B/SPACEV1B, so each generator produces a
scaled-down dataset with the *same structural properties* UpANNS's
mechanisms key off:

* matching dimensionality and PQ geometry (SIFT 128-d/M=16,
  DEEP 96-d/M=12, SPACEV 100-d/M=20 — paper section 5.1);
* mixture-of-Gaussians structure so IVF clustering is meaningful;
* heavy-tailed mixture masses so cluster sizes skew like Figure 4b;
* optional correlated subspaces so PQ codes exhibit the co-occurring
  element combinations that Opt3 mines (the paper observes e.g. the
  triplet (1, 15, 26) in 5.7 % of SIFT1B vectors).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.data.skew import lognormal_sizes


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters of one of the paper's evaluation datasets."""

    name: str
    dim: int
    pq_m: int
    full_scale: int  # the paper's dataset size (1e9)
    value_range: tuple[float, float]

    def scaled(self, n: int) -> "ScaledDataset":
        """Remember the intended full scale next to a generated size."""
        return ScaledDataset(spec=self, n=n)


@dataclass(frozen=True)
class ScaledDataset:
    spec: DatasetSpec
    n: int

    @property
    def scale_factor(self) -> float:
        return self.spec.full_scale / self.n


SIFT1B = DatasetSpec("SIFT1B", dim=128, pq_m=16, full_scale=10**9, value_range=(0.0, 255.0))
DEEP1B = DatasetSpec("DEEP1B", dim=96, pq_m=12, full_scale=10**9, value_range=(-1.0, 1.0))
SPACEV1B = DatasetSpec("SPACEV1B", dim=100, pq_m=20, full_scale=10**9, value_range=(-128.0, 127.0))

ALL_SPECS = (SIFT1B, DEEP1B, SPACEV1B)


@dataclass
class SyntheticDataset:
    """A generated corpus plus its provenance."""

    spec: DatasetSpec
    vectors: np.ndarray  # (n, dim) float32
    mixture_centers: np.ndarray  # (n_components, dim)
    component_of: np.ndarray  # (n,) which mixture component made each point

    @property
    def n(self) -> int:
        return int(self.vectors.shape[0])

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1])


def _clip_to_range(x: np.ndarray, lo: float, hi: float) -> np.ndarray:
    np.clip(x, lo, hi, out=x)
    return x


def make_dataset(
    spec: DatasetSpec,
    n: int,
    *,
    n_components: int = 64,
    size_sigma: float = 1.2,
    within_std: float = 0.12,
    correlated_subspaces: int = 0,
    rng: np.random.Generator | None = None,
) -> SyntheticDataset:
    """Generate ``n`` vectors shaped like ``spec``.

    ``correlated_subspaces`` > 0 ties the first few PQ subspaces of a
    component's points to (nearly) identical values, planting the code
    co-occurrences that Opt3 exploits; 0 leaves subspaces independent.
    """
    if n < n_components:
        raise ConfigError(f"need n >= n_components ({n} < {n_components})")
    rng = rng if rng is not None else np.random.default_rng(0)
    lo, hi = spec.value_range
    span = hi - lo

    centers = rng.uniform(lo + 0.2 * span, hi - 0.2 * span, size=(n_components, spec.dim))
    sizes = lognormal_sizes(n_components, n, sigma=size_sigma, rng=rng)
    component_of = np.repeat(np.arange(n_components), sizes)
    rng.shuffle(component_of)

    noise = rng.normal(0.0, within_std * span, size=(n, spec.dim))
    vectors = centers[component_of] + noise

    if correlated_subspaces > 0:
        dsub = spec.dim // spec.pq_m
        tie = min(correlated_subspaces, spec.pq_m)
        # Within a component, each of the first `tie` PQ subspaces takes
        # one of a few *exact* prototype sub-vectors (no noise), so the
        # PQ codes of a component's points repeat verbatim — this is the
        # discrete structure that creates the high-frequency code
        # combinations of the paper's section 4.3 (e.g. a triplet
        # appearing in 5.7 % of SIFT1B).  Prototype choice is skewed
        # (80/13/5/2 %) so combination frequencies vary realistically.
        n_protos = 4
        proto_weights = np.array([0.80, 0.13, 0.05, 0.02])
        protos = rng.uniform(
            lo + 0.2 * span,
            hi - 0.2 * span,
            size=(n_components, tie, n_protos, dsub),
        )
        for s in range(tie):
            choice = rng.choice(n_protos, size=n, p=proto_weights)
            vectors[:, s * dsub : (s + 1) * dsub] = protos[component_of, s, choice]

    vectors = _clip_to_range(vectors.astype(np.float32), lo, hi)
    return SyntheticDataset(
        spec=spec,
        vectors=vectors,
        mixture_centers=centers.astype(np.float32),
        component_of=component_of,
    )


def make_queries(
    dataset: SyntheticDataset,
    n_queries: int,
    *,
    popularity: np.ndarray | None = None,
    noise_scale: float = 0.5,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Draw queries near mixture centers with skewed component popularity.

    ``popularity`` is a weight per mixture component (defaults to
    uniform); Zipf weights reproduce the Figure 4a access-frequency skew
    because queries land near popular components' centers, so cluster
    filtering repeatedly selects the same IVF clusters.
    """
    rng = rng if rng is not None else np.random.default_rng(1)
    centers = dataset.mixture_centers
    ncomp = centers.shape[0]
    if popularity is None:
        popularity = np.full(ncomp, 1.0 / ncomp)
    popularity = np.asarray(popularity, dtype=np.float64)
    if popularity.shape != (ncomp,):
        raise ConfigError("popularity must have one weight per component")
    popularity = popularity / popularity.sum()
    comp = rng.choice(ncomp, size=n_queries, p=popularity)
    lo, hi = dataset.spec.value_range
    span = hi - lo
    q = centers[comp] + rng.normal(0.0, noise_scale * 0.12 * span, size=(n_queries, dataset.dim))
    return _clip_to_range(q.astype(np.float32), lo, hi)
