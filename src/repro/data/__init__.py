"""Dataset substrate: synthetic corpora, skew machinery, codecs, ground truth."""

from repro.data.groundtruth import (
    compute_groundtruth,
    groundtruth_for,
    load_groundtruth,
    save_groundtruth,
)
from repro.data.loader import read_vecs, write_vecs
from repro.data.skew import (
    gini,
    lognormal_sizes,
    sample_categories,
    skew_ratio,
    zipf_weights,
)
from repro.data.synthetic import (
    ALL_SPECS,
    DEEP1B,
    SIFT1B,
    SPACEV1B,
    DatasetSpec,
    ScaledDataset,
    SyntheticDataset,
    make_dataset,
    make_queries,
)

__all__ = [
    "ALL_SPECS",
    "DEEP1B",
    "DatasetSpec",
    "SIFT1B",
    "SPACEV1B",
    "ScaledDataset",
    "SyntheticDataset",
    "compute_groundtruth",
    "gini",
    "groundtruth_for",
    "load_groundtruth",
    "lognormal_sizes",
    "make_dataset",
    "make_queries",
    "read_vecs",
    "sample_categories",
    "save_groundtruth",
    "skew_ratio",
    "write_vecs",
    "zipf_weights",
]
