"""Pluggable host-side executors for the grouped batch kernel.

``serial`` runs DPU worklists inline (the reference path); ``process`` /
``process:N`` fan them out over worker processes attached to read-only
shared-memory views of the index.  Results are bit-identical across
backends — only host wall-clock changes.  See docs/SIMULATOR.md §16.
"""

from repro.parallel.executor import (
    ExecutorSpec,
    ProcessExecutor,
    parse_executor_spec,
)

__all__ = ["ExecutorSpec", "ProcessExecutor", "parse_executor_spec"]
