"""Shared-memory array packing for the process-pool executor.

The parallel backend's contract is that *index data never crosses the
pipe per batch*: codebooks, coarse centroids and every cluster payload
array are packed once into a single ``multiprocessing.shared_memory``
block when the pool starts, and workers attach read-only NumPy views.
Per-batch traffic is then only query slices out and top-k candidates
back.

Layout: one segment, arrays placed back-to-back at 64-byte-aligned
offsets, described by a picklable manifest ``{name: (dtype str, shape,
offset)}`` shipped to workers through the pool initializer.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

#: Alignment for each array's offset inside the segment — cache-line
#: sized so vectorized loads in workers never straddle a boundary.
_ALIGN = 64

#: Manifest entry: (dtype string, shape tuple, byte offset).
Manifest = dict[str, tuple[str, tuple[int, ...], int]]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class SharedArrayStore:
    """Owner-side handle of one packed shared-memory segment.

    Created by the executor in the parent process; ``close()`` +
    ``unlink()`` on shutdown.  Workers never hold one of these — they
    use :func:`attach_arrays` with the (name, manifest) pair instead.
    """

    def __init__(self, shm: shared_memory.SharedMemory, manifest: Manifest):
        self._shm = shm
        self.manifest = manifest

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArrayStore":
        """Pack ``arrays`` into a fresh segment, copying each once."""
        manifest: Manifest = {}
        offset = 0
        for name, arr in arrays.items():
            offset = _aligned(offset)
            manifest[name] = (arr.dtype.str, tuple(arr.shape), offset)
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for name, arr in arrays.items():
            dtype, shape, off = manifest[name]
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
            view[...] = arr
        return cls(shm, manifest)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - interpreter-dependent
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def attach_arrays(
    name: str, manifest: Manifest
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Worker-side attach: read-only views over the owner's segment.

    The returned segment handle must stay referenced for the views'
    lifetime.  The parent owns the segment's resource-tracker
    registration (CPython 3.11 registers on create only), so attaching
    here neither registers nor unlinks anything — a worker exiting
    leaves the segment intact for its siblings.
    """
    shm = shared_memory.SharedMemory(name=name)
    views: dict[str, np.ndarray] = {}
    for key, (dtype, shape, offset) in manifest.items():
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        views[key] = view
    return shm, views
