"""Worker-process entry points for the parallel DPU-group executor.

Each pool worker is initialized once with read-only shared-memory views
of the index (codebooks, centroids, every cluster payload array) and
then serves tasks that carry only *small* per-batch data: query rows and
(query, cluster-id) worklists.  The worker rebuilds the functional
tables locally — LUT values are pure functions of (codebooks, query,
centroid), so they are bit-identical to the parent's — and runs the pure
half of the grouped kernel (:func:`~repro.core.kernel.
compute_groups_functional`).  Charges never happen here: the parent
replays them from the returned top-k and group sizes.

Module state is a single ``_STATE`` slot assigned by :func:`init_worker`
(simlint rule PAR001 bans any other module-level mutable state on the
paths reachable from :func:`run_task`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.cooccurrence import partial_sums_from_packed
from repro.core.encoding import EncodedCluster
from repro.core.kernel import ClusterPayload, GatherPlanCache, compute_groups_functional
from repro.core.lut_cache import LutCache, query_digest
from repro.errors import ConfigError
from repro.ivfpq.lut import build_luts_for_probes
from repro.ivfpq.pq import ProductQuantizer
from repro.telemetry.registry import MetricsRegistry

#: Sentinel task that kills the worker process mid-pool — the crash-path
#: test uses it to assert the executor surfaces a clean ExecutorError.
CRASH_TASK = "__crash_worker__"

#: One task: (epoch, version, k, n_tasklets, prune, entries, queries,
#: probes) with entries = [(dpu_id, [(query slot, [cluster ids])])],
#: queries the (n, dim) float32 rows the slots index into and probes the
#: per-slot *full* probed-cluster list of each query in this batch.
Task = tuple[int, int, int, int, bool, list, np.ndarray, list]


@dataclass
class _WorkerState:
    """Everything a worker keeps between tasks."""

    shm: object  # keeps the attached segment (and every view) alive
    pq: ProductQuantizer
    centroids: np.ndarray
    payloads: dict[int, ClusterPayload]
    # cluster id -> (pos, codes, slots, n_slots) for CAE flat tables.
    combos: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray, int]]
    # Private LUT cache: same keying as the engine's, but counting into
    # a detached registry so worker-side hits never skew the parent's
    # repro_lut_cache_* telemetry (bit-identical counters across
    # backends are part of the equivalence contract).
    tables: LutCache
    plans: GatherPlanCache = field(default_factory=GatherPlanCache)
    epoch: int = -1


_STATE = None  # per-process singleton, assigned once by init_worker


def init_worker(shm_name: str, manifest: dict, meta: dict) -> None:
    """Pool initializer: attach shared memory and rebuild the index view."""
    from repro.parallel.shm import attach_arrays

    global _STATE
    shm, views = attach_arrays(shm_name, manifest)
    pq_meta = meta["pq"]
    pq = ProductQuantizer(
        dim=pq_meta["dim"], m=pq_meta["m"], nbits=pq_meta["nbits"]
    )
    pq.codebooks = views["codebooks"]
    payloads: dict[int, ClusterPayload] = {}
    combos: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray, int]] = {}
    for p in meta["payloads"]:
        c = p["cluster_id"]
        if p["kind"] == "plain":
            payloads[c] = ClusterPayload(
                cluster_id=c, ids=views[f"c{c}:ids"], codes=views[f"c{c}:codes"]
            )
        else:
            payloads[c] = ClusterPayload(
                cluster_id=c,
                ids=views[f"c{c}:ids"],
                encoded=EncodedCluster(
                    addresses=views[f"c{c}:addr"],
                    lengths=views[f"c{c}:len"],
                    m=p["m"],
                    n_slots=p["n_slots"],
                ),
            )
            combos[c] = (
                views[f"c{c}:cpos"],
                views[f"c{c}:ccodes"],
                views[f"c{c}:cslots"],
                p["n_slots"],
            )
    _STATE = _WorkerState(
        shm=shm,
        pq=pq,
        centroids=views["centroids"],
        payloads=payloads,
        combos=combos,
        tables=LutCache(meta["lut_cache_bytes"], registry=MetricsRegistry()),
    )


def _build_table(state: _WorkerState, c: int, lut: np.ndarray) -> np.ndarray:
    """The functional table for cluster ``c``: the LUT itself for a
    plain cluster, flat [LUT | partial sums] for a CAE cluster — the
    exact operation sequence of
    :func:`repro.core.encoding.build_flat_table`."""
    combo = state.combos.get(c)
    if combo is None:
        return lut
    pos, codes, slots, n_slots = combo
    sums = partial_sums_from_packed(lut, pos, codes, slots, n_slots)
    return np.concatenate([lut.reshape(-1).astype(np.float32), sums])


def _tables_for_task(
    state: _WorkerState,
    entries: list,
    queries: np.ndarray,
    probes: list,
    version: int,
) -> dict[int, dict[int, np.ndarray]]:
    """Per-(query slot, cluster) tables, via the worker's private cache.

    On any miss the *whole* probe list of that query is rebuilt in one
    vectorized LUT call — the same call composition the parent's
    ``_build_tables`` uses on a cold query.  That is load-bearing for
    bit-identity: the batched residual matmul can pick a different BLAS
    kernel (and hence last-bit rounding) for different batch sizes, so
    recomputing partial subsets is not guaranteed to reproduce the
    parent's values, while full-list rebuilds always match.
    """
    seen: set[int] = set()
    for _d, groups in entries:
        for qloc, _cluster_ids in groups:
            seen.add(qloc)
    tables: dict[int, dict[int, np.ndarray]] = {}
    for qloc in seen:
        digest = query_digest(queries[qloc])
        cluster_ids = [int(c) for c in probes[qloc]]
        per_q: dict[int, np.ndarray] = {}
        tables[qloc] = per_q
        cached = state.tables.get_many([(digest, c, version) for c in cluster_ids])
        if all(hit is not None for hit in cached):
            for c, hit in zip(cluster_ids, cached):
                per_q[c] = hit
            continue
        luts = build_luts_for_probes(
            state.pq,
            queries[qloc],
            state.centroids,
            np.asarray(cluster_ids, dtype=np.int64),
        )
        for j, c in enumerate(cluster_ids):
            table = _build_table(state, c, luts[j])
            per_q[c] = table
            state.tables.put((digest, c, version), table)
    return tables


def run_task(task):
    """Execute one chunk of DPU worklists; return picklable results.

    Returns ``[(dpu_id, group_sizes, [(values, ids, heap-stat 4-tuple)
    per group])]`` in the task's entry order.  HeapStats crosses the
    pipe as a plain ``(comparisons, insertions, pruned,
    merge_comparisons)`` tuple.
    """
    if task == CRASH_TASK:
        os._exit(13)
    state = _STATE
    if state is None:  # pragma: no cover - init_worker always ran
        raise ConfigError("worker used before init_worker")
    epoch, version, k, n_tasklets, prune, entries, queries, probes = task
    if state.epoch != epoch:
        # The parent cleared its cross-batch caches (or this is the
        # first task after a rebuild): drop ours so cold stays cold.
        state.tables.clear()
        state.plans.clear()
        state.epoch = epoch
    tables = _tables_for_task(state, entries, queries, probes, version)
    results = []
    for dpu_id, groups in entries:
        glist = [
            (qloc, [state.payloads[c] for c in cluster_ids])
            for qloc, cluster_ids in groups
        ]
        topk, group_sizes = compute_groups_functional(
            glist, tables, k, n_tasklets, prune=prune, plan_cache=state.plans
        )
        results.append(
            (
                dpu_id,
                group_sizes,
                [
                    (
                        v,
                        i,
                        (hs.comparisons, hs.insertions, hs.pruned, hs.merge_comparisons),
                    )
                    for v, i, hs in topk
                ],
            )
        )
    return results
