"""Pluggable executor backends for the grouped batch kernel.

``parse_executor_spec`` turns the user-facing spec string — ``serial``,
``process``, ``process:N`` — into an :class:`ExecutorSpec`; the engine
runs inline for ``serial`` and drives a :class:`ProcessExecutor` for the
process backends.

The process backend starts a ``ProcessPoolExecutor`` whose workers
attach read-only shared-memory views of the index
(:mod:`repro.parallel.shm`), then fans each batch's independent DPU
worklists out as at most ``n_workers`` chunk tasks.  Only query rows and
(query, cluster-id) lists cross the pipe outbound; only top-k candidate
arrays and heap statistics return.  Results are reassembled by DPU id,
so the parent's charge replay — and therefore every ledger, timing and
telemetry byte — runs in exactly the serial order.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from repro.core.kernel import ClusterPayload
from repro.core.topk import HeapStats
from repro.errors import ConfigError, ExecutorError
from repro.ivfpq.pq import ProductQuantizer
from repro.parallel.shm import SharedArrayStore
from repro.parallel.worker import CRASH_TASK, init_worker, run_task
from repro.telemetry.pipeline import observe_executor


@dataclass(frozen=True)
class ExecutorSpec:
    """Parsed executor selection: backend kind + worker count."""

    kind: str  # "serial" | "process"
    workers: int = 0


def parse_executor_spec(spec: str | None) -> ExecutorSpec:
    """Parse ``serial`` / ``process`` / ``process:N`` (case-insensitive).

    Bare ``process`` sizes the pool to the host's CPU count; ``None`` or
    an empty string mean serial.
    """
    s = (spec or "serial").strip().lower()
    if s in ("", "serial"):
        return ExecutorSpec(kind="serial")
    if s == "process":
        return ExecutorSpec(kind="process", workers=os.cpu_count() or 1)
    if s.startswith("process:"):
        try:
            workers = int(s.split(":", 1)[1])
        except ValueError:
            raise ConfigError(f"invalid executor spec {spec!r}") from None
        if workers < 1:
            raise ConfigError(f"executor needs >= 1 worker, got {workers}")
        return ExecutorSpec(kind="process", workers=workers)
    raise ConfigError(
        f"unknown executor {spec!r}: expected 'serial', 'process' or 'process:N'"
    )


def _pack_index(
    payloads: list[ClusterPayload],
    pq: ProductQuantizer,
    centroids: np.ndarray,
    lut_cache_bytes: int,
) -> tuple[dict[str, np.ndarray], dict]:
    """(shared arrays, picklable meta) describing the whole index."""
    if pq.codebooks is None:
        raise ConfigError("cannot start executor before the PQ is trained")
    arrays: dict[str, np.ndarray] = {
        "codebooks": pq.codebooks,
        "centroids": np.ascontiguousarray(centroids, dtype=np.float32),
    }
    plist = []
    for p in payloads:
        if p.size == 0:
            continue  # never scheduled; don't ship
        c = p.cluster_id
        arrays[f"c{c}:ids"] = p.ids
        if p.codes is not None:
            arrays[f"c{c}:codes"] = p.codes
            plist.append({"cluster_id": c, "kind": "plain"})
            continue
        assert p.encoded is not None
        enc = p.encoded
        arrays[f"c{c}:addr"] = enc.addresses
        arrays[f"c{c}:len"] = enc.lengths
        if p.cooc is not None and p.cooc.n_slots > 0:
            pos, codes, slots = p.cooc._packed_indices()
        else:
            pos = np.empty((0, 0), dtype=np.int64)
            codes = np.empty((0, 0), dtype=np.int64)
            slots = np.empty(0, dtype=np.int64)
        arrays[f"c{c}:cpos"] = pos
        arrays[f"c{c}:ccodes"] = codes
        arrays[f"c{c}:cslots"] = slots
        plist.append(
            {
                "cluster_id": c,
                "kind": "cae",
                "m": enc.m,
                "n_slots": enc.n_slots if p.cooc is not None else 0,
            }
        )
    meta = {
        "pq": {"dim": pq.dim, "m": pq.m, "nbits": pq.nbits},
        "payloads": plist,
        "lut_cache_bytes": int(lut_cache_bytes),
    }
    return arrays, meta


def _chunk_indices(pair_counts: list[int], n_chunks: int) -> list[list[int]]:
    """Deterministic greedy partition: heaviest group first, onto the
    least-loaded chunk (ties: lowest chunk index).  Members are then
    sorted so each task walks its DPUs in ascending order."""
    order = sorted(range(len(pair_counts)), key=lambda i: (-pair_counts[i], i))
    loads = [0] * n_chunks
    chunks: list[list[int]] = [[] for _ in range(n_chunks)]
    for i in order:
        j = loads.index(min(loads))
        chunks[j].append(i)
        loads[j] += pair_counts[i]
    return [sorted(chunk) for chunk in chunks if chunk]


class ProcessExecutor:
    """Process-pool runtime over shared-memory index views."""

    backend = "process"

    def __init__(self, n_workers: int):
        if n_workers < 1:
            raise ConfigError(f"executor needs >= 1 worker, got {n_workers}")
        self.n_workers = int(n_workers)
        self._store: SharedArrayStore | None = None
        self._pool: ProcessPoolExecutor | None = None

    def start(
        self,
        payloads: list[ClusterPayload],
        pq: ProductQuantizer,
        centroids: np.ndarray,
        *,
        lut_cache_bytes: int = 0,
    ) -> None:
        """Pack the index into shared memory and spin up the pool."""
        if self._pool is not None:
            raise ConfigError("executor already started")
        arrays, meta = _pack_index(payloads, pq, centroids, lut_cache_bytes)
        self._store = SharedArrayStore.create(arrays)
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=ctx,
            initializer=init_worker,
            initargs=(self._store.name, self._store.manifest, meta),
        )

    def shutdown(self) -> None:
        """Tear down workers and release the shared segment. Idempotent."""
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        store = self._store
        self._store = None
        if store is not None:
            store.close()
            store.unlink()

    def compute(
        self,
        dpu_groups: list[tuple[int, list[tuple[int, list[ClusterPayload]]]]],
        queries: np.ndarray,
        probes,
        *,
        k: int,
        n_tasklets: int,
        prune: bool,
        version: int,
        epoch: int,
    ) -> dict[int, tuple[list[tuple[np.ndarray, np.ndarray, HeapStats]], np.ndarray]]:
        """Fan the batch's DPU worklists out and reassemble by DPU id.

        ``probes`` is the batch's per-query live probe list (matrix or
        ragged list, indexable by query index): each shipped query
        carries its *full* ordered probe list so workers rebuild LUTs
        with the exact call composition of the parent's cold build —
        the guarantee that keeps table values bit-identical.

        Returns ``{dpu_id: (topk triples, group_sizes)}`` — exactly what
        :func:`~repro.core.kernel.compute_groups_functional` would have
        produced inline for each DPU, so the caller's charge replay is
        backend-independent.  A dead worker raises
        :class:`~repro.errors.ExecutorError`; the pool is broken
        afterwards and must be shut down by the caller.
        """
        if self._pool is None:
            raise ConfigError("executor not started")
        pair_counts = [
            sum(len(payloads) for _qi, payloads in groups)
            for _d, groups in dpu_groups
        ]
        chunks = _chunk_indices(pair_counts, min(self.n_workers, len(dpu_groups)))
        tasks = []
        queries_shipped = 0
        for chunk in chunks:
            qlocs: dict[int, int] = {}
            for gi in chunk:
                for qi, _payloads in dpu_groups[gi][1]:
                    if qi not in qlocs:
                        qlocs[qi] = len(qlocs)
            sub = np.ascontiguousarray(queries[list(qlocs)])
            sub_probes = [
                np.asarray(probes[qi], dtype=np.int64) for qi in qlocs
            ]
            queries_shipped += sub.shape[0]
            entries = [
                (
                    dpu_groups[gi][0],
                    [
                        (qlocs[qi], [p.cluster_id for p in payloads])
                        for qi, payloads in dpu_groups[gi][1]
                    ],
                )
                for gi in chunk
            ]
            tasks.append(
                (epoch, version, k, n_tasklets, prune, entries, sub, sub_probes)
            )
        try:
            futures = [self._pool.submit(run_task, task) for task in tasks]
            chunk_results = [f.result() for f in futures]
        except BrokenProcessPool as exc:
            raise ExecutorError(
                f"a worker process died mid-batch ({exc}); the pool is "
                "broken and will be rebuilt on the next batch"
            ) from exc
        out: dict[int, tuple[list, np.ndarray]] = {}
        for result in chunk_results:
            for dpu_id, group_sizes, triples in result:
                out[dpu_id] = (
                    [(v, i, HeapStats(*hs)) for v, i, hs in triples],
                    group_sizes,
                )
        observe_executor(
            self.backend,
            workers=self.n_workers,
            tasks=len(tasks),
            dpu_groups=len(dpu_groups),
            queries_shipped=queries_shipped,
            max_chunk_pairs=max(
                (sum(pair_counts[gi] for gi in chunk) for chunk in chunks),
                default=0,
            ),
        )
        return out

    def inject_crash(self) -> None:
        """Kill one worker mid-pool (test hook for the crash path).

        Submits the crash sentinel and waits; the resulting
        :class:`ExecutorError` propagates to the caller and leaves the
        pool broken, exactly like an organic worker death.
        """
        if self._pool is None:
            raise ConfigError("executor not started")
        try:
            self._pool.submit(run_task, CRASH_TASK).result()
        except BrokenProcessPool as exc:
            raise ExecutorError(f"worker crashed ({exc})") from exc
