"""Asymmetric distance computation (paper stage c).

The approximate distance between a query and an encoded point is the sum
of M lookup-table entries selected by the point's codes.  This is the
memory-bound stage that dominates billion-scale CPU runtime (99.5 % in
Figure 19) and that UpANNS moves into the DPUs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def adc_distances(codes: np.ndarray, lut: np.ndarray) -> np.ndarray:
    """Sum LUT entries per encoded point: (s, m) codes x (m, ksub) LUT -> (s,).

    Vectorized as a take-along-axis gather; the simulator charges the DPU
    cost model separately (one WRAM load + add per element on-device).
    """
    codes = np.atleast_2d(codes)
    if codes.shape[1] != lut.shape[0]:
        raise ConfigError(
            f"codes have {codes.shape[1]} sub-codes but LUT has {lut.shape[0]} rows"
        )
    # lut.T[codes[:, m], m] gathered per column then summed: implement as
    # flat gather, which is a single indexed read.
    ksub = lut.shape[1]
    flat = lut.reshape(-1)  # row-major: sub * ksub + code
    offsets = np.arange(codes.shape[1], dtype=np.int64) * ksub
    idx = codes.astype(np.int64) + offsets[None, :]
    return flat[idx].sum(axis=1, dtype=np.float32)


def adc_distances_direct(addresses: np.ndarray, flat_table: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """ADC over *direct-address* encodings (paper section 4.3).

    Co-occurrence-aware encoding stores, per vector, a variable-length
    list of direct addresses into a flat table = [LUT entries | cached
    partial sums].  ``addresses`` is (s, max_len) int32 padded with -1;
    ``lengths`` gives the live prefix per row.
    """
    addresses = np.atleast_2d(addresses)
    mask = np.arange(addresses.shape[1])[None, :] < lengths[:, None]
    safe = np.where(mask, addresses, 0)
    vals = flat_table[safe]
    vals = np.where(mask, vals, 0.0)
    return vals.sum(axis=1, dtype=np.float32)


def topk_from_distances(
    ids: np.ndarray, distances: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact smallest-k selection -> (ids, distances) sorted ascending."""
    if k < 1:
        raise ConfigError("k must be >= 1")
    n = distances.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
    k_eff = min(k, n)
    part = np.argpartition(distances, k_eff - 1)[:k_eff]
    order = part[np.argsort(distances[part], kind="stable")]
    return ids[order], distances[order]
