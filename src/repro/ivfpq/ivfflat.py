"""IVFFlat: inverted-file search over *raw* vectors (no PQ).

The paper's conclusion says the core UpANNS techniques — workload
distribution, resource management, top-k pruning — "are transferable"
to broader ANNS algorithms.  IVFFlat is the natural first target: the
same cluster-filtered scan, but distances are exact L2 over raw
vectors instead of LUT sums over codes.  (CAE does not transfer — there
are no codes to re-encode — which is itself part of the story.)

This module provides the reference index;
:mod:`repro.core.flat_engine` runs it on the PIM simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, NotTrainedError
from repro.ivfpq.adc import topk_from_distances
from repro.ivfpq.ivf import InvertedFile
from repro.ivfpq.kmeans import squared_distances


@dataclass
class FlatClusterList:
    """One inverted list holding raw vectors."""

    cluster_id: int
    ids: np.ndarray
    vectors: np.ndarray  # (s, dim) float32

    @property
    def size(self) -> int:
        return int(self.ids.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.ids.nbytes + self.vectors.nbytes)


@dataclass
class IVFFlatIndex:
    """Coarse quantizer + raw-vector inverted lists."""

    dim: int
    n_clusters: int
    ivf: InvertedFile = field(init=False)
    lists: list[FlatClusterList] = field(default_factory=list)
    _ntotal: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ConfigError("n_clusters must be >= 1")
        self.ivf = InvertedFile(self.n_clusters)

    @property
    def is_trained(self) -> bool:
        return self.ivf.is_trained

    @property
    def ntotal(self) -> int:
        return self._ntotal

    def train(
        self,
        x: np.ndarray,
        *,
        n_iter: int = 20,
        rng: np.random.Generator | None = None,
    ) -> "IVFFlatIndex":
        self.ivf.train(np.atleast_2d(x), n_iter=n_iter, rng=rng)
        return self

    def add(self, x: np.ndarray, ids: np.ndarray | None = None) -> None:
        if not self.is_trained:
            raise NotTrainedError("train() must be called before add()")
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        if x.shape[1] != self.dim:
            raise ConfigError(f"vector dim {x.shape[1]} != index dim {self.dim}")
        if ids is None:
            ids = np.arange(self._ntotal, self._ntotal + x.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
        labels = self.ivf.assign(x)
        if not self.lists:
            self.lists = [
                FlatClusterList(
                    cluster_id=c,
                    ids=np.empty(0, dtype=np.int64),
                    vectors=np.empty((0, self.dim), dtype=np.float32),
                )
                for c in range(self.n_clusters)
            ]
        order = np.argsort(labels, kind="stable")
        boundaries = np.searchsorted(
            labels[order], np.arange(self.n_clusters + 1), side="left"
        )
        for c in range(self.n_clusters):
            sel = order[boundaries[c] : boundaries[c + 1]]
            if sel.size == 0:
                continue
            cl = self.lists[c]
            cl.ids = np.concatenate([cl.ids, ids[sel]])
            cl.vectors = np.vstack([cl.vectors, x[sel]])
        self._ntotal += x.shape[0]

    def search(
        self, queries: np.ndarray, k: int, nprobe: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact L2 over the probed clusters -> (distances, ids)."""
        if not self.is_trained or not self.lists:
            raise NotTrainedError("index must be trained and populated")
        queries = np.ascontiguousarray(np.atleast_2d(queries), dtype=np.float32)
        probes = self.ivf.search_clusters(queries, nprobe)
        nq = queries.shape[0]
        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        out_i = np.full((nq, k), -1, dtype=np.int64)
        for qi in range(nq):
            cand_i, cand_d = [], []
            for c in probes[qi]:
                cl = self.lists[c]
                if cl.size == 0:
                    continue
                d2 = squared_distances(queries[qi : qi + 1], cl.vectors)[0]
                cand_i.append(cl.ids)
                cand_d.append(d2)
            if not cand_i:
                continue
            ids, dists = topk_from_distances(
                np.concatenate(cand_i), np.concatenate(cand_d).astype(np.float32), k
            )
            out_i[qi, : ids.shape[0]] = ids
            out_d[qi, : dists.shape[0]] = dists
        return out_d, out_i

    def cluster_sizes(self) -> np.ndarray:
        if not self.lists:
            return np.zeros(self.n_clusters, dtype=np.int64)
        return np.array([cl.size for cl in self.lists], dtype=np.int64)

    def memory_bytes(self) -> int:
        """Raw-vector storage — the cost PQ compresses away (paper's
        motivation for compression-based methods at billion scale)."""
        return sum(cl.nbytes for cl in self.lists)
