"""Product quantizer: train, encode, decode, LUTs (paper section 2.1).

A vector of dimension D is split into M sub-vectors of dimension D/M;
each sub-vector is quantized against a 2^nbits-entry codebook trained per
subspace.  A 128-d float vector becomes M uint8 codes — the paper's 8x
compression example (512 B -> 64 B with M=16).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, NotTrainedError
from repro.ivfpq.kmeans import assign_to_centroids, kmeans


@dataclass
class ProductQuantizer:
    """Per-subspace codebooks and the encode/decode/LUT operations."""

    dim: int
    m: int
    nbits: int = 8
    codebooks: np.ndarray | None = field(default=None, repr=False)  # (m, ksub, dsub)

    def __post_init__(self) -> None:
        if self.dim % self.m != 0:
            raise ConfigError(f"dim {self.dim} not divisible by m {self.m}")
        if not 1 <= self.nbits <= 8:
            raise ConfigError("nbits must be in [1, 8] (codes stored as uint8)")

    @property
    def dsub(self) -> int:
        return self.dim // self.m

    @property
    def ksub(self) -> int:
        return 1 << self.nbits

    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    @property
    def code_bytes(self) -> int:
        """Bytes per encoded vector (one uint8 per sub-quantizer)."""
        return self.m

    def _require_trained(self) -> np.ndarray:
        if self.codebooks is None:
            raise NotTrainedError("ProductQuantizer.train() has not been called")
        return self.codebooks

    def train(
        self,
        x: np.ndarray,
        *,
        n_iter: int = 20,
        rng: np.random.Generator | None = None,
    ) -> "ProductQuantizer":
        """Fit one k-means codebook per subspace on training vectors."""
        x = np.ascontiguousarray(x, dtype=np.float32)
        if x.shape[1] != self.dim:
            raise ConfigError(f"training data dim {x.shape[1]} != {self.dim}")
        if x.shape[0] < self.ksub:
            raise ConfigError(
                f"need >= {self.ksub} training vectors, got {x.shape[0]}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        books = np.empty((self.m, self.ksub, self.dsub), dtype=np.float32)
        for sub in range(self.m):
            sl = x[:, sub * self.dsub : (sub + 1) * self.dsub]
            books[sub] = kmeans(sl, self.ksub, n_iter=n_iter, rng=rng).centroids
        self.codebooks = books
        return self

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Quantize vectors to (n, m) uint8 codes."""
        books = self._require_trained()
        x = np.ascontiguousarray(x, dtype=np.float32)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.dim:
            raise ConfigError(f"data dim {x.shape[1]} != {self.dim}")
        codes = np.empty((x.shape[0], self.m), dtype=np.uint8)
        for sub in range(self.m):
            sl = x[:, sub * self.dsub : (sub + 1) * self.dsub]
            labels, _ = assign_to_centroids(sl, books[sub])
            codes[:, sub] = labels.astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct (approximate) vectors from codes."""
        books = self._require_trained()
        codes = np.atleast_2d(codes)
        if codes.shape[1] != self.m:
            raise ConfigError(f"codes have {codes.shape[1]} columns, expected {self.m}")
        out = np.empty((codes.shape[0], self.dim), dtype=np.float32)
        for sub in range(self.m):
            out[:, sub * self.dsub : (sub + 1) * self.dsub] = books[sub][codes[:, sub]]
        return out

    def compute_lut(self, query: np.ndarray) -> np.ndarray:
        """Per-subspace squared distances from a query to every codeword.

        Returns the (m, ksub) float32 lookup table of paper stage (b):
        ``lut[sub, j] = || q_sub - codebook[sub][j] ||^2``.  ADC distance
        to any encoded point is then a sum of M table lookups.
        """
        books = self._require_trained()
        query = np.asarray(query, dtype=np.float32).reshape(self.dim)
        lut = np.empty((self.m, self.ksub), dtype=np.float32)
        for sub in range(self.m):
            diff = books[sub] - query[sub * self.dsub : (sub + 1) * self.dsub]
            lut[sub] = np.einsum("ij,ij->i", diff, diff)
        return lut

    def compute_luts(self, queries: np.ndarray) -> np.ndarray:
        """Batched :meth:`compute_lut` -> (nq, m, ksub)."""
        books = self._require_trained()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        nq = queries.shape[0]
        luts = np.empty((nq, self.m, self.ksub), dtype=np.float32)
        for sub in range(self.m):
            qs = queries[:, sub * self.dsub : (sub + 1) * self.dsub]
            cb = books[sub]
            # (nq, ksub) distances via expansion; small enough to batch.
            cross = qs @ cb.T
            qn = np.einsum("ij,ij->i", qs, qs)
            cn = np.einsum("ij,ij->i", cb, cb)
            luts[:, sub, :] = np.maximum(qn[:, None] - 2 * cross + cn[None, :], 0.0)
        return luts

    def quantization_error(self, x: np.ndarray) -> float:
        """Mean squared reconstruction error on ``x`` (training sanity)."""
        rec = self.decode(self.encode(x))
        diff = np.asarray(x, dtype=np.float32) - rec
        return float(np.mean(np.einsum("ij,ij->i", diff, diff)))
