"""Index persistence: save/load a trained IVFPQ index as one .npz file.

The offline phase (k-means + PQ training + encoding) is the expensive
part of the pipeline; deployments train once and serve many times.
The format stores the coarse centroids, PQ codebooks, and the inverted
lists (ids + codes, concatenated with offsets), plus the geometry needed
to validate on load.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ConfigError, NotTrainedError
from repro.ivfpq.index import IVFPQIndex

FORMAT_VERSION = 1


def save_index(path: str | Path, index: IVFPQIndex) -> None:
    """Persist a trained, populated index to ``path`` (.npz)."""
    if not index.is_trained:
        raise NotTrainedError("cannot save an untrained index")
    if not index.ivf.lists:
        raise NotTrainedError("cannot save an index with no inverted lists")
    ids = [cl.ids for cl in index.ivf.lists]
    codes = [cl.codes for cl in index.ivf.lists]
    offsets = np.zeros(len(ids) + 1, dtype=np.int64)
    np.cumsum([a.shape[0] for a in ids], out=offsets[1:])
    np.savez_compressed(
        Path(path),
        format_version=np.int64(FORMAT_VERSION),
        dim=np.int64(index.dim),
        n_clusters=np.int64(index.n_clusters),
        m=np.int64(index.m),
        nbits=np.int64(index.nbits),
        ntotal=np.int64(index.ntotal),
        centroids=index.ivf.centroids,
        codebooks=index.pq.codebooks,
        list_offsets=offsets,
        all_ids=np.concatenate(ids) if offsets[-1] else np.empty(0, np.int64),
        all_codes=(
            np.concatenate(codes)
            if offsets[-1]
            else np.empty((0, index.m), np.uint8)
        ),
    )


def load_index(path: str | Path) -> IVFPQIndex:
    """Load an index saved by :func:`save_index`, validating geometry."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ConfigError(
                f"index file format v{version} unsupported (expected v{FORMAT_VERSION})"
            )
        index = IVFPQIndex(
            dim=int(data["dim"]),
            n_clusters=int(data["n_clusters"]),
            m=int(data["m"]),
            nbits=int(data["nbits"]),
        )
        centroids = data["centroids"]
        codebooks = data["codebooks"]
        if centroids.shape != (index.n_clusters, index.dim):
            raise ConfigError("corrupt index file: centroid shape mismatch")
        if codebooks.shape != (index.m, index.pq.ksub, index.pq.dsub):
            raise ConfigError("corrupt index file: codebook shape mismatch")
        index.ivf.centroids = np.ascontiguousarray(centroids, dtype=np.float32)
        index.pq.codebooks = np.ascontiguousarray(codebooks, dtype=np.float32)

        offsets = data["list_offsets"]
        all_ids = data["all_ids"]
        all_codes = data["all_codes"]
        if offsets.shape[0] != index.n_clusters + 1:
            raise ConfigError("corrupt index file: offset table mismatch")
        if int(offsets[-1]) != all_ids.shape[0]:
            raise ConfigError("corrupt index file: id payload mismatch")
        from repro.ivfpq.ivf import ClusterList

        lists = []
        for c in range(index.n_clusters):
            lo, hi = int(offsets[c]), int(offsets[c + 1])
            lists.append(
                ClusterList(
                    cluster_id=c,
                    ids=np.ascontiguousarray(all_ids[lo:hi]),
                    codes=np.ascontiguousarray(all_codes[lo:hi]),
                )
            )
        index.ivf.lists = lists
        index._ntotal = int(data["ntotal"])
        if index._ntotal != int(offsets[-1]):
            raise ConfigError("corrupt index file: ntotal mismatch")
    return index
