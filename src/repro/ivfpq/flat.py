"""Exact brute-force nearest-neighbor search (ground truth oracle).

Every recall number in the benchmark harness is computed against this
index, mirroring how the public billion-scale benchmarks ship exact
ground-truth files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.ivfpq.kmeans import squared_distances

# Vectors per scan block for the host-side brute-force search.  This is
# a cache-friendliness knob, *not* a hardware limit — it merely happens
# to share a value with DpuSpec.wram_bytes.
SCAN_BLOCK_VECTORS = 65536  # simlint: ignore[HW001]


@dataclass
class FlatIndex:
    """Exact L2 index over raw vectors."""

    dim: int
    _vectors: list[np.ndarray] = field(default_factory=list, repr=False)
    _ids: list[np.ndarray] = field(default_factory=list, repr=False)
    _next_id: int = 0

    def add(self, x: np.ndarray, ids: np.ndarray | None = None) -> None:
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        if x.shape[1] != self.dim:
            raise ConfigError(f"vector dim {x.shape[1]} != index dim {self.dim}")
        if ids is None:
            ids = np.arange(self._next_id, self._next_id + x.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape[0] != x.shape[0]:
                raise ConfigError("ids and vectors must align")
        self._vectors.append(x)
        self._ids.append(ids)
        self._next_id = max(self._next_id, int(ids.max()) + 1) if ids.size else self._next_id

    @property
    def ntotal(self) -> int:
        return sum(v.shape[0] for v in self._vectors)

    def search(
        self, queries: np.ndarray, k: int, *, chunk: int = SCAN_BLOCK_VECTORS
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-k: returns (distances, ids), each (nq, k), ascending.

        Streams the database in chunks so peak memory stays bounded at
        nq x chunk floats (guide: chunked access beats one huge matrix).
        """
        if self.ntotal == 0:
            raise ConfigError("index is empty")
        if k < 1:
            raise ConfigError("k must be >= 1")
        queries = np.ascontiguousarray(np.atleast_2d(queries), dtype=np.float32)
        nq = queries.shape[0]
        k_eff = min(k, self.ntotal)

        base = np.vstack(self._vectors)
        all_ids = np.concatenate(self._ids)

        best_d = np.full((nq, k_eff), np.inf, dtype=np.float32)
        best_i = np.full((nq, k_eff), -1, dtype=np.int64)
        for start in range(0, base.shape[0], chunk):
            block = base[start : start + chunk]
            bids = all_ids[start : start + chunk]
            d2 = squared_distances(queries, block)
            merged_d = np.hstack([best_d, d2])
            merged_i = np.hstack([best_i, np.broadcast_to(bids, (nq, bids.shape[0]))])
            part = np.argpartition(merged_d, k_eff - 1, axis=1)[:, :k_eff]
            row = np.arange(nq)[:, None]
            best_d = merged_d[row, part]
            best_i = merged_i[row, part]
        order = np.argsort(best_d, axis=1, kind="stable")
        row = np.arange(nq)[:, None]
        return best_d[row, order], best_i[row, order]
