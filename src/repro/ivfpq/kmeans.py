"""Lloyd's k-means with k-means++ seeding and empty-cluster repair.

Used twice in the IVFPQ offline phase (paper section 2.1): once for the
coarse quantizer (|C| clusters over the full vectors) and once per PQ
subspace (256 codewords over sub-vectors).  Implemented fully vectorized
with chunked distance computation to bound peak memory (guide: beware of
cache effects; use views, broadcast small arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass
class KMeansResult:
    """Output of :func:`kmeans`."""

    centroids: np.ndarray  # (k, d) float32
    assignments: np.ndarray  # (n,) int64
    inertia: float
    n_iter: int


def squared_distances(x: np.ndarray, centroids: np.ndarray, chunk: int = 4096) -> np.ndarray:
    """All-pairs squared L2 distances, chunked over rows of ``x``.

    Uses the ||x||^2 - 2 x.c + ||c||^2 expansion so the inner step is a
    GEMM (the fastest primitive available), computed in float32.
    """
    x = np.ascontiguousarray(x, dtype=np.float32)
    centroids = np.ascontiguousarray(centroids, dtype=np.float32)
    c_norms = np.einsum("ij,ij->i", centroids, centroids)
    out = np.empty((x.shape[0], centroids.shape[0]), dtype=np.float32)
    for start in range(0, x.shape[0], chunk):
        xs = x[start : start + chunk]
        x_norms = np.einsum("ij,ij->i", xs, xs)
        dot = xs @ centroids.T
        block = x_norms[:, None] - 2.0 * dot + c_norms[None, :]
        np.maximum(block, 0.0, out=block)
        out[start : start + xs.shape[0]] = block
    return out


def assign_to_centroids(
    x: np.ndarray, centroids: np.ndarray, chunk: int = 4096
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment; returns (labels, squared distances)."""
    x = np.ascontiguousarray(x, dtype=np.float32)
    centroids = np.ascontiguousarray(centroids, dtype=np.float32)
    n = x.shape[0]
    labels = np.empty(n, dtype=np.int64)
    dists = np.empty(n, dtype=np.float32)
    c_norms = np.einsum("ij,ij->i", centroids, centroids)
    for start in range(0, n, chunk):
        xs = x[start : start + chunk]
        block = -2.0 * (xs @ centroids.T) + c_norms[None, :]
        idx = np.argmin(block, axis=1)
        labels[start : start + xs.shape[0]] = idx
        x_norms = np.einsum("ij,ij->i", xs, xs)
        best = block[np.arange(xs.shape[0]), idx] + x_norms
        dists[start : start + xs.shape[0]] = np.maximum(best, 0.0)
    return labels, dists


def kmeans_pp_init(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = x.shape[0]
    centroids = np.empty((k, x.shape[1]), dtype=np.float32)
    first = int(rng.integers(n))
    centroids[0] = x[first]
    closest = np.full(n, np.inf, dtype=np.float32)
    for i in range(1, k):
        new_d = np.einsum("ij,ij->i", x - centroids[i - 1], x - centroids[i - 1])
        np.minimum(closest, new_d, out=closest)
        total = float(closest.sum())
        if total <= 0:
            # All points coincide with chosen centroids; fall back to
            # uniform sampling so we still return k centroids.
            centroids[i] = x[int(rng.integers(n))]
            continue
        probs = closest / total
        centroids[i] = x[int(rng.choice(n, p=probs))]
    return centroids


def kmeans(
    x: np.ndarray,
    k: int,
    *,
    n_iter: int = 20,
    rng: np.random.Generator | None = None,
    tol: float = 1e-4,
    init: str = "k-means++",
) -> KMeansResult:
    """Cluster ``x`` into ``k`` groups with Lloyd's algorithm.

    Empty clusters are repaired each iteration by re-seeding them at the
    point farthest from its current centroid (splitting the worst-fit
    region), so the result always has k non-degenerate centroids —
    required downstream because IVF lists index by cluster id.
    """
    x = np.ascontiguousarray(x, dtype=np.float32)
    n, _d = x.shape
    if k < 1:
        raise ConfigError("k must be >= 1")
    if n < k:
        raise ConfigError(f"cannot form {k} clusters from {n} points")
    rng = rng if rng is not None else np.random.default_rng(0)

    if init == "k-means++":
        centroids = kmeans_pp_init(x, k, rng)
    elif init == "random":
        centroids = x[rng.choice(n, size=k, replace=False)].astype(np.float32)
    else:
        raise ConfigError(f"unknown init {init!r}")

    labels = np.zeros(n, dtype=np.int64)
    prev_inertia = np.inf
    it = 0
    for it in range(1, n_iter + 1):
        labels, dists = assign_to_centroids(x, centroids)
        inertia = float(dists.sum())

        counts = np.bincount(labels, minlength=k)
        sums = np.zeros_like(centroids, dtype=np.float64)
        np.add.at(sums, labels, x)
        nonempty = counts > 0
        centroids[nonempty] = (
            sums[nonempty] / counts[nonempty, None]
        ).astype(np.float32)

        empty = np.flatnonzero(~nonempty)
        if empty.size:
            # Re-seed empties at the currently worst-fit points.
            order = np.argsort(dists)[::-1]
            centroids[empty] = x[order[: empty.size]]

        if prev_inertia - inertia <= tol * max(prev_inertia, 1e-12):
            break
        prev_inertia = inertia

    labels, dists = assign_to_centroids(x, centroids)
    return KMeansResult(
        centroids=centroids,
        assignments=labels,
        inertia=float(dists.sum()),
        n_iter=it,
    )
