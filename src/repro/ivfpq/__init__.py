"""From-scratch IVFPQ algorithm stack (paper section 2.1).

K-means coarse quantization, product quantization of residuals,
lookup-table construction, asymmetric distance computation, exact
brute-force ground truth and recall metrics.
"""

from repro.ivfpq.adc import adc_distances, adc_distances_direct, topk_from_distances
from repro.ivfpq.flat import FlatIndex
from repro.ivfpq.index import IVFPQIndex, SearchResult
from repro.ivfpq.io import load_index, save_index
from repro.ivfpq.ivfflat import FlatClusterList, IVFFlatIndex
from repro.ivfpq.pq_index import PQIndex
from repro.ivfpq.ivf import ClusterList, InvertedFile
from repro.ivfpq.kmeans import (
    KMeansResult,
    assign_to_centroids,
    kmeans,
    kmeans_pp_init,
    squared_distances,
)
from repro.ivfpq.lut import (
    build_lut,
    build_luts_for_probes,
    codebook_size_bytes,
    lut_size_bytes,
)
from repro.ivfpq.pq import ProductQuantizer
from repro.ivfpq.recall import recall_1_at_k, recall_at_k

__all__ = [
    "ClusterList",
    "FlatClusterList",
    "FlatIndex",
    "IVFFlatIndex",
    "IVFPQIndex",
    "PQIndex",
    "InvertedFile",
    "KMeansResult",
    "ProductQuantizer",
    "SearchResult",
    "adc_distances",
    "adc_distances_direct",
    "assign_to_centroids",
    "build_lut",
    "load_index",
    "save_index",
    "build_luts_for_probes",
    "codebook_size_bytes",
    "kmeans",
    "kmeans_pp_init",
    "lut_size_bytes",
    "recall_1_at_k",
    "recall_at_k",
    "squared_distances",
    "topk_from_distances",
]
