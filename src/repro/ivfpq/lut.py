"""Lookup-table construction for residual IVFPQ (paper stage b).

With IVF residual encoding, the LUT depends on both the query *and* the
probed cluster: the effective query for cluster c is the residual
``q - centroid_c``.  ``lut[sub, j] = || (q - c)_sub - codeword[sub][j] ||^2``
so the ADC distance of any member point is ``sum_sub lut[sub, code_sub]``.
"""

from __future__ import annotations

import numpy as np

from repro.ivfpq.pq import ProductQuantizer


def build_lut(
    pq: ProductQuantizer, query: np.ndarray, centroid: np.ndarray
) -> np.ndarray:
    """LUT for one (query, cluster) pair: (m, ksub) float32."""
    query = np.asarray(query, dtype=np.float32)
    centroid = np.asarray(centroid, dtype=np.float32)
    return pq.compute_lut(query - centroid)


def build_luts_for_probes(
    pq: ProductQuantizer,
    query: np.ndarray,
    centroids: np.ndarray,
    probe_ids: np.ndarray,
) -> np.ndarray:
    """LUTs for one query against several probed clusters.

    Returns (nprobe, m, ksub).  This is the unit of work each DPU repeats
    per assigned (query, cluster) pair in the paper's pipeline.
    """
    residuals = np.asarray(query, dtype=np.float32)[None, :] - centroids[probe_ids]
    return pq.compute_luts(residuals)


def lut_size_bytes(pq: ProductQuantizer, dtype_bytes: int = 2) -> int:
    """WRAM footprint of one LUT.

    The paper stores LUT entries as uint16 on the DPU (section 4.2.1:
    ``M x 256 x sizeof(uint16)`` = 8 KB for M=16); the functional
    simulator keeps float32 for accuracy but charges WRAM at the
    on-device width.
    """
    return pq.m * pq.ksub * dtype_bytes


def codebook_size_bytes(pq: ProductQuantizer, dtype_bytes: int = 1) -> int:
    """WRAM footprint of the codebooks (paper: D x 256 = 32 KB for SIFT)."""
    return pq.dim * pq.ksub * dtype_bytes
