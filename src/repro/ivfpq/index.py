"""Reference IVFPQ index: the correctness oracle for every engine.

This is a clean, functional implementation of the paper's Figure 2
pipeline with no hardware model attached.  UpANNS, PIM-naive and the
CPU/GPU baselines all search the *same* trained state, and the test
suite asserts they return identical neighbors — the paper's "the
optimizations in UpANNS do not impact the accuracy".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, NotTrainedError
from repro.ivfpq.adc import adc_distances, topk_from_distances
from repro.ivfpq.ivf import InvertedFile
from repro.ivfpq.lut import build_lut
from repro.ivfpq.pq import ProductQuantizer


@dataclass
class SearchResult:
    """Top-k output for a batch: (nq, k) arrays, rows sorted ascending."""

    distances: np.ndarray
    ids: np.ndarray


@dataclass
class IVFPQIndex:
    """Train / add / search facade over the IVF + PQ building blocks."""

    dim: int
    n_clusters: int
    m: int
    nbits: int = 8
    ivf: InvertedFile = field(init=False)
    pq: ProductQuantizer = field(init=False)
    _ntotal: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ConfigError("n_clusters must be >= 1")
        self.ivf = InvertedFile(self.n_clusters)
        self.pq = ProductQuantizer(self.dim, self.m, self.nbits)

    @property
    def is_trained(self) -> bool:
        return self.ivf.is_trained and self.pq.is_trained

    @property
    def ntotal(self) -> int:
        return self._ntotal

    def train(
        self,
        x: np.ndarray,
        *,
        n_iter: int = 20,
        rng: np.random.Generator | None = None,
    ) -> "IVFPQIndex":
        """Offline phase: coarse quantizer, then PQ on residuals."""
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        rng = rng if rng is not None else np.random.default_rng(0)
        self.ivf.train(x, n_iter=n_iter, rng=rng)
        labels = self.ivf.assign(x)
        residuals = self.ivf.residuals(x, labels)
        self.pq.train(residuals, n_iter=n_iter, rng=rng)
        return self

    def add(self, x: np.ndarray, ids: np.ndarray | None = None) -> None:
        """Assign, residual-encode and append vectors to inverted lists.

        May be called repeatedly: later calls extend the existing lists
        (the coarse quantizer and PQ codebooks are fixed at train time,
        as in any IVF library).  Engines built on this index must be
        rebuilt (or ``refresh_placement``-ed) to pick up new vectors.
        """
        if not self.is_trained:
            raise NotTrainedError("train() must be called before add()")
        x = np.ascontiguousarray(np.atleast_2d(x), dtype=np.float32)
        if ids is None:
            ids = np.arange(self._ntotal, self._ntotal + x.shape[0], dtype=np.int64)
        labels = self.ivf.assign(x)
        codes = self.pq.encode(self.ivf.residuals(x, labels))
        self.ivf.append_to_lists(np.asarray(ids, dtype=np.int64), labels, codes)
        self._ntotal += x.shape[0]

    def search(self, queries: np.ndarray, k: int, nprobe: int) -> SearchResult:
        """Online phase: filter -> LUT -> ADC -> top-k (Figure 2 bottom)."""
        if not self.is_trained or self._ntotal == 0:
            raise NotTrainedError("index must be trained and populated")
        queries = np.ascontiguousarray(np.atleast_2d(queries), dtype=np.float32)
        probes = self.ivf.search_clusters(queries, nprobe)
        nq = queries.shape[0]
        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        out_i = np.full((nq, k), -1, dtype=np.int64)
        centroids = self.ivf.centroids
        for qi in range(nq):
            cand_ids: list[np.ndarray] = []
            cand_d: list[np.ndarray] = []
            for c in probes[qi]:
                cl = self.ivf.lists[c]
                if cl.size == 0:
                    continue
                lut = build_lut(self.pq, queries[qi], centroids[c])
                cand_ids.append(cl.ids)
                cand_d.append(adc_distances(cl.codes, lut))
            if not cand_ids:
                continue
            ids, dists = topk_from_distances(
                np.concatenate(cand_ids), np.concatenate(cand_d), k
            )
            out_d[qi, : len(dists)] = dists
            out_i[qi, : len(ids)] = ids
        return SearchResult(distances=out_d, ids=out_i)

    def scanned_points(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """#candidate points each query touches (workload estimation)."""
        probes = self.ivf.search_clusters(np.atleast_2d(queries), nprobe)
        sizes = self.ivf.cluster_sizes()
        return sizes[probes].sum(axis=1)

    def code_bytes_total(self) -> int:
        """Footprint of all stored PQ codes (capacity planning)."""
        return sum(cl.codes.nbytes for cl in self.ivf.lists)
