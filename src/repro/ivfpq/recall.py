"""Recall metrics for ANN results against exact ground truth."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def recall_at_k(result_ids: np.ndarray, gt_ids: np.ndarray, k: int | None = None) -> float:
    """Fraction of true top-k neighbors recovered, averaged over queries.

    ``result_ids`` and ``gt_ids`` are (nq, >=k) arrays; rows are compared
    as sets over their first k columns (standard recall@k).
    """
    result_ids = np.atleast_2d(result_ids)
    gt_ids = np.atleast_2d(gt_ids)
    if result_ids.shape[0] != gt_ids.shape[0]:
        raise ConfigError("result and ground-truth query counts differ")
    k = k if k is not None else min(result_ids.shape[1], gt_ids.shape[1])
    if k < 1 or k > result_ids.shape[1] or k > gt_ids.shape[1]:
        raise ConfigError(f"invalid k={k} for shapes {result_ids.shape}, {gt_ids.shape}")
    hits = 0
    for r, g in zip(result_ids[:, :k], gt_ids[:, :k]):
        hits += len(set(r.tolist()) & set(g.tolist()))
    return hits / (result_ids.shape[0] * k)


def recall_1_at_k(result_ids: np.ndarray, gt_ids: np.ndarray, k: int | None = None) -> float:
    """R1@k: fraction of queries whose single true NN appears in the top k.

    This is the metric reported by the SIFT1B/DEEP1B benchmark suites.
    """
    result_ids = np.atleast_2d(result_ids)
    gt_ids = np.atleast_2d(gt_ids)
    if result_ids.shape[0] != gt_ids.shape[0]:
        raise ConfigError("result and ground-truth query counts differ")
    k = k if k is not None else result_ids.shape[1]
    if k < 1 or k > result_ids.shape[1]:
        raise ConfigError(f"invalid k={k}")
    true_nn = gt_ids[:, 0]
    found = (result_ids[:, :k] == true_nn[:, None]).any(axis=1)
    return float(found.mean())
