"""Exhaustive product-quantization index (no coarse quantizer).

The IndexPQ of the Faiss family: every vector is PQ-encoded and every
query scans *all* codes through one LUT.  Included for library
completeness and as the didactic contrast to IVFPQ — it shows exactly
what the IVF stage buys (the paper's cluster filtering shrinks the scan
by |C|/nprobe, which is why billion-scale search is feasible at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, NotTrainedError
from repro.ivfpq.adc import adc_distances, topk_from_distances
from repro.ivfpq.pq import ProductQuantizer


@dataclass
class PQIndex:
    """Flat PQ index: encode everything, scan everything."""

    dim: int
    m: int
    nbits: int = 8
    pq: ProductQuantizer = field(init=False)
    _codes: np.ndarray | None = None
    _ids: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.pq = ProductQuantizer(self.dim, self.m, self.nbits)

    @property
    def is_trained(self) -> bool:
        return self.pq.is_trained

    @property
    def ntotal(self) -> int:
        return 0 if self._codes is None else int(self._codes.shape[0])

    def train(
        self,
        x: np.ndarray,
        *,
        n_iter: int = 20,
        rng: np.random.Generator | None = None,
    ) -> "PQIndex":
        self.pq.train(np.atleast_2d(x), n_iter=n_iter, rng=rng)
        return self

    def add(self, x: np.ndarray, ids: np.ndarray | None = None) -> None:
        if not self.is_trained:
            raise NotTrainedError("train() must be called before add()")
        x = np.atleast_2d(x)
        codes = self.pq.encode(x)
        if ids is None:
            ids = np.arange(self.ntotal, self.ntotal + x.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape[0] != x.shape[0]:
                raise ConfigError("ids and vectors must align")
        if self._codes is None:
            self._codes, self._ids = codes, ids
        else:
            self._codes = np.vstack([self._codes, codes])
            self._ids = np.concatenate([self._ids, ids])

    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exhaustive ADC scan: returns (distances, ids), each (nq, k)."""
        if self._codes is None or self._ids is None:
            raise NotTrainedError("index is empty")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        nq = queries.shape[0]
        k_eff = min(k, self.ntotal)
        out_d = np.empty((nq, k_eff), dtype=np.float32)
        out_i = np.empty((nq, k_eff), dtype=np.int64)
        for qi in range(nq):
            lut = self.pq.compute_lut(queries[qi])
            dists = adc_distances(self._codes, lut)
            ids, d = topk_from_distances(self._ids, dists, k_eff)
            out_i[qi], out_d[qi] = ids, d
        return out_d, out_i

    def scanned_points(self, nq: int) -> int:
        """Candidates touched per batch — always nq x ntotal (no IVF)."""
        return nq * self.ntotal
