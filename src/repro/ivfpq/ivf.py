"""Inverted file (IVF) coarse quantizer and cluster lists.

The IVF stage partitions the dataset into |C| clusters via k-means and
stores each point as a *residual* (point minus its coarse centroid),
which is what PQ then compresses (paper Figure 2, offline phase).  At
query time, only the ``nprobe`` closest clusters are scanned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, NotTrainedError
from repro.ivfpq.kmeans import assign_to_centroids, kmeans, squared_distances


@dataclass
class ClusterList:
    """One inverted list: the ids and PQ codes of a cluster's members."""

    cluster_id: int
    ids: np.ndarray  # (s,) int64 global vector ids
    codes: np.ndarray  # (s, m) uint8 PQ codes of residuals

    @property
    def size(self) -> int:
        return int(self.ids.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.ids.nbytes + self.codes.nbytes)


@dataclass
class InvertedFile:
    """Coarse quantizer + per-cluster inverted lists."""

    n_clusters: int
    centroids: np.ndarray | None = field(default=None, repr=False)  # (|C|, d)
    lists: list[ClusterList] = field(default_factory=list)

    @property
    def is_trained(self) -> bool:
        return self.centroids is not None

    def _require_trained(self) -> np.ndarray:
        if self.centroids is None:
            raise NotTrainedError("InvertedFile.train() has not been called")
        return self.centroids

    def train(
        self,
        x: np.ndarray,
        *,
        n_iter: int = 20,
        rng: np.random.Generator | None = None,
    ) -> "InvertedFile":
        """Fit the coarse quantizer (k-means over full vectors)."""
        res = kmeans(x, self.n_clusters, n_iter=n_iter, rng=rng)
        self.centroids = res.centroids
        return self

    def assign(self, x: np.ndarray) -> np.ndarray:
        """Coarse cluster id for each vector."""
        labels, _ = assign_to_centroids(
            np.ascontiguousarray(x, dtype=np.float32), self._require_trained()
        )
        return labels

    def residuals(self, x: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Point minus its assigned coarse centroid."""
        centroids = self._require_trained()
        return np.ascontiguousarray(x, dtype=np.float32) - centroids[labels]

    def build_lists(
        self, ids: np.ndarray, labels: np.ndarray, codes: np.ndarray
    ) -> None:
        """Group (id, code) pairs into per-cluster inverted lists."""
        ids = np.asarray(ids, dtype=np.int64)
        if not (len(ids) == len(labels) == len(codes)):
            raise ConfigError("ids, labels and codes must align")
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        boundaries = np.searchsorted(
            sorted_labels, np.arange(self.n_clusters + 1), side="left"
        )
        self.lists = []
        for c in range(self.n_clusters):
            sel = order[boundaries[c] : boundaries[c + 1]]
            self.lists.append(
                ClusterList(
                    cluster_id=c,
                    ids=np.ascontiguousarray(ids[sel]),
                    codes=np.ascontiguousarray(codes[sel]),
                )
            )

    def append_to_lists(
        self, ids: np.ndarray, labels: np.ndarray, codes: np.ndarray
    ) -> None:
        """Append (id, code) pairs to existing inverted lists.

        Supports incremental corpus growth: lists are extended in place
        (cluster membership is decided by the *existing* coarse
        quantizer, as in any IVF library).
        """
        if not self.lists:
            self.build_lists(ids, labels, codes)
            return
        ids = np.asarray(ids, dtype=np.int64)
        if not (len(ids) == len(labels) == len(codes)):
            raise ConfigError("ids, labels and codes must align")
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        boundaries = np.searchsorted(
            sorted_labels, np.arange(self.n_clusters + 1), side="left"
        )
        for c in range(self.n_clusters):
            sel = order[boundaries[c] : boundaries[c + 1]]
            if sel.size == 0:
                continue
            cl = self.lists[c]
            cl.ids = np.concatenate([cl.ids, ids[sel]])
            cl.codes = np.vstack([cl.codes, codes[sel]]) if cl.codes.size else codes[sel]

    def search_clusters(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """Stage (a), cluster filtering: the nprobe nearest clusters.

        Returns (nq, nprobe) int64 cluster ids ordered nearest-first.
        """
        centroids = self._require_trained()
        if not 1 <= nprobe <= self.n_clusters:
            raise ConfigError(f"nprobe {nprobe} outside [1, {self.n_clusters}]")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        d2 = squared_distances(queries, centroids)
        if nprobe == self.n_clusters:
            probes = np.argsort(d2, axis=1)
        else:
            part = np.argpartition(d2, nprobe - 1, axis=1)[:, :nprobe]
            row = np.arange(queries.shape[0])[:, None]
            inner = np.argsort(d2[row, part], axis=1)
            probes = part[row, inner]
        return probes.astype(np.int64)

    def cluster_sizes(self) -> np.ndarray:
        """(|C|,) list lengths — the Figure 4b skew input."""
        if not self.lists:
            return np.zeros(self.n_clusters, dtype=np.int64)
        return np.array([cl.size for cl in self.lists], dtype=np.int64)

    @property
    def ntotal(self) -> int:
        return int(self.cluster_sizes().sum())
