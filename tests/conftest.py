"""Shared fixtures: small, session-scoped datasets and trained indexes.

Training an IVFPQ index is the slow part of the suite, so the fixtures
are session-scoped and immutable by convention — tests must not mutate
fixture state (engines that need to mutate build their own).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SIFT1B, make_dataset, make_queries, zipf_weights
from repro.ivfpq import IVFPQIndex


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_dataset():
    """6k 32-d vectors with planted co-occurrence structure."""
    from dataclasses import replace

    spec = replace(SIFT1B, dim=32, pq_m=8)
    return make_dataset(
        spec,
        6000,
        n_components=24,
        correlated_subspaces=3,
        rng=np.random.default_rng(7),
    )


@pytest.fixture(scope="session")
def small_queries(small_dataset):
    pop = zipf_weights(24, 0.8)
    return make_queries(
        small_dataset, 40, popularity=pop, rng=np.random.default_rng(11)
    )


@pytest.fixture(scope="session")
def history_queries(small_dataset):
    pop = zipf_weights(24, 0.8)
    return make_queries(
        small_dataset, 400, popularity=pop, rng=np.random.default_rng(13)
    )


@pytest.fixture(scope="session")
def trained_index(small_dataset):
    """IVFPQ over the small dataset: 32 clusters, m=8."""
    index = IVFPQIndex(dim=32, n_clusters=32, m=8)
    index.train(small_dataset.vectors, n_iter=6, rng=np.random.default_rng(3))
    index.add(small_dataset.vectors)
    return index


@pytest.fixture(scope="session")
def cluster_codes(trained_index):
    """Codes of the largest cluster — handy for CAE tests."""
    sizes = trained_index.ivf.cluster_sizes()
    biggest = int(np.argmax(sizes))
    return trained_index.ivf.lists[biggest].codes
