"""Trace-context propagation: id assignment and subset selection."""

import pytest

from repro.errors import ConfigError
from repro.tracing import TraceContext, format_trace_id


class TestFormat:
    def test_zero_padded_counter(self):
        assert format_trace_id(0) == "q000000"
        assert format_trace_id(95) == "q000095"
        assert format_trace_id(1234567) == "q1234567"


class TestForBatch:
    def test_ids_in_query_order(self):
        ctx = TraceContext.for_batch(3)
        assert ctx.trace_ids == ("q000000", "q000001", "q000002")
        assert ctx.batch == 0
        assert len(ctx) == 3

    def test_start_continues_a_service_counter(self):
        # The service hands out ids across submits: batch 2 starting at
        # query 60 must not collide with batches 0/1.
        ctx = TraceContext.for_batch(2, batch=2, start=60)
        assert ctx.trace_ids == ("q000060", "q000061")
        assert ctx.batch == 2

    def test_empty_batch_allowed(self):
        assert TraceContext.for_batch(0).trace_ids == ()

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            TraceContext.for_batch(-1)

    def test_negative_batch_rejected(self):
        with pytest.raises(ConfigError):
            TraceContext.for_batch(1, batch=-1)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigError):
            TraceContext(trace_ids=("q000001", "q000001"))


class TestSubsets:
    def test_all_ids_is_the_whole_batch(self):
        ctx = TraceContext.for_batch(4)
        assert ctx.all_ids() == ctx.trace_ids

    def test_ids_for_selects_and_orders(self):
        ctx = TraceContext.for_batch(4)
        assert ctx.ids_for([2, 0]) == ("q000002", "q000000")

    def test_ids_for_dedups_repeated_pairs(self):
        # A DPU serving several (query, cluster) pairs of the same query
        # tags its chain with that query once.
        ctx = TraceContext.for_batch(4)
        assert ctx.ids_for([1, 3, 1, 1, 3]) == ("q000001", "q000003")

    def test_out_of_range_index_rejected(self):
        ctx = TraceContext.for_batch(2)
        with pytest.raises(ConfigError):
            ctx.ids_for([2])
        with pytest.raises(ConfigError):
            ctx.ids_for([-1])
