"""``repro.trace/v1`` records: maker, validator, and per-query views."""

from __future__ import annotations

import copy

import pytest

from repro.errors import ConfigError
from repro.hardware.counters import StageCycles
from repro.sim import (
    HOST_CPU,
    PIM_BUS,
    STAGE_AGGREGATE,
    STAGE_CLUSTER_FILTER,
    STAGE_TRANSFER_IN,
    STAGE_TRANSFER_OUT,
    BatchWork,
    execute_stream,
)
from repro.tracing import (
    TRACE_SCHEMA,
    TraceContext,
    make_trace_record,
    query_latencies,
    query_spans,
    span_id,
    validate_trace_record,
)

FREQ = 350e6


def traced_work(*, n_queries: int = 4, start: int = 0, batch: int = 0) -> BatchWork:
    """A synthetic traced batch shaped like the engines emit.

    Batch-wide stages (filter, bus transfers, aggregate) carry every
    query's id; each DPU chain carries only the queries it scans for.
    """
    ctx = TraceContext.for_batch(n_queries, batch=batch, start=start)
    work = BatchWork(dpu_frequency_hz=FREQ, batch=batch)
    host = work.work(
        HOST_CPU, STAGE_CLUSTER_FILTER, 1.0, trace_ids=ctx.all_ids()
    )
    tin = work.work(
        PIM_BUS, STAGE_TRANSFER_IN, 2.0, after=(host,), trace_ids=ctx.all_ids()
    )
    half = n_queries // 2
    d0 = work.work_dpu_stages(
        0,
        StageCycles(distance_calc=3.5e8),  # 1 s at 350 MHz
        after=(tin,),
        trace_ids=ctx.ids_for(range(half)),
    )
    d1 = work.work_dpu_stages(
        1,
        StageCycles(distance_calc=1.75e8),  # 0.5 s
        after=(tin,),
        trace_ids=ctx.ids_for(range(half, n_queries)),
    )
    tout = work.work(
        PIM_BUS, STAGE_TRANSFER_OUT, 0.5, after=(d0, d1), trace_ids=ctx.all_ids()
    )
    work.work(
        HOST_CPU, STAGE_AGGREGATE, 0.25, after=(tout,), trace_ids=ctx.all_ids()
    )
    return work


def traced_stream(n_batches: int = 2, *, per_batch: int = 4, **kwargs):
    works = [
        traced_work(n_queries=per_batch, start=b * per_batch, batch=b)
        for b in range(n_batches)
    ]
    return execute_stream(works, overlap="double_buffer", **kwargs)


def traced_record(n_batches: int = 2, **kwargs):
    return make_trace_record(
        name="test_stream",
        config={"batches": n_batches},
        schedule=traced_stream(n_batches, **kwargs),
    )


class TestMakeRecord:
    def test_record_validates_and_covers_every_query(self):
        record = traced_record(2)
        assert record["schema"] == TRACE_SCHEMA
        assert validate_trace_record(record) == []
        qids = [q["trace_id"] for q in record["queries"]]
        assert qids == sorted(qids)
        assert qids == [f"q{n:06d}" for n in range(8)]

    def test_span_ids_scope_uid_by_batch(self):
        assert span_id(2, 7) == "b2.7"
        record = traced_record(2)
        ids = [row["span"] for row in record["spans"]]
        assert len(ids) == len(set(ids))
        # Stream-merged uids are globally unique; batches annotate.
        assert all(r["span"] == span_id(r["batch"], r["uid"]) for r in record["spans"])

    def test_query_window_spans_ready_to_last_span_end(self):
        record = traced_record(1)
        q = {row["trace_id"]: row for row in record["queries"]}["q000000"]
        mine = query_spans(record, "q000000")
        ready = min(r["t0"] - r["wait_s"] for r in mine)
        end = max(r["t0"] + r["duration_s"] for r in mine)
        assert q["t0"] == pytest.approx(ready)
        assert q["t1"] == pytest.approx(end)
        assert q["latency_s"] == pytest.approx(end - ready)
        assert q["n_spans"] == len(mine)

    def test_parents_resolve_across_batches(self):
        # double_buffer gates batch 1's roots on batch 0's last inbound
        # bus item, so a batch-1 root's parent lives in batch 0.
        record = traced_record(2)
        roots = [
            r
            for r in record["spans"]
            if r["batch"] == 1
            and r["resource"] == HOST_CPU
            and r["stage"] == STAGE_CLUSTER_FILTER
        ]
        assert roots and all(
            p.startswith("b0.") for r in roots for p in r["parents"]
        )

    def test_untraced_schedule_rejected(self):
        # Analytic schedules recorded without tracing carry no SpanTrace
        # at all; event-core runs of id-less work carry causal metadata
        # but declare no queries.  Both refuse to export.
        from repro.sim import BatchSchedule

        bare = BatchSchedule()
        bare.record(HOST_CPU, STAGE_CLUSTER_FILTER, 1.0)
        with pytest.raises(ConfigError, match="no trace metadata"):
            make_trace_record(name="x", config={}, schedule=bare)

        work = BatchWork(dpu_frequency_hz=FREQ)
        work.work(HOST_CPU, STAGE_CLUSTER_FILTER, 1.0)
        with pytest.raises(ConfigError, match="invalid trace record"):
            make_trace_record(
                name="x", config={}, schedule=execute_stream([work])
            )


class TestValidator:
    def test_duplicate_span_id_rejected(self):
        record = traced_record(1)
        record["spans"].append(copy.deepcopy(record["spans"][0]))
        assert any("duplicate span id" in e for e in validate_trace_record(record))

    def test_unresolved_parent_rejected(self):
        record = traced_record(1)
        record["spans"][-1]["parents"] = ["b9.99"]
        assert any("unresolved parent" in e for e in validate_trace_record(record))

    def test_undeclared_trace_id_rejected(self):
        record = traced_record(1)
        record["spans"][0]["trace_ids"].append("q999999")
        assert any(
            "undeclared trace id" in e for e in validate_trace_record(record)
        )

    def test_span_less_query_rejected(self):
        record = traced_record(1)
        record["queries"].append(
            {
                "trace_id": "q999999",
                "batch": 0,
                "t0": 0.0,
                "t1": 1.0,
                "latency_s": 1.0,
                "n_spans": 1,
            }
        )
        assert any("owns no spans" in e for e in validate_trace_record(record))

    def test_wrong_schema_and_non_object(self):
        record = traced_record(1)
        record["schema"] = "repro.trace/v0"
        assert validate_trace_record(record)
        assert validate_trace_record([]) == ["record must be a JSON object"]


class TestQueryViews:
    def test_query_spans_sorted_and_scoped(self):
        record = traced_record(2)
        rows = query_spans(record, "q000004")
        assert rows == sorted(rows, key=lambda r: (r["batch"], r["uid"]))
        assert all("q000004" in r["trace_ids"] for r in rows)
        # Batch 1's query never appears in batch 0's spans.
        assert all(r["batch"] == 1 for r in rows)

    def test_unknown_query_raises_with_known_ids(self):
        with pytest.raises(ConfigError, match="q000000"):
            query_spans(traced_record(1), "q424242")

    def test_query_latencies_match_record_windows(self):
        schedule = traced_stream(2)
        latencies = query_latencies(schedule)
        record = make_trace_record(name="x", config={}, schedule=schedule)
        assert latencies == {
            q["trace_id"]: pytest.approx(q["latency_s"])
            for q in record["queries"]
        }

    def test_untraced_schedule_has_no_latencies(self):
        work = BatchWork(dpu_frequency_hz=FREQ)
        work.work(HOST_CPU, STAGE_CLUSTER_FILTER, 1.0)
        assert query_latencies(execute_stream([work])) == {}
