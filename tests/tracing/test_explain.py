"""Per-query critical-path attribution: coverage, waits, fault notes."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults import KILL_ANNOTATION, RETRY_ANNOTATION
from repro.hardware.counters import StageCycles
from repro.sim import (
    HOST_CPU,
    PIM_BUS,
    STAGE_AGGREGATE,
    STAGE_CLUSTER_FILTER,
    STAGE_RETRY,
    STAGE_TRANSFER_IN,
    STAGE_TRANSFER_OUT,
    BatchWork,
    dpu_resource,
    execute_stream,
)
from repro.tracing import (
    TraceContext,
    explain_query,
    make_trace_record,
    render_explanation,
    worst_query,
)
from tests.tracing.test_record import FREQ, traced_record


class TestCoverage:
    def test_interleaved_stream_fully_covered(self):
        record = traced_record(3)
        for q in record["queries"]:
            exp = explain_query(record, q["trace_id"])
            assert exp.coverage >= 0.95
            assert exp.latency_s == pytest.approx(q["latency_s"])
            # Ranked shares are the same seconds, normalized.
            total = sum(c.seconds for c in exp.ranked)
            assert total / exp.latency_s == pytest.approx(exp.coverage)
            assert exp.ranked == sorted(
                exp.ranked, key=lambda c: (-c.seconds, c.where)
            )

    def test_queue_wait_attributed_to_the_lane(self):
        # Under double_buffer interleaving, a batch's transfer-out sits
        # ready behind the next batch's transfer-in on the bus FIFO —
        # the explainer must say so, not fold it into service time.
        record = traced_record(3)
        exp = explain_query(record, "q000000")
        waits = [c for c in exp.ranked if c.kind == "wait"]
        assert waits and waits[0].where == f"(wait)@{PIM_BUS}"
        assert waits[0].seconds > 0.0
        # The final batch has nothing queueing behind it.
        last = explain_query(record, record["queries"][-1]["trace_id"])
        assert not [c for c in last.ranked if c.kind == "wait"]

    def test_fig16_double_buffer_service_acceptance(
        self, small_dataset, trained_index, history_queries, small_queries
    ):
        """The paper's fig-16 serving shape: a double-buffered stream
        through the real engine must explain >= 95% of a traced query's
        wall-clock latency (the repo's acceptance bar)."""
        from repro.core.service import OnlineService
        from tests.core.test_service import built_engine

        service = OnlineService(
            engine=built_engine(small_dataset, trained_index, history_queries),
            overlap="double_buffer",
            sim_engine="event",
        )
        for _ in range(3):
            service.submit(small_queries)
        record = make_trace_record(
            name="fig16_stream",
            config={"overlap": "double_buffer", "sim_engine": "event"},
            schedule=service.combined_schedule(),
        )
        qid = worst_query(record)
        exp = explain_query(record, qid)
        assert exp.coverage >= 0.95
        declared = {row["span"] for row in record["spans"]}
        for c in exp.ranked:
            assert set(c.spans) <= declared

    def test_unknown_query_raises(self):
        with pytest.raises(ConfigError):
            explain_query(traced_record(1), "q424242")


class TestWorstQuery:
    def test_picks_max_latency(self):
        record = traced_record(3)
        qid = worst_query(record)
        worst = max(q["latency_s"] for q in record["queries"])
        mine = next(q for q in record["queries"] if q["trace_id"] == qid)
        assert mine["latency_s"] == worst

    def test_empty_record_rejected(self):
        with pytest.raises(ConfigError):
            worst_query({"queries": []})


def fault_work(
    *, retry_s: float = 0.0, dpu_s: float = 1.0, batch: int = 0
) -> BatchWork:
    """Two-query batch with an optional pinned bus retry before dpu/0."""
    ctx = TraceContext.for_batch(2, batch=batch, start=2 * batch)
    work = BatchWork(dpu_frequency_hz=FREQ, batch=batch)
    host = work.work(
        HOST_CPU, STAGE_CLUSTER_FILTER, 1.0, trace_ids=ctx.all_ids()
    )
    tin = work.work(
        PIM_BUS, STAGE_TRANSFER_IN, 2.0, after=(host,), trace_ids=ctx.all_ids()
    )
    gate = tin
    if retry_s > 0.0:
        gate = work.work(
            PIM_BUS,
            STAGE_RETRY,
            retry_s,
            after=(tin,),
            pinned=True,
            trace_ids=ctx.ids_for([0]),
        )
    d0 = work.work(
        dpu_resource(0),
        "distance_calc",
        dpu_s,
        cycles=dpu_s * FREQ,
        after=(gate,),
        trace_ids=ctx.ids_for([0]),
    )
    d1 = work.work_dpu_stages(
        1,
        StageCycles(distance_calc=1.75e8),
        after=(tin,),
        trace_ids=ctx.ids_for([1]),
    )
    tout = work.work(
        PIM_BUS, STAGE_TRANSFER_OUT, 0.5, after=(d0, d1), trace_ids=ctx.all_ids()
    )
    work.work(
        HOST_CPU, STAGE_AGGREGATE, 0.25, after=(tout,), trace_ids=ctx.all_ids()
    )
    return work


class TestFaultAnnotations:
    def test_retry_contribution_is_annotated(self):
        record = make_trace_record(
            name="x",
            config={},
            schedule=execute_stream([fault_work(retry_s=0.4)]),
        )
        exp = explain_query(record, "q000000")
        retry = next(c for c in exp.ranked if c.kind == "retry")
        assert retry.where == f"{STAGE_RETRY}@{PIM_BUS}"
        assert retry.annotation == RETRY_ANNOTATION
        assert retry.seconds == pytest.approx(0.4)
        # The batch's shared transfer-out waited on the faulted chain,
        # so the collateral query's critical path crosses the retry too
        # — cross-query interference is exactly what explain exposes.
        other = explain_query(record, "q000001")
        assert any(c.kind == "retry" for c in other.ranked)

    def test_mid_flight_kill_is_annotated(self):
        # dpu/0 runs 3 -> 13 s; batch 1's first bus activity fences it
        # mid-flight, truncating the span on the victim query's path.
        works = [fault_work(dpu_s=10.0, batch=b) for b in range(2)]
        record = make_trace_record(
            name="x",
            config={},
            schedule=execute_stream(
                works, overlap="double_buffer", kills={"dpu/0": 1}
            ),
        )
        exp = explain_query(record, "q000000")
        assert exp.killed
        killed = [c for c in exp.ranked if KILL_ANNOTATION in c.annotation]
        assert killed and killed[0].where == f"distance_calc@{dpu_resource(0)}"


class TestRender:
    def test_mentions_query_coverage_and_rows(self):
        record = traced_record(2)
        exp = explain_query(record, "q000000")
        text = render_explanation(exp)
        assert "query q000000" in text
        assert "critical path covers" in text
        assert f"(wait)@{PIM_BUS}" in text
        assert "%" in text

    def test_kill_marker_rendered(self):
        works = [fault_work(dpu_s=10.0, batch=b) for b in range(2)]
        record = make_trace_record(
            name="x",
            config={},
            schedule=execute_stream(
                works, overlap="double_buffer", kills={"dpu/0": 1}
            ),
        )
        text = render_explanation(explain_query(record, "q000000"))
        assert "mid-flight kill" in text
