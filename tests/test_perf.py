"""Perf-harness tests: record shape, equivalence guard, baseline gate.

One tiny case is actually executed (both engines, wall-clock timed);
everything else works on synthesized records so the suite stays fast.
"""

import pytest

from repro.errors import ConfigError
from repro.perf import PerfCase, compare_to_baseline, run_perf
from repro.telemetry.schema import PERF_SCHEMA, validate_perf_record

TINY = PerfCase(
    "tiny_bs8",
    8,
    dim=32,
    m=8,
    n_clusters=8,
    n_vectors=600,
    nprobe=4,
    k=5,
    chips_per_dimm=1,
)


@pytest.fixture(scope="module")
def tiny_record():
    return run_perf(cases=(TINY,), repeats=1, seed=0)


class TestRunPerf:
    def test_record_is_schema_valid(self, tiny_record):
        assert validate_perf_record(tiny_record) == []
        assert tiny_record["schema"] == PERF_SCHEMA

    def test_case_fields(self, tiny_record):
        (case,) = tiny_record["cases"]
        assert case["name"] == "tiny_bs8"
        assert case["shape"]["batch_size"] == 8
        assert case["shape"]["n_dpus"] == TINY.n_dpus
        for field in ("looped_s", "grouped_cold_s", "grouped_warm_s"):
            assert case[field] > 0.0
        assert case["speedup_warm"] > 0.0
        assert case["speedup_cold"] > 0.0

    def test_totals_are_ratios_of_sums(self, tiny_record):
        (case,) = tiny_record["cases"]
        totals = tiny_record["totals"]
        assert totals["looped_s"] == pytest.approx(case["looped_s"])
        assert totals["speedup"] == pytest.approx(
            case["looped_s"] / case["grouped_warm_s"]
        )

    def test_rejects_bad_repeats(self):
        with pytest.raises(ConfigError):
            run_perf(cases=(TINY,), repeats=0)

    def test_variance_stats_and_qps_fields(self, tiny_record):
        (case,) = tiny_record["cases"]
        for block in ("looped_stats", "grouped_warm_stats"):
            stats = case[block]
            assert stats["min"] > 0.0
            assert stats["median"] >= stats["min"]
            assert stats["stdev"] >= 0.0  # 0.0 at repeats=1
        assert case["qps_warm"] > 0.0
        assert case["qps_cold"] > 0.0
        assert case["speedup_warm_median"] > 0.0

    def test_mode_reflects_actual_cases(self, tiny_record):
        """Regression: the record used to claim mode "full" for every
        run, --quick included."""
        from repro.perf import FULL_CASES, QUICK_CASES, _mode_for

        assert tiny_record["config"]["mode"] == "custom"
        assert _mode_for(QUICK_CASES) == "quick"
        assert _mode_for(FULL_CASES) == "full"
        assert _mode_for((TINY,)) == "custom"
        assert tiny_record["config"]["host_cpus"] >= 1
        assert tiny_record["config"]["executor"] == "serial"

    def test_worker_sweep_records_scaling_table(self):
        record = run_perf(
            cases=(TINY,), repeats=1, seed=0, sweep_workers=(1,)
        )
        assert validate_perf_record(record) == []
        (case,) = record["cases"]
        point = case["workers"]["1"]
        assert point["warm_s"] > 0.0
        assert point["qps_warm"] > 0.0
        assert point["speedup_warm"] > 0.0

    def test_process_executor_record_matches_serial(self, tiny_record):
        """The main timings under process:1 must carry the same
        functional record shape — equivalence to the looped reference is
        asserted inside run_case at every timed point."""
        record = run_perf(cases=(TINY,), repeats=1, seed=0, executor="process:1")
        assert validate_perf_record(record) == []
        assert record["config"]["executor"] == "process:1"


def record_with(name, speedup_warm):
    return {
        "cases": [
            {
                "name": name,
                "speedup_warm": speedup_warm,
                "looped_s": 1.0,
                "grouped_warm_s": 1.0 / speedup_warm,
            }
        ]
    }


class TestCompareToBaseline:
    def test_self_comparison_passes(self, tiny_record):
        assert compare_to_baseline(tiny_record, tiny_record) == []

    def test_regression_beyond_factor_fails(self):
        current = record_with("a", 2.0)
        baseline = record_with("a", 5.0)
        failures = compare_to_baseline(current, baseline, max_regression=2.0)
        assert len(failures) == 1
        assert "fell below" in failures[0]

    def test_regression_within_factor_passes(self):
        current = record_with("a", 3.0)
        baseline = record_with("a", 5.0)
        assert compare_to_baseline(current, baseline, max_regression=2.0) == []

    def test_no_common_cases_is_a_failure(self):
        failures = compare_to_baseline(record_with("a", 2.0), record_with("b", 2.0))
        assert failures == ["no case names in common with the baseline record"]

    def test_rejects_max_regression_at_or_below_one(self):
        with pytest.raises(ConfigError):
            compare_to_baseline(record_with("a", 2.0), record_with("a", 2.0), max_regression=1.0)

    def test_gates_on_median_when_both_records_have_it(self):
        current = record_with("a", 9.0)  # min-based ratio looks fine
        baseline = record_with("a", 9.0)
        current["cases"][0]["speedup_warm_median"] = 2.0  # median regressed
        baseline["cases"][0]["speedup_warm_median"] = 9.0
        failures = compare_to_baseline(current, baseline, max_regression=2.0)
        assert len(failures) == 1
        assert "speedup_warm_median" in failures[0]

    def test_min_fallback_for_pre_variance_baselines(self):
        current = record_with("a", 2.0)
        current["cases"][0]["speedup_warm_median"] = 2.0
        baseline = record_with("a", 5.0)  # old record: no median field
        failures = compare_to_baseline(current, baseline, max_regression=2.0)
        assert len(failures) == 1
        assert "speedup_warm " in failures[0]

    def test_dropped_qps_fields_fail_the_gate(self):
        baseline = record_with("a", 2.0)
        baseline["cases"][0]["qps_warm"] = 100.0
        baseline["cases"][0]["qps_cold"] = 50.0
        current = record_with("a", 2.0)
        failures = compare_to_baseline(current, baseline)
        assert len(failures) == 2
        assert all("coverage regressed" in f for f in failures)
