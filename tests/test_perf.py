"""Perf-harness tests: record shape, equivalence guard, baseline gate.

One tiny case is actually executed (both engines, wall-clock timed);
everything else works on synthesized records so the suite stays fast.
"""

import pytest

from repro.errors import ConfigError
from repro.perf import PerfCase, compare_to_baseline, run_perf
from repro.telemetry.schema import PERF_SCHEMA, validate_perf_record

TINY = PerfCase(
    "tiny_bs8",
    8,
    dim=32,
    m=8,
    n_clusters=8,
    n_vectors=600,
    nprobe=4,
    k=5,
    chips_per_dimm=1,
)


@pytest.fixture(scope="module")
def tiny_record():
    return run_perf(cases=(TINY,), repeats=1, seed=0)


class TestRunPerf:
    def test_record_is_schema_valid(self, tiny_record):
        assert validate_perf_record(tiny_record) == []
        assert tiny_record["schema"] == PERF_SCHEMA

    def test_case_fields(self, tiny_record):
        (case,) = tiny_record["cases"]
        assert case["name"] == "tiny_bs8"
        assert case["shape"]["batch_size"] == 8
        assert case["shape"]["n_dpus"] == TINY.n_dpus
        for field in ("looped_s", "grouped_cold_s", "grouped_warm_s"):
            assert case[field] > 0.0
        assert case["speedup_warm"] > 0.0
        assert case["speedup_cold"] > 0.0

    def test_totals_are_ratios_of_sums(self, tiny_record):
        (case,) = tiny_record["cases"]
        totals = tiny_record["totals"]
        assert totals["looped_s"] == pytest.approx(case["looped_s"])
        assert totals["speedup"] == pytest.approx(
            case["looped_s"] / case["grouped_warm_s"]
        )

    def test_rejects_bad_repeats(self):
        with pytest.raises(ConfigError):
            run_perf(cases=(TINY,), repeats=0)


def record_with(name, speedup_warm):
    return {
        "cases": [
            {
                "name": name,
                "speedup_warm": speedup_warm,
                "looped_s": 1.0,
                "grouped_warm_s": 1.0 / speedup_warm,
            }
        ]
    }


class TestCompareToBaseline:
    def test_self_comparison_passes(self, tiny_record):
        assert compare_to_baseline(tiny_record, tiny_record) == []

    def test_regression_beyond_factor_fails(self):
        current = record_with("a", 2.0)
        baseline = record_with("a", 5.0)
        failures = compare_to_baseline(current, baseline, max_regression=2.0)
        assert len(failures) == 1
        assert "fell below" in failures[0]

    def test_regression_within_factor_passes(self):
        current = record_with("a", 3.0)
        baseline = record_with("a", 5.0)
        assert compare_to_baseline(current, baseline, max_regression=2.0) == []

    def test_no_common_cases_is_a_failure(self):
        failures = compare_to_baseline(record_with("a", 2.0), record_with("b", 2.0))
        assert failures == ["no case names in common with the baseline record"]

    def test_rejects_max_regression_at_or_below_one(self):
        with pytest.raises(ConfigError):
            compare_to_baseline(record_with("a", 2.0), record_with("a", 2.0), max_regression=1.0)
