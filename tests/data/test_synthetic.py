"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.data.synthetic import (
    ALL_SPECS,
    DEEP1B,
    SIFT1B,
    SPACEV1B,
    make_dataset,
    make_queries,
)
from repro.errors import ConfigError


class TestSpecs:
    def test_paper_geometries(self):
        """Section 5.1: DEEP 96d/12, SIFT 128d/16, SPACEV 100d/20."""
        assert (DEEP1B.dim, DEEP1B.pq_m) == (96, 12)
        assert (SIFT1B.dim, SIFT1B.pq_m) == (128, 16)
        assert (SPACEV1B.dim, SPACEV1B.pq_m) == (100, 20)

    def test_all_specs_billion_scale(self):
        assert all(s.full_scale == 10**9 for s in ALL_SPECS)

    def test_scaled_factor(self):
        scaled = SIFT1B.scaled(100_000)
        assert scaled.scale_factor == pytest.approx(10_000)


class TestGeneration:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_shapes_and_ranges(self, spec):
        ds = make_dataset(spec, 2000, n_components=16, rng=np.random.default_rng(0))
        assert ds.vectors.shape == (2000, spec.dim)
        assert ds.vectors.dtype == np.float32
        lo, hi = spec.value_range
        assert ds.vectors.min() >= lo
        assert ds.vectors.max() <= hi

    def test_component_sizes_skewed(self):
        ds = make_dataset(
            SIFT1B, 5000, n_components=32, size_sigma=1.5, rng=np.random.default_rng(1)
        )
        counts = np.bincount(ds.component_of, minlength=32)
        assert counts.max() > 5 * max(counts.min(), 1)

    def test_all_components_non_empty(self):
        ds = make_dataset(SIFT1B, 2000, n_components=64, rng=np.random.default_rng(2))
        assert np.bincount(ds.component_of, minlength=64).min() >= 1

    def test_n_smaller_than_components_rejected(self):
        with pytest.raises(ConfigError):
            make_dataset(SIFT1B, 10, n_components=64)

    def test_correlated_subspaces_create_duplicates(self):
        """The CAE-enabling structure: correlated subspaces repeat
        exact sub-vector values within a component."""
        ds = make_dataset(
            SIFT1B, 3000, n_components=8, correlated_subspaces=2,
            rng=np.random.default_rng(3),
        )
        dsub = SIFT1B.dim // SIFT1B.pq_m
        comp0 = ds.vectors[ds.component_of == 0][:, :dsub]
        unique_rows = np.unique(comp0.round(4), axis=0)
        assert unique_rows.shape[0] <= 4  # at most n_protos variants

    def test_deterministic(self):
        a = make_dataset(SIFT1B, 1000, n_components=8, rng=np.random.default_rng(5))
        b = make_dataset(SIFT1B, 1000, n_components=8, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.vectors, b.vectors)


class TestQueries:
    @pytest.fixture(scope="class")
    def ds(self):
        return make_dataset(SIFT1B, 2000, n_components=16, rng=np.random.default_rng(0))

    def test_query_shape_and_range(self, ds):
        q = make_queries(ds, 50, rng=np.random.default_rng(1))
        assert q.shape == (50, 128)
        lo, hi = SIFT1B.value_range
        assert q.min() >= lo and q.max() <= hi

    def test_popularity_shapes_traffic(self, ds):
        """Zipf popularity must concentrate queries near hot components
        — the Figure 4a access-skew mechanism."""
        pop = np.zeros(16)
        pop[3] = 1.0
        q = make_queries(ds, 100, popularity=pop, rng=np.random.default_rng(2))
        center = ds.mixture_centers[3]
        d_hot = ((q - center) ** 2).sum(axis=1)
        d_other = ((q - ds.mixture_centers[0]) ** 2).sum(axis=1)
        assert np.median(d_hot) < np.median(d_other)

    def test_bad_popularity_rejected(self, ds):
        with pytest.raises(ConfigError):
            make_queries(ds, 10, popularity=np.ones(5))
