"""Skew machinery tests (Figure 4 statistics)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.skew import (
    gini,
    lognormal_sizes,
    sample_categories,
    skew_ratio,
    zipf_weights,
)
from repro.errors import ConfigError


class TestZipf:
    def test_normalized(self):
        w = zipf_weights(100, 1.0)
        assert w.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(50, 1.2)
        assert (np.diff(w) <= 0).all()

    def test_alpha_zero_uniform(self):
        w = zipf_weights(10, 0.0)
        np.testing.assert_allclose(w, 0.1)

    def test_higher_alpha_more_skew(self):
        assert skew_ratio(zipf_weights(100, 1.5)) > skew_ratio(zipf_weights(100, 0.5))

    def test_paper_scale_spread_reachable(self):
        """Figure 4a reports ~500x access-frequency spread."""
        w = zipf_weights(4096, 0.75)
        assert skew_ratio(w) > 400

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_n(self, bad):
        with pytest.raises(ConfigError):
            zipf_weights(bad)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigError):
            zipf_weights(10, -0.5)


class TestLognormalSizes:
    @given(n=st.integers(1, 50), mult=st.integers(1, 100), seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_sums_exactly_and_non_empty(self, n, mult, seed):
        total = n * mult
        sizes = lognormal_sizes(n, total, rng=np.random.default_rng(seed))
        assert int(sizes.sum()) == total
        assert sizes.min() >= 1

    def test_heavy_tail(self):
        sizes = lognormal_sizes(200, 100_000, sigma=1.5, rng=np.random.default_rng(0))
        assert skew_ratio(sizes) > 50

    def test_infeasible_rejected(self):
        with pytest.raises(ConfigError):
            lognormal_sizes(10, 5)


class TestStats:
    def test_skew_ratio(self):
        assert skew_ratio(np.array([1.0, 10.0, 100.0])) == pytest.approx(100.0)

    def test_skew_ratio_ignores_zeros(self):
        assert skew_ratio(np.array([0.0, 2.0, 8.0])) == pytest.approx(4.0)

    def test_skew_ratio_all_zero_rejected(self):
        with pytest.raises(ConfigError):
            skew_ratio(np.zeros(3))

    def test_gini_uniform_zero(self):
        assert gini(np.ones(100)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_near_one(self):
        v = np.zeros(100)
        v[0] = 1.0
        assert gini(v) > 0.9

    def test_gini_empty(self):
        assert gini(np.array([])) == 0.0

    def test_sample_categories(self):
        w = np.array([0.9, 0.1])
        samples = sample_categories(w, 1000, np.random.default_rng(0))
        assert (samples == 0).mean() > 0.8
