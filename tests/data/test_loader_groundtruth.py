"""Vector-file codec and ground-truth caching tests."""

import numpy as np
import pytest

from repro.data.groundtruth import (
    compute_groundtruth,
    groundtruth_for,
    load_groundtruth,
    save_groundtruth,
)
from repro.data.loader import read_vecs, write_vecs
from repro.errors import ConfigError


class TestVecsCodecs:
    @pytest.mark.parametrize(
        "suffix,dtype",
        [(".fvecs", np.float32), (".ivecs", np.int32), (".bvecs", np.uint8)],
    )
    def test_roundtrip(self, tmp_path, suffix, dtype):
        rng = np.random.default_rng(0)
        if dtype == np.uint8:
            data = rng.integers(0, 256, size=(20, 16)).astype(dtype)
        elif dtype == np.int32:
            data = rng.integers(-1000, 1000, size=(20, 16)).astype(dtype)
        else:
            data = rng.normal(size=(20, 16)).astype(dtype)
        path = tmp_path / f"x{suffix}"
        write_vecs(path, data)
        back = read_vecs(path)
        np.testing.assert_array_equal(back, data)

    def test_max_vectors(self, tmp_path):
        data = np.arange(40, dtype=np.float32).reshape(10, 4)
        path = tmp_path / "x.fvecs"
        write_vecs(path, data)
        back = read_vecs(path, max_vectors=3)
        np.testing.assert_array_equal(back, data[:3])

    def test_unknown_suffix(self, tmp_path):
        with pytest.raises(ConfigError):
            read_vecs(tmp_path / "x.weird")

    def test_corrupt_file_detected(self, tmp_path):
        path = tmp_path / "x.fvecs"
        data = np.zeros((2, 4), dtype=np.float32)
        write_vecs(path, data)
        with open(path, "ab") as f:
            f.write(b"xx")  # trailing garbage breaks record alignment
        with pytest.raises(ConfigError):
            read_vecs(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "x.fvecs"
        path.write_bytes(b"")
        assert read_vecs(path).size == 0

    def test_file_layout_matches_standard(self, tmp_path):
        """Each record: int32 dim header then payload (fvecs spec)."""
        path = tmp_path / "x.fvecs"
        write_vecs(path, np.array([[1.5, 2.5]], dtype=np.float32))
        raw = path.read_bytes()
        assert np.frombuffer(raw[:4], "<i4")[0] == 2
        np.testing.assert_allclose(np.frombuffer(raw[4:], "<f4"), [1.5, 2.5])


class TestGroundTruth:
    def test_compute_matches_flat(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(200, 8)).astype(np.float32)
        q = rng.normal(size=(5, 8)).astype(np.float32)
        _, ids = compute_groundtruth(base, q, 3)
        for i in range(5):
            true = np.argsort(((base - q[i]) ** 2).sum(axis=1))[:3]
            np.testing.assert_array_equal(ids[i], true)

    def test_dim_mismatch(self):
        with pytest.raises(ConfigError):
            compute_groundtruth(np.zeros((5, 4)), np.zeros((2, 3)), 1)

    def test_save_load_roundtrip(self, tmp_path):
        d = np.random.rand(3, 4).astype(np.float32)
        i = np.arange(12).reshape(3, 4)
        path = tmp_path / "gt.npz"
        save_groundtruth(path, d, i)
        d2, i2 = load_groundtruth(path)
        np.testing.assert_array_equal(i, i2)

    def test_cache_used(self, tmp_path):
        rng = np.random.default_rng(1)
        base = rng.normal(size=(100, 4)).astype(np.float32)
        q = rng.normal(size=(3, 4)).astype(np.float32)
        path = tmp_path / "gt.npz"
        _, first = groundtruth_for(base, q, 5, cache_path=path)
        assert path.exists()
        # Second call must hit the cache even with different base data.
        _, second = groundtruth_for(base * 0, q, 5, cache_path=path)
        np.testing.assert_array_equal(first, second)

    def test_cache_ignored_when_too_small(self, tmp_path):
        rng = np.random.default_rng(2)
        base = rng.normal(size=(100, 4)).astype(np.float32)
        q = rng.normal(size=(3, 4)).astype(np.float32)
        path = tmp_path / "gt.npz"
        groundtruth_for(base, q, 2, cache_path=path)
        _, ids = groundtruth_for(base, q, 5, cache_path=path)  # k grew
        assert ids.shape[1] == 5
