"""Index persistence tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotTrainedError
from repro.ivfpq import IVFPQIndex
from repro.ivfpq.io import save_index, load_index


class TestRoundtrip:
    def test_search_results_identical(self, trained_index, small_queries, tmp_path):
        path = tmp_path / "index.npz"
        save_index(path, trained_index)
        loaded = load_index(path)
        a = trained_index.search(small_queries, 10, 8)
        b = loaded.search(small_queries, 10, 8)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_allclose(a.distances, b.distances, rtol=1e-6)

    def test_geometry_preserved(self, trained_index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(path, trained_index)
        loaded = load_index(path)
        assert loaded.dim == trained_index.dim
        assert loaded.n_clusters == trained_index.n_clusters
        assert loaded.m == trained_index.m
        assert loaded.ntotal == trained_index.ntotal

    def test_cluster_sizes_preserved(self, trained_index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(path, trained_index)
        loaded = load_index(path)
        np.testing.assert_array_equal(
            loaded.ivf.cluster_sizes(), trained_index.ivf.cluster_sizes()
        )

    def test_loaded_index_drives_engine(
        self, trained_index, small_dataset, small_queries, tmp_path
    ):
        from repro.config import IndexConfig, QueryConfig, SystemConfig
        from repro.core.engine import UpANNSEngine
        from repro.hardware.specs import PimSystemSpec

        path = tmp_path / "index.npz"
        save_index(path, trained_index)
        loaded = load_index(path)
        cfg = SystemConfig(
            index=IndexConfig(dim=32, n_clusters=32, m=8, train_iters=2),
            query=QueryConfig(nprobe=8, k=5, batch_size=40),
            pim=PimSystemSpec(n_dimms=1, chips_per_dimm=2, dpus_per_chip=8),
        )
        engine = UpANNSEngine(cfg)
        engine.build(small_dataset.vectors, prebuilt_index=loaded)
        res = engine.search_batch(small_queries)
        ref = trained_index.search(small_queries, 5, 8)
        np.testing.assert_allclose(
            np.where(np.isfinite(res.distances), res.distances, -1),
            np.where(np.isfinite(ref.distances), ref.distances, -1),
            rtol=1e-4, atol=1e-4,
        )


class TestErrors:
    def test_untrained_rejected(self, tmp_path):
        with pytest.raises(NotTrainedError):
            save_index(tmp_path / "x.npz", IVFPQIndex(8, 2, 2))

    def test_corrupt_centroids_detected(self, trained_index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(path, trained_index)
        with np.load(path) as data:
            fields = {k: data[k] for k in data.files}
        fields["centroids"] = fields["centroids"][:5]
        np.savez_compressed(path, **fields)
        with pytest.raises(ConfigError):
            load_index(path)

    def test_corrupt_offsets_detected(self, trained_index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(path, trained_index)
        with np.load(path) as data:
            fields = {k: data[k] for k in data.files}
        fields["list_offsets"] = fields["list_offsets"][:-2]
        np.savez_compressed(path, **fields)
        with pytest.raises(ConfigError):
            load_index(path)

    def test_unknown_version_rejected(self, trained_index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(path, trained_index)
        with np.load(path) as data:
            fields = {k: data[k] for k in data.files}
        fields["format_version"] = np.int64(99)
        np.savez_compressed(path, **fields)
        with pytest.raises(ConfigError):
            load_index(path)
