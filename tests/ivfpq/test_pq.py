"""Product quantizer tests: training, coding, LUTs."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotTrainedError
from repro.ivfpq.pq import ProductQuantizer


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    return rng.normal(0, 1, size=(2000, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def pq(data):
    return ProductQuantizer(dim=16, m=4).train(data, n_iter=8)


class TestConstruction:
    def test_dim_divisibility(self):
        with pytest.raises(ConfigError):
            ProductQuantizer(dim=10, m=3)

    def test_nbits_range(self):
        with pytest.raises(ConfigError):
            ProductQuantizer(dim=8, m=2, nbits=9)

    def test_geometry(self, pq):
        assert pq.dsub == 4
        assert pq.ksub == 256
        assert pq.code_bytes == 4

    def test_small_nbits(self, data):
        small = ProductQuantizer(dim=16, m=4, nbits=4).train(data, n_iter=5)
        codes = small.encode(data[:50])
        assert codes.max() < 16


class TestTraining:
    def test_untrained_raises(self):
        p = ProductQuantizer(dim=8, m=2)
        with pytest.raises(NotTrainedError):
            p.encode(np.zeros((1, 8), dtype=np.float32))
        with pytest.raises(NotTrainedError):
            p.compute_lut(np.zeros(8, dtype=np.float32))

    def test_needs_enough_vectors(self):
        with pytest.raises(ConfigError):
            ProductQuantizer(dim=8, m=2).train(np.zeros((10, 8), dtype=np.float32))

    def test_wrong_dim_rejected(self, data):
        with pytest.raises(ConfigError):
            ProductQuantizer(dim=8, m=2).train(data)

    def test_codebook_shape(self, pq):
        assert pq.codebooks.shape == (4, 256, 4)


class TestCoding:
    def test_code_shape_and_dtype(self, pq, data):
        codes = pq.encode(data[:100])
        assert codes.shape == (100, 4)
        assert codes.dtype == np.uint8

    def test_single_vector_encode(self, pq, data):
        codes = pq.encode(data[0])
        assert codes.shape == (1, 4)

    def test_decode_shape(self, pq, data):
        rec = pq.decode(pq.encode(data[:10]))
        assert rec.shape == (10, 16)

    def test_roundtrip_reduces_error_vs_mean(self, pq, data):
        """PQ reconstruction must beat the trivial mean predictor."""
        err = pq.quantization_error(data[:500])
        mean_err = float(
            np.mean(((data[:500] - data[:500].mean(axis=0)) ** 2).sum(axis=1))
        )
        assert err < 0.25 * mean_err

    def test_codeword_roundtrip_is_exact(self, pq):
        """Encoding a codeword reconstruction returns the same code."""
        codes = np.array([[1, 2, 3, 4], [250, 0, 17, 99]], dtype=np.uint8)
        rec = pq.decode(codes)
        np.testing.assert_array_equal(pq.encode(rec), codes)

    def test_encode_rejects_wrong_dim(self, pq):
        with pytest.raises(ConfigError):
            pq.encode(np.zeros((3, 7), dtype=np.float32))

    def test_decode_rejects_wrong_m(self, pq):
        with pytest.raises(ConfigError):
            pq.decode(np.zeros((3, 5), dtype=np.uint8))


class TestLUT:
    def test_lut_shape(self, pq, data):
        lut = pq.compute_lut(data[0])
        assert lut.shape == (4, 256)
        assert lut.dtype == np.float32

    def test_lut_values_match_naive(self, pq, data):
        q = data[0]
        lut = pq.compute_lut(q)
        for sub in range(4):
            qs = q[sub * 4 : (sub + 1) * 4]
            naive = ((pq.codebooks[sub] - qs) ** 2).sum(axis=1)
            np.testing.assert_allclose(lut[sub], naive, rtol=1e-4, atol=1e-4)

    def test_batched_luts_match_single(self, pq, data):
        qs = data[:5]
        batched = pq.compute_luts(qs)
        for i in range(5):
            np.testing.assert_allclose(
                batched[i], pq.compute_lut(qs[i]), rtol=1e-4, atol=1e-3
            )

    def test_lut_non_negative(self, pq, data):
        assert (pq.compute_luts(data[:20]) >= 0).all()

    def test_adc_distance_via_lut_approximates_true(self, pq, data):
        """sum(LUT[code]) == || q - decode(code) ||^2 exactly."""
        q = data[1]
        codes = pq.encode(data[2:12])
        lut = pq.compute_lut(q)
        adc = np.array(
            [sum(lut[s, c] for s, c in enumerate(row)) for row in codes]
        )
        true = ((pq.decode(codes) - q) ** 2).sum(axis=1)
        np.testing.assert_allclose(adc, true, rtol=1e-3, atol=1e-2)
