"""K-means tests: correctness, degenerate cases, invariants."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ivfpq.kmeans import (
    assign_to_centroids,
    kmeans,
    kmeans_pp_init,
    squared_distances,
)


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    centers = rng.normal(0, 10, size=(5, 8)).astype(np.float32)
    labels = rng.integers(0, 5, size=500)
    return (centers[labels] + rng.normal(0, 0.3, size=(500, 8))).astype(
        np.float32
    ), labels, centers


class TestSquaredDistances:
    def test_matches_naive(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(20, 6)).astype(np.float32)
        c = rng.normal(size=(7, 6)).astype(np.float32)
        d2 = squared_distances(x, c)
        naive = ((x[:, None, :] - c[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(d2, naive, rtol=1e-4, atol=1e-3)

    def test_chunking_invariant(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 4)).astype(np.float32)
        c = rng.normal(size=(9, 4)).astype(np.float32)
        np.testing.assert_allclose(
            squared_distances(x, c, chunk=7), squared_distances(x, c), atol=1e-4
        )

    def test_non_negative(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(50, 3)).astype(np.float32)
        assert (squared_distances(x, x[:5]) >= 0).all()

    def test_self_distance_zero(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(10, 5)).astype(np.float32)
        d2 = squared_distances(x, x)
        np.testing.assert_allclose(np.diag(d2), 0.0, atol=1e-3)


class TestAssign:
    def test_assignment_is_nearest(self, blobs):
        x, _, _ = blobs
        c = x[:6].copy()
        labels, dists = assign_to_centroids(x, c)
        full = squared_distances(x, c)
        np.testing.assert_array_equal(labels, full.argmin(axis=1))
        np.testing.assert_allclose(dists, full.min(axis=1), rtol=1e-3, atol=1e-2)


class TestKMeansPP:
    def test_returns_k_centroids(self, blobs):
        x, _, _ = blobs
        c = kmeans_pp_init(x, 7, np.random.default_rng(0))
        assert c.shape == (7, x.shape[1])

    def test_degenerate_identical_points(self):
        x = np.ones((20, 3), dtype=np.float32)
        c = kmeans_pp_init(x, 4, np.random.default_rng(0))
        assert c.shape == (4, 3)


class TestKMeans:
    def test_recovers_blob_structure(self, blobs):
        x, true_labels, _ = blobs
        res = kmeans(x, 5, n_iter=25, rng=np.random.default_rng(0))
        # Each found cluster should be dominated by one true blob.
        for c in range(5):
            members = true_labels[res.assignments == c]
            if members.size:
                dominant = np.bincount(members).max() / members.size
                assert dominant > 0.9

    def test_no_empty_clusters(self, blobs):
        x, _, _ = blobs
        res = kmeans(x, 32, n_iter=10, rng=np.random.default_rng(0))
        assert np.bincount(res.assignments, minlength=32).min() >= 1

    def test_inertia_improves_over_random_init_assignment(self, blobs):
        x, _, _ = blobs
        r1 = kmeans(x, 5, n_iter=1, rng=np.random.default_rng(0))
        r20 = kmeans(x, 5, n_iter=20, rng=np.random.default_rng(0))
        assert r20.inertia <= r1.inertia * 1.001

    def test_deterministic_given_seed(self, blobs):
        x, _, _ = blobs
        a = kmeans(x, 5, rng=np.random.default_rng(42))
        b = kmeans(x, 5, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(a.assignments, b.assignments)

    def test_k_equals_one(self, blobs):
        x, _, _ = blobs
        res = kmeans(x, 1, n_iter=3)
        np.testing.assert_allclose(res.centroids[0], x.mean(axis=0), atol=1e-2)

    def test_k_equals_n(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(10, 3)).astype(np.float32)
        res = kmeans(x, 10, n_iter=5)
        assert res.inertia == pytest.approx(0.0, abs=1e-2)

    def test_rejects_k_over_n(self):
        with pytest.raises(ConfigError):
            kmeans(np.zeros((3, 2), dtype=np.float32), 5)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigError):
            kmeans(np.zeros((3, 2), dtype=np.float32), 0)

    def test_rejects_unknown_init(self, blobs):
        x, _, _ = blobs
        with pytest.raises(ConfigError):
            kmeans(x, 3, init="bogus")

    def test_random_init_works(self, blobs):
        x, _, _ = blobs
        res = kmeans(x, 5, n_iter=15, init="random", rng=np.random.default_rng(0))
        assert res.centroids.shape == (5, x.shape[1])

    def test_assignments_match_centroids(self, blobs):
        """Post-condition: every point is assigned to its nearest centroid."""
        x, _, _ = blobs
        res = kmeans(x, 5, n_iter=10)
        d2 = squared_distances(x, res.centroids)
        np.testing.assert_array_equal(res.assignments, d2.argmin(axis=1))
