"""Exhaustive PQ index tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotTrainedError
from repro.ivfpq import FlatIndex, recall_at_k
from repro.ivfpq.pq_index import PQIndex


@pytest.fixture(scope="module")
def pq_index(small_dataset):
    idx = PQIndex(dim=32, m=8)
    idx.train(small_dataset.vectors, n_iter=6, rng=np.random.default_rng(0))
    idx.add(small_dataset.vectors)
    return idx


class TestLifecycle:
    def test_add_before_train(self):
        with pytest.raises(NotTrainedError):
            PQIndex(8, 2).add(np.zeros((2, 8), np.float32))

    def test_search_empty(self):
        idx = PQIndex(8, 2)
        with pytest.raises(NotTrainedError):
            idx.search(np.zeros((1, 8), np.float32), 1)

    def test_incremental_add(self, small_dataset):
        idx = PQIndex(dim=32, m=8)
        idx.train(small_dataset.vectors, n_iter=3)
        idx.add(small_dataset.vectors[:100])
        idx.add(small_dataset.vectors[100:200])
        assert idx.ntotal == 200
        _, ids = idx.search(small_dataset.vectors[150:151], 1)
        assert ids[0, 0] == 150

    def test_misaligned_ids(self, small_dataset):
        idx = PQIndex(dim=32, m=8)
        idx.train(small_dataset.vectors, n_iter=3)
        with pytest.raises(ConfigError):
            idx.add(small_dataset.vectors[:10], ids=np.arange(5))


class TestSearchQuality:
    def test_reasonable_recall(self, pq_index, small_dataset, small_queries):
        flat = FlatIndex(32)
        flat.add(small_dataset.vectors)
        _, gt = flat.search(small_queries, 10)
        _, ids = pq_index.search(small_queries, 10)
        assert recall_at_k(ids, gt, 10) > 0.4

    def test_matches_full_probe_ivfpq_quality(
        self, pq_index, trained_index, small_dataset, small_queries
    ):
        """Exhaustive PQ and IVFPQ-with-all-clusters differ only in the
        residual encoding; both should land in a similar recall band."""
        flat = FlatIndex(32)
        flat.add(small_dataset.vectors)
        _, gt = flat.search(small_queries, 10)
        _, pq_ids = pq_index.search(small_queries, 10)
        ivf = trained_index.search(small_queries, 10, trained_index.n_clusters)
        r_pq = recall_at_k(pq_ids, gt, 10)
        r_ivf = recall_at_k(ivf.ids, gt, 10)
        assert abs(r_pq - r_ivf) < 0.35

    def test_rows_sorted(self, pq_index, small_queries):
        d, _ = pq_index.search(small_queries, 10)
        assert (np.diff(d, axis=1) >= -1e-5).all()

    def test_scan_cost_is_exhaustive(self, pq_index):
        """The didactic point: no IVF means every query scans ntotal."""
        assert pq_index.scanned_points(7) == 7 * pq_index.ntotal
