"""ADC distance computation and exact brute-force index tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.ivfpq.adc import adc_distances, adc_distances_direct, topk_from_distances
from repro.ivfpq.flat import FlatIndex


class TestAdc:
    def test_matches_naive_sum(self):
        rng = np.random.default_rng(0)
        lut = rng.random((4, 256)).astype(np.float32)
        codes = rng.integers(0, 256, size=(50, 4)).astype(np.uint8)
        d = adc_distances(codes, lut)
        naive = np.array(
            [sum(lut[s, c] for s, c in enumerate(row)) for row in codes]
        )
        np.testing.assert_allclose(d, naive, rtol=1e-5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            adc_distances(np.zeros((3, 5), np.uint8), np.zeros((4, 256), np.float32))

    def test_single_row(self):
        lut = np.ones((2, 256), dtype=np.float32)
        d = adc_distances(np.zeros((1, 2), np.uint8), lut)
        assert d[0] == pytest.approx(2.0)

    @given(
        n=st.integers(1, 30),
        m=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_direct_addressing_equivalence(self, n, m, seed):
        """Property: direct-address ADC == code-indexed ADC when the
        addresses are the trivial pos*256+code mapping."""
        rng = np.random.default_rng(seed)
        lut = rng.random((m, 256)).astype(np.float32)
        codes = rng.integers(0, 256, size=(n, m)).astype(np.uint8)
        addresses = (np.arange(m)[None, :] * 256 + codes).astype(np.int64)
        lengths = np.full(n, m, dtype=np.int64)
        direct = adc_distances_direct(addresses, lut.reshape(-1), lengths)
        np.testing.assert_allclose(direct, adc_distances(codes, lut), rtol=1e-5)

    def test_direct_respects_lengths(self):
        table = np.arange(10, dtype=np.float32)
        addresses = np.array([[1, 2, -1], [3, -1, -1]], dtype=np.int64)
        lengths = np.array([2, 1])
        d = adc_distances_direct(addresses, table, lengths)
        np.testing.assert_allclose(d, [3.0, 3.0])


class TestTopkFromDistances:
    def test_matches_sort(self):
        rng = np.random.default_rng(1)
        d = rng.random(200).astype(np.float32)
        ids = rng.permutation(200).astype(np.int64)
        top_i, top_d = topk_from_distances(ids, d, 10)
        order = np.argsort(d)[:10]
        np.testing.assert_allclose(top_d, d[order])
        np.testing.assert_array_equal(top_i, ids[order])

    def test_k_larger_than_n(self):
        ids = np.array([5, 6], dtype=np.int64)
        d = np.array([2.0, 1.0], dtype=np.float32)
        top_i, top_d = topk_from_distances(ids, d, 10)
        np.testing.assert_array_equal(top_i, [6, 5])

    def test_empty_input(self):
        top_i, top_d = topk_from_distances(
            np.empty(0, np.int64), np.empty(0, np.float32), 3
        )
        assert top_i.size == 0

    def test_invalid_k(self):
        with pytest.raises(ConfigError):
            topk_from_distances(np.array([1]), np.array([1.0]), 0)

    def test_ascending_output(self):
        rng = np.random.default_rng(2)
        d = rng.random(100).astype(np.float32)
        _, top_d = topk_from_distances(np.arange(100), d, 20)
        assert (np.diff(top_d) >= 0).all()


class TestFlatIndex:
    @pytest.fixture(scope="class")
    def flat(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(500, 12)).astype(np.float32)
        idx = FlatIndex(12)
        idx.add(x)
        return idx, x

    def test_exact_against_argsort(self, flat):
        idx, x = flat
        rng = np.random.default_rng(1)
        q = rng.normal(size=(7, 12)).astype(np.float32)
        dists, ids = idx.search(q, 5)
        for i in range(7):
            true = np.argsort(((x - q[i]) ** 2).sum(axis=1))[:5]
            np.testing.assert_array_equal(ids[i], true)

    def test_chunked_search_invariant(self, flat):
        idx, x = flat
        q = x[:4]
        d_big, i_big = idx.search(q, 8, chunk=10_000)
        d_small, i_small = idx.search(q, 8, chunk=37)
        np.testing.assert_array_equal(i_big, i_small)
        np.testing.assert_allclose(d_big, d_small, atol=1e-4)

    def test_self_query_finds_self(self, flat):
        idx, x = flat
        _, ids = idx.search(x[:10], 1)
        np.testing.assert_array_equal(ids[:, 0], np.arange(10))

    def test_custom_ids(self):
        idx = FlatIndex(4)
        x = np.eye(4, dtype=np.float32)
        idx.add(x, ids=np.array([100, 200, 300, 400]))
        _, ids = idx.search(x[:1], 1)
        assert ids[0, 0] == 100

    def test_incremental_add(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=(2, 50, 6)).astype(np.float32)
        idx = FlatIndex(6)
        idx.add(a)
        idx.add(b)
        assert idx.ntotal == 100
        _, ids = idx.search(b[:3], 1)
        np.testing.assert_array_equal(ids[:, 0], [50, 51, 52])

    def test_dim_mismatch(self):
        idx = FlatIndex(4)
        with pytest.raises(ConfigError):
            idx.add(np.zeros((2, 5), np.float32))

    def test_empty_search_rejected(self):
        with pytest.raises(ConfigError):
            FlatIndex(4).search(np.zeros((1, 4), np.float32), 1)

    def test_k_capped_at_ntotal(self):
        idx = FlatIndex(3)
        idx.add(np.eye(3, dtype=np.float32))
        d, i = idx.search(np.zeros((1, 3), np.float32), 10)
        assert i.shape == (1, 3)
