"""Recall metric tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ivfpq.recall import recall_1_at_k, recall_at_k


class TestRecallAtK:
    def test_perfect(self):
        ids = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall_at_k(ids, ids) == 1.0

    def test_order_insensitive(self):
        a = np.array([[1, 2, 3]])
        b = np.array([[3, 1, 2]])
        assert recall_at_k(a, b) == 1.0

    def test_partial(self):
        a = np.array([[1, 2, 99]])
        b = np.array([[1, 2, 3]])
        assert recall_at_k(a, b) == pytest.approx(2 / 3)

    def test_zero(self):
        assert recall_at_k(np.array([[7, 8]]), np.array([[1, 2]])) == 0.0

    def test_k_prefix(self):
        a = np.array([[1, 9, 9, 9]])
        b = np.array([[1, 2, 3, 4]])
        assert recall_at_k(a, b, k=1) == 1.0

    def test_mismatched_queries(self):
        with pytest.raises(ConfigError):
            recall_at_k(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_invalid_k(self):
        with pytest.raises(ConfigError):
            recall_at_k(np.zeros((1, 3)), np.zeros((1, 3)), k=5)


class TestRecall1AtK:
    def test_nn_found_anywhere_in_topk(self):
        results = np.array([[9, 8, 1]])
        gt = np.array([[1, 5, 7]])
        assert recall_1_at_k(results, gt) == 1.0

    def test_nn_missed(self):
        results = np.array([[9, 8, 2]])
        gt = np.array([[1, 5, 7]])
        assert recall_1_at_k(results, gt) == 0.0

    def test_average_over_queries(self):
        results = np.array([[1, 0], [9, 9]])
        gt = np.array([[1, 5], [2, 5]])
        assert recall_1_at_k(results, gt) == pytest.approx(0.5)

    def test_k_restricts_window(self):
        results = np.array([[9, 1]])
        gt = np.array([[1, 2]])
        assert recall_1_at_k(results, gt, k=1) == 0.0
        assert recall_1_at_k(results, gt, k=2) == 1.0
