"""Reference IVFPQ index tests: pipeline correctness and recall behavior."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotTrainedError
from repro.ivfpq import FlatIndex, IVFPQIndex, recall_at_k


class TestLifecycle:
    def test_search_before_train_raises(self):
        idx = IVFPQIndex(8, 4, 2)
        with pytest.raises(NotTrainedError):
            idx.search(np.zeros((1, 8), np.float32), 1, 1)

    def test_add_before_train_raises(self):
        idx = IVFPQIndex(8, 4, 2)
        with pytest.raises(NotTrainedError):
            idx.add(np.zeros((10, 8), np.float32))

    def test_incremental_add_extends_lists(self, small_dataset):
        idx = IVFPQIndex(32, 8, 8)
        idx.train(small_dataset.vectors[:2000], n_iter=4)
        idx.add(small_dataset.vectors[:100])
        idx.add(small_dataset.vectors[100:200])
        assert idx.ntotal == 200
        assert int(idx.ivf.cluster_sizes().sum()) == 200
        # New ids are assigned past the existing range.
        res = idx.search(small_dataset.vectors[150:151], k=1, nprobe=8)
        assert res.ids[0, 0] == 150

    def test_incremental_add_equals_bulk_add(self, small_dataset, small_queries):
        bulk = IVFPQIndex(32, 8, 8)
        bulk.train(small_dataset.vectors[:2000], n_iter=4)
        bulk.add(small_dataset.vectors[:400])
        inc = IVFPQIndex(32, 8, 8)
        inc.train(small_dataset.vectors[:2000], n_iter=4)
        inc.add(small_dataset.vectors[:250])
        inc.add(small_dataset.vectors[250:400])
        a = bulk.search(small_queries, 5, 8)
        b = inc.search(small_queries, 5, 8)
        np.testing.assert_allclose(a.distances, b.distances, rtol=1e-5)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            IVFPQIndex(10, 4, 3)
        with pytest.raises(ConfigError):
            IVFPQIndex(8, 0, 2)

    def test_ntotal(self, trained_index, small_dataset):
        assert trained_index.ntotal == small_dataset.n


class TestSearchResults:
    def test_shapes(self, trained_index, small_queries):
        res = trained_index.search(small_queries, k=7, nprobe=4)
        assert res.ids.shape == (len(small_queries), 7)
        assert res.distances.shape == (len(small_queries), 7)

    def test_rows_sorted_ascending(self, trained_index, small_queries):
        res = trained_index.search(small_queries, k=10, nprobe=8)
        finite = np.isfinite(res.distances)
        for row, mask in zip(res.distances, finite):
            vals = row[mask]
            assert (np.diff(vals) >= -1e-5).all()

    def test_ids_are_valid(self, trained_index, small_queries, small_dataset):
        res = trained_index.search(small_queries, k=5, nprobe=8)
        valid = res.ids[res.ids >= 0]
        assert valid.max() < small_dataset.n

    def test_no_duplicate_ids_per_query(self, trained_index, small_queries):
        res = trained_index.search(small_queries, k=10, nprobe=8)
        for row in res.ids:
            real = row[row >= 0]
            assert len(set(real.tolist())) == len(real)

    def test_deterministic(self, trained_index, small_queries):
        a = trained_index.search(small_queries, 5, 4)
        b = trained_index.search(small_queries, 5, 4)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_full_probe_equals_exhaustive_adc(self, trained_index, small_dataset):
        """nprobe = |C| must rank every point by its ADC distance."""
        q = small_dataset.vectors[:3]
        res = trained_index.search(q, k=5, nprobe=trained_index.n_clusters)
        # Recompute by brute force over all lists.
        from repro.ivfpq.adc import adc_distances
        from repro.ivfpq.lut import build_lut

        for qi in range(3):
            all_ids, all_d = [], []
            for cl in trained_index.ivf.lists:
                if cl.size == 0:
                    continue
                lut = build_lut(
                    trained_index.pq, q[qi], trained_index.ivf.centroids[cl.cluster_id]
                )
                all_ids.append(cl.ids)
                all_d.append(adc_distances(cl.codes, lut))
            d = np.concatenate(all_d)
            best = np.argsort(d, kind="stable")[:5]
            np.testing.assert_allclose(
                res.distances[qi], d[best], rtol=1e-5, atol=1e-5
            )


class TestRecallBehavior:
    def test_recall_improves_with_nprobe(self, trained_index, small_dataset, small_queries):
        flat = FlatIndex(32)
        flat.add(small_dataset.vectors)
        _, gt = flat.search(small_queries, 10)
        r_small = recall_at_k(
            trained_index.search(small_queries, 10, 1).ids, gt, 10
        )
        r_large = recall_at_k(
            trained_index.search(small_queries, 10, 16).ids, gt, 10
        )
        assert r_large >= r_small

    def test_reasonable_recall_at_full_probe(
        self, trained_index, small_dataset, small_queries
    ):
        """With all clusters probed, only PQ distortion limits recall."""
        flat = FlatIndex(32)
        flat.add(small_dataset.vectors)
        _, gt = flat.search(small_queries, 10)
        res = trained_index.search(small_queries, 10, trained_index.n_clusters)
        assert recall_at_k(res.ids, gt, 10) > 0.5


class TestWorkloadEstimation:
    def test_scanned_points(self, trained_index, small_queries):
        scanned = trained_index.scanned_points(small_queries, 4)
        sizes = trained_index.ivf.cluster_sizes()
        probes = trained_index.ivf.search_clusters(small_queries, 4)
        np.testing.assert_array_equal(scanned, sizes[probes].sum(axis=1))

    def test_code_bytes_total(self, trained_index, small_dataset):
        assert trained_index.code_bytes_total() == small_dataset.n * trained_index.m
