"""Inverted-file tests: training, lists, cluster filtering."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotTrainedError
from repro.ivfpq.ivf import InvertedFile
from repro.ivfpq.kmeans import squared_distances


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    return rng.normal(size=(1200, 8)).astype(np.float32)


@pytest.fixture(scope="module")
def ivf(data):
    return InvertedFile(16).train(data, n_iter=8, rng=np.random.default_rng(1))


class TestTraining:
    def test_untrained_raises(self, data):
        f = InvertedFile(4)
        with pytest.raises(NotTrainedError):
            f.assign(data)
        with pytest.raises(NotTrainedError):
            f.search_clusters(data[:2], 2)

    def test_centroid_shape(self, ivf):
        assert ivf.centroids.shape == (16, 8)


class TestResiduals:
    def test_residual_definition(self, ivf, data):
        labels = ivf.assign(data[:50])
        res = ivf.residuals(data[:50], labels)
        np.testing.assert_allclose(
            res, data[:50] - ivf.centroids[labels], atol=1e-6
        )

    def test_residuals_smaller_than_originals(self, ivf, data):
        labels = ivf.assign(data)
        res = ivf.residuals(data, labels)
        assert (res**2).sum() < (data**2).sum()


class TestLists:
    def test_lists_partition_all_ids(self, ivf, data):
        labels = ivf.assign(data)
        ids = np.arange(len(data))
        codes = np.zeros((len(data), 4), dtype=np.uint8)
        ivf.build_lists(ids, labels, codes)
        collected = np.concatenate([cl.ids for cl in ivf.lists])
        assert sorted(collected.tolist()) == ids.tolist()
        assert ivf.ntotal == len(data)

    def test_list_members_assigned_to_that_cluster(self, ivf, data):
        labels = ivf.assign(data)
        ivf.build_lists(np.arange(len(data)), labels, np.zeros((len(data), 4), np.uint8))
        for cl in ivf.lists:
            assert (labels[cl.ids] == cl.cluster_id).all()

    def test_misaligned_inputs_rejected(self, ivf):
        with pytest.raises(ConfigError):
            ivf.build_lists(np.arange(3), np.zeros(4, np.int64), np.zeros((3, 4), np.uint8))

    def test_cluster_sizes(self, ivf, data):
        labels = ivf.assign(data)
        ivf.build_lists(np.arange(len(data)), labels, np.zeros((len(data), 4), np.uint8))
        np.testing.assert_array_equal(
            ivf.cluster_sizes(), np.bincount(labels, minlength=16)
        )


class TestClusterFiltering:
    def test_probes_sorted_nearest_first(self, ivf, data):
        q = data[:5]
        probes = ivf.search_clusters(q, 4)
        d2 = squared_distances(q, ivf.centroids)
        for i in range(5):
            dists = d2[i, probes[i]]
            assert (np.diff(dists) >= -1e-4).all()

    def test_probes_are_the_nearest_set(self, ivf, data):
        q = data[:5]
        probes = ivf.search_clusters(q, 4)
        d2 = squared_distances(q, ivf.centroids)
        for i in range(5):
            true_set = set(np.argsort(d2[i])[:4].tolist())
            assert set(probes[i].tolist()) == true_set

    def test_nprobe_equals_all(self, ivf, data):
        probes = ivf.search_clusters(data[:3], 16)
        assert probes.shape == (3, 16)
        assert set(probes[0].tolist()) == set(range(16))

    @pytest.mark.parametrize("nprobe", [0, 17, -1])
    def test_invalid_nprobe(self, ivf, data, nprobe):
        with pytest.raises(ConfigError):
            ivf.search_clusters(data[:2], nprobe)
